// Sequential-vs-parallel benchmark pairs for the internal/parallel
// engine. Each pair runs the identical workload with the worker pool
// pinned to 1 (the sequential baseline) and at GOMAXPROCS; on a
// machine with >=4 cores the parallel variant of the estimator and
// bootstrap benches should run >=2x faster. Results are bit-identical
// between the members of every pair — that is the engine's contract,
// enforced by the determinism tests in internal/core and
// internal/experiments.
package drnet_test

import (
	"testing"

	"drnet/internal/core"
	"drnet/internal/experiments"
	"drnet/internal/parallel"
)

// sequentially pins the worker pool to one worker for the duration of
// the benchmark; concurrently restores the GOMAXPROCS default. The
// estimator threshold is dropped so even mid-sized traces take the
// chunked path and the pair measures the engine, not the gate.
func sequentially(b *testing.B) {
	b.Helper()
	parallel.SetDefaultWorkers(1)
	old := core.ParallelThreshold
	core.ParallelThreshold = 1
	b.Cleanup(func() {
		parallel.SetDefaultWorkers(0)
		core.ParallelThreshold = old
	})
}

func concurrently(b *testing.B) {
	b.Helper()
	parallel.SetDefaultWorkers(0)
	old := core.ParallelThreshold
	core.ParallelThreshold = 1
	b.Cleanup(func() { core.ParallelThreshold = old })
}

func benchDR(b *testing.B) {
	tr, np, model := banditTrace(b, microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DoublyRobust(tr, np, model, core.DROptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkEstimatorDRSequential(b *testing.B) { sequentially(b); benchDR(b) }
func BenchmarkEstimatorDRParallel(b *testing.B)   { concurrently(b); benchDR(b) }

func benchIPS(b *testing.B) {
	tr, np, _ := banditTrace(b, microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IPS(tr, np, core.IPSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkEstimatorIPSSequential(b *testing.B) { sequentially(b); benchIPS(b) }
func BenchmarkEstimatorIPSParallel(b *testing.B)   { concurrently(b); benchIPS(b) }

func benchDM(b *testing.B) {
	tr, np, model := banditTrace(b, microN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DirectMethod(tr, np, model); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(microN*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkEstimatorDMSequential(b *testing.B) { sequentially(b); benchDM(b) }
func BenchmarkEstimatorDMParallel(b *testing.B)   { concurrently(b); benchDM(b) }

// benchBootstrap resamples a 5k-record trace 200 times, refitting the
// IPS estimator per resample — the drevald per-request workload.
func benchBootstrap(b *testing.B) {
	tr, np, _ := banditTrace(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ci, err := core.BootstrapSeeded(tr, func(t core.Trace[float64, int]) (core.Estimate, error) {
			return core.IPS(t, np, core.IPSOptions{})
		}, 42, 200, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		if ci.Lo >= ci.Hi {
			b.Fatalf("degenerate interval %+v", ci)
		}
	}
}

func BenchmarkBootstrapSequential(b *testing.B) { sequentially(b); benchBootstrap(b) }
func BenchmarkBootstrapParallel(b *testing.B)   { concurrently(b); benchBootstrap(b) }

// benchFigure7bRuns exercises the Monte Carlo replication loop that
// cmd/experiments parallelizes across the worker pool.
func benchFigure7bRuns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7b(benchRuns, 3, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7bRunsSequential(b *testing.B) { sequentially(b); benchFigure7bRuns(b) }
func BenchmarkFigure7bRunsParallel(b *testing.B)   { concurrently(b); benchFigure7bRuns(b) }
