// Command drevallint runs the repository's static-analysis suite: five
// stdlib-only analyzers (nondet, floathygiene, ctxdiscipline,
// obshygiene, gosafety) that mechanically enforce the determinism,
// float-hygiene, cancellation and observability invariants the test
// suite pins at runtime. See README "Static analysis".
//
// Usage:
//
//	drevallint [-json] [-checks nondet,obshygiene] [patterns]
//
// Exit code 0 means clean, 1 means findings, 2 means a package failed
// to load (analysis still ran best-effort on what parsed).
package main

import (
	"os"

	"drnet/internal/analysis/lintmain"
)

func main() {
	os.Exit(lintmain.Run(os.Args[1:], os.Stdout, os.Stderr))
}
