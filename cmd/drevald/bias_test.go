package main

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drnet/internal/biasobs"
	"drnet/internal/mathx"
	"drnet/internal/obs"
	"drnet/internal/resilience"
	"drnet/internal/traceio"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// driftTraceJSON builds a trace whose reward steps from 0.2 to 0.9 at
// the midpoint while every overlap diagnostic stays perfect (single
// decision logged with propensity 1, so constant:a gives weight 1
// everywhere): only the drift detector should object.
func driftTraceJSON(n int) []traceio.FlatRecord {
	rng := mathx.NewRNG(21)
	recs := make([]traceio.FlatRecord, n)
	for i := range recs {
		base := 0.2
		if i >= n/2 {
			base = 0.9
		}
		recs[i] = traceio.FlatRecord{
			Features:   []float64{float64(i % 3)},
			Decision:   "a",
			Reward:     base + rng.Normal(0, 0.01),
			Propensity: 1,
		}
	}
	return recs
}

func resetBiasState(t *testing.T) {
	t.Helper()
	prevBias, prevTrace := lastBias.Load(), lastTraceSummary.Load()
	lastBias.Store(nil)
	lastTraceSummary.Store(nil)
	t.Cleanup(func() {
		lastBias.Store(prevBias)
		lastTraceSummary.Store(prevTrace)
	})
}

func TestDebugBiasServesLastReport(t *testing.T) {
	resetBiasState(t)
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	// Before any compute request the endpoint must 404 with a
	// machine-readable error, not an empty report.
	resp, err := http.Get(srv.URL + "/debug/bias")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-request status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	eval := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:a"})
	defer eval.Body.Close()
	if eval.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(eval.Body)
		t.Fatalf("evaluate status %d: %s", eval.StatusCode, body)
	}
	var er evalResponse
	if err := json.NewDecoder(eval.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.TraceHealth == nil {
		t.Fatal("evaluate response missing traceHealth block")
	}
	if er.TraceHealth.Windows != biasWindows {
		t.Fatalf("traceHealth windows = %d, want %d", er.TraceHealth.Windows, biasWindows)
	}
	if er.TraceHealth.Grade == "" {
		t.Fatal("traceHealth grade empty")
	}

	resp, err = http.Get(srv.URL + "/debug/bias")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-request status %d, want 200", resp.StatusCode)
	}
	var br struct {
		RequestID  string                `json:"requestId"`
		AgeSeconds float64               `json:"ageSeconds"`
		N          int                   `json:"n"`
		Grade      string                `json:"grade"`
		Windows    []biasobs.WindowStats `json:"windows"`
		Alarms     []biasobs.Alarm       `json:"alarms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.RequestID == "" || br.N != 400 || br.Grade == "" {
		t.Fatalf("report header off: %+v", br)
	}
	if len(br.Windows) != biasWindows {
		t.Fatalf("got %d windows, want %d", len(br.Windows), biasWindows)
	}
	for _, w := range br.Windows {
		if w.N == 0 {
			t.Fatalf("empty window in report: %+v", w)
		}
	}
}

func TestDiagnoseCarriesTraceHealth(t *testing.T) {
	resetBiasState(t)
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/diagnose", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:a"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dr struct {
		N           int                    `json:"n"`
		TraceHealth *biasobs.HealthSummary `json:"traceHealth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.N != 400 {
		t.Fatalf("diagnostics n = %d, want 400", dr.N)
	}
	if dr.TraceHealth == nil || dr.TraceHealth.Windows != biasWindows {
		t.Fatalf("traceHealth = %+v, want %d windows", dr.TraceHealth, biasWindows)
	}
}

func TestEvaluateDriftDegradesWhenEnabled(t *testing.T) {
	resetBiasState(t)
	prev := degradeOnDrift
	degradeOnDrift = true
	t.Cleanup(func() { degradeOnDrift = prev })

	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{Trace: driftTraceJSON(400), Policy: "constant:a"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.TraceHealth == nil || er.TraceHealth.Grade != biasobs.GradeDrift {
		t.Fatalf("traceHealth = %+v, want drift grade", er.TraceHealth)
	}
	if !er.Degraded {
		t.Fatal("drifting trace not tagged degraded with -degrade-on-drift")
	}
	found := false
	for _, reason := range er.DegradedReasons {
		if reason.Code == resilience.ReasonTraceDrift {
			found = true
		}
	}
	if !found {
		t.Fatalf("no trace_drift reason in %+v", er.DegradedReasons)
	}
	if er.Fallback == nil {
		t.Fatal("degraded response missing fallback estimate")
	}
}

func TestEvaluateDriftNotDegradedByDefault(t *testing.T) {
	resetBiasState(t)
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{Trace: driftTraceJSON(400), Policy: "constant:a"})
	defer resp.Body.Close()
	var er evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	// The alarm is reported but, without -degrade-on-drift, advisory.
	if er.TraceHealth == nil || er.TraceHealth.Alarms == 0 {
		t.Fatalf("traceHealth = %+v, want fired alarms", er.TraceHealth)
	}
	if er.Degraded {
		t.Fatalf("response degraded without -degrade-on-drift: %+v", er.DegradedReasons)
	}
}

func TestHealthzReportsLastTrace(t *testing.T) {
	resetBiasState(t)
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	get := func() healthJSON {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h healthJSON
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	if h := get(); h.LastTrace != nil || h.BiasGrade != "" {
		t.Fatalf("pre-request healthz carries trace state: %+v", h)
	}
	post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:a"}).Body.Close()
	h := get()
	if h.LastTrace == nil {
		t.Fatal("healthz missing lastTrace after evaluate")
	}
	if h.LastTrace.Records != 400 || h.LastTrace.UniqueDecisions != 3 {
		t.Fatalf("lastTrace = %+v, want 400 records / 3 decisions", h.LastTrace)
	}
	if h.BiasGrade == "" {
		t.Fatal("healthz missing biasGrade after evaluate")
	}
}

func TestBiasDisabledHidesSurface(t *testing.T) {
	resetBiasState(t)
	prev := biasWindows
	biasWindows = 0
	t.Cleanup(func() { biasWindows = prev })

	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:a"})
	defer resp.Body.Close()
	var er evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.TraceHealth != nil {
		t.Fatalf("traceHealth present with observatory disabled: %+v", er.TraceHealth)
	}
	br, err := http.Get(srv.URL + "/debug/bias")
	if err != nil {
		t.Fatal(err)
	}
	defer br.Body.Close()
	if br.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/bias status %d with observatory disabled, want 404", br.StatusCode)
	}
}

func TestMetricsExposeBiasAndSinkFamilies(t *testing.T) {
	resetBiasState(t)
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:a"}).Body.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"drevald_bias_reports_total",
		"drevald_bias_alarms_total",
		"drevald_bias_last_grade",
		"drevald_bias_last_min_ess_ratio",
		"drevald_bias_last_max_zero_support",
		"drevald_bias_last_windows",
		"obs_trace_sink_dropped_total",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestOpenMetricsGoldenBiasFamily locks the OpenMetrics exposition of
// the drevald_bias_* family — alongside an exemplar'd histogram — to a
// golden file, so format drift (metadata suffix handling, exemplar
// syntax, EOF terminator) is caught by diff. Regenerate with
// go test ./cmd/drevald -run Golden -args -update.
func TestOpenMetricsGoldenBiasFamily(t *testing.T) {
	r := obs.NewRegistry()
	m := registerBiasMetrics(r)
	m.reports.Add(3)
	m.alarms.Add(2)
	m.grade.Set(2)
	m.minESS.Set(0.8125)
	m.maxZero.Set(0.25)
	m.windows.Set(8)
	r.Help("drevald_eval_ess_ratio", "ESS/N of the importance weights per /evaluate request.")
	h := r.Histogram("drevald_eval_ess_ratio", obs.ExpBuckets(0.25, 2, 3))
	h.ObserveExemplar(0.4375, "req-0042")
	h.Observe(0.9)

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "bias_openmetrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -args -update)", err)
	}
	if b.String() != string(want) {
		t.Fatalf("OpenMetrics exposition drifted from golden.\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}
