// Command drevald serves trace-driven policy evaluation over HTTP, so
// measurement pipelines can POST logged traces and receive DM/IPS/DR
// estimates with diagnostics — the paper's Figure 1 evaluator as a
// network service.
//
// Endpoints:
//
//	GET  /healthz    liveness probe
//	POST /diagnose   {trace, policy} → overlap diagnostics
//	POST /evaluate   {trace, policy, options} → DM/IPS/DR estimates,
//	                 diagnostics and an optional bootstrap CI
//
// Request schema (JSON):
//
//	{
//	  "trace":  [{"features":[...], "decision":"d", "reward":r,
//	              "propensity":p}, ...],
//	  "policy": "constant:<decision>" | "best-observed",
//	  "options": {"clip":0, "selfNormalize":false,
//	              "estimatePropensities":false, "bootstrap":200,
//	              "seed":1}
//	}
//
// Usage:
//
//	drevald [-addr :8080] [-workers 0]
//
// Requests are served concurrently by net/http; within each request the
// bootstrap resamples run on a shared worker pool -workers wide (0 =
// GOMAXPROCS). Bootstrap intervals are computed with one independent
// PCG stream per resample derived from options.seed, so responses are
// bit-identical at every worker count. The server drains in-flight
// requests on SIGINT or SIGTERM before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drnet/internal/core"
	"drnet/internal/parallel"
	"drnet/internal/traceio"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool width for per-request bootstrap resampling (0 = GOMAXPROCS)")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	srv, err := newServer(*addr)
	if err != nil {
		log.Fatalf("drevald: %v", err)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	log.Printf("drevald listening on %s", srv.addr())
	if err := srv.run(stop); err != nil {
		log.Fatalf("drevald: %v", err)
	}
}

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

// server bundles the HTTP server with its listener so tests can bind
// to :0 and drive the full serve/shutdown lifecycle in-process.
type server struct {
	srv *http.Server
	ln  net.Listener
}

func newServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &server{
		srv: &http.Server{
			Handler:           newMux(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      60 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		ln: ln,
	}, nil
}

func (s *server) addr() string { return s.ln.Addr().String() }

// run serves until stop delivers a signal (SIGINT or SIGTERM in
// production), then shuts down gracefully: the listener closes
// immediately and in-flight requests get up to drainTimeout to finish.
func (s *server) run(stop <-chan os.Signal) error {
	serveErr := make(chan error, 1)
	go func() {
		if err := s.srv.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()
	select {
	case <-stop:
	case err := <-serveErr:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// newMux wires the service handlers; separated from main for testing.
func newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("POST /diagnose", handleDiagnose)
	mux.HandleFunc("POST /evaluate", handleEvaluate)
	return mux
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// evalOptions mirrors the request "options" object.
type evalOptions struct {
	Clip                 float64 `json:"clip"`
	SelfNormalize        bool    `json:"selfNormalize"`
	EstimatePropensities bool    `json:"estimatePropensities"`
	Bootstrap            int     `json:"bootstrap"`
	Seed                 int64   `json:"seed"`
}

// evalRequest is the request body of /evaluate and /diagnose.
type evalRequest struct {
	Trace   []traceio.FlatRecord `json:"trace"`
	Policy  string               `json:"policy"`
	Options evalOptions          `json:"options"`
}

// estimateJSON serializes a core.Estimate.
type estimateJSON struct {
	Value     float64 `json:"value"`
	StdErr    float64 `json:"stdErr"`
	N         int     `json:"n"`
	ESS       float64 `json:"ess"`
	MaxWeight float64 `json:"maxWeight"`
}

func toJSON(e core.Estimate) estimateJSON {
	return estimateJSON{Value: e.Value, StdErr: e.StdErr, N: e.N, ESS: e.ESS, MaxWeight: e.MaxWeight}
}

// diagnosticsJSON serializes core.Diagnostics.
type diagnosticsJSON struct {
	N             int     `json:"n"`
	ESS           float64 `json:"ess"`
	MatchRate     float64 `json:"matchRate"`
	MeanWeight    float64 `json:"meanWeight"`
	MaxWeight     float64 `json:"maxWeight"`
	ZeroSupport   int     `json:"zeroSupport"`
	MinPropensity float64 `json:"minPropensity"`
}

// evalResponse is the response body of /evaluate.
type evalResponse struct {
	DM          estimateJSON    `json:"dm"`
	IPS         estimateJSON    `json:"ips"`
	DR          estimateJSON    `json:"dr"`
	Diagnostics diagnosticsJSON `json:"diagnostics"`
	DRInterval  *struct {
		Lo, Hi, Level float64
	} `json:"drInterval,omitempty"`
}

// maxBodyBytes bounds request bodies (64 MiB).
const maxBodyBytes = 64 << 20

// parseEvalRequest decodes and validates an /evaluate or /diagnose
// request body. It is independent of net/http so the fuzz harness can
// drive it with arbitrary bytes: malformed input must produce an error,
// never a panic.
func parseEvalRequest(body io.Reader) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], error) {
	var req evalRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, fmt.Errorf("invalid request body: %v", err)
	}
	if len(req.Trace) == 0 {
		return nil, nil, nil, errors.New("empty trace")
	}
	trace := traceio.ToCore(traceio.FlatTrace{Records: req.Trace})
	if req.Options.EstimatePropensities {
		if err := core.EstimatePropensities(trace, func(c traceio.FlatContext) string {
			return c.Key()
		}, 5, 1e-3); err != nil {
			return nil, nil, nil, fmt.Errorf("propensity estimation: %v", err)
		}
	}
	if err := trace.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("%v (set options.estimatePropensities if the trace has none)", err)
	}
	policy, err := traceio.ParsePolicy(req.Policy, trace)
	if err != nil {
		return nil, nil, nil, err
	}
	return &req, trace, policy, nil
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], bool) {
	req, trace, policy, err := parseEvalRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil, nil, false
	}
	return req, trace, policy, true
}

func handleDiagnose(w http.ResponseWriter, r *http.Request) {
	_, trace, policy, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	diag, err := core.Diagnose(trace, policy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, diagJSON(diag))
}

func handleEvaluate(w http.ResponseWriter, r *http.Request) {
	req, trace, policy, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	diag, err := core.Diagnose(trace, policy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	model := core.FitTable(trace, func(c traceio.FlatContext, d string) string {
		return c.Key() + "|" + d
	})
	dm, err := core.DirectMethod(trace, policy, model)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	ips, err := core.IPS(trace, policy, core.IPSOptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	dr, err := core.DoublyRobust(trace, policy, model, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := evalResponse{DM: toJSON(dm), IPS: toJSON(ips), DR: toJSON(dr), Diagnostics: diagJSON(diag)}
	if b := req.Options.Bootstrap; b > 0 {
		seed := req.Options.Seed
		if seed == 0 {
			seed = 1
		}
		// Sharded bootstrap: resamples run on the worker pool, one PCG
		// stream per resample, so the interval depends only on the seed.
		ci, err := core.BootstrapSeeded(trace, func(t core.Trace[traceio.FlatContext, string]) (core.Estimate, error) {
			m := core.FitTable(t, func(c traceio.FlatContext, d string) string { return c.Key() + "|" + d })
			return core.DoublyRobust(t, policy, m, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
		}, seed, b, 0.95)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		resp.DRInterval = &struct{ Lo, Hi, Level float64 }{ci.Lo, ci.Hi, ci.Level}
	}
	writeJSON(w, resp)
}

func diagJSON(d core.Diagnostics) diagnosticsJSON {
	return diagnosticsJSON{
		N: d.N, ESS: d.ESS, MatchRate: d.MatchRate, MeanWeight: d.MeanWeight,
		MaxWeight: d.MaxWeight, ZeroSupport: d.ZeroSupport, MinPropensity: d.MinPropensity,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("drevald: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
