// Command drevald serves trace-driven policy evaluation over HTTP, so
// measurement pipelines can POST logged traces and receive DM/IPS/DR
// estimates with diagnostics — the paper's Figure 1 evaluator as a
// network service.
//
// Endpoints:
//
//	GET  /healthz    liveness probe
//	POST /diagnose   {trace, policy} → overlap diagnostics
//	POST /evaluate   {trace, policy, options} → DM/IPS/DR estimates,
//	                 diagnostics and an optional bootstrap CI
//
// Request schema (JSON):
//
//	{
//	  "trace":  [{"features":[...], "decision":"d", "reward":r,
//	              "propensity":p}, ...],
//	  "policy": "constant:<decision>" | "best-observed",
//	  "options": {"clip":0, "selfNormalize":false,
//	              "estimatePropensities":false, "bootstrap":200,
//	              "seed":1}
//	}
//
// Usage:
//
//	drevald [-addr :8080]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/traceio"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("drevald listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("drevald: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drevald: shutdown: %v", err)
	}
}

// newMux wires the service handlers; separated from main for testing.
func newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("POST /diagnose", handleDiagnose)
	mux.HandleFunc("POST /evaluate", handleEvaluate)
	return mux
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// evalOptions mirrors the request "options" object.
type evalOptions struct {
	Clip                 float64 `json:"clip"`
	SelfNormalize        bool    `json:"selfNormalize"`
	EstimatePropensities bool    `json:"estimatePropensities"`
	Bootstrap            int     `json:"bootstrap"`
	Seed                 int64   `json:"seed"`
}

// evalRequest is the request body of /evaluate and /diagnose.
type evalRequest struct {
	Trace   []traceio.FlatRecord `json:"trace"`
	Policy  string               `json:"policy"`
	Options evalOptions          `json:"options"`
}

// estimateJSON serializes a core.Estimate.
type estimateJSON struct {
	Value     float64 `json:"value"`
	StdErr    float64 `json:"stdErr"`
	N         int     `json:"n"`
	ESS       float64 `json:"ess"`
	MaxWeight float64 `json:"maxWeight"`
}

func toJSON(e core.Estimate) estimateJSON {
	return estimateJSON{Value: e.Value, StdErr: e.StdErr, N: e.N, ESS: e.ESS, MaxWeight: e.MaxWeight}
}

// diagnosticsJSON serializes core.Diagnostics.
type diagnosticsJSON struct {
	N             int     `json:"n"`
	ESS           float64 `json:"ess"`
	MatchRate     float64 `json:"matchRate"`
	MeanWeight    float64 `json:"meanWeight"`
	MaxWeight     float64 `json:"maxWeight"`
	ZeroSupport   int     `json:"zeroSupport"`
	MinPropensity float64 `json:"minPropensity"`
}

// evalResponse is the response body of /evaluate.
type evalResponse struct {
	DM          estimateJSON    `json:"dm"`
	IPS         estimateJSON    `json:"ips"`
	DR          estimateJSON    `json:"dr"`
	Diagnostics diagnosticsJSON `json:"diagnostics"`
	DRInterval  *struct {
		Lo, Hi, Level float64
	} `json:"drInterval,omitempty"`
}

// maxBodyBytes bounds request bodies (64 MiB).
const maxBodyBytes = 64 << 20

func decodeRequest(w http.ResponseWriter, r *http.Request) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], bool) {
	var req evalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err))
		return nil, nil, nil, false
	}
	if len(req.Trace) == 0 {
		httpError(w, http.StatusBadRequest, "empty trace")
		return nil, nil, nil, false
	}
	trace := traceio.ToCore(traceio.FlatTrace{Records: req.Trace})
	if req.Options.EstimatePropensities {
		if err := core.EstimatePropensities(trace, func(c traceio.FlatContext) string {
			return c.Key()
		}, 5, 1e-3); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("propensity estimation: %v", err))
			return nil, nil, nil, false
		}
	}
	if err := trace.Validate(); err != nil {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("%v (set options.estimatePropensities if the trace has none)", err))
		return nil, nil, nil, false
	}
	policy, err := traceio.ParsePolicy(req.Policy, trace)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil, nil, false
	}
	return &req, trace, policy, true
}

func handleDiagnose(w http.ResponseWriter, r *http.Request) {
	_, trace, policy, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	diag, err := core.Diagnose(trace, policy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, diagJSON(diag))
}

func handleEvaluate(w http.ResponseWriter, r *http.Request) {
	req, trace, policy, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	diag, err := core.Diagnose(trace, policy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	model := core.FitTable(trace, func(c traceio.FlatContext, d string) string {
		return c.Key() + "|" + d
	})
	dm, err := core.DirectMethod(trace, policy, model)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	ips, err := core.IPS(trace, policy, core.IPSOptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	dr, err := core.DoublyRobust(trace, policy, model, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := evalResponse{DM: toJSON(dm), IPS: toJSON(ips), DR: toJSON(dr), Diagnostics: diagJSON(diag)}
	if b := req.Options.Bootstrap; b > 0 {
		seed := req.Options.Seed
		if seed == 0 {
			seed = 1
		}
		rng := mathx.NewRNG(seed)
		ci, err := core.Bootstrap(trace, func(t core.Trace[traceio.FlatContext, string]) (core.Estimate, error) {
			m := core.FitTable(t, func(c traceio.FlatContext, d string) string { return c.Key() + "|" + d })
			return core.DoublyRobust(t, policy, m, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
		}, rng, b, 0.95)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		resp.DRInterval = &struct{ Lo, Hi, Level float64 }{ci.Lo, ci.Hi, ci.Level}
	}
	writeJSON(w, resp)
}

func diagJSON(d core.Diagnostics) diagnosticsJSON {
	return diagnosticsJSON{
		N: d.N, ESS: d.ESS, MatchRate: d.MatchRate, MeanWeight: d.MeanWeight,
		MaxWeight: d.MaxWeight, ZeroSupport: d.ZeroSupport, MinPropensity: d.MinPropensity,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("drevald: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
