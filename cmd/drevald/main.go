// Command drevald serves trace-driven policy evaluation over HTTP, so
// measurement pipelines can POST logged traces and receive DM/IPS/DR
// estimates with diagnostics — the paper's Figure 1 evaluator as a
// network service.
//
// Endpoints:
//
//	GET  /healthz     liveness probe: {status, uptimeSeconds, version}
//	POST /diagnose    {trace, policy} → overlap diagnostics
//	POST /evaluate    {trace, policy, options} → DM/IPS/DR estimates,
//	                  diagnostics and an optional bootstrap CI
//	GET  /metrics     Prometheus text exposition (request, estimator
//	                  regime, Go runtime and worker-pool metrics)
//	GET  /debug/vars  JSON metric snapshot + process vitals
//	GET  /debug/traces?n=10  the n slowest recent requests as
//	                  parent→child span timelines (JSON)
//
// With -debug-addr set, a second listener additionally serves
// net/http/pprof under /debug/pprof/ (plus /metrics and /debug/vars),
// kept off the service port so profiling is opt-in.
//
// Every response carries an X-Request-Id (generated when the client
// does not send one), which also keys the structured access logs on
// stderr.
//
// Request schema (JSON):
//
//	{
//	  "trace":  [{"features":[...], "decision":"d", "reward":r,
//	              "propensity":p}, ...],
//	  "policy": "constant:<decision>" | "best-observed",
//	  "options": {"clip":0, "selfNormalize":false,
//	              "estimatePropensities":false, "bootstrap":200,
//	              "seed":1}
//	}
//
// Usage:
//
//	drevald [-addr :8080] [-workers 0] [-debug-addr ""] [-log-level info]
//	        [-trace-out spans.jsonl] [-trace-buffer 512]
//
// Compute requests (/evaluate, /diagnose) are traced: the root span's
// trace ID is the request's X-Request-Id and each evaluation phase
// (diagnose, model fit, DM/IPS/DR, bootstrap) is a child span. The
// most recent -trace-buffer completed spans are queryable via
// /debug/traces; -trace-out additionally appends every completed span
// to a JSONL file.
//
// Requests are served concurrently by net/http; within each request the
// bootstrap resamples run on a shared worker pool -workers wide (0 =
// GOMAXPROCS). Bootstrap intervals are computed with one independent
// PCG stream per resample derived from options.seed, so responses are
// bit-identical at every worker count. The server drains in-flight
// requests on SIGINT or SIGTERM before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drnet/internal/biasobs"
	"drnet/internal/core"
	"drnet/internal/obs"
	"drnet/internal/parallel"
	"drnet/internal/resilience"
	"drnet/internal/slo"
	"drnet/internal/traceio"
	"drnet/internal/walog"
	"drnet/internal/wideevent"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool width for per-request bootstrap resampling (0 = GOMAXPROCS)")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for /debug/pprof, /metrics and /debug/vars (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	reqTimeout := flag.Duration("request-timeout", requestTimeout, "per-request deadline for /evaluate and /diagnose; the bootstrap stops scheduling work once it expires (0 = no deadline)")
	drain := flag.Duration("drain-timeout", drainTimeout, "how long shutdown waits for in-flight requests to finish (must be > 0)")
	maxConcurrent := flag.Int("max-concurrent", 64, "maximum /evaluate and /diagnose requests computing at once (must be >= 1)")
	maxQueue := flag.Int("max-queue", 256, "requests allowed to wait for a compute slot before the server sheds with 429 (0 = no queue)")
	essFloor := flag.Float64("ess-ratio-floor", degradeThresholds.ESSRatioFloor, "degrade /evaluate responses when ESS/N falls below this (0 = disabled)")
	weightCeiling := flag.Float64("max-weight-ceiling", degradeThresholds.MaxWeightCeiling, "degrade /evaluate responses when the largest importance weight exceeds this (0 = disabled)")
	zeroCap := flag.Float64("zero-support-cap", degradeThresholds.ZeroSupportCap, "degrade /evaluate responses when the zero-support record fraction exceeds this (0 = disabled)")
	fbClip := flag.Float64("fallback-clip", fallbackClip, "importance-weight clip of the degraded-mode fallback estimator (must be > 0)")
	bWindows := flag.Int("bias-windows", biasWindows, "windows the bias observatory slices each request's trace into (0 = observatory disabled)")
	bDrift := flag.Float64("bias-drift-threshold", biasDriftThreshold, "CUSUM decision threshold in sigma units for the observatory's drift alarms (must be > 0)")
	degradeDrift := flag.Bool("degrade-on-drift", degradeOnDrift, "tag /evaluate responses degraded with a trace_drift reason when a drift alarm fires")
	traceOut := flag.String("trace-out", "", "append every completed span as one JSON line (JSONL) to this file (empty = disabled)")
	traceBuffer := flag.Int("trace-buffer", traceRecorder.Capacity(), "completed spans kept in memory for /debug/traces (must be >= 1)")
	walDir := flag.String("wal-dir", "", "directory for the streaming write-ahead log; enables POST /ingest and aggregate-served /evaluate (empty = streaming disabled)")
	fsync := flag.String("fsync", "always", "WAL durability point: always (ack == durable), interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background sync period under -fsync interval (must be > 0)")
	segmentBytes := flag.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold in bytes")
	ingestMax := flag.Int64("ingest-max-bytes", ingestMaxBytes, "maximum /ingest body size in bytes (must be >= 1)")
	ingestConcurrent := flag.Int("ingest-max-concurrent", 16, "maximum /ingest batches applying at once (must be >= 1)")
	ingestQueue := flag.Int("ingest-max-queue", 64, "ingest batches allowed to wait before 429 (0 = no queue)")
	maxModelAge := flag.Uint64("max-model-age", 0, "degrade streamed responses whose reward model is more than this many records behind the live epoch (0 = never)")
	biasRefresh := flag.Int("bias-refresh", 0, "rerun the bias observatory over the streamed view every this many ingested records (0 = disabled)")
	eventsBuffer := flag.Int("events-buffer", eventJournal.Capacity(), "wide events retained in memory for /debug/events (must be >= 1)")
	eventsSample := flag.Float64("events-sample", 1, "fraction of healthy wide events retained; error, degraded and slow events are always kept (must be in [0, 1])")
	eventsSlowMs := flag.Float64("events-slow-ms", 250, "wide events at least this slow are always retained regardless of -events-sample (0 = disabled)")
	eventsSeed := flag.Uint64("events-seed", 1, "seed of the deterministic healthy-event sampler")
	eventsOut := flag.String("events-out", "", "append every retained wide event as one JSON line (JSONL) to this file (empty = disabled)")
	sloConfig := flag.String("slo-config", "", "JSON file declaring the SLO objectives and burn-rate windows (empty = built-in defaults)")
	degradeSLOPage := flag.Bool("degrade-on-slo-page", degradeOnSLOPage, "tag /evaluate responses degraded with an slo_burn reason while any objective burns at page severity")
	flag.Parse()
	if *drain <= 0 {
		log.Fatalf("drevald: -drain-timeout must be > 0, got %v", *drain)
	}
	if *reqTimeout < 0 {
		log.Fatalf("drevald: -request-timeout must be >= 0, got %v", *reqTimeout)
	}
	if *maxConcurrent < 1 {
		log.Fatalf("drevald: -max-concurrent must be >= 1, got %d", *maxConcurrent)
	}
	if *maxQueue < 0 {
		log.Fatalf("drevald: -max-queue must be >= 0, got %d", *maxQueue)
	}
	if *essFloor < 0 || *weightCeiling < 0 || *zeroCap < 0 {
		log.Fatalf("drevald: degradation thresholds must be >= 0")
	}
	if *fbClip <= 0 {
		log.Fatalf("drevald: -fallback-clip must be > 0, got %g", *fbClip)
	}
	requestTimeout = *reqTimeout
	drainTimeout = *drain
	evalLimiter = resilience.NewLimiter(*maxConcurrent, *maxQueue)
	degradeThresholds = resilience.Thresholds{
		ESSRatioFloor:    *essFloor,
		MaxWeightCeiling: *weightCeiling,
		ZeroSupportCap:   *zeroCap,
	}
	fallbackClip = *fbClip
	if *bWindows < 0 {
		log.Fatalf("drevald: -bias-windows must be >= 0, got %d", *bWindows)
	}
	if *bDrift <= 0 {
		log.Fatalf("drevald: -bias-drift-threshold must be > 0, got %g", *bDrift)
	}
	biasWindows = *bWindows
	biasDriftThreshold = *bDrift
	degradeOnDrift = *degradeDrift
	if *eventsBuffer < 1 {
		log.Fatalf("drevald: -events-buffer must be >= 1, got %d", *eventsBuffer)
	}
	if *eventsSample < 0 || *eventsSample > 1 {
		log.Fatalf("drevald: -events-sample must be in [0, 1], got %g", *eventsSample)
	}
	if *eventsSlowMs < 0 {
		log.Fatalf("drevald: -events-slow-ms must be >= 0, got %g", *eventsSlowMs)
	}
	eventJournal = newEventJournal(wideevent.Options{
		Capacity:   *eventsBuffer,
		SampleRate: *eventsSample,
		SlowMs:     *eventsSlowMs,
		Seed:       *eventsSeed,
	})
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("drevald: -events-out: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				srvLog.Error("events-out close failed", "path", *eventsOut, "err", err)
			}
		}()
		eventJournal.SetSink(func(line []byte) { _, _ = f.Write(line) })
		// LIFO: flush the sink's drainer before the file closes.
		defer eventJournal.SetSink(nil)
	}
	if *sloConfig != "" {
		doc, err := os.ReadFile(*sloConfig)
		if err != nil {
			log.Fatalf("drevald: -slo-config: %v", err)
		}
		cfg, err := slo.Parse(doc)
		if err != nil {
			log.Fatalf("drevald: -slo-config: %v", err)
		}
		eng, err := newSLOEngine(cfg)
		if err != nil {
			log.Fatalf("drevald: -slo-config: %v", err)
		}
		sloEngine = eng
	}
	degradeOnSLOPage = *degradeSLOPage
	if *traceBuffer < 1 {
		log.Fatalf("drevald: -trace-buffer must be >= 1, got %d", *traceBuffer)
	}
	if *traceBuffer != traceRecorder.Capacity() {
		traceRecorder = obs.NewTraceRecorder(*traceBuffer)
		obs.Default.SetTraceRecorder(traceRecorder)
	}
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("drevald: -trace-out: %v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				srvLog.Error("trace-out close failed", "path", *traceOut, "err", err)
			}
		}()
		traceRecorder.SetSink(func(line []byte) { _, _ = f.Write(line) })
		// LIFO: flush the sink's drainer before the file closes.
		defer traceRecorder.SetSink(nil)
	}
	parallel.SetDefaultWorkers(*workers)
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("drevald: %v", err)
	}
	srvLog.SetLevel(level)

	if *walDir != "" {
		policy, err := walog.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("drevald: -fsync: %v", err)
		}
		if *ingestMax < 1 {
			log.Fatalf("drevald: -ingest-max-bytes must be >= 1, got %d", *ingestMax)
		}
		if *ingestConcurrent < 1 {
			log.Fatalf("drevald: -ingest-max-concurrent must be >= 1, got %d", *ingestConcurrent)
		}
		if *ingestQueue < 0 {
			log.Fatalf("drevald: -ingest-max-queue must be >= 0, got %d", *ingestQueue)
		}
		if *biasRefresh < 0 {
			log.Fatalf("drevald: -bias-refresh must be >= 0, got %d", *biasRefresh)
		}
		ingestMaxBytes = *ingestMax
		ingestLimiter = resilience.NewLimiter(*ingestConcurrent, *ingestQueue)
		eng, err := newStreamEngine(streamConfig{
			Dir:           *walDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SegmentBytes:  *segmentBytes,
			MaxModelAge:   *maxModelAge,
			BiasRefresh:   *biasRefresh,
		})
		if err != nil {
			log.Fatalf("drevald: %v", err)
		}
		streamEng = eng
		defer func() {
			if err := eng.close(); err != nil {
				srvLog.Error("wal close failed", "err", err)
			}
		}()
		srvLog.Info("wal opened", "dir", *walDir, "fsync", policy.String(),
			"segments", eng.recovery.Segments, "frames", eng.recovery.Frames,
			"truncatedBytes", eng.recovery.TruncatedBytes, "manifestOK", eng.recovery.ManifestOK)
		// Replay runs in the background: the server accepts traffic
		// immediately and streaming endpoints answer 503 until the
		// recovered state is complete.
		go func() {
			defer recoverGoroutine("wal-replay")
			eng.replay()
		}()
	}

	srv, err := newServer(*addr)
	if err != nil {
		log.Fatalf("drevald: %v", err)
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("drevald: debug listener: %v", err)
		}
		go func() {
			defer recoverGoroutine("debug-listener")
			if err := http.Serve(ln, newDebugMux()); err != nil && !errors.Is(err, http.ErrServerClosed) {
				srvLog.Error("debug listener failed", "err", err)
			}
		}()
		srvLog.Info("debug listener up", "addr", ln.Addr().String())
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	srvLog.Info("drevald listening", "addr", srv.addr(), "version", obs.Version(), "workers", parallel.DefaultWorkers())
	if err := srv.run(stop); err != nil {
		log.Fatalf("drevald: %v", err)
	}
}

// Resilience knobs, all flag-configurable in main. They are package
// variables so the lifecycle tests can tighten them; production code
// sets them once before serving and never mutates them mid-flight.
var (
	// drainTimeout bounds how long shutdown waits for in-flight
	// requests (-drain-timeout, surfaced in /healthz).
	drainTimeout = 10 * time.Second
	// requestTimeout is the per-request compute deadline for /evaluate
	// and /diagnose (-request-timeout, 0 disables). When it expires the
	// bootstrap stops scheduling new resamples and the handler answers
	// 503 with {"timeout":true}.
	requestTimeout = 60 * time.Second
	// evalLimiter admits /evaluate and /diagnose work: up to
	// -max-concurrent requests compute while -max-queue more wait;
	// beyond that the server sheds with 429 + Retry-After.
	evalLimiter = resilience.NewLimiter(64, 256)
	// degradeThresholds decide when an /evaluate response is tagged
	// degraded and carries a fallback estimate.
	degradeThresholds = resilience.DefaultThresholds()
	// fallbackClip is the weight clip of the degraded-mode fallback
	// estimator (clipped self-normalized IPS).
	fallbackClip = 10.0
	// maxBootstrapResamples caps options.bootstrap so one request
	// cannot monopolize the pool indefinitely.
	maxBootstrapResamples = 10000
)

// server bundles the HTTP server with its listener so tests can bind
// to :0 and drive the full serve/shutdown lifecycle in-process.
type server struct {
	srv *http.Server
	ln  net.Listener
}

func newServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &server{
		srv: &http.Server{
			Handler:           newMux(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      60 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		ln: ln,
	}, nil
}

func (s *server) addr() string { return s.ln.Addr().String() }

// run serves until stop delivers a signal (SIGINT or SIGTERM in
// production), then shuts down gracefully: the listener closes
// immediately and in-flight requests get up to drainTimeout to finish.
func (s *server) run(stop <-chan os.Signal) error {
	serveErr := make(chan error, 1)
	go func() {
		defer recoverGoroutine("serve")
		if err := s.srv.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()
	select {
	case <-stop:
	case err := <-serveErr:
		return err
	}
	// The drain deadline is anchored to process shutdown, not to any
	// request, so Background is the right parent here.
	//lint:allow ctxdiscipline shutdown drain has no request context to inherit
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// newMux wires the service handlers — each behind the instrument
// middleware (request IDs, per-route metrics, access logs) — plus the
// observability endpoints; separated from main for testing.
func newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", instrument("/healthz", handleHealthz))
	mux.Handle("POST /diagnose", instrument("/diagnose", limited("/diagnose", handleDiagnose)))
	mux.Handle("POST /evaluate", instrument("/evaluate", limited("/evaluate", handleEvaluate)))
	mux.Handle("POST /ingest", instrument("/ingest", limitedBy(ingestLimiterFn, "/ingest", handleIngest)))
	mux.Handle("GET /metrics", instrument("/metrics", handleMetrics))
	mux.Handle("GET /debug/vars", instrument("/debug/vars", handleVars))
	mux.Handle("GET /debug/traces", instrument("/debug/traces", handleTraces))
	mux.Handle("GET /debug/bias", instrument("/debug/bias", handleBias))
	mux.Handle("GET /debug/events", instrument("/debug/events", handleEvents))
	mux.Handle("GET /debug/slo", instrument("/debug/slo", handleSLO))
	return mux
}

// healthJSON is the /healthz response body. The timeout fields surface
// the server's resilience configuration so orchestrators can size their
// own probe budgets (e.g. terminationGracePeriod > drainTimeout).
type healthJSON struct {
	Status                string  `json:"status"`
	UptimeSeconds         float64 `json:"uptimeSeconds"`
	Version               string  `json:"version"`
	DrainTimeoutSeconds   float64 `json:"drainTimeoutSeconds"`
	RequestTimeoutSeconds float64 `json:"requestTimeoutSeconds"`
	// LastTrace describes the most recent trace view the server built
	// (absent until the first /evaluate or /diagnose request), so
	// operators can confirm what drevald actually evaluated. BiasGrade
	// is the most recent bias-observatory verdict, when one exists.
	LastTrace *lastTraceJSON `json:"lastTrace,omitempty"`
	BiasGrade string         `json:"biasGrade,omitempty"`
	// WAL reports the streaming engine's state (epoch, replay progress,
	// segment footprint). Absent when -wal-dir is unset.
	WAL *walJSON `json:"wal,omitempty"`
	// Events is the wide-event journal's counter block (emitted,
	// recorded, sampled out, sink drops), so probes can watch journal
	// health without querying /debug/events.
	Events *wideevent.Stats `json:"events,omitempty"`
	// SLO is the burn-rate rollup grade — the worst objective's alert
	// state ("ok", "warning" or "page") at probe time.
	SLO string `json:"slo,omitempty"`
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := healthJSON{
		Status:                "ok",
		UptimeSeconds:         time.Since(serverStart).Seconds(),
		Version:               obs.Version(),
		DrainTimeoutSeconds:   drainTimeout.Seconds(),
		RequestTimeoutSeconds: requestTimeout.Seconds(),
	}
	if ts := lastTraceSummary.Load(); ts != nil {
		h.LastTrace = &lastTraceJSON{
			Records:          ts.records,
			UniqueContexts:   ts.contexts,
			UniqueDecisions:  ts.decisions,
			ViewBuildSeconds: ts.buildSeconds,
			AgeSeconds:       time.Since(ts.when).Seconds(),
		}
	}
	if st := lastBias.Load(); st != nil {
		h.BiasGrade = st.report.Grade
	}
	if eng := streamEng; eng != nil {
		h.WAL = eng.status()
	}
	st := eventJournal.Stats()
	h.Events = &st
	h.SLO = sloEngine.Eval().State
	writeJSON(w, h)
}

// evalOptions mirrors the request "options" object.
type evalOptions struct {
	Clip                 float64 `json:"clip"`
	SelfNormalize        bool    `json:"selfNormalize"`
	EstimatePropensities bool    `json:"estimatePropensities"`
	Bootstrap            int     `json:"bootstrap"`
	Seed                 int64   `json:"seed"`
	// RefreshModel (streamed evaluation only) re-registers the policy
	// fingerprint: the reward model is refit at the current epoch, so
	// the response's staleness resets to zero.
	RefreshModel bool `json:"refreshModel"`
}

// evalRequest is the request body of /evaluate and /diagnose.
type evalRequest struct {
	Trace   []traceio.FlatRecord `json:"trace"`
	Policy  string               `json:"policy"`
	Options evalOptions          `json:"options"`
}

// estimateJSON serializes a core.Estimate.
type estimateJSON struct {
	Value     float64 `json:"value"`
	StdErr    float64 `json:"stdErr"`
	N         int     `json:"n"`
	ESS       float64 `json:"ess"`
	MaxWeight float64 `json:"maxWeight"`
}

func toJSON(e core.Estimate) estimateJSON {
	return estimateJSON{Value: e.Value, StdErr: e.StdErr, N: e.N, ESS: e.ESS, MaxWeight: e.MaxWeight}
}

// diagnosticsJSON serializes core.Diagnostics.
type diagnosticsJSON struct {
	N             int     `json:"n"`
	ESS           float64 `json:"ess"`
	MatchRate     float64 `json:"matchRate"`
	MeanWeight    float64 `json:"meanWeight"`
	MaxWeight     float64 `json:"maxWeight"`
	ZeroSupport   int     `json:"zeroSupport"`
	MinPropensity float64 `json:"minPropensity"`
}

// intervalJSON serializes a core.Interval with camelCase keys, matching
// every other field in the response.
type intervalJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

// evalResponse is the response body of /evaluate. BootstrapSkipped is
// present whenever a bootstrap ran: it counts resamples the estimator
// failed on (and which the interval therefore excludes), so clients can
// tell a fragile CI from a solid one.
type evalResponse struct {
	DM          estimateJSON    `json:"dm"`
	IPS         estimateJSON    `json:"ips"`
	DR          estimateJSON    `json:"dr"`
	Diagnostics diagnosticsJSON `json:"diagnostics"`
	// TraceHealth is the bias observatory's compact verdict on the
	// request's trace (windowed ESS/zero-support extremes, drift alarm
	// count, overall grade). Absent when -bias-windows is 0.
	TraceHealth      *biasobs.HealthSummary `json:"traceHealth,omitempty"`
	DRInterval       *intervalJSON          `json:"drInterval,omitempty"`
	BootstrapSkipped *int                   `json:"bootstrapSkipped,omitempty"`
	// Degraded is true when the trace's overlap diagnostics crossed a
	// configured threshold (see -ess-ratio-floor and friends): the
	// requested estimates are still returned, but DegradedReasons says
	// which diagnostics failed and Fallback carries a variance-robust
	// alternative (clipped self-normalized IPS). Clients should prefer
	// Fallback — or collect a better trace — when Degraded is set.
	Degraded        bool                `json:"degraded"`
	DegradedReasons []resilience.Reason `json:"degradedReasons,omitempty"`
	// FallbackEstimator is the canonical name of the fallback estimate
	// below ("snips-clip" batch, "snips-stream" streamed) — the single
	// field clients, the wide-event journal and the SLO classifiers all
	// read, so the name can never diverge between surfaces.
	FallbackEstimator string        `json:"fallbackEstimator,omitempty"`
	Fallback          *fallbackJSON `json:"fallback,omitempty"`
	// Stream is present iff the response was served from streaming
	// aggregates (empty trace + -wal-dir): which fingerprint answered,
	// the live epoch, and how stale the frozen reward model is.
	Stream *streamMetaJSON `json:"stream,omitempty"`
}

// fallbackJSON is the degraded-mode alternative estimate.
type fallbackJSON struct {
	// Estimator names the fallback ("snips-clip": self-normalized IPS
	// with weights clipped at -fallback-clip).
	Estimator string       `json:"estimator"`
	Estimate  estimateJSON `json:"estimate"`
}

// maxBodyBytes bounds request bodies (64 MiB). A variable so tests can
// lower it to exercise the 413 path without a 64 MiB payload.
var maxBodyBytes int64 = 64 << 20

// parseEvalRequest decodes and validates an /evaluate or /diagnose
// request body. It is independent of net/http so the fuzz harness can
// drive it with arbitrary bytes: malformed input must produce an error,
// never a panic.
func parseEvalRequest(body io.Reader) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], error) {
	req, err := decodeEvalBody(body)
	if err != nil {
		return nil, nil, nil, err
	}
	trace, policy, err := buildEvalInputs(req)
	if err != nil {
		return nil, nil, nil, err
	}
	return req, trace, policy, nil
}

// decodeEvalBody is the pure JSON step of parseEvalRequest, split out
// so the handlers can branch to streamed evaluation (empty trace + an
// active engine) before batch validation rejects the empty trace.
func decodeEvalBody(body io.Reader) (*evalRequest, error) {
	var req evalRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// %w so decodeRequest can distinguish an oversized body
		// (*http.MaxBytesError → 413) from plain bad JSON (400).
		return nil, fmt.Errorf("invalid request body: %w", err)
	}
	return &req, nil
}

// validateFiniteRecords rejects non-finite numerics up front with a
// record-addressed message. Standard JSON cannot encode NaN/Inf, but
// permissive clients exist and a NaN that slips past here poisons
// every weighted sum downstream. Shared by /evaluate, /diagnose and
// /ingest.
func validateFiniteRecords(records []traceio.FlatRecord) error {
	for i, rec := range records {
		if math.IsNaN(rec.Reward) || math.IsInf(rec.Reward, 0) {
			return fmt.Errorf("record %d: reward must be finite, got %g", i, rec.Reward)
		}
		if math.IsNaN(rec.Propensity) || math.IsInf(rec.Propensity, 0) {
			return fmt.Errorf("record %d: propensity must be finite, got %g", i, rec.Propensity)
		}
		for j, f := range rec.Features {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("record %d: feature %d must be finite, got %g", i, j, f)
			}
		}
	}
	return nil
}

// buildEvalInputs is the validation half of parseEvalRequest: it turns
// a decoded batch request into a validated trace and parsed policy.
func buildEvalInputs(req *evalRequest) (core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], error) {
	if len(req.Trace) == 0 {
		return nil, nil, errors.New("empty trace")
	}
	if err := validateFiniteRecords(req.Trace); err != nil {
		return nil, nil, err
	}
	if req.Options.Bootstrap < 0 {
		return nil, nil, fmt.Errorf("options.bootstrap must not be negative, got %d", req.Options.Bootstrap)
	}
	if req.Options.Bootstrap > maxBootstrapResamples {
		return nil, nil, fmt.Errorf("options.bootstrap %d exceeds the maximum of %d resamples", req.Options.Bootstrap, maxBootstrapResamples)
	}
	trace := traceio.ToCore(traceio.FlatTrace{Records: req.Trace})
	if req.Options.EstimatePropensities {
		if err := core.EstimatePropensities(trace, func(c traceio.FlatContext) string {
			return c.Key()
		}, 5, 1e-3); err != nil {
			return nil, nil, fmt.Errorf("propensity estimation: %v", err)
		}
	}
	if err := trace.Validate(); err != nil {
		return nil, nil, fmt.Errorf("%v (set options.estimatePropensities if the trace has none)", err)
	}
	policy, err := traceio.ParsePolicy(req.Policy, trace)
	if err != nil {
		return nil, nil, err
	}
	return trace, policy, nil
}

// decodeRequest decodes an /evaluate or /diagnose body. When the trace
// is empty and streaming is active it dispatches to streamed (the
// aggregate-serving handler) and reports handled=true; otherwise it
// validates the batch inputs, writing the error response itself on
// failure (400, or 413 for an oversized body).
func decodeRequest(w http.ResponseWriter, r *http.Request, streamed func(http.ResponseWriter, *http.Request, *evalRequest)) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], bool) {
	req, err := decodeEvalBody(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, err.Error())
		return nil, nil, nil, false
	}
	if len(req.Trace) == 0 && streamEng != nil {
		streamed(w, r, req)
		return nil, nil, nil, false
	}
	trace, policy, err := buildEvalInputs(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil, nil, false
	}
	return req, trace, policy, true
}

// requestCtx derives the compute context for /evaluate and /diagnose:
// the request's own context (cancelled when the client disconnects)
// bounded by -request-timeout. Estimators and the bootstrap stop
// scheduling work within one chunk boundary once it ends.
func requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if requestTimeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), requestTimeout)
}

// writeEvalError renders a compute-path failure. Context expiry becomes
// 503 with a machine-readable flag ({"timeout":true} for a deadline,
// {"canceled":true} for client abandonment) so callers and the CI smoke
// test can distinguish overload from bad input; everything else is the
// usual 422.
func writeEvalError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		timeoutsTotal.Inc()
		writeJSONStatus(w, http.StatusServiceUnavailable, evalErrorJSON{
			Error:   "request deadline exceeded before evaluation finished",
			Timeout: true,
		})
	case errors.Is(err, context.Canceled):
		canceledTotal.Inc()
		writeJSONStatus(w, http.StatusServiceUnavailable, evalErrorJSON{
			Error:    "request canceled before evaluation finished",
			Canceled: true,
		})
	default:
		httpError(w, http.StatusUnprocessableEntity, err.Error())
	}
}

// evalErrorJSON is the error body of /evaluate and /diagnose.
type evalErrorJSON struct {
	Error    string `json:"error"`
	Timeout  bool   `json:"timeout,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
}

// timed runs one evaluation phase as a named child span of the
// request's root span (started by the instrument middleware), marking
// the span failed when the phase errors. The same name accumulates
// into the request's wide event as a phaseMs entry, read from ctx —
// one instrumentation point feeds both the span tree and the journal.
// With no root span in the context, StartChild degrades to a fresh
// root, so the phase is still measured; with no wide-event builder,
// the phase hook is a no-op.
func timed[T any](ctx context.Context, parent *obs.Span, name string, fn func() (T, error)) (T, error) {
	endPhase := wideevent.FromContext(ctx).Phase(name)
	defer endPhase()
	sp := parent.StartChild(name)
	defer sp.End()
	v, err := fn()
	if err != nil {
		sp.SetError(err.Error())
	}
	return v, err
}

// recoverGoroutine is the deferred first statement of every background
// goroutine this command starts: a panic escaping a goroutine kills the
// whole process, so record it in the panic counter and the log instead.
func recoverGoroutine(name string) {
	if v := recover(); v != nil {
		panicsTotal.Inc()
		srvLog.Error("goroutine panicked", "goroutine", name, "panic", fmt.Sprint(v))
	}
}

// diagnoseResponse is the /diagnose body: the flat diagnostics plus
// the bias observatory's windowed verdict.
type diagnoseResponse struct {
	diagnosticsJSON
	TraceHealth *biasobs.HealthSummary `json:"traceHealth,omitempty"`
	// Stream mirrors evalResponse.Stream for aggregate-served requests.
	Stream *streamMetaJSON `json:"stream,omitempty"`
}

func handleDiagnose(w http.ResponseWriter, r *http.Request) {
	req, trace, policy, ok := decodeRequest(w, r, handleStreamDiagnose)
	if !ok {
		return
	}
	ctx, cancel := requestCtx(r)
	defer cancel()
	root := obs.SpanFromContext(r.Context())
	buildStart := time.Now()
	view, err := timed(ctx, root, "build_view", func() (*core.TraceView[traceio.FlatContext, string], error) {
		return core.NewTraceViewKeyedCtx(ctx, trace, traceio.FlatContext.Key)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	recordTraceSummary(view, time.Since(buildStart))
	diag, err := timed(ctx, root, "diagnose", func() (core.Diagnostics, error) {
		return core.DiagnoseViewCtx(ctx, view, policy)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	health, err := observeBias(ctx, root, requestID(r), view, policy)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	evb := wideevent.FromContext(r.Context())
	evb.SetPolicy(req.Policy)
	evb.SetRegime(diag.ESS/float64(diag.N), diag.MaxWeight, diag.ZeroSupport)
	if health != nil {
		evb.SetBiasGrade(health.Grade)
	}
	writeJSON(w, diagnoseResponse{diagnosticsJSON: diagJSON(diag), TraceHealth: health})
}

func handleEvaluate(w http.ResponseWriter, r *http.Request) {
	req, trace, policy, ok := decodeRequest(w, r, handleStreamEvaluate)
	if !ok {
		return
	}
	ctx, cancel := requestCtx(r)
	defer cancel()
	root := obs.SpanFromContext(r.Context())
	evb := wideevent.FromContext(r.Context())
	evb.SetPolicy(req.Policy)
	// Columnar hot path: intern the trace once, then every phase below
	// (diagnostics, model fit, estimators, bootstrap) reads the shared
	// view — bit-identical results to the record-slice path, proved by
	// internal/core's view equivalence suite.
	buildStart := time.Now()
	view, err := timed(ctx, root, "build_view", func() (*core.TraceView[traceio.FlatContext, string], error) {
		return core.NewTraceViewKeyedCtx(ctx, trace, traceio.FlatContext.Key)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	recordTraceSummary(view, time.Since(buildStart))
	diag, err := timed(ctx, root, "diagnose", func() (core.Diagnostics, error) {
		return core.DiagnoseViewCtx(ctx, view, policy)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	health, err := observeBias(ctx, root, requestID(r), view, policy)
	if err != nil {
		writeEvalError(w, err)
		return
	}
	// Export the request's overlap regime — the continuously watched
	// version of the diagnostics this response returns once — and stamp
	// the same numbers onto the request's wide event.
	evalESSRatio.Observe(diag.ESS / float64(diag.N))
	evalMaxWeight.Observe(diag.MaxWeight)
	evalZeroSupport.Observe(float64(diag.ZeroSupport))
	evb.SetRegime(diag.ESS/float64(diag.N), diag.MaxWeight, diag.ZeroSupport)
	if health != nil {
		evb.SetBiasGrade(health.Grade)
	}
	if srvLog.Enabled(obs.LevelDebug) {
		srvLog.Debug("evaluate diagnostics", "id", requestID(r),
			"n", diag.N, "essRatio", diag.ESS/float64(diag.N),
			"maxWeight", diag.MaxWeight, "zeroSupport", diag.ZeroSupport)
	}
	model, err := timed(ctx, root, "fit_model", func() (*core.ViewTableModel[traceio.FlatContext, string], error) {
		return core.FitTableViewCtx(ctx, view)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	dm, err := timed(ctx, root, "direct_method", func() (core.Estimate, error) {
		return core.DirectMethodViewCtx(ctx, view, policy, model)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	ips, err := timed(ctx, root, "ips", func() (core.Estimate, error) {
		return core.IPSViewCtx(ctx, view, policy, core.IPSOptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	dr, err := timed(ctx, root, "doubly_robust", func() (core.Estimate, error) {
		return core.DoublyRobustViewCtx(ctx, view, policy, model, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	resp := evalResponse{DM: toJSON(dm), IPS: toJSON(ips), DR: toJSON(dr), Diagnostics: diagJSON(diag), TraceHealth: health}
	// Graceful degradation: when the overlap diagnostics cross a
	// configured threshold the response still carries every requested
	// estimate, but is tagged degraded with machine-readable reasons
	// and a variance-robust fallback — never a bare error.
	reasons := degradeThresholds.Check(diag.N, diag.ESS, diag.MaxWeight, diag.ZeroSupport)
	// Optional drift escalation: a fired windowed-drift alarm means the
	// trace mixes regimes, so whole-trace estimates are suspect even
	// when every overlap diagnostic looks fine.
	if degradeOnDrift && health != nil && health.Alarms > 0 {
		reasons = append(reasons, resilience.DriftReason(health.Alarms, biasDriftThreshold))
	}
	// Optional SLO escalation (-degrade-on-slo-page): a page-severity
	// budget burn tags every response until it clears.
	reasons = append(reasons, sloDegradeReasons()...)
	if len(reasons) > 0 {
		// The degraded path is an error from the observability side even
		// though the response is a 200: mark the request's root span so
		// obs_span_errors_total{span="http/evaluate"} and the timeline
		// surface it.
		root.Attr("degraded", "true")
		root.SetError("degraded: overlap diagnostics crossed thresholds")
		fb, err := timed(ctx, root, "fallback", func() (core.Estimate, error) {
			return core.IPSViewCtx(ctx, view, policy, core.IPSOptions{Clip: fallbackClip, SelfNormalize: true})
		})
		if err != nil {
			writeEvalError(w, err)
			return
		}
		resp.Degraded = true
		resp.DegradedReasons = reasons
		resp.FallbackEstimator = "snips-clip"
		resp.Fallback = &fallbackJSON{Estimator: resp.FallbackEstimator, Estimate: toJSON(fb)}
		evb.SetDegraded(reasonCodes(reasons))
		evb.SetFallback(resp.FallbackEstimator)
		degradedTotal.Inc()
		srvLog.Warn("degraded response", "id", requestID(r), "reasons", len(reasons))
	}
	if b := req.Options.Bootstrap; b > 0 {
		seed := req.Options.Seed
		if seed == 0 {
			seed = 1
		}
		// Sharded bootstrap: resamples run on the worker pool, one PCG
		// stream per resample, so the interval depends only on the seed.
		ci, stats, err := func() (core.Interval, core.BootstrapStats, error) {
			defer evb.Phase("drevald_bootstrap")()
			sp := root.StartChild("drevald_bootstrap").
				Attr("resamples", fmt.Sprint(b))
			defer sp.End()
			// Refit-DR bootstrap by index over the view: running
			// sufficient statistics per resample, no record copies.
			// Bit-identical to the former FitTable + DoublyRobust
			// closure (the per-(context, decision) key was injective).
			ci, stats, err := core.BootstrapDRViewSeededStatsCtx(ctx, view, policy,
				core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize}, seed, b, 0.95)
			if err != nil {
				sp.SetError(err.Error())
			}
			return ci, stats, err
		}()
		bootResamples.Add(uint64(stats.Resamples))
		bootSkipped.Add(uint64(stats.Skipped))
		evb.SetBootstrap(stats.Resamples, stats.Skipped)
		if err != nil {
			writeEvalError(w, err)
			return
		}
		resp.DRInterval = &intervalJSON{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}
		resp.BootstrapSkipped = &stats.Skipped
	}
	writeJSON(w, resp)
}

func diagJSON(d core.Diagnostics) diagnosticsJSON {
	return diagnosticsJSON{
		N: d.N, ESS: d.ESS, MatchRate: d.MatchRate, MeanWeight: d.MeanWeight,
		MaxWeight: d.MaxWeight, ZeroSupport: d.ZeroSupport, MinPropensity: d.MinPropensity,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("drevald: encoding response: %v", err)
	}
}

// writeJSONStatus is writeJSON with an explicit status code.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("drevald: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
