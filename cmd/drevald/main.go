// Command drevald serves trace-driven policy evaluation over HTTP, so
// measurement pipelines can POST logged traces and receive DM/IPS/DR
// estimates with diagnostics — the paper's Figure 1 evaluator as a
// network service.
//
// Endpoints:
//
//	GET  /healthz     liveness probe: {status, uptimeSeconds, version}
//	POST /diagnose    {trace, policy} → overlap diagnostics
//	POST /evaluate    {trace, policy, options} → DM/IPS/DR estimates,
//	                  diagnostics and an optional bootstrap CI
//	GET  /metrics     Prometheus text exposition (request, estimator
//	                  regime and worker-pool metrics)
//	GET  /debug/vars  JSON metric snapshot + process vitals
//
// With -debug-addr set, a second listener additionally serves
// net/http/pprof under /debug/pprof/ (plus /metrics and /debug/vars),
// kept off the service port so profiling is opt-in.
//
// Every response carries an X-Request-Id (generated when the client
// does not send one), which also keys the structured access logs on
// stderr.
//
// Request schema (JSON):
//
//	{
//	  "trace":  [{"features":[...], "decision":"d", "reward":r,
//	              "propensity":p}, ...],
//	  "policy": "constant:<decision>" | "best-observed",
//	  "options": {"clip":0, "selfNormalize":false,
//	              "estimatePropensities":false, "bootstrap":200,
//	              "seed":1}
//	}
//
// Usage:
//
//	drevald [-addr :8080] [-workers 0] [-debug-addr ""] [-log-level info]
//
// Requests are served concurrently by net/http; within each request the
// bootstrap resamples run on a shared worker pool -workers wide (0 =
// GOMAXPROCS). Bootstrap intervals are computed with one independent
// PCG stream per resample derived from options.seed, so responses are
// bit-identical at every worker count. The server drains in-flight
// requests on SIGINT or SIGTERM before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drnet/internal/core"
	"drnet/internal/obs"
	"drnet/internal/parallel"
	"drnet/internal/traceio"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker-pool width for per-request bootstrap resampling (0 = GOMAXPROCS)")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for /debug/pprof, /metrics and /debug/vars (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("drevald: %v", err)
	}
	srvLog.SetLevel(level)

	srv, err := newServer(*addr)
	if err != nil {
		log.Fatalf("drevald: %v", err)
	}
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("drevald: debug listener: %v", err)
		}
		go func() {
			if err := http.Serve(ln, newDebugMux()); err != nil && !errors.Is(err, http.ErrServerClosed) {
				srvLog.Error("debug listener failed", "err", err)
			}
		}()
		srvLog.Info("debug listener up", "addr", ln.Addr().String())
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	srvLog.Info("drevald listening", "addr", srv.addr(), "version", obs.Version(), "workers", parallel.DefaultWorkers())
	if err := srv.run(stop); err != nil {
		log.Fatalf("drevald: %v", err)
	}
}

// drainTimeout bounds how long shutdown waits for in-flight requests.
const drainTimeout = 10 * time.Second

// server bundles the HTTP server with its listener so tests can bind
// to :0 and drive the full serve/shutdown lifecycle in-process.
type server struct {
	srv *http.Server
	ln  net.Listener
}

func newServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &server{
		srv: &http.Server{
			Handler:           newMux(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      60 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		ln: ln,
	}, nil
}

func (s *server) addr() string { return s.ln.Addr().String() }

// run serves until stop delivers a signal (SIGINT or SIGTERM in
// production), then shuts down gracefully: the listener closes
// immediately and in-flight requests get up to drainTimeout to finish.
func (s *server) run(stop <-chan os.Signal) error {
	serveErr := make(chan error, 1)
	go func() {
		if err := s.srv.Serve(s.ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			serveErr <- err
		}
	}()
	select {
	case <-stop:
	case err := <-serveErr:
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// newMux wires the service handlers — each behind the instrument
// middleware (request IDs, per-route metrics, access logs) — plus the
// observability endpoints; separated from main for testing.
func newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", instrument("/healthz", handleHealthz))
	mux.Handle("POST /diagnose", instrument("/diagnose", handleDiagnose))
	mux.Handle("POST /evaluate", instrument("/evaluate", handleEvaluate))
	mux.Handle("GET /metrics", instrument("/metrics", handleMetrics))
	mux.Handle("GET /debug/vars", instrument("/debug/vars", handleVars))
	return mux
}

// healthJSON is the /healthz response body.
type healthJSON struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Version       string  `json:"version"`
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, healthJSON{
		Status:        "ok",
		UptimeSeconds: time.Since(serverStart).Seconds(),
		Version:       obs.Version(),
	})
}

// evalOptions mirrors the request "options" object.
type evalOptions struct {
	Clip                 float64 `json:"clip"`
	SelfNormalize        bool    `json:"selfNormalize"`
	EstimatePropensities bool    `json:"estimatePropensities"`
	Bootstrap            int     `json:"bootstrap"`
	Seed                 int64   `json:"seed"`
}

// evalRequest is the request body of /evaluate and /diagnose.
type evalRequest struct {
	Trace   []traceio.FlatRecord `json:"trace"`
	Policy  string               `json:"policy"`
	Options evalOptions          `json:"options"`
}

// estimateJSON serializes a core.Estimate.
type estimateJSON struct {
	Value     float64 `json:"value"`
	StdErr    float64 `json:"stdErr"`
	N         int     `json:"n"`
	ESS       float64 `json:"ess"`
	MaxWeight float64 `json:"maxWeight"`
}

func toJSON(e core.Estimate) estimateJSON {
	return estimateJSON{Value: e.Value, StdErr: e.StdErr, N: e.N, ESS: e.ESS, MaxWeight: e.MaxWeight}
}

// diagnosticsJSON serializes core.Diagnostics.
type diagnosticsJSON struct {
	N             int     `json:"n"`
	ESS           float64 `json:"ess"`
	MatchRate     float64 `json:"matchRate"`
	MeanWeight    float64 `json:"meanWeight"`
	MaxWeight     float64 `json:"maxWeight"`
	ZeroSupport   int     `json:"zeroSupport"`
	MinPropensity float64 `json:"minPropensity"`
}

// intervalJSON serializes a core.Interval with camelCase keys, matching
// every other field in the response.
type intervalJSON struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

// evalResponse is the response body of /evaluate. BootstrapSkipped is
// present whenever a bootstrap ran: it counts resamples the estimator
// failed on (and which the interval therefore excludes), so clients can
// tell a fragile CI from a solid one.
type evalResponse struct {
	DM               estimateJSON    `json:"dm"`
	IPS              estimateJSON    `json:"ips"`
	DR               estimateJSON    `json:"dr"`
	Diagnostics      diagnosticsJSON `json:"diagnostics"`
	DRInterval       *intervalJSON   `json:"drInterval,omitempty"`
	BootstrapSkipped *int            `json:"bootstrapSkipped,omitempty"`
}

// maxBodyBytes bounds request bodies (64 MiB). A variable so tests can
// lower it to exercise the 413 path without a 64 MiB payload.
var maxBodyBytes int64 = 64 << 20

// parseEvalRequest decodes and validates an /evaluate or /diagnose
// request body. It is independent of net/http so the fuzz harness can
// drive it with arbitrary bytes: malformed input must produce an error,
// never a panic.
func parseEvalRequest(body io.Reader) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], error) {
	var req evalRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// %w so decodeRequest can distinguish an oversized body
		// (*http.MaxBytesError → 413) from plain bad JSON (400).
		return nil, nil, nil, fmt.Errorf("invalid request body: %w", err)
	}
	if len(req.Trace) == 0 {
		return nil, nil, nil, errors.New("empty trace")
	}
	trace := traceio.ToCore(traceio.FlatTrace{Records: req.Trace})
	if req.Options.EstimatePropensities {
		if err := core.EstimatePropensities(trace, func(c traceio.FlatContext) string {
			return c.Key()
		}, 5, 1e-3); err != nil {
			return nil, nil, nil, fmt.Errorf("propensity estimation: %v", err)
		}
	}
	if err := trace.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("%v (set options.estimatePropensities if the trace has none)", err)
	}
	policy, err := traceio.ParsePolicy(req.Policy, trace)
	if err != nil {
		return nil, nil, nil, err
	}
	return &req, trace, policy, nil
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*evalRequest, core.Trace[traceio.FlatContext, string], core.Policy[traceio.FlatContext, string], bool) {
	req, trace, policy, err := parseEvalRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, err.Error())
		return nil, nil, nil, false
	}
	return req, trace, policy, true
}

func handleDiagnose(w http.ResponseWriter, r *http.Request) {
	_, trace, policy, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	diag, err := core.Diagnose(trace, policy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, diagJSON(diag))
}

func handleEvaluate(w http.ResponseWriter, r *http.Request) {
	req, trace, policy, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	diag, err := core.Diagnose(trace, policy)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	// Export the request's overlap regime — the continuously watched
	// version of the diagnostics this response returns once.
	evalESSRatio.Observe(diag.ESS / float64(diag.N))
	evalMaxWeight.Observe(diag.MaxWeight)
	evalZeroSupport.Observe(float64(diag.ZeroSupport))
	if srvLog.Enabled(obs.LevelDebug) {
		srvLog.Debug("evaluate diagnostics", "id", requestID(r),
			"n", diag.N, "essRatio", diag.ESS/float64(diag.N),
			"maxWeight", diag.MaxWeight, "zeroSupport", diag.ZeroSupport)
	}
	model := core.FitTable(trace, func(c traceio.FlatContext, d string) string {
		return c.Key() + "|" + d
	})
	dm, err := core.DirectMethod(trace, policy, model)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	ips, err := core.IPS(trace, policy, core.IPSOptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	dr, err := core.DoublyRobust(trace, policy, model, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := evalResponse{DM: toJSON(dm), IPS: toJSON(ips), DR: toJSON(dr), Diagnostics: diagJSON(diag)}
	if b := req.Options.Bootstrap; b > 0 {
		seed := req.Options.Seed
		if seed == 0 {
			seed = 1
		}
		// Sharded bootstrap: resamples run on the worker pool, one PCG
		// stream per resample, so the interval depends only on the seed.
		sp := obs.StartSpan("drevald_bootstrap")
		ci, stats, err := core.BootstrapSeededStats(trace, func(t core.Trace[traceio.FlatContext, string]) (core.Estimate, error) {
			m := core.FitTable(t, func(c traceio.FlatContext, d string) string { return c.Key() + "|" + d })
			return core.DoublyRobust(t, policy, m, core.DROptions{Clip: req.Options.Clip, SelfNormalize: req.Options.SelfNormalize})
		}, seed, b, 0.95)
		sp.End()
		bootResamples.Add(uint64(stats.Resamples))
		bootSkipped.Add(uint64(stats.Skipped))
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		resp.DRInterval = &intervalJSON{Lo: ci.Lo, Hi: ci.Hi, Level: ci.Level}
		resp.BootstrapSkipped = &stats.Skipped
	}
	writeJSON(w, resp)
}

func diagJSON(d core.Diagnostics) diagnosticsJSON {
	return diagnosticsJSON{
		N: d.N, ESS: d.ESS, MatchRate: d.MatchRate, MeanWeight: d.MeanWeight,
		MaxWeight: d.MaxWeight, ZeroSupport: d.ZeroSupport, MinPropensity: d.MinPropensity,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("drevald: encoding response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
