package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The crash-replay chaos suite. A real drevald process (this test
// binary re-executed via TestMain's DREVALD_CRASH_CHILD hook) is
// SIGKILLed in the middle of a batched ingest stream, then restarted
// on the same WAL directory. The durability contract under -fsync
// always:
//
//  1. zero acked-record loss — every acknowledged batch survives the
//     crash and is replayed;
//  2. batch atomicity — the recovered epoch lands on a batch boundary,
//     never inside one;
//  3. bit-identical aggregates — streamed estimates over the recovered
//     state equal a batch /evaluate over the same record prefix, and
//     are byte-identical across restarts with worker pools {1, 2, 8}.

// crashChild is one re-executed drevald process.
type crashChild struct {
	cmd *exec.Cmd
	url string
}

var listenLine = regexp.MustCompile(`msg="drevald listening" addr=([^ ]+)`)

// startCrashChild boots a drevald subprocess on a kernel-assigned port
// and scrapes the listen address from its access log.
func startCrashChild(t *testing.T, dir string, extra ...string) *crashChild {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-wal-dir", dir,
		"-fsync", "always",
		"-segment-bytes", "8192",
		"-drain-timeout", "5s",
	}, extra...)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "DREVALD_CRASH_CHILD=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &crashChild{cmd: cmd, url: "http://" + addr}
	case <-time.After(30 * time.Second):
		t.Fatal("drevald subprocess never reported a listen address")
		return nil
	}
}

// waitReplayed polls /healthz until WAL replay finishes, returning the
// final wal block.
func (c *crashChild) waitReplayed(t *testing.T) *walJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(c.url + "/healthz")
		if err == nil {
			var h healthJSON
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr == nil && h.WAL != nil && !h.WAL.Replaying {
				if h.WAL.ReplayError != "" {
					t.Fatalf("replay failed: %s", h.WAL.ReplayError)
				}
				return h.WAL
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("WAL replay never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postJSON is like post but against a subprocess URL and returns the
// raw body alongside the status.
func postJSON(url, path string, body any) (int, []byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url+path, "application/json", &buf)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

func TestCrashReplaySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	dir := t.TempDir()
	records := testTraceJSON(t, false)
	const batchSize = 20
	nBatches := len(records) / batchSize // 20 batches of 20

	// Phase 1: stream batches into a live server and SIGKILL it
	// mid-stream. The first half is ingested synchronously so the crash
	// provably lands after real acks; the rest races the kill.
	child := startCrashChild(t, dir, "-workers", "1")
	child.waitReplayed(t)

	var mu sync.Mutex
	var acked []ingestResponse
	sendBatch := func(i int) bool {
		status, raw, err := postJSON(child.url, "/ingest", ingestRequest{
			Records: records[i*batchSize : (i+1)*batchSize],
		})
		if err != nil || status != http.StatusOK {
			return false // crashed under us — expected
		}
		var ack ingestResponse
		if err := json.Unmarshal(raw, &ack); err != nil {
			t.Errorf("batch %d: bad ack %s", i, raw)
			return false
		}
		if !ack.Durable || ack.Acked != batchSize {
			t.Errorf("batch %d: ack %+v not durable", i, ack)
		}
		mu.Lock()
		acked = append(acked, ack)
		mu.Unlock()
		return true
	}
	for i := 0; i < nBatches/2; i++ {
		if !sendBatch(i) {
			t.Fatal("server died before the crash was scheduled")
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := nBatches / 2; i < nBatches; i++ {
			if !sendBatch(i) {
				return
			}
		}
	}()
	time.Sleep(3 * time.Millisecond) // land inside the racing ingests
	if err := child.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-done
	_ = child.cmd.Wait()

	mu.Lock()
	lastAcked := 0
	for _, a := range acked {
		if a.Epoch > lastAcked {
			lastAcked = a.Epoch
		}
	}
	ackedBatches := len(acked)
	mu.Unlock()
	if lastAcked < nBatches/2*batchSize {
		t.Fatalf("only %d records acked before the crash", lastAcked)
	}
	t.Logf("SIGKILL after %d acked batches (epoch %d)", ackedBatches, lastAcked)

	// Phase 2: restart on the same WAL dir with worker pools {1, 2, 8}.
	// Replay must recover every acked record, land on a batch boundary,
	// report the same epoch every time, and serve byte-identical
	// streamed estimates regardless of pool width.
	evalReq := evalRequest{Policy: "constant:c", Options: evalOptions{Clip: 5}}
	var prevEpoch int
	var prevBody []byte
	for _, w := range []int{1, 2, 8} {
		child := startCrashChild(t, dir, "-workers", strconv.Itoa(w))
		wal := child.waitReplayed(t)

		if wal.Epoch < lastAcked {
			t.Fatalf("workers=%d: acked-record loss: epoch %d < last ack %d", w, wal.Epoch, lastAcked)
		}
		if wal.Epoch%batchSize != 0 {
			t.Fatalf("workers=%d: replay split a batch: epoch %d", w, wal.Epoch)
		}
		if prevEpoch != 0 && wal.Epoch != prevEpoch {
			t.Fatalf("workers=%d: epoch drifted across restarts: %d != %d", w, wal.Epoch, prevEpoch)
		}
		prevEpoch = wal.Epoch

		status, streamed, err := postJSON(child.url, "/evaluate", evalReq)
		if err != nil || status != http.StatusOK {
			t.Fatalf("workers=%d: streamed evaluate: status %d err %v (%s)", w, status, err, streamed)
		}
		if prevBody != nil && !bytes.Equal(streamed, prevBody) {
			t.Fatalf("workers=%d: streamed response differs across restarts:\n%s\nvs\n%s", w, streamed, prevBody)
		}
		prevBody = streamed

		// Oracle: batch /evaluate over the exact replayed prefix must
		// agree bit-for-bit on the point estimates.
		var got evalResponse
		if err := json.Unmarshal(streamed, &got); err != nil {
			t.Fatal(err)
		}
		batchReq := evalReq
		batchReq.Trace = records[:wal.Epoch]
		status, raw, err := postJSON(child.url, "/evaluate", batchReq)
		if err != nil || status != http.StatusOK {
			t.Fatalf("workers=%d: batch oracle: status %d err %v", w, status, err)
		}
		var want evalResponse
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2]float64{
			"DM":  {got.DM.Value, want.DM.Value},
			"IPS": {got.IPS.Value, want.IPS.Value},
			"DR":  {got.DR.Value, want.DR.Value},
		} {
			if pair[0] != pair[1] {
				t.Fatalf("workers=%d: %s diverged after replay: %v != %v", w, name, pair[0], pair[1])
			}
		}
		if got.Diagnostics != want.Diagnostics {
			t.Fatalf("workers=%d: diagnostics diverged: %+v != %+v", w, got.Diagnostics, want.Diagnostics)
		}

		// Graceful stop so the next cycle starts from a sealed manifest.
		if err := child.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := child.cmd.Wait(); err != nil {
			t.Fatalf("workers=%d: shutdown: %v", w, err)
		}
	}
	t.Logf("recovered epoch %d across 3 restarts, estimates bit-identical", prevEpoch)
}

// TestCrashReplayRepeatedKills survives several consecutive crashes —
// each cycle ingests a few batches, SIGKILLs, restarts, and checks the
// monotone epoch never loses an acked record.
func TestCrashReplayRepeatedKills(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	dir := t.TempDir()
	records := testTraceJSON(t, false)
	const batchSize = 10
	lastAcked := 0
	next := 0
	for cycle := 0; cycle < 3; cycle++ {
		child := startCrashChild(t, dir)
		wal := child.waitReplayed(t)
		if wal.Epoch < lastAcked {
			t.Fatalf("cycle %d: acked-record loss: epoch %d < %d", cycle, wal.Epoch, lastAcked)
		}
		// The engine may have replayed un-acked batches from the torn
		// stream; resume ingesting from its epoch, not our ack count.
		next = wal.Epoch / batchSize
		for i := 0; i < 4 && (next+1)*batchSize <= len(records); i++ {
			status, raw, err := postJSON(child.url, "/ingest", ingestRequest{
				Records: records[next*batchSize : (next+1)*batchSize],
			})
			if err != nil || status != http.StatusOK {
				t.Fatalf("cycle %d: ingest failed: status %d err %v (%s)", cycle, status, err, raw)
			}
			var ack ingestResponse
			if err := json.Unmarshal(raw, &ack); err != nil {
				t.Fatal(err)
			}
			lastAcked = ack.Epoch
			next++
		}
		if err := child.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = child.cmd.Wait()
	}

	child := startCrashChild(t, dir)
	wal := child.waitReplayed(t)
	if wal.Epoch < lastAcked {
		t.Fatalf("final replay lost acked records: epoch %d < %d", wal.Epoch, lastAcked)
	}
	if wal.Epoch != lastAcked {
		t.Fatalf("sequential acks should equal the epoch exactly: %d != %d", wal.Epoch, lastAcked)
	}
	status, _, err := postJSON(child.url, "/evaluate", evalRequest{Policy: "best-observed"})
	if err != nil || status != http.StatusOK {
		t.Fatalf("evaluate after 3 crashes: status %d err %v", status, err)
	}
}
