package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drnet/internal/benchkit"
	"drnet/internal/resilience"
	"drnet/internal/traceio"
	"drnet/internal/walog"
)

// withStreamEngine installs a fresh streaming engine over a temp WAL
// dir, replays synchronously (empty log on first call) and restores the
// disabled state on cleanup. Returns the engine for direct inspection.
func withStreamEngine(t *testing.T, cfg streamConfig) *streamEngine {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	eng, err := newStreamEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.replay()
	old := streamEng
	streamEng = eng
	t.Cleanup(func() {
		streamEng = old
		if err := eng.close(); err != nil {
			t.Errorf("wal close: %v", err)
		}
	})
	return eng
}

// ingestBatch POSTs one batch and decodes the ack.
func ingestBatch(t *testing.T, srv *httptest.Server, records []traceio.FlatRecord) ingestResponse {
	t.Helper()
	resp := post(t, srv, "/ingest", ingestRequest{Records: records})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, buf.String())
	}
	var ack ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// streamEvaluate POSTs an empty-trace /evaluate (the aggregate-served
// path) and decodes the response.
func streamEvaluate(t *testing.T, srv *httptest.Server, policy string, opts evalOptions) evalResponse {
	t.Helper()
	resp := post(t, srv, "/evaluate", evalRequest{Policy: policy, Options: opts})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("stream evaluate status %d: %s", resp.StatusCode, buf.String())
	}
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamEvaluateMatchesBatch is the end-to-end equivalence check:
// records ingested in batches and evaluated from aggregates must
// produce the same estimates as the same records POSTed inline —
// bit-identical Values for DM/IPS/DR (the core suite's guarantee,
// carried through the full HTTP surface).
func TestStreamEvaluateMatchesBatch(t *testing.T) {
	withStreamEngine(t, streamConfig{})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	records := testTraceJSON(t, false)
	var epoch int
	for i := 0; i < len(records); i += 100 {
		ack := ingestBatch(t, srv, records[i:i+100])
		if ack.Acked != 100 || !ack.Durable {
			t.Fatalf("ack %+v, want 100 durable records", ack)
		}
		epoch = ack.Epoch
	}
	if epoch != len(records) {
		t.Fatalf("final epoch %d, want %d", epoch, len(records))
	}

	for _, selfNorm := range []bool{false, true} {
		opts := evalOptions{Clip: 5, SelfNormalize: selfNorm}
		streamed := streamEvaluate(t, srv, "constant:c", opts)
		resp := post(t, srv, "/evaluate", evalRequest{Trace: records, Policy: "constant:c", Options: opts})
		var batch evalResponse
		if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		if streamed.Stream == nil {
			t.Fatal("streamed response missing the stream metadata block")
		}
		if streamed.Stream.Epoch != len(records) || streamed.Stream.StalenessRecords != 0 {
			t.Fatalf("stream meta %+v, want epoch=%d staleness=0", streamed.Stream, len(records))
		}
		if batch.Stream != nil {
			t.Fatal("batch response unexpectedly carries stream metadata")
		}
		// The model registers at the full epoch, so DM/IPS Values (and
		// plain DR) must be bit-identical to the batch fit on the same
		// records; SN-DR matches within the documented tolerance.
		if streamed.DM.Value != batch.DM.Value {
			t.Fatalf("selfNorm=%v: DM %v != %v", selfNorm, streamed.DM.Value, batch.DM.Value)
		}
		if streamed.IPS.Value != batch.IPS.Value || streamed.IPS.ESS != batch.IPS.ESS {
			t.Fatalf("selfNorm=%v: IPS %+v != %+v", selfNorm, streamed.IPS, batch.IPS)
		}
		drTol := 0.0
		if selfNorm {
			drTol = 1e-9 * (1 + abs(batch.DR.Value))
		}
		if d := abs(streamed.DR.Value - batch.DR.Value); d > drTol {
			t.Fatalf("selfNorm=%v: DR %v != %v (|Δ|=%g)", selfNorm, streamed.DR.Value, batch.DR.Value, d)
		}
		if streamed.Diagnostics != batch.Diagnostics {
			t.Fatalf("selfNorm=%v: diagnostics %+v != %+v", selfNorm, streamed.Diagnostics, batch.Diagnostics)
		}
	}

	// /diagnose from aggregates carries the same diagnostics + metadata.
	resp := post(t, srv, "/diagnose", evalRequest{Policy: "constant:c", Options: evalOptions{Clip: 5}})
	var diag diagnoseResponse
	if err := json.NewDecoder(resp.Body).Decode(&diag); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if diag.N != len(records) || diag.Stream == nil || diag.Stream.Epoch != len(records) {
		t.Fatalf("stream diagnose %+v / %+v", diag.diagnosticsJSON, diag.Stream)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestStreamRestartByteIdentical pins crash-replay equivalence through
// the HTTP surface: close the engine, reopen the same WAL dir, replay,
// and the streamed /evaluate body must be byte-identical.
func TestStreamRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	records := testTraceJSON(t, false)

	read := func() []byte {
		srv := httptest.NewServer(newMux())
		defer srv.Close()
		resp := post(t, srv, "/evaluate", evalRequest{Policy: "best-observed", Options: evalOptions{Clip: 10}})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var want []byte
	func() {
		eng, err := newStreamEngine(streamConfig{Dir: dir, SegmentBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		eng.replay()
		streamEng = eng
		defer func() { streamEng = nil }()
		defer eng.close()
		srv := httptest.NewServer(newMux())
		for i := 0; i < len(records); i += 50 {
			ingestBatch(t, srv, records[i:i+50])
		}
		srv.Close()
		want = read()
	}()

	eng2, err := newStreamEngine(streamConfig{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	eng2.replay()
	streamEng = eng2
	defer func() { streamEng = nil }()
	defer eng2.close()
	if got := eng2.builder.Len(); got != len(records) {
		t.Fatalf("replayed %d records, want %d", got, len(records))
	}
	if eng2.wal.Segments() < 2 {
		t.Fatalf("expected multiple segments at SegmentBytes=4096, got %d", eng2.wal.Segments())
	}
	got := read()
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed response differs after restart:\n%s\nvs\n%s", got, want)
	}
}

// TestStreamStalenessDegrades: with -max-model-age set, a fingerprint
// registered early degrades once enough records arrive, carrying the
// stale_aggregates reason and an O(1) SNIPS fallback; refreshModel
// refits and clears it.
func TestStreamStalenessDegrades(t *testing.T) {
	withStreamEngine(t, streamConfig{MaxModelAge: 100})
	withThresholds(t, resilience.Thresholds{}) // isolate the staleness reason
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	records := testTraceJSON(t, false)
	ingestBatch(t, srv, records[:100])
	fresh := streamEvaluate(t, srv, "constant:a", evalOptions{})
	if fresh.Degraded {
		t.Fatalf("fresh registration degraded: %+v", fresh.DegradedReasons)
	}
	if fresh.Stream.ModelEpoch != 100 {
		t.Fatalf("modelEpoch %d, want 100", fresh.Stream.ModelEpoch)
	}

	ingestBatch(t, srv, records[100:250])
	ingestBatch(t, srv, records[250:400])
	stale := streamEvaluate(t, srv, "constant:a", evalOptions{})
	if stale.Stream.StalenessRecords != 300 || stale.Stream.Epoch != 400 {
		t.Fatalf("stream meta %+v, want staleness=300 epoch=400", stale.Stream)
	}
	if !stale.Degraded || len(stale.DegradedReasons) != 1 ||
		stale.DegradedReasons[0].Code != resilience.ReasonStaleAggs {
		t.Fatalf("want stale_aggregates degradation, got %+v", stale.DegradedReasons)
	}
	if stale.Fallback == nil || stale.Fallback.Estimator != "snips-stream" || stale.Fallback.Estimate.N != 400 {
		t.Fatalf("fallback %+v, want snips-stream over 400 records", stale.Fallback)
	}
	// The stale aggregates still cover every record.
	if stale.DM.N != 400 || stale.IPS.N != 400 {
		t.Fatalf("stale estimates dropped records: DM.N=%d IPS.N=%d", stale.DM.N, stale.IPS.N)
	}

	refreshed := streamEvaluate(t, srv, "constant:a", evalOptions{RefreshModel: true})
	if refreshed.Degraded || refreshed.Stream.StalenessRecords != 0 || refreshed.Stream.ModelEpoch != 400 {
		t.Fatalf("refresh did not clear staleness: %+v (degraded=%v)", refreshed.Stream, refreshed.Degraded)
	}
}

// TestIngestErrorSurface walks the /ingest status ladder: 404 disabled,
// 400 malformed/empty, 413 oversized, 422 invalid records, 429 shed
// with Retry-After, 503 while replaying.
func TestIngestErrorSurface(t *testing.T) {
	records := testTraceJSON(t, false)

	t.Run("disabled 404", func(t *testing.T) {
		srv := httptest.NewServer(newMux())
		defer srv.Close()
		resp := post(t, srv, "/ingest", ingestRequest{Records: records[:10]})
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})

	withStreamEngine(t, streamConfig{})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	t.Run("empty batch 400", func(t *testing.T) {
		resp := post(t, srv, "/ingest", ingestRequest{})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("malformed 400", func(t *testing.T) {
		resp, err := http.Post(srv.URL+"/ingest", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("oversized 413", func(t *testing.T) {
		old := ingestMaxBytes
		ingestMaxBytes = 64
		defer func() { ingestMaxBytes = old }()
		resp := post(t, srv, "/ingest", ingestRequest{Records: records[:10]})
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, buf.String())
		}
	})

	t.Run("invalid record 422", func(t *testing.T) {
		bad := []traceio.FlatRecord{{Decision: "a", Reward: 1, Propensity: 0}}
		resp := post(t, srv, "/ingest", ingestRequest{Records: bad})
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422", resp.StatusCode)
		}
		if !strings.Contains(buf.String(), "record 0") {
			t.Fatalf("error not record-addressed: %s", buf.String())
		}
		// Nothing invalid reached the WAL or the view.
		if streamEng.wal.Seq() != 0 || streamEng.builder.Len() != 0 {
			t.Fatalf("invalid batch left state: seq=%d len=%d", streamEng.wal.Seq(), streamEng.builder.Len())
		}
	})

	t.Run("shed 429 with Retry-After", func(t *testing.T) {
		old := ingestLimiter
		ingestLimiter = resilience.NewLimiter(1, 0)
		defer func() { ingestLimiter = old }()
		release, _, err := ingestLimiter.Acquire(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		defer release()
		resp := post(t, srv, "/ingest", ingestRequest{Records: records[:10]})
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
	})

	t.Run("replaying 503", func(t *testing.T) {
		streamEng.replaying.Store(true)
		defer streamEng.replaying.Store(false)
		for _, path := range []string{"/ingest", "/evaluate", "/diagnose"} {
			body := any(ingestRequest{Records: records[:10]})
			if path != "/ingest" {
				body = evalRequest{Policy: "constant:a"}
			}
			resp := post(t, srv, path, body)
			var out streamUnavailableJSON
			err := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("%s: status %d, want 503", path, resp.StatusCode)
			}
			if err != nil || !out.Replaying {
				t.Fatalf("%s: body %+v, want replaying:true", path, out)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("%s: 503 without Retry-After", path)
			}
		}
	})

	t.Run("empty stream evaluate 422", func(t *testing.T) {
		resp := post(t, srv, "/evaluate", evalRequest{Policy: "constant:a"})
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422 (%s)", resp.StatusCode, buf.String())
		}
		if !strings.Contains(buf.String(), "stream is empty") {
			t.Fatalf("unhelpful error: %s", buf.String())
		}
	})

	t.Run("bootstrap rejected 400", func(t *testing.T) {
		ingestBatch(t, srv, records[:50])
		resp := post(t, srv, "/evaluate", evalRequest{Policy: "constant:a", Options: evalOptions{Bootstrap: 10}})
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestChaosIngestWALFault: an injected fsync failure refuses the ack
// with 503 (the batch is NOT durable and NOT folded), the error counter
// ticks, and after the fault clears the same batch ingests cleanly —
// the retry contract a durable queue owes its producers.
func TestChaosIngestWALFault(t *testing.T) {
	withStreamEngine(t, streamConfig{})
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	records := testTraceJSON(t, false)

	errsBefore := walAppendErrorsTotal.Value()
	resilience.Activate(resilience.NewFaultPlan(23).
		Add(resilience.PointWALSync, resilience.FaultSpec{ErrProb: 1}))
	resp := post(t, srv, "/ingest", ingestRequest{Records: records[:50]})
	resilience.Deactivate()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, buf.String())
	}
	if walAppendErrorsTotal.Value() != errsBefore+1 {
		t.Fatal("wal append error counter did not tick")
	}
	if streamEng.builder.Len() != 0 {
		t.Fatalf("un-durable batch folded into the view: %d records", streamEng.builder.Len())
	}

	// Retry after the fault clears: clean ack, state consistent.
	ack := ingestBatch(t, srv, records[:50])
	if ack.Acked != 50 || ack.Epoch != 50 || ack.Seq != 0 {
		t.Fatalf("retry ack %+v, want 50 records at seq 0", ack)
	}
}

// TestStreamHealthzWALBlock: /healthz surfaces the WAL state (epoch,
// fsync policy, replay progress) once streaming is enabled.
func TestStreamHealthzWALBlock(t *testing.T) {
	withStreamEngine(t, streamConfig{})
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	ingestBatch(t, srv, testTraceJSON(t, false)[:100])

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.WAL == nil {
		t.Fatal("healthz missing wal block")
	}
	if !out.WAL.Enabled || out.WAL.Replaying || out.WAL.Epoch != 100 ||
		out.WAL.Frames != 1 || out.WAL.Fsync != "always" {
		t.Fatalf("wal block %+v", out.WAL)
	}
}

// TestStreamBiasRefresh: with BiasRefresh set, ingest republishes the
// observatory report over the streamed view, stamped with the epoch.
func TestStreamBiasRefresh(t *testing.T) {
	eng := withStreamEngine(t, streamConfig{BiasRefresh: 100})
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	records := testTraceJSON(t, false)

	ingestBatch(t, srv, records[:150])
	streamEvaluate(t, srv, "constant:a", evalOptions{}) // register a policy
	lastBias.Store(nil)
	ingestBatch(t, srv, records[150:300])

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := lastBias.Load(); st != nil {
			if !strings.HasPrefix(st.requestID, "ingest@epoch=") {
				t.Fatalf("bias report stamped %q, want ingest@epoch=...", st.requestID)
			}
			if st.report.Grade == "" {
				t.Fatal("empty bias grade")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bias refresh never published")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = eng
}

// TestStreamSegmentRotationManifest: small segments force rotation
// mid-stream; the manifest matches the scan on reopen and recovery
// reports every frame.
func TestStreamSegmentRotationManifest(t *testing.T) {
	dir := t.TempDir()
	func() {
		eng, err := newStreamEngine(streamConfig{Dir: dir, SegmentBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		eng.replay()
		streamEng = eng
		defer func() { streamEng = nil }()
		defer eng.close()
		srv := httptest.NewServer(newMux())
		defer srv.Close()
		records := testTraceJSON(t, false)
		for i := 0; i < 300; i += 20 {
			ingestBatch(t, srv, records[i:i+20])
		}
		if eng.wal.Segments() < 3 {
			t.Fatalf("no rotation at 2 KiB segments: %d segment(s)", eng.wal.Segments())
		}
	}()

	l, rec, err := walog.Open(walog.Options{Dir: dir, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if !rec.ManifestOK {
		t.Fatal("manifest disagreed with the scan after a clean shutdown")
	}
	if rec.Frames != 15 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery %+v, want 15 clean frames", rec)
	}
}

// TestIngestLegEvalFlatness runs benchkit's ingest leg against the
// real engine and checks the O(1) contract end to end: streamed
// /evaluate latency at a 10x-larger epoch stays within a small factor
// of the first checkpoint (an O(n) evaluator would scale ~10x). The
// bound is deliberately loose — it is a complexity tripwire, not a
// latency SLO.
func TestIngestLegEvalFlatness(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement skipped in -short mode")
	}
	withStreamEngine(t, streamConfig{Fsync: walog.FsyncNever})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	res, err := benchkit.RunIngest(benchkit.IngestConfig{
		URL: srv.URL, Records: 5000, BatchSize: 250, EvalSamples: 40, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Records != 5000 {
		t.Fatalf("ingest leg: %+v", res)
	}
	first, last := res.Checkpoints[0], res.Checkpoints[len(res.Checkpoints)-1]
	if last.Epoch != 10*first.Epoch {
		t.Fatalf("checkpoints do not span 10x: %d -> %d", first.Epoch, last.Epoch)
	}
	if res.EvalLatencyRatio > 8 {
		t.Fatalf("streamed /evaluate latency grew %.1fx over a 10x stream (p50 %.3fms -> %.3fms): evaluation is no longer O(1)",
			res.EvalLatencyRatio, first.EvalP50Ms, last.EvalP50Ms)
	}
	t.Logf("10x growth: eval p50 %.3fms -> %.3fms (%.2fx), ingest %.0f records/s",
		first.EvalP50Ms, last.EvalP50Ms, res.EvalLatencyRatio, res.RecordsPerSec)
}
