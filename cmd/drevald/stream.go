package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"drnet/internal/biasobs"
	"drnet/internal/core"
	"drnet/internal/obs"
	"drnet/internal/resilience"
	"drnet/internal/traceio"
	"drnet/internal/walog"
	"drnet/internal/wideevent"
)

// Streaming ingestion: with -wal-dir set, drevald accepts record
// batches on POST /ingest, makes them durable in a walog segment log
// BEFORE acking, folds them into an appendable columnar view plus
// per-policy running sufficient statistics, and serves /evaluate and
// /diagnose requests with an EMPTY trace from those aggregates in O(1)
// — with epoch/staleness metadata in every streamed response. On
// restart the WAL is replayed into the same in-memory state; ingest
// and streamed evaluation answer 503 until replay finishes.

// Streaming knobs, flag-configured in main. Package variables so the
// lifecycle tests can tighten them, like the resilience knobs.
var (
	// streamEng is the process-wide streaming engine; nil when -wal-dir
	// is unset (streaming endpoints answer 404).
	streamEng *streamEngine
	// ingestLimiter admits /ingest work independently of the compute
	// limiter, so a burst of writers cannot starve evaluation (or vice
	// versa). Shed requests get 429 + Retry-After.
	ingestLimiter = resilience.NewLimiter(16, 64)
	// ingestMaxBytes bounds one /ingest body (-ingest-max-bytes);
	// larger bodies get 413.
	ingestMaxBytes int64 = 16 << 20
)

// Streaming metrics: ingest volume, durability failures, replay
// progress and the live epoch, so the WAL's health is scrapeable.
var (
	ingestRecordsTotal   = obs.Default.Counter("drevald_ingest_records_total")
	ingestBatchesTotal   = obs.Default.Counter("drevald_ingest_batches_total")
	walAppendErrorsTotal = obs.Default.Counter("drevald_wal_append_errors_total")
	replayRecordsTotal   = obs.Default.Counter("drevald_wal_replay_records_total")
	streamEpochGauge     = obs.Default.Gauge("drevald_stream_epoch")
	streamPoliciesGauge  = obs.Default.Gauge("drevald_stream_policies")
	walBytesGauge        = obs.Default.Gauge("drevald_wal_bytes")
	walSegmentsGauge     = obs.Default.Gauge("drevald_wal_segments")
)

func init() {
	obs.Default.Help("drevald_ingest_records_total", "Records durably ingested and folded into streaming aggregates.")
	obs.Default.Help("drevald_ingest_batches_total", "Ingest batches acked (one WAL frame each).")
	obs.Default.Help("drevald_wal_append_errors_total", "Ingest batches refused because the WAL append or fsync failed.")
	obs.Default.Help("drevald_wal_replay_records_total", "Records recovered from the WAL during startup replay.")
	obs.Default.Help("drevald_stream_epoch", "Records in the streaming view (replayed + ingested).")
	obs.Default.Help("drevald_stream_policies", "Policy fingerprints with live streaming aggregates.")
	obs.Default.Help("drevald_wal_bytes", "Total valid bytes across all WAL segments.")
	obs.Default.Help("drevald_wal_segments", "WAL segment files on disk.")
}

// streamConfig is everything main resolves from flags for the engine.
type streamConfig struct {
	Dir           string
	Fsync         walog.FsyncPolicy
	FsyncInterval time.Duration
	SegmentBytes  int64
	// MaxModelAge degrades streamed responses whose frozen reward model
	// is more than this many records behind the live epoch (0 = never).
	MaxModelAge uint64
	// BiasRefresh reruns the bias observatory over the streamed view
	// every this many ingested records (0 = disabled).
	BiasRefresh int
}

// streamPolicy is one registered (policy, clip) fingerprint: a frozen
// reward model plus the running sufficient statistics that answer
// evaluation queries in O(1). Guarded by streamEngine.mu.
type streamPolicy struct {
	fingerprint string
	spec        string
	policy      core.Policy[traceio.FlatContext, string]
	model       *core.ViewTableModel[traceio.FlatContext, string]
	eval        *core.StreamEval[traceio.FlatContext, string]
	// modelEpoch is the record count the reward model was fit at; the
	// gap to the live epoch is the staleness every response reports.
	modelEpoch int
}

// streamEngine owns the WAL, the appendable view and the per-policy
// aggregates. One mutex serializes ingest, registration and O(1) reads
// so WAL order, fold order and replay order are the same total order —
// the property that makes crash replay bit-exact.
type streamEngine struct {
	wal      *walog.Log
	recovery walog.Recovery
	cfg      streamConfig

	replaying atomic.Bool
	replayed  atomic.Uint64

	mu            sync.Mutex
	builder       *core.ViewBuilder[traceio.FlatContext, string] // guarded by mu
	records       core.Trace[traceio.FlatContext, string]        // guarded by mu
	evals         map[string]*streamPolicy                       // guarded by mu
	replayErr     error                                          // guarded by mu
	lastBiasEpoch int                                            // guarded by mu
	biasBusy      atomic.Bool
}

// newStreamEngine opens (and recovers) the WAL. Call replay next —
// until it finishes, ingest and streamed evaluation answer 503.
func newStreamEngine(cfg streamConfig) (*streamEngine, error) {
	l, rec, err := walog.Open(walog.Options{
		Dir:           cfg.Dir,
		SegmentBytes:  cfg.SegmentBytes,
		Fsync:         cfg.Fsync,
		FsyncInterval: cfg.FsyncInterval,
	})
	if err != nil {
		return nil, err
	}
	e := &streamEngine{
		wal:      l,
		recovery: rec,
		cfg:      cfg,
		builder:  core.NewViewBuilderKeyed[traceio.FlatContext, string](traceio.FlatContext.Key),
		evals:    make(map[string]*streamPolicy),
	}
	e.replaying.Store(true)
	return e, nil
}

// replay folds every WAL frame back into the in-memory view, in frame
// order — the same order ingest applied them, so the rebuilt state is
// bit-identical to the pre-crash state (core's replay equivalence
// test). Runs once, before any ingest is admitted.
func (e *streamEngine) replay() {
	defer e.replaying.Store(false)
	err := e.wal.ReadAll(func(seq uint64, payload []byte) error {
		flat, err := traceio.DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("frame %d: %w", seq, err)
		}
		trace := traceio.ToCore(traceio.FlatTrace{Records: flat})
		e.mu.Lock()
		defer e.mu.Unlock()
		for _, rec := range trace {
			if err := e.builder.Append(rec); err != nil {
				return fmt.Errorf("frame %d: %w", seq, err)
			}
		}
		e.records = append(e.records, trace...)
		e.replayed.Add(uint64(len(trace)))
		replayRecordsTotal.Add(uint64(len(trace)))
		return nil
	})
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replayErr = err
	streamEpochGauge.Set(float64(e.builder.Len()))
	walBytesGauge.Set(float64(e.wal.Bytes()))
	walSegmentsGauge.Set(float64(e.wal.Segments()))
	if err != nil {
		srvLog.Error("wal replay failed", "err", err)
		return
	}
	srvLog.Info("wal replay complete",
		"records", e.builder.Len(),
		"frames", e.wal.Seq(),
		"segments", e.wal.Segments(),
		"truncatedBytes", e.recovery.TruncatedBytes,
	)
}

// ready returns the 503 body to serve when the engine cannot accept
// stream traffic yet (replay in progress) or ever (replay failed), nil
// when it is serving.
func (e *streamEngine) ready() *streamUnavailableJSON {
	if e.replaying.Load() {
		return &streamUnavailableJSON{Error: "wal replay in progress, retry shortly", Replaying: true}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.replayErr != nil {
		return &streamUnavailableJSON{Error: "wal replay failed: " + e.replayErr.Error()}
	}
	return nil
}

// streamUnavailableJSON is the 503 body of streaming endpoints.
type streamUnavailableJSON struct {
	Error     string `json:"error"`
	Replaying bool   `json:"replaying,omitempty"`
}

// ingestResult describes one acked batch.
type ingestResult struct {
	acked   int
	seq     uint64
	segment string
	durable bool
	epoch   int
}

// errNotDurable wraps WAL failures so the handler can answer 503 (the
// data is not safe; the client must retry) instead of 422.
var errNotDurable = errors.New("drevald: batch not durable")

// ingest makes one validated batch durable and folds it into the view
// and every registered aggregate, all under one lock hold so the WAL
// order equals the fold order. The records MUST already have passed
// Trace.Validate — ViewBuilder.Append applies the identical checks, so
// post-WAL validation failures are impossible and the WAL never holds
// a batch replay would reject.
func (e *streamEngine) ingest(flat []traceio.FlatRecord, trace core.Trace[traceio.FlatContext, string]) (ingestResult, error) {
	payload := traceio.EncodeBatch(nil, flat)
	e.mu.Lock()
	defer e.mu.Unlock()
	res, err := e.wal.Append(payload)
	if err != nil {
		walAppendErrorsTotal.Inc()
		return ingestResult{}, fmt.Errorf("%w: %v", errNotDurable, err)
	}
	from := e.builder.Len()
	for _, rec := range trace {
		if err := e.builder.Append(rec); err != nil {
			// Unreachable after Trace.Validate; if it ever fires the
			// in-memory state no longer matches the WAL, so fail loudly.
			return ingestResult{}, fmt.Errorf("drevald: durable batch rejected by view (state diverged, restart to replay): %v", err)
		}
	}
	e.records = append(e.records, trace...)
	snap := e.builder.Snapshot()
	for _, sp := range e.evals {
		if err := sp.eval.Apply(snap, from); err != nil {
			return ingestResult{}, fmt.Errorf("drevald: folding batch into %s: %v", sp.fingerprint, err)
		}
	}
	epoch := e.builder.Len()
	ingestBatchesTotal.Inc()
	ingestRecordsTotal.Add(uint64(len(trace)))
	streamEpochGauge.Set(float64(epoch))
	walBytesGauge.Set(float64(e.wal.Bytes()))
	walSegmentsGauge.Set(float64(e.wal.Segments()))
	e.maybeRefreshBiasLocked(snap, epoch)
	return ingestResult{
		acked:   len(trace),
		seq:     res.Seq,
		segment: res.Segment,
		durable: res.Synced,
		epoch:   epoch,
	}, nil
}

// maybeRefreshBiasLocked reruns the bias observatory over the streamed
// view every cfg.BiasRefresh ingested records, publishing to the same
// lastBias/metrics surface the request path uses — live bias windows
// over the stream instead of per-request traces. The O(n) compute runs
// off the ingest path; at most one refresh is in flight.
func (e *streamEngine) maybeRefreshBiasLocked(snap *core.TraceView[traceio.FlatContext, string], epoch int) {
	if e.cfg.BiasRefresh <= 0 || biasWindows <= 0 || len(e.evals) == 0 {
		return
	}
	if epoch-e.lastBiasEpoch < e.cfg.BiasRefresh {
		return
	}
	sp := e.oldestPolicyLocked()
	if !e.biasBusy.CompareAndSwap(false, true) {
		return // previous refresh still running; next batch retries
	}
	e.lastBiasEpoch = epoch
	go func() {
		defer recoverGoroutine("bias-refresh")
		defer e.biasBusy.Store(false)
		e.refreshBias(snap, sp, epoch)
	}()
}

// oldestPolicyLocked picks the registered policy with the smallest
// model epoch (ties broken by fingerprint) — a deterministic choice of
// whose lens the streamed observatory report uses.
func (e *streamEngine) oldestPolicyLocked() *streamPolicy {
	var best *streamPolicy
	for _, sp := range e.evals {
		if best == nil || sp.modelEpoch < best.modelEpoch ||
			(sp.modelEpoch == best.modelEpoch && sp.fingerprint < best.fingerprint) {
			best = sp
		}
	}
	return best
}

// refreshBias computes the windowed observatory report over one
// snapshot and publishes it (/debug/bias, /healthz biasGrade and the
// drevald_bias_* gauges), stamped with the epoch instead of a request.
func (e *streamEngine) refreshBias(snap *core.TraceView[traceio.FlatContext, string], sp *streamPolicy, epoch int) {
	report, err := biasobs.Compute(snap, sp.policy, biasobs.Config{
		Windows:        biasWindows,
		DriftThreshold: biasDriftThreshold,
	})
	if err != nil {
		srvLog.Warn("stream bias refresh failed", "epoch", epoch, "err", err)
		return
	}
	lastBias.Store(&biasState{report: report, requestID: fmt.Sprintf("ingest@epoch=%d", epoch), when: time.Now()})
	s := report.Summary()
	biasM.reports.Inc()
	biasM.alarms.Add(uint64(s.Alarms))
	biasM.grade.Set(gradeValue(s.Grade))
	biasM.minESS.Set(s.MinESSRatio)
	biasM.maxZero.Set(s.MaxZeroSupportFrac)
	biasM.windows.Set(float64(s.Windows))
	if s.Grade != biasobs.GradeHealthy {
		srvLog.Warn("stream bias observatory", "epoch", epoch, "grade", s.Grade, "alarms", s.Alarms)
	}
}

// streamResult is one O(1) read of a fingerprint's aggregates.
type streamResult struct {
	est         core.StreamEstimates
	epoch       int
	modelEpoch  int
	fingerprint string
}

// evaluate serves one streamed query: it registers the (policy, clip)
// fingerprint on first use (one O(n) catch-up fold, holding the lock
// so no batch is missed or double-counted) and afterwards answers from
// running aggregates in O(1). refresh forces a re-registration —
// refitting the reward model at the current epoch, which resets
// staleness to zero.
func (e *streamEngine) evaluate(spec string, clip float64, refresh bool) (streamResult, error) {
	key := spec + "|clip=" + strconv.FormatFloat(clip, 'g', -1, 64)
	e.mu.Lock()
	defer e.mu.Unlock()
	sp, ok := e.evals[key]
	if !ok || refresh {
		if e.builder.Len() == 0 {
			return streamResult{}, errors.New("stream is empty: ingest records before evaluating without a trace")
		}
		policy, err := traceio.ParsePolicy(spec, e.records)
		if err != nil {
			return streamResult{}, err
		}
		snap := e.builder.Snapshot()
		model := core.FitTableView(snap)
		eval := core.NewStreamEval(policy, model, core.StreamOptions{Clip: clip})
		if err := eval.Apply(snap, 0); err != nil {
			return streamResult{}, err
		}
		sp = &streamPolicy{
			fingerprint: fmt.Sprintf("%s@%d", key, snap.Len()),
			spec:        spec,
			policy:      policy,
			model:       model,
			eval:        eval,
			modelEpoch:  snap.Len(),
		}
		e.evals[key] = sp
		streamPoliciesGauge.Set(float64(len(e.evals)))
		srvLog.Info("stream policy registered", "fingerprint", sp.fingerprint, "records", snap.Len())
	}
	est, err := sp.eval.Estimates()
	if err != nil {
		return streamResult{}, err
	}
	return streamResult{
		est:         est,
		epoch:       e.builder.Len(),
		modelEpoch:  sp.modelEpoch,
		fingerprint: sp.fingerprint,
	}, nil
}

// walJSON is the /healthz wal block.
type walJSON struct {
	Enabled         bool   `json:"enabled"`
	Replaying       bool   `json:"replaying"`
	ReplayError     string `json:"replayError,omitempty"`
	Epoch           int    `json:"epoch"`
	ReplayedRecords uint64 `json:"replayedRecords"`
	Frames          uint64 `json:"frames"`
	Segments        int    `json:"segments"`
	Bytes           int64  `json:"bytes"`
	TruncatedBytes  int64  `json:"truncatedBytes"`
	Fsync           string `json:"fsync"`
	Policies        int    `json:"policies"`
}

// status snapshots the engine for /healthz.
func (e *streamEngine) status() *walJSON {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := &walJSON{
		Enabled:         true,
		Replaying:       e.replaying.Load(),
		Epoch:           e.builder.Len(),
		ReplayedRecords: e.replayed.Load(),
		Frames:          e.wal.Seq(),
		Segments:        e.wal.Segments(),
		Bytes:           e.wal.Bytes(),
		TruncatedBytes:  e.recovery.TruncatedBytes,
		Fsync:           e.cfg.Fsync.String(),
		Policies:        len(e.evals),
	}
	if e.replayErr != nil {
		out.ReplayError = e.replayErr.Error()
	}
	return out
}

// close flushes and closes the WAL (shutdown path).
func (e *streamEngine) close() error {
	return e.wal.Close()
}

// ingestRequest is the POST /ingest body.
type ingestRequest struct {
	Records []traceio.FlatRecord `json:"records"`
}

// ingestResponse is the POST /ingest ack. Durable is true when the
// batch was fsynced before the ack (-fsync always); under interval or
// never policies it reports that durability is deferred.
type ingestResponse struct {
	Acked   int    `json:"acked"`
	Seq     uint64 `json:"seq"`
	Segment string `json:"segment"`
	Durable bool   `json:"durable"`
	Epoch   int    `json:"epoch"`
}

// handleIngest accepts one record batch, makes it durable, folds it
// into the streaming aggregates and acks with the new epoch. Ordered
// error surface: 404 streaming disabled, 503 replaying/not-durable,
// 413 oversized body, 400 malformed, 422 invalid records, 429 via the
// ingest limiter in the middleware.
func handleIngest(w http.ResponseWriter, r *http.Request) {
	eng := streamEng
	if eng == nil {
		httpError(w, http.StatusNotFound, "streaming ingestion disabled (-wal-dir not set)")
		return
	}
	if un := eng.ready(); un != nil {
		w.Header().Set("Retry-After", "1")
		writeJSONStatus(w, http.StatusServiceUnavailable, un)
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, ingestMaxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		httpError(w, code, "invalid request body: "+err.Error())
		return
	}
	if len(req.Records) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if err := validateFiniteRecords(req.Records); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	trace := traceio.ToCore(traceio.FlatTrace{Records: req.Records})
	if err := trace.Validate(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	root := obs.SpanFromContext(r.Context())
	res, err := timed(r.Context(), root, "durable_ingest", func() (ingestResult, error) {
		return eng.ingest(req.Records, trace)
	})
	if err != nil {
		if errors.Is(err, errNotDurable) {
			w.Header().Set("Retry-After", "1")
			writeJSONStatus(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if srvLog.Enabled(obs.LevelDebug) {
		srvLog.Debug("ingest", "id", requestID(r), "acked", res.acked, "seq", res.seq, "epoch", res.epoch)
	}
	wideevent.FromContext(r.Context()).SetWALAck(res.seq, res.epoch, res.segment, res.durable)
	writeJSON(w, ingestResponse{
		Acked:   res.acked,
		Seq:     res.seq,
		Segment: res.segment,
		Durable: res.durable,
		Epoch:   res.epoch,
	})
}

// streamMetaJSON is the metadata block every streamed response
// carries: which aggregate answered, how many records it covers and
// how stale its frozen reward model is.
type streamMetaJSON struct {
	Fingerprint string `json:"fingerprint"`
	Epoch       int    `json:"epoch"`
	ModelEpoch  int    `json:"modelEpoch"`
	// StalenessRecords is epoch − modelEpoch: how many records arrived
	// since the DM/DR reward model was frozen. Above -max-model-age the
	// response is degraded with a stale_aggregates reason.
	StalenessRecords int `json:"stalenessRecords"`
}

// handleStreamEvaluate serves /evaluate with an empty trace from the
// streaming aggregates: O(1) per request after the fingerprint's first
// use. SelfNormalize selects the SNIPS/SN-DR variants exactly as it
// does for the batch path; bootstrap and propensity estimation need
// the raw records and are rejected.
func handleStreamEvaluate(w http.ResponseWriter, r *http.Request, req *evalRequest) {
	eng := streamEng
	if un := eng.ready(); un != nil {
		w.Header().Set("Retry-After", "1")
		writeJSONStatus(w, http.StatusServiceUnavailable, un)
		return
	}
	if req.Options.Bootstrap != 0 {
		httpError(w, http.StatusBadRequest, "options.bootstrap is unavailable for streamed evaluation (send the trace inline to bootstrap)")
		return
	}
	if req.Options.EstimatePropensities {
		httpError(w, http.StatusBadRequest, "options.estimatePropensities is unavailable for streamed evaluation (propensities must be logged at ingest)")
		return
	}
	root := obs.SpanFromContext(r.Context())
	sr, err := timed(r.Context(), root, "stream_evaluate", func() (streamResult, error) {
		return eng.evaluate(req.Policy, req.Options.Clip, req.Options.RefreshModel)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	est := sr.est
	ips, dr := est.IPS, est.DR
	if req.Options.SelfNormalize {
		ips, dr = est.SNIPS, est.SNDR
	}
	diag := est.Diagnostics
	staleness := sr.epoch - sr.modelEpoch
	evb := wideevent.FromContext(r.Context())
	evb.SetPolicy(req.Policy)
	evb.SetStream(sr.epoch, sr.modelEpoch, staleness)
	resp := evalResponse{
		DM:          toJSON(est.DM),
		IPS:         toJSON(ips),
		DR:          toJSON(dr),
		Diagnostics: diagJSON(diag),
		Stream: &streamMetaJSON{
			Fingerprint:      sr.fingerprint,
			Epoch:            sr.epoch,
			ModelEpoch:       sr.modelEpoch,
			StalenessRecords: staleness,
		},
	}
	evalESSRatio.Observe(diag.ESS / float64(diag.N))
	evalMaxWeight.Observe(diag.MaxWeight)
	evalZeroSupport.Observe(float64(diag.ZeroSupport))
	evb.SetRegime(diag.ESS/float64(diag.N), diag.MaxWeight, diag.ZeroSupport)
	reasons := degradeThresholds.Check(diag.N, diag.ESS, diag.MaxWeight, diag.ZeroSupport)
	if age := uint64(staleness); streamEng.cfg.MaxModelAge > 0 && age > streamEng.cfg.MaxModelAge {
		reasons = append(reasons, resilience.StaleAggregatesReason(age, streamEng.cfg.MaxModelAge))
	}
	reasons = append(reasons, sloDegradeReasons()...)
	if len(reasons) > 0 {
		root.Attr("degraded", "true")
		root.SetError("degraded: stream diagnostics crossed thresholds")
		// The O(1) fallback: the self-normalized IPS aggregate, which
		// needs no reward model and so cannot go stale.
		resp.Degraded = true
		resp.DegradedReasons = reasons
		resp.FallbackEstimator = "snips-stream"
		resp.Fallback = &fallbackJSON{Estimator: resp.FallbackEstimator, Estimate: toJSON(est.SNIPS)}
		evb.SetDegraded(reasonCodes(reasons))
		evb.SetFallback(resp.FallbackEstimator)
		degradedTotal.Inc()
		srvLog.Warn("degraded stream response", "id", requestID(r), "reasons", len(reasons))
	}
	writeJSON(w, resp)
}

// handleStreamDiagnose serves /diagnose with an empty trace from the
// same aggregates (the Diagnose block is part of the running state).
func handleStreamDiagnose(w http.ResponseWriter, r *http.Request, req *evalRequest) {
	eng := streamEng
	if un := eng.ready(); un != nil {
		w.Header().Set("Retry-After", "1")
		writeJSONStatus(w, http.StatusServiceUnavailable, un)
		return
	}
	root := obs.SpanFromContext(r.Context())
	sr, err := timed(r.Context(), root, "stream_diagnose", func() (streamResult, error) {
		return eng.evaluate(req.Policy, req.Options.Clip, req.Options.RefreshModel)
	})
	if err != nil {
		writeEvalError(w, err)
		return
	}
	evb := wideevent.FromContext(r.Context())
	evb.SetPolicy(req.Policy)
	evb.SetStream(sr.epoch, sr.modelEpoch, sr.epoch-sr.modelEpoch)
	writeJSON(w, diagnoseResponse{
		diagnosticsJSON: diagJSON(sr.est.Diagnostics),
		Stream: &streamMetaJSON{
			Fingerprint:      sr.fingerprint,
			Epoch:            sr.epoch,
			ModelEpoch:       sr.modelEpoch,
			StalenessRecords: sr.epoch - sr.modelEpoch,
		},
	})
}
