package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"drnet/internal/obs"
	"drnet/internal/parallel"
	"drnet/internal/resilience"
)

// The chaos suite: fault injection, cancellation, load shedding and
// degradation, all driven through the real HTTP surface. Every test is
// named TestChaos* so CI can run the suite alone under -race.

// withEvalLimiter swaps the global admission limiter and restores it.
func withEvalLimiter(t *testing.T, l *resilience.Limiter) {
	t.Helper()
	old := evalLimiter
	evalLimiter = l
	t.Cleanup(func() { evalLimiter = old })
}

// withRequestTimeout swaps the global per-request deadline and restores it.
func withRequestTimeout(t *testing.T, d time.Duration) {
	t.Helper()
	old := requestTimeout
	requestTimeout = d
	t.Cleanup(func() { requestTimeout = old })
}

// withThresholds swaps the global degradation thresholds and restores them.
func withThresholds(t *testing.T, th resilience.Thresholds) {
	t.Helper()
	old := degradeThresholds
	degradeThresholds = th
	t.Cleanup(func() { degradeThresholds = old })
}

// TestChaosCancelMidBootstrap is the acceptance test for end-to-end
// cancellation: a client abandons a large /evaluate mid-bootstrap; the
// pool must stop scheduling resample chunks (observed via the pool's
// cancelled-chunk counter) and the handler must finish promptly
// (observed via the route's in-flight gauge returning to zero long
// before the bootstrap could have completed).
func TestChaosCancelMidBootstrap(t *testing.T) {
	parallel.SetDefaultWorkers(2)
	defer parallel.SetDefaultWorkers(0)
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	// A large trace keeps the columnar bootstrap busy for seconds, so
	// the cancel lands mid-flight rather than after completion.
	body, err := json.Marshal(evalRequest{
		Trace:   testTraceJSONSized(t, false, 60000),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: maxBootstrapResamples, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}

	cancelled := obs.Default.Counter("obs_pool_cancelled_chunks_total")
	executed := obs.Default.Counter("obs_pool_tasks_total")
	inFlight := obs.Default.Gauge("drevald_http_in_flight", obs.L("route", "/evaluate"))
	cancelledBefore := cancelled.Value()
	executedBefore := executed.Value()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	clientErr := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request unexpectedly completed with status %d", resp.StatusCode)
		}
		clientErr <- err
	}()

	// Let the request reach the bootstrap, then abandon it. Waiting on
	// wall-clock alone is racy (the cancel could land while the handler
	// is still decoding JSON, before any pool dispatch), so wait until
	// the pool has executed well more chunks than every pre-bootstrap
	// phase combined (~30 chunks per estimator dispatch at this trace
	// size) — at that point the 10k-resample bootstrap is mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for inFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the handler")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for executed.Value() < executedBefore+200 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the bootstrap")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancelStart := time.Now()
	cancel()

	if err := <-clientErr; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context canceled", err)
	}

	// The handler must wind down promptly: in-flight back to zero well
	// within the couple of seconds a full 10k-resample bootstrap could
	// never fit in.
	for inFlight.Value() != 0 {
		if time.Since(cancelStart) > 5*time.Second {
			t.Fatalf("in-flight gauge still %g after cancel", inFlight.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And the pool must have observed the cancellation: chunks that were
	// queued but never scheduled are counted.
	waitDeadline := time.Now().Add(5 * time.Second)
	for cancelled.Value() == cancelledBefore {
		if time.Now().After(waitDeadline) {
			t.Fatal("pool cancelled-chunk counter never advanced")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosRequestTimeout: with a tiny -request-timeout, a heavy
// /evaluate answers 503 with the machine-readable timeout flag.
func TestChaosRequestTimeout(t *testing.T) {
	withRequestTimeout(t, time.Millisecond)
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: maxBootstrapResamples, Seed: 5},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var out evalErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Timeout || out.Error == "" {
		t.Fatalf("body %+v, want timeout:true with a message", out)
	}
}

// TestChaosLoadShedding: with a 1-slot, 0-queue limiter, a second
// concurrent request is shed with 429 + Retry-After and the shed
// counter ticks; after the slot frees, requests flow again.
func TestChaosLoadShedding(t *testing.T) {
	withEvalLimiter(t, resilience.NewLimiter(1, 0))
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	// Occupy the only compute slot directly.
	release, _, err := evalLimiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	shed := obs.Default.Counter("drevald_load_shed_total", obs.L("route", "/evaluate"))
	shedBefore := shed.Value()

	resp := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if shed.Value() != shedBefore+1 {
		t.Fatalf("shed counter %d, want %d", shed.Value(), shedBefore+1)
	}

	release()
	resp = post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release %d, want 200", resp.StatusCode)
	}
}

// TestChaosQueuedRequestProceeds: a request that finds all compute
// slots busy but queue room waits, then completes once the slot frees.
func TestChaosQueuedRequestProceeds(t *testing.T) {
	withEvalLimiter(t, resilience.NewLimiter(1, 1))
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	release, _, err := evalLimiter.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	status := make(chan int, 1)
	go func() {
		resp := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	// The request should be parked in the queue, not answered.
	select {
	case code := <-status:
		t.Fatalf("queued request answered %d before the slot freed", code)
	case <-time.After(100 * time.Millisecond):
	}
	release()
	select {
	case code := <-status:
		if code != http.StatusOK {
			t.Fatalf("queued request: status %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request never completed")
	}
}

// TestChaosPanicRecovery: an injected handler panic becomes a 500 and a
// drevald_panics_total tick; the server keeps serving afterwards.
func TestChaosPanicRecovery(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	panicsBefore := panicsTotal.Value()
	resilience.Activate(resilience.NewFaultPlan(11).
		Add("http/evaluate", resilience.FaultSpec{PanicProb: 1}))
	resp := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	resp.Body.Close()
	resilience.Deactivate()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if panicsTotal.Value() != panicsBefore+1 {
		t.Fatalf("panics counter %d, want %d", panicsTotal.Value(), panicsBefore+1)
	}
	// The process survived; the service keeps answering.
	r2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", r2.StatusCode)
	}
}

// TestChaosInjectedHandlerError: an injected fault (non-panic) at the
// HTTP boundary surfaces as a 500 with a JSON error, never a torn
// response.
func TestChaosInjectedHandlerError(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resilience.Activate(resilience.NewFaultPlan(12).
		Add("http/evaluate", resilience.FaultSpec{ErrProb: 1}))
	resp := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	resilience.Deactivate()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["error"] == "" {
		t.Fatal("500 without a JSON error body")
	}
}

// TestChaosPoolFaultSurfacesAsError: an injected fault inside a pool
// task fails the /evaluate with a structured error (422), not a panic
// or a hang.
func TestChaosPoolFaultSurfacesAsError(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resilience.Activate(resilience.NewFaultPlan(13).
		Add(resilience.PointPoolTask, resilience.FaultSpec{ErrProb: 1}))
	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 50, Seed: 3},
	})
	resilience.Deactivate()
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
}

// TestChaosFaultsOffByteDeterminism: activating and deactivating a
// fault plan leaves zero residue — the same request then produces a
// byte-identical body to one from a never-faulted server.
func TestChaosFaultsOffByteDeterminism(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	reqBody := evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 100, Seed: 11},
	}
	read := func() []byte {
		resp := post(t, srv, "/evaluate", reqBody)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := read()
	resilience.Activate(resilience.NewFaultPlan(17).
		Add(resilience.PointPoolTask, resilience.FaultSpec{LatencyProb: 0.5, Latency: time.Millisecond}))
	during := read() // latency-only faults must not change bytes
	resilience.Deactivate()
	after := read()
	if !bytes.Equal(during, want) {
		t.Fatal("latency-only fault plan changed response bytes")
	}
	if !bytes.Equal(after, want) {
		t.Fatal("response bytes differ after fault plan deactivation")
	}
}

// TestChaosDegradedResponse: when diagnostics cross the configured
// thresholds /evaluate still answers 200 with every requested estimate,
// tagged degraded with machine-readable reasons and a clipped-SNIPS
// fallback — and the whole degraded body is bit-deterministic across
// worker counts.
func TestChaosDegradedResponse(t *testing.T) {
	// A floor of 1.0 means any importance weighting at all (ESS < N)
	// trips degradation on the standard test trace.
	withThresholds(t, resilience.Thresholds{ESSRatioFloor: 1.0})
	defer parallel.SetDefaultWorkers(0)

	degradedBefore := degradedTotal.Value()
	reqBody := evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 50, Seed: 9},
	}
	var want []byte
	for _, w := range []int{1, 2, 8} {
		parallel.SetDefaultWorkers(w)
		srv := httptest.NewServer(newMux())
		resp := post(t, srv, "/evaluate", reqBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: degraded request must stay 200, got %d", w, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		srv.Close()
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: degraded response not byte-identical", w)
		}
	}
	var out evalResponse
	if err := json.Unmarshal(want, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Fatal("response not tagged degraded")
	}
	if len(out.DegradedReasons) == 0 || out.DegradedReasons[0].Code != resilience.ReasonESSRatio {
		t.Fatalf("degradedReasons = %+v, want ess_ratio_below_floor first", out.DegradedReasons)
	}
	if out.Fallback == nil || out.Fallback.Estimator != "snips-clip" || out.Fallback.Estimate.N != 400 {
		t.Fatalf("fallback = %+v, want snips-clip over 400 records", out.Fallback)
	}
	if out.DR.N != 400 || out.DRInterval == nil {
		t.Fatal("degraded response dropped the requested estimates")
	}
	if degradedTotal.Value() <= degradedBefore {
		t.Fatal("degraded counter did not advance")
	}
}

// TestChaosHealthyNotDegraded: a well-overlapped request must NOT
// degrade under the default thresholds — degradation is for
// pathological overlap, not every request. Evaluating constant:a, the
// logging policy's own modal decision (~73% of records), keeps all
// three diagnostics inside the default envelope, whereas constant:c
// (used by TestChaosDegradedResponse's threshold override) leaves ~89%
// of records with zero support.
func TestChaosHealthyNotDegraded(t *testing.T) {
	withThresholds(t, resilience.DefaultThresholds())
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:a"})
	defer resp.Body.Close()
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Degraded || out.Fallback != nil || len(out.DegradedReasons) != 0 {
		t.Fatalf("healthy trace degraded: %+v", out.DegradedReasons)
	}
}

// TestChaosShutdownDrainsUnderFaults: SIGTERM lands while several
// bootstrap-heavy requests are in flight AND a latency fault plan is
// slowing every pool task; all in-flight requests must still drain to
// 200, and the closed listener must refuse new connections quickly.
func TestChaosShutdownDrainsUnderFaults(t *testing.T) {
	url, stop, done := startTestServer(t)

	resilience.Activate(resilience.NewFaultPlan(19).
		Add(resilience.PointPoolTask, resilience.FaultSpec{LatencyProb: 0.25, Latency: time.Millisecond}))
	defer resilience.Deactivate()

	body, err := json.Marshal(evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 150, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resp, err := http.Post(url+"/evaluate", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			var out evalResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[c] = err
				return
			}
			statuses[c] = resp.StatusCode
		}(c)
	}

	time.Sleep(50 * time.Millisecond)
	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(drainTimeout + 5*time.Second):
		t.Fatal("server did not shut down under faulted load")
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if errs[c] != nil {
			t.Fatalf("client %d: %v", c, errs[c])
		}
		if statuses[c] != http.StatusOK {
			t.Fatalf("client %d: status %d, want 200", c, statuses[c])
		}
	}
	// Late request: the listener is closed, so this must fail fast at
	// the dial, not hang.
	lateStart := time.Now()
	if resp, err := http.Get(url + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("server accepted a connection after shutdown")
	}
	if time.Since(lateStart) > 2*time.Second {
		t.Fatal("late request did not fail fast")
	}
}

// TestChaosRejectsHostileInputs pins the input-hardening satellite at
// the HTTP layer: non-finite numerics and oversized bootstrap counts
// are 400s with actionable messages, not computation.
func TestChaosRejectsHostileInputs(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	good := testTraceJSON(t, false)
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			"bootstrap over cap",
			fmt.Sprintf(`{"trace":[{"features":[1],"decision":"a","reward":1,"propensity":0.5}],"policy":"constant:a","options":{"bootstrap":%d}}`, maxBootstrapResamples+1),
			"exceeds the maximum",
		},
		{
			"negative bootstrap",
			`{"trace":[{"features":[1],"decision":"a","reward":1,"propensity":0.5}],"policy":"constant:a","options":{"bootstrap":-1}}`,
			"must not be negative",
		},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/evaluate", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (body %s)", c.name, resp.StatusCode, buf.String())
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Fatalf("%s: body %q does not explain the rejection (%q)", c.name, buf.String(), c.want)
		}
	}
	_ = good
}

// TestChaosHealthzSurfacesResilienceConfig: /healthz reports the drain
// and request timeouts so orchestrators can size grace periods.
func TestChaosHealthzSurfacesResilienceConfig(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.DrainTimeoutSeconds != drainTimeout.Seconds() || out.DrainTimeoutSeconds <= 0 {
		t.Fatalf("drainTimeoutSeconds = %g, want %g", out.DrainTimeoutSeconds, drainTimeout.Seconds())
	}
	if out.RequestTimeoutSeconds != requestTimeout.Seconds() {
		t.Fatalf("requestTimeoutSeconds = %g, want %g", out.RequestTimeoutSeconds, requestTimeout.Seconds())
	}
}
