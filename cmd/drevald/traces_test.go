package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"drnet/internal/obs"
	"drnet/internal/resilience"
)

// tracesBody mirrors the /debug/traces response shape.
type tracesBody struct {
	Buffered int    `json:"buffered"`
	Recorded uint64 `json:"recorded"`
	Traces   []struct {
		Trace      string   `json:"trace"`
		Root       string   `json:"root"`
		DurationMs float64  `json:"durationMs"`
		Error      string   `json:"error"`
		Spans      spanNode `json:"spans"`
	} `json:"traces"`
}

type spanNode struct {
	Name          string            `json:"name"`
	Span          string            `json:"span"`
	StartOffsetMs float64           `json:"startOffsetMs"`
	DurationMs    float64           `json:"durationMs"`
	Attrs         map[string]string `json:"attrs"`
	Error         string            `json:"error"`
	Children      []spanNode        `json:"children"`
}

func getTraces(t *testing.T, srv *httptest.Server, query string) tracesBody {
	t.Helper()
	resp, err := http.Get(srv.URL + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces returned %d", resp.StatusCode)
	}
	var body tracesBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

// postWithID is post with an explicit X-Request-Id header.
func postWithID(t *testing.T, srv *httptest.Server, path, id string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestEvaluateTimelineEndToEnd is the tentpole acceptance test: a real
// /evaluate with a bootstrap, identified by the client's X-Request-Id,
// must come back from /debug/traces as a parent→child timeline whose
// root is the HTTP request and whose children are the evaluation
// phases, bootstrap included.
func TestEvaluateTimelineEndToEnd(t *testing.T) {
	// All-zero thresholds disable degradation: this test wants the
	// healthy timeline shape.
	withThresholds(t, resilience.Thresholds{})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	id := "e2e-trace-" + obs.NewID()
	resp := postWithID(t, srv, "/evaluate", id, evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 30, Seed: 3},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/evaluate returned %d", resp.StatusCode)
	}

	body := getTraces(t, srv, "?n=100")
	if body.Recorded == 0 || body.Buffered == 0 {
		t.Fatalf("recorder empty after a traced request: %+v", body)
	}
	var found *spanNode
	var rootDur float64
	for i := range body.Traces {
		if body.Traces[i].Trace == id {
			found = &body.Traces[i].Spans
			rootDur = body.Traces[i].DurationMs
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %s not in /debug/traces (got %d traces)", id, len(body.Traces))
	}
	if found.Name != "http/evaluate" {
		t.Fatalf("root span name = %q, want http/evaluate", found.Name)
	}
	if found.Attrs["route"] != "/evaluate" || found.Attrs["method"] != "POST" || found.Attrs["status"] != "200" {
		t.Fatalf("root attrs = %v", found.Attrs)
	}
	if found.Error != "" {
		t.Fatalf("healthy request recorded root error %q", found.Error)
	}

	children := map[string]spanNode{}
	for _, c := range found.Children {
		children[c.Name] = c
	}
	for _, phase := range []string{"diagnose", "fit_model", "direct_method", "ips", "doubly_robust", "drevald_bootstrap"} {
		c, ok := children[phase]
		if !ok {
			t.Fatalf("phase %q missing from timeline; children: %v", phase, childNames(found.Children))
		}
		if c.StartOffsetMs < 0 || c.DurationMs < 0 {
			t.Fatalf("phase %q has negative offset/duration: %+v", phase, c)
		}
		if c.DurationMs > rootDur+1 {
			t.Fatalf("phase %q (%.3fms) longer than its request (%.3fms)", phase, c.DurationMs, rootDur)
		}
	}
	if got := children["drevald_bootstrap"].Attrs["resamples"]; got != "30" {
		t.Fatalf("bootstrap resamples attr = %q, want 30", got)
	}
	// Children arrive in execution order: diagnose starts no later than
	// the bootstrap.
	if children["diagnose"].StartOffsetMs > children["drevald_bootstrap"].StartOffsetMs {
		t.Fatalf("diagnose (%.3fms) starts after bootstrap (%.3fms)",
			children["diagnose"].StartOffsetMs, children["drevald_bootstrap"].StartOffsetMs)
	}
}

func childNames(cs []spanNode) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

// TestDegradedRequestMarksSpanError: the degraded path is a 200 on the
// wire but an error in the trace — the root span must carry the
// degraded attribute, an error message, and a tick of
// obs_span_errors_total{span="http/evaluate"}.
func TestDegradedRequestMarksSpanError(t *testing.T) {
	withThresholds(t, resilience.Thresholds{ESSRatioFloor: 1.0})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	errsBefore := obs.Default.Counter("obs_span_errors_total", obs.L("span", "http/evaluate")).Value()
	id := "degraded-trace-" + obs.NewID()
	resp := postWithID(t, srv, "/evaluate", id, evalRequest{
		Trace:  testTraceJSON(t, false),
		Policy: "constant:c",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request must stay 200, got %d", resp.StatusCode)
	}

	body := getTraces(t, srv, "?n=100")
	var found *spanNode
	for i := range body.Traces {
		if body.Traces[i].Trace == id {
			found = &body.Traces[i].Spans
			break
		}
	}
	if found == nil {
		t.Fatalf("degraded trace %s not recorded", id)
	}
	if found.Attrs["degraded"] != "true" {
		t.Fatalf("root attrs missing degraded=true: %v", found.Attrs)
	}
	if !strings.Contains(found.Error, "degraded") {
		t.Fatalf("root error = %q, want a degraded message", found.Error)
	}
	has := false
	for _, c := range found.Children {
		if c.Name == "fallback" {
			has = true
		}
	}
	if !has {
		t.Fatalf("fallback phase missing from degraded timeline: %v", childNames(found.Children))
	}
	if after := obs.Default.Counter("obs_span_errors_total", obs.L("span", "http/evaluate")).Value(); after != errsBefore+1 {
		t.Fatalf("span error counter went %d → %d, want +1", errsBefore, after)
	}
}

// TestScrapeRoutesNotTraced: /metrics and /healthz must not consume
// ring slots — only compute routes are traced.
func TestScrapeRoutesNotTraced(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	before := traceRecorder.Recorded()
	for _, path := range []string{"/healthz", "/metrics", "/debug/vars", "/debug/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if after := traceRecorder.Recorded(); after != before {
		t.Fatalf("scrape routes recorded %d spans", after-before)
	}
}

// TestTraceSinkStreamsJSONL: a sink installed on the recorder (the
// -trace-out path) receives every completed span of a request as
// parseable JSON lines sharing the request's trace ID.
func TestTraceSinkStreamsJSONL(t *testing.T) {
	withThresholds(t, resilience.Thresholds{})
	var mu sync.Mutex
	var lines [][]byte
	traceRecorder.SetSink(func(line []byte) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, append([]byte(nil), line...))
	})
	defer traceRecorder.SetSink(nil)

	srv := httptest.NewServer(newMux())
	defer srv.Close()
	id := "sink-trace-" + obs.NewID()
	resp := postWithID(t, srv, "/evaluate", id, evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 10, Seed: 2},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/evaluate returned %d", resp.StatusCode)
	}
	// The sink is drained by a background goroutine; removing it
	// flushes every queued line before we inspect them.
	traceRecorder.SetSink(nil)

	mu.Lock()
	defer mu.Unlock()
	names := map[string]bool{}
	for _, line := range lines {
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("sink line not newline-terminated: %q", line)
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("sink line is not valid JSON: %v\n%s", err, line)
		}
		if rec.Trace == id {
			names[rec.Name] = true
		}
	}
	for _, want := range []string{"http/evaluate", "diagnose", "drevald_bootstrap"} {
		if !names[want] {
			t.Fatalf("span %q missing from JSONL export; got %v", want, names)
		}
	}
}

// TestDebugTracesOnBothMuxes: the endpoint is served on the service
// port and the debug port, and rejects a malformed n.
func TestDebugTracesOnBothMuxes(t *testing.T) {
	for name, mux := range map[string]http.Handler{"service": newMux(), "debug": newDebugMux()} {
		srv := httptest.NewServer(mux)
		resp, err := http.Get(srv.URL + "/debug/traces")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s mux: /debug/traces returned %d", name, resp.StatusCode)
		}
		resp, err = http.Get(srv.URL + "/debug/traces?n=bogus")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s mux: bogus n returned %d, want 400", name, resp.StatusCode)
		}
		srv.Close()
	}
}
