package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestMain silences access logs during tests unless -v is set, so
// failures stay readable. When re-executed with DREVALD_CRASH_CHILD=1
// the binary becomes a real drevald server instead (the crash-replay
// chaos suite SIGKILLs it mid-batch and replays its WAL).
func TestMain(m *testing.M) {
	if os.Getenv("DREVALD_CRASH_CHILD") == "1" {
		main()
		return
	}
	flag.Parse()
	if !testing.Verbose() {
		srvLog.SetOutput(io.Discard)
	}
	os.Exit(m.Run())
}

func TestHealthzFields(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out healthJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" {
		t.Fatalf("status field %q", out.Status)
	}
	if out.UptimeSeconds < 0 {
		t.Fatalf("uptimeSeconds %g", out.UptimeSeconds)
	}
	if out.Version == "" {
		t.Fatal("version missing")
	}
}

func TestUnknownRoute(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestWrongMethod(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	for path, method := range map[string]string{
		"/healthz":  http.MethodPost,
		"/diagnose": http.MethodGet,
		"/metrics":  http.MethodPost,
	} {
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", method, path, resp.StatusCode)
		}
	}
}

func TestOversizedBody(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 1024
	defer func() { maxBodyBytes = old }()
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	// Valid JSON well past the limit, so the decoder reads through the
	// MaxBytesReader cap instead of bailing on a syntax error first.
	big, err := json.Marshal(evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(big)) <= maxBodyBytes {
		t.Fatalf("test body %d bytes not over the %d limit", len(big), maxBodyBytes)
	}
	resp, err := http.Post(srv.URL+"/evaluate", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("413 body not JSON: %v", err)
	}
	if out["error"] == "" {
		t.Fatal("413 body missing error field")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	// Client-supplied ID is echoed back.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-42" {
		t.Fatalf("echoed id %q", got)
	}
	// Absent ID: one is generated.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); len(got) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", got)
	}
}

// scrapeMetrics fetches /metrics and returns every sample as
// name{labels} → value, failing the test on any unparseable line.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint asserts the exposition parses, includes the
// acceptance-criteria families from every layer (HTTP middleware,
// estimator regime, worker pool), and increases monotonically across
// requests.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	// One successful evaluation populates the eval + bootstrap series.
	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 20},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}

	before := scrapeMetrics(t, srv.URL)
	evalKey := `drevald_http_requests_total{code="2xx",route="/evaluate"}`
	for _, key := range []string{
		evalKey,
		`drevald_http_request_seconds_count{route="/evaluate"}`,
		`drevald_eval_ess_ratio_count`,
		`drevald_eval_max_weight_count`,
		`drevald_eval_zero_support_count`,
		`drevald_bootstrap_resamples_total`,
		`drevald_bootstrap_skipped_total`,
		`obs_pool_tasks_total`,
		`obs_pool_default_workers`,
		`obs_span_seconds_count{span="drevald_bootstrap"}`,
	} {
		if _, ok := before[key]; !ok {
			t.Fatalf("metrics missing %s", key)
		}
	}
	if before[evalKey] < 1 {
		t.Fatalf("%s = %g, want >= 1", evalKey, before[evalKey])
	}
	if before[`drevald_bootstrap_resamples_total`] < 20 {
		t.Fatalf("bootstrap resamples = %g, want >= 20", before[`drevald_bootstrap_resamples_total`])
	}

	// Metrics are cumulative: another request strictly increases the
	// request counter and never decreases any counter family.
	resp = post(t, srv, "/evaluate", evalRequest{
		Trace:  testTraceJSON(t, false),
		Policy: "constant:c",
	})
	resp.Body.Close()
	after := scrapeMetrics(t, srv.URL)
	if after[evalKey] != before[evalKey]+1 {
		t.Fatalf("%s went %g → %g, want +1", evalKey, before[evalKey], after[evalKey])
	}
	for _, key := range []string{
		`drevald_http_request_seconds_count{route="/evaluate"}`,
		`drevald_eval_ess_ratio_count`,
		`obs_pool_tasks_total`,
	} {
		if after[key] < before[key] {
			t.Fatalf("%s decreased: %g → %g", key, before[key], after[key])
		}
	}
}

func TestDebugVars(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Version       string         `json:"version"`
		UptimeSeconds float64        `json:"uptimeSeconds"`
		Goroutines    int            `json:"goroutines"`
		Metrics       map[string]any `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version == "" || out.Goroutines < 1 || len(out.Metrics) == 0 {
		t.Fatalf("thin /debug/vars: %+v", out)
	}
}

// TestDebugMux exercises the opt-in -debug-addr surface: pprof index,
// plus the metrics twins.
func TestDebugMux(t *testing.T) {
	srv := httptest.NewServer(newDebugMux())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/metrics", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestBootstrapSkippedField: every bootstrap response reports the
// skipped-resample count (0 on a healthy trace), and responses without
// a bootstrap omit it.
func TestBootstrapSkippedField(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 30},
	})
	defer resp.Body.Close()
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.BootstrapSkipped == nil {
		t.Fatal("bootstrapSkipped missing from bootstrap response")
	}
	if *out.BootstrapSkipped != 0 {
		t.Fatalf("bootstrapSkipped = %d on a healthy trace", *out.BootstrapSkipped)
	}

	resp2 := post(t, srv, "/evaluate", evalRequest{
		Trace:  testTraceJSON(t, false),
		Policy: "constant:c",
	})
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "bootstrapSkipped") {
		t.Fatal("bootstrapSkipped present without a bootstrap")
	}
}

// TestIntervalJSONCamelCase pins the satellite fix: drInterval must
// serialize as lo/hi/level, not Lo/Hi/Level.
func TestIntervalJSONCamelCase(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 20},
	})
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if !strings.Contains(s, `"drInterval":{"lo":`) {
		t.Fatalf("drInterval not camelCase: %s", s)
	}
	for _, bad := range []string{`"Lo":`, `"Hi":`, `"Level":`} {
		if strings.Contains(s, bad) {
			t.Fatalf("capitalized interval key %s in: %s", bad, s)
		}
	}
}
