package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"drnet/internal/parallel"
)

// startTestServer boots the real serve/shutdown lifecycle (not
// httptest) on a loopback port and returns its base URL, the stop
// channel and a channel carrying run's exit error.
func startTestServer(t *testing.T) (url string, stop chan os.Signal, done chan error) {
	t.Helper()
	srv, err := newServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop = make(chan os.Signal, 1)
	done = make(chan error, 1)
	go func() { done <- srv.run(stop) }()
	url = "http://" + srv.addr()
	// Wait for the listener to accept.
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return url, stop, done
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server did not come up")
	return "", nil, nil
}

// TestGracefulShutdownDrainsInFlight is the SIGTERM regression test:
// a slow /evaluate (large bootstrap) is in flight when the signal
// arrives; the server must finish that request with 200 before run
// returns, and must refuse new connections afterwards.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	url, stop, done := startTestServer(t)

	body, err := json.Marshal(evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 250, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		ci     bool
		err    error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/evaluate", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out evalResponse
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		inFlight <- result{
			status: resp.StatusCode,
			ci:     decErr == nil && out.DRInterval != nil && out.DRInterval.Lo < out.DRInterval.Hi,
		}
	}()

	// Give the request time to reach the handler, then deliver SIGTERM —
	// the signal main registers alongside os.Interrupt. The bootstrap is
	// sized to outlast this sleep by a wide margin yet drain well inside
	// drainTimeout even under -race.
	time.Sleep(50 * time.Millisecond)
	stop <- syscall.SIGTERM

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(drainTimeout + 5*time.Second):
		t.Fatal("server did not shut down")
	}
	select {
	case r := <-inFlight:
		if r.err != nil {
			t.Fatalf("in-flight request failed: %v", r.err)
		}
		if r.status != http.StatusOK || !r.ci {
			t.Fatalf("in-flight request: status %d, valid CI %v", r.status, r.ci)
		}
	case <-time.After(time.Second):
		t.Fatal("in-flight request never completed")
	}
	// After shutdown the port must be closed.
	if resp, err := http.Get(url + "/healthz"); err == nil {
		resp.Body.Close()
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestEvaluateConcurrentStress hammers /evaluate from 32 concurrent
// clients, with bootstraps fanning out onto the shared worker pool
// inside each request. Run under `go test -race` this is the service's
// data-race canary, and it doubles as a determinism check: every client
// sends the same request and must get byte-identical bodies back.
func TestEvaluateConcurrentStress(t *testing.T) {
	url, stop, done := startTestServer(t)
	defer func() {
		stop <- syscall.SIGTERM
		<-done
	}()

	body, err := json.Marshal(evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 10, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}

	// 32 concurrent clients; per-request work is kept light so the
	// single-CPU -race run doesn't starve the accept loop past
	// ReadHeaderTimeout — the test targets races, not throughput.
	const clients = 32
	const requestsPerClient = 2
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < requestsPerClient; k++ {
				resp, err := http.Post(url+"/evaluate", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var buf bytes.Buffer
				_, err = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, buf.String())
					return
				}
				bodies[c] = buf.Bytes()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for c := 1; c < clients; c++ {
		if !bytes.Equal(bodies[c], bodies[0]) {
			t.Fatalf("client %d received a different response body under load", c)
		}
	}
}

// TestEvaluateDeterministicAcrossWorkerCounts asserts the full HTTP
// response — bootstrap interval included — is byte-identical when the
// pool runs 1, 2 or 8 workers wide.
func TestEvaluateDeterministicAcrossWorkerCounts(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	body, err := json.Marshal(evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 100, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, w := range []int{1, 2, 8} {
		parallel.SetDefaultWorkers(w)
		url, stop, done := startTestServer(t)
		resp, err := http.Post(url+"/evaluate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		stop <- syscall.SIGTERM
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d", w, resp.StatusCode)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("workers=%d: response differs from workers=1:\n%s\nvs\n%s", w, buf.String(), want)
		}
	}
}
