package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/traceio"
)

func testTraceJSON(t *testing.T, blankPropensities bool) []traceio.FlatRecord {
	return testTraceJSONSized(t, blankPropensities, 400)
}

// testTraceJSONSized builds an n-record valid trace; the chaos tests
// use large n so a full bootstrap takes long enough to cancel
// mid-flight even on the columnar hot path.
func testTraceJSONSized(t *testing.T, blankPropensities bool, n int) []traceio.FlatRecord {
	t.Helper()
	rng := mathx.NewRNG(1)
	old := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.4,
	}
	var ctxs []float64
	for i := 0; i < n; i++ {
		ctxs = append(ctxs, float64(rng.Intn(3)))
	}
	tr := core.CollectTrace(ctxs, old, func(x float64, d int) float64 {
		return x*float64(d+1) + rng.Normal(0, 0.1)
	}, rng)
	if blankPropensities {
		for i := range tr {
			tr[i].Propensity = 0
		}
	}
	ft := traceio.Flatten(tr,
		func(x float64) []float64 { return []float64{x} },
		func(d int) string { return []string{"a", "b", "c"}[d] })
	return ft.Records
}

func post(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, false),
		Policy:  "constant:c",
		Options: evalOptions{Bootstrap: 50},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.DR.N != 400 {
		t.Fatalf("DR.N = %d", out.DR.N)
	}
	if out.DRInterval == nil || out.DRInterval.Lo >= out.DRInterval.Hi {
		t.Fatalf("bad CI %+v", out.DRInterval)
	}
	if out.Diagnostics.N != 400 || out.Diagnostics.ESS <= 0 {
		t.Fatalf("bad diagnostics %+v", out.Diagnostics)
	}
	// Sanity: evaluating constant:c on this world should land near the
	// true value E[3x] = 3 (x uniform on {0,1,2} → mean 1 → 3).
	if out.DR.Value < 2 || out.DR.Value > 4 {
		t.Fatalf("implausible DR value %g", out.DR.Value)
	}
}

func TestEvaluateEstimatesPropensities(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	// Without estimation: 400.
	resp := post(t, srv, "/evaluate", evalRequest{
		Trace:  testTraceJSON(t, true),
		Policy: "constant:c",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	// With estimation: 200.
	resp = post(t, srv, "/evaluate", evalRequest{
		Trace:   testTraceJSON(t, true),
		Policy:  "constant:c",
		Options: evalOptions{EstimatePropensities: true},
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
}

func TestDiagnoseEndpoint(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	resp := post(t, srv, "/diagnose", evalRequest{
		Trace:  testTraceJSON(t, false),
		Policy: "best-observed",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out diagnosticsJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.N != 400 {
		t.Fatalf("N = %d", out.N)
	}
}

func TestEvaluateBadRequests(t *testing.T) {
	srv := httptest.NewServer(newMux())
	defer srv.Close()
	cases := []struct {
		name string
		body any
	}{
		{"empty trace", evalRequest{Policy: "constant:c"}},
		{"bad policy", evalRequest{Trace: testTraceJSON(t, false), Policy: "wat"}},
	}
	for _, c := range cases {
		resp := post(t, srv, "/evaluate", c.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/evaluate", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /evaluate: status %d, want 405", resp.StatusCode)
	}
}
