package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drnet/internal/parallel"
	"drnet/internal/resilience"
	"drnet/internal/slo"
	"drnet/internal/wideevent"
)

// eventClock is a hand-advanced clock for deterministic journals and
// SLO engines.
type eventClock struct {
	mu sync.Mutex
	t  time.Time
}

func newEventClock() *eventClock {
	return &eventClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *eventClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *eventClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// withEventJournal swaps in a fresh journal (observer wired to the
// current SLO engine, like production) and restores on cleanup.
func withEventJournal(t *testing.T, opts wideevent.Options) *wideevent.Journal {
	t.Helper()
	old := eventJournal
	j := newEventJournal(opts)
	eventJournal = j
	t.Cleanup(func() { eventJournal = old })
	return j
}

// withSLOEngine swaps in an engine on the given clock with the
// production transition hook, restoring the engine and clearing the
// active-page set on cleanup.
func withSLOEngine(t *testing.T, cfg slo.Config, now func() time.Time) *slo.Engine {
	t.Helper()
	eng, err := slo.New(cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetHook(sloTransition)
	old := sloEngine
	sloEngine = eng
	t.Cleanup(func() {
		sloEngine = old
		sloPageMu.Lock()
		sloPages = map[string]resilience.Reason{}
		sloPageMu.Unlock()
	})
	return eng
}

// postRawWithID POSTs raw (possibly malformed) bytes with a pinned
// X-Request-Id; postWithID (traces_test.go) covers the well-formed
// cases.
func postRawWithID(t *testing.T, srv *httptest.Server, path, id string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func findEvent(evs []*wideevent.Event, id string) *wideevent.Event {
	for _, ev := range evs {
		if ev.RequestID == id {
			return ev
		}
	}
	return nil
}

// TestOneEventPerRequest is the exactly-one invariant, end to end:
// every /evaluate, /diagnose and /ingest request — success or error —
// emits exactly one wide event, and untraced routes emit none.
func TestOneEventPerRequest(t *testing.T) {
	clock := newEventClock()
	j := withEventJournal(t, wideevent.Options{Capacity: 64, SampleRate: 1, Seed: 1, Now: clock.Now})
	withStreamEngine(t, streamConfig{SegmentBytes: 4096})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	evalBody := marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c", Options: evalOptions{Bootstrap: 30, Seed: 3}})

	resp := postRawWithID(t, srv, "/evaluate", "ev-ok", evalBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}
	if got := j.Stats().Emitted; got != 1 {
		t.Fatalf("emitted = %d after one /evaluate, want 1", got)
	}

	resp = postRawWithID(t, srv, "/diagnose", "dg-ok", marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"}))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagnose status %d", resp.StatusCode)
	}

	resp = postRawWithID(t, srv, "/evaluate", "ev-bad", []byte("{not json"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-body status %d, want 400", resp.StatusCode)
	}

	ingBody := marshal(t, ingestRequest{Records: testTraceJSON(t, false)})
	resp = postRawWithID(t, srv, "/ingest", "ing-ok", ingBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	if got := j.Stats().Emitted; got != 4 {
		t.Fatalf("emitted = %d after four traced requests, want 4", got)
	}

	// Untraced routes emit nothing.
	if code, _ := getBody(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if code, _ := getBody(t, srv, "/debug/events"); code != http.StatusOK {
		t.Fatalf("debug/events status %d", code)
	}
	if got := j.Stats().Emitted; got != 4 {
		t.Fatalf("emitted = %d after untraced requests, want still 4", got)
	}

	evs := j.Events()
	ok := findEvent(evs, "ev-ok")
	if ok == nil {
		t.Fatal("no event for ev-ok")
	}
	if ok.Route != "/evaluate" || ok.Status != 200 || ok.Policy != "constant:c" {
		t.Fatalf("ev-ok = %+v", ok)
	}
	if ok.ESSRatio <= 0 || ok.ESSRatio > 1 {
		t.Fatalf("ev-ok essRatio = %g", ok.ESSRatio)
	}
	if ok.BiasGrade == "" {
		t.Fatalf("ev-ok biasGrade empty (observatory on by default)")
	}
	if ok.BootstrapResamples != 30 {
		t.Fatalf("ev-ok bootstrapResamples = %d, want 30", ok.BootstrapResamples)
	}
	for _, phase := range []string{"build_view", "diagnose", "ips", "drevald_bootstrap"} {
		if _, present := ok.PhaseMs[phase]; !present {
			t.Fatalf("ev-ok phaseMs missing %q: %v", phase, ok.PhaseMs)
		}
	}
	bad := findEvent(evs, "ev-bad")
	if bad == nil || bad.Status != 400 || bad.Error == "" {
		t.Fatalf("ev-bad = %+v, want status 400 with error", bad)
	}
	ing := findEvent(evs, "ing-ok")
	if ing == nil {
		t.Fatal("no event for ing-ok")
	}
	// Seq is 0-based (first batch acks 0); epoch counts records.
	if ing.WALEpoch != 400 || ing.WALSegment == "" || !ing.WALDurable {
		t.Fatalf("ing-ok WAL ack = epoch %d segment %q durable %v", ing.WALEpoch, ing.WALSegment, ing.WALDurable)
	}
}

// TestStreamedEventAnnotations covers the aggregate-served path: the
// wide event carries stream epoch/staleness and the canonical
// fallback estimator name when degraded.
func TestStreamedEventAnnotations(t *testing.T) {
	clock := newEventClock()
	j := withEventJournal(t, wideevent.Options{Capacity: 64, SampleRate: 1, Seed: 1, Now: clock.Now})
	withStreamEngine(t, streamConfig{SegmentBytes: 4096, MaxModelAge: 1})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	records := testTraceJSON(t, false)
	resp := postRawWithID(t, srv, "/ingest", "ing-1", marshal(t, ingestRequest{Records: records}))
	resp.Body.Close()
	// Register the fingerprint at the current epoch, then ingest more so
	// the model goes stale past -max-model-age.
	resp = postRawWithID(t, srv, "/evaluate", "sev-fresh", marshal(t, evalRequest{Policy: "constant:c"}))
	resp.Body.Close()
	resp = postRawWithID(t, srv, "/ingest", "ing-2", marshal(t, ingestRequest{Records: records}))
	resp.Body.Close()
	resp = postRawWithID(t, srv, "/evaluate", "sev-stale", marshal(t, evalRequest{Policy: "constant:c"}))
	defer resp.Body.Close()
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.FallbackEstimator != "snips-stream" {
		t.Fatalf("stale stream response = degraded %v fallbackEstimator %q", out.Degraded, out.FallbackEstimator)
	}
	ev := findEvent(j.Events(), "sev-stale")
	if ev == nil {
		t.Fatal("no event for sev-stale")
	}
	if !ev.Streamed || ev.StreamEpoch != 2*len(records) || ev.StalenessRecords != len(records) {
		t.Fatalf("sev-stale stream fields = %+v", ev)
	}
	if !ev.Degraded || ev.FallbackEstimator != "snips-stream" {
		t.Fatalf("sev-stale degradation fields = degraded %v fallback %q", ev.Degraded, ev.FallbackEstimator)
	}
	for _, code := range ev.DegradedReasons {
		if code == resilience.ReasonStaleAggs {
			return
		}
	}
	t.Fatalf("sev-stale reasons %v missing %s", ev.DegradedReasons, resilience.ReasonStaleAggs)
}

// TestTailRetentionE2E proves the tail bias end to end: at sample
// rate 0 healthy requests are sampled out but error and degraded
// requests are always retained and queryable through the filters.
func TestTailRetentionE2E(t *testing.T) {
	clock := newEventClock()
	j := withEventJournal(t, wideevent.Options{Capacity: 64, SampleRate: 0, Seed: 1, Now: clock.Now})
	// All-zero thresholds disable intrinsic degradation so the three
	// warm-up requests really are healthy (the test trace's natural
	// zero-support would otherwise trip the default cap).
	withThresholds(t, resilience.Thresholds{})
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	evalBody := marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	for i := 0; i < 3; i++ {
		resp := postRawWithID(t, srv, "/evaluate", "healthy", evalBody)
		resp.Body.Close()
	}
	resp := postRawWithID(t, srv, "/evaluate", "broken", []byte("{"))
	resp.Body.Close()
	// An impossible ESS floor makes the next request degraded.
	degradeThresholds = resilience.Thresholds{ESSRatioFloor: 2}
	resp = postRawWithID(t, srv, "/evaluate", "degraded", evalBody)
	resp.Body.Close()

	st := j.Stats()
	if st.Emitted != 5 || st.SampledOut != 3 || st.Recorded != 2 {
		t.Fatalf("stats = %+v, want 5 emitted, 3 sampled out, 2 recorded", st)
	}
	if ev := findEvent(j.Events(), "healthy"); ev != nil {
		t.Fatalf("healthy event retained at rate 0: %+v", ev)
	}

	code, body := getBody(t, srv, "/debug/events?degraded=true")
	if code != http.StatusOK {
		t.Fatalf("filter status %d", code)
	}
	var q struct {
		Stats  wideevent.Stats    `json:"stats"`
		Events []*wideevent.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	if len(q.Events) != 1 || q.Events[0].RequestID != "degraded" {
		t.Fatalf("degraded=true returned %+v", q.Events)
	}
	code, body = getBody(t, srv, "/debug/events?status=400")
	if code != http.StatusOK || !strings.Contains(body, `"broken"`) {
		t.Fatalf("status=400 filter: code %d body %s", code, body)
	}
}

// TestEventAndSLODeterministicAcrossWorkers locks the acceptance
// criterion: under a fixed clock, seed and pinned request IDs, the
// /debug/events and /debug/slo bodies are byte-identical at
// worker-pool widths 1, 2 and 8.
func TestEventAndSLODeterministicAcrossWorkers(t *testing.T) {
	evalBody := marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c", Options: evalOptions{Bootstrap: 40, Seed: 7}})
	diagBody := marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})

	oldWorkers := parallel.DefaultWorkers()
	t.Cleanup(func() { parallel.SetDefaultWorkers(oldWorkers) })

	var wantEvents, wantSLO string
	for _, workers := range []int{1, 2, 8} {
		parallel.SetDefaultWorkers(workers)
		clock := newEventClock()
		withEventJournal(t, wideevent.Options{Capacity: 64, SampleRate: 1, Seed: 42, Now: clock.Now})
		withSLOEngine(t, slo.DefaultConfig(), clock.Now)
		srv := httptest.NewServer(newMux())

		for i, id := range []string{"ev-0", "ev-1", "ev-2"} {
			resp := postRawWithID(t, srv, "/evaluate", id, evalBody)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("workers=%d evaluate %d status %d", workers, i, resp.StatusCode)
			}
		}
		resp := postRawWithID(t, srv, "/diagnose", "dg-0", diagBody)
		resp.Body.Close()
		resp = postRawWithID(t, srv, "/evaluate", "bad-0", []byte("{"))
		resp.Body.Close()

		_, events := getBody(t, srv, "/debug/events?limit=1000")
		_, sloBody := getBody(t, srv, "/debug/slo")
		srv.Close()

		if wantEvents == "" {
			wantEvents, wantSLO = events, sloBody
			continue
		}
		if events != wantEvents {
			t.Fatalf("workers=%d /debug/events differs:\n%s\n%s", workers, events, wantEvents)
		}
		if sloBody != wantSLO {
			t.Fatalf("workers=%d /debug/slo differs:\n%s\n%s", workers, sloBody, wantSLO)
		}
	}
	if !strings.Contains(wantSLO, `"availability"`) || !strings.Contains(wantSLO, `"state":"ok"`) {
		t.Fatalf("slo body missing expected shape: %s", wantSLO)
	}
}

// TestDegradeOnSLOPageEscalation drives the full escalation loop: a
// page-severity burn (observed by the engine, surfaced by Eval) tags
// subsequent /evaluate responses degraded with an slo_burn reason,
// and recovery clears the tag.
func TestDegradeOnSLOPageEscalation(t *testing.T) {
	clock := newEventClock()
	withEventJournal(t, wideevent.Options{Capacity: 64, SampleRate: 1, Seed: 1, Now: clock.Now})
	eng := withSLOEngine(t, slo.Config{
		Objectives:    []slo.Objective{{Name: "avail", Kind: slo.KindAvailability, Target: 0.9}},
		Windows:       []slo.Window{{Name: "fast", ShortSeconds: 60, LongSeconds: 300, Burn: 5, Severity: "page"}},
		BucketSeconds: 10,
	}, clock.Now)
	oldDegrade := degradeOnSLOPage
	degradeOnSLOPage = true
	t.Cleanup(func() { degradeOnSLOPage = oldDegrade })
	// Disable intrinsic degradation: the burn must be the only reason.
	withThresholds(t, resilience.Thresholds{})

	srv := httptest.NewServer(newMux())
	defer srv.Close()

	// Simulate an outage the engine observed: 60 seconds of 500s.
	for i := 0; i < 60; i++ {
		eng.Observe(&wideevent.Event{Route: "/evaluate", Status: 500})
		clock.Advance(time.Second)
	}
	// The state machine advances on Eval — a /debug/slo poll, exactly
	// as a scrape would.
	if _, body := getBody(t, srv, "/debug/slo"); !strings.Contains(body, `"state":"page"`) {
		t.Fatalf("slo state after outage: %s", body)
	}

	evalBody := marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"})
	resp := postRawWithID(t, srv, "/evaluate", "during-burn", evalBody)
	var out evalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Degraded || out.FallbackEstimator != "snips-clip" {
		t.Fatalf("during-burn = degraded %v fallback %q, want slo-degraded with fallback", out.Degraded, out.FallbackEstimator)
	}
	found := false
	for _, r := range out.DegradedReasons {
		if r.Code == resilience.ReasonSLOBurn {
			found = true
		}
	}
	if !found {
		t.Fatalf("during-burn reasons %+v missing %s", out.DegradedReasons, resilience.ReasonSLOBurn)
	}

	// Recovery: walk past every window, re-evaluate the machine, and
	// the tag clears.
	clock.Advance(400 * time.Second)
	if _, body := getBody(t, srv, "/debug/slo"); !strings.Contains(body, `"state":"ok"`) {
		t.Fatalf("slo state after recovery: %s", body)
	}
	resp = postRawWithID(t, srv, "/evaluate", "after-recovery", evalBody)
	out = evalResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.Degraded {
		t.Fatalf("after-recovery still degraded: %+v", out.DegradedReasons)
	}
}

// TestHealthzAndVarsCarryJournal checks the rollup satellites: the
// /healthz body carries the journal counters and SLO grade, and
// /debug/vars carries the journal stats block.
func TestHealthzAndVarsCarryJournal(t *testing.T) {
	clock := newEventClock()
	withEventJournal(t, wideevent.Options{Capacity: 16, SampleRate: 1, Seed: 1, Now: clock.Now})
	withSLOEngine(t, slo.DefaultConfig(), clock.Now)
	srv := httptest.NewServer(newMux())
	defer srv.Close()

	resp := postRawWithID(t, srv, "/evaluate", "h-1", marshal(t, evalRequest{Trace: testTraceJSON(t, false), Policy: "constant:c"}))
	resp.Body.Close()

	_, body := getBody(t, srv, "/healthz")
	var h healthJSON
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Events == nil || h.Events.Emitted != 1 || h.Events.Recorded != 1 {
		t.Fatalf("healthz events = %+v", h.Events)
	}
	if h.SLO != "ok" {
		t.Fatalf("healthz slo = %q", h.SLO)
	}

	_, body = getBody(t, srv, "/debug/vars")
	var vars struct {
		Events *wideevent.Stats `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatal(err)
	}
	// /healthz itself is untraced, so the count is unchanged.
	if vars.Events == nil || vars.Events.Emitted != 1 {
		t.Fatalf("debug/vars events = %+v", vars.Events)
	}
}
