package main

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"drnet/internal/biasobs"
	"drnet/internal/changepoint"
	"drnet/internal/core"
	"drnet/internal/obs"
	"drnet/internal/traceio"
)

// Bias-observatory knobs, flag-configured in main (-bias-windows,
// -bias-drift-threshold, -degrade-on-drift). Package variables so the
// lifecycle tests can tighten them, like the resilience knobs.
var (
	// biasWindows is how many index windows each request's trace is
	// sliced into for the windowed health pass; 0 disables the
	// observatory entirely (no traceHealth blocks, /debug/bias 404s).
	biasWindows = biasobs.DefaultWindows
	// biasDriftThreshold is the CUSUM decision threshold (σ units) for
	// the drift alarms on the per-window reward/ESS series.
	biasDriftThreshold = changepoint.DefaultThreshold
	// degradeOnDrift, when set, escalates a fired drift alarm into a
	// degraded:true /evaluate response with a trace_drift reason.
	degradeOnDrift = false
)

// biasState is the most recent request's observatory output, published
// for GET /debug/bias. drevald is stateless per request — the trace
// arrives in the POST body — so the observatory necessarily reports on
// the last trace observed, stamped with the request that carried it.
type biasState struct {
	report    *biasobs.Report
	requestID string
	when      time.Time
}

var lastBias atomic.Pointer[biasState]

// traceSummary describes the last trace view drevald built, surfaced
// on /healthz so operators can confirm what the server actually
// evaluated (and how long the columnar build took).
type traceSummary struct {
	records      int
	contexts     int
	decisions    int
	buildSeconds float64
	when         time.Time
}

var lastTraceSummary atomic.Pointer[traceSummary]

// biasMetrics is the drevald_bias_* family: report/alarm counters plus
// last-report gauges, so a fleet's estimator health is scrapeable
// without polling /debug/bias.
type biasMetrics struct {
	reports *obs.Counter
	alarms  *obs.Counter
	grade   *obs.Gauge
	minESS  *obs.Gauge
	maxZero *obs.Gauge
	windows *obs.Gauge
}

// registerBiasMetrics creates the family on r. Factored out of init so
// the OpenMetrics golden test can build the same family on a fresh
// registry with deterministic values.
func registerBiasMetrics(r *obs.Registry) biasMetrics {
	r.Help("drevald_bias_reports_total", "Bias-observatory reports computed (one per /evaluate or /diagnose request).")
	r.Help("drevald_bias_alarms_total", "Windowed drift alarms fired across all bias-observatory reports.")
	r.Help("drevald_bias_last_grade", "Health grade of the most recent report: 0 healthy, 1 watch, 2 drift.")
	r.Help("drevald_bias_last_min_ess_ratio", "Smallest per-window ESS/N in the most recent report.")
	r.Help("drevald_bias_last_max_zero_support", "Largest per-window zero-support fraction in the most recent report.")
	r.Help("drevald_bias_last_windows", "Window count of the most recent report.")
	return biasMetrics{
		reports: r.Counter("drevald_bias_reports_total"),
		alarms:  r.Counter("drevald_bias_alarms_total"),
		grade:   r.Gauge("drevald_bias_last_grade"),
		minESS:  r.Gauge("drevald_bias_last_min_ess_ratio"),
		maxZero: r.Gauge("drevald_bias_last_max_zero_support"),
		windows: r.Gauge("drevald_bias_last_windows"),
	}
}

var biasM = registerBiasMetrics(obs.Default)

// gradeValue maps the health grade onto the drevald_bias_last_grade
// gauge scale — biasobs.GradeRank, which the SLO engine's drift-free
// classification shares, so gauge and SLO can never rank a grade
// differently.
func gradeValue(grade string) float64 {
	return float64(biasobs.GradeRank(grade))
}

// observeBias runs the windowed observatory over the request's view as
// its own traced phase, publishes the report (for /debug/bias,
// /healthz and the drevald_bias_* gauges) and returns the compact
// summary embedded in the response body. Returns (nil, nil) when the
// observatory is disabled.
func observeBias(ctx context.Context, root *obs.Span, id string, view *core.TraceView[traceio.FlatContext, string], policy core.Policy[traceio.FlatContext, string]) (*biasobs.HealthSummary, error) {
	if biasWindows <= 0 {
		return nil, nil
	}
	report, err := timed(ctx, root, "bias_observatory", func() (*biasobs.Report, error) {
		return biasobs.ComputeCtx(ctx, view, policy, biasobs.Config{
			Windows:        biasWindows,
			DriftThreshold: biasDriftThreshold,
		})
	})
	if err != nil {
		return nil, err
	}
	lastBias.Store(&biasState{report: report, requestID: id, when: time.Now()})
	s := report.Summary()
	biasM.reports.Inc()
	biasM.alarms.Add(uint64(s.Alarms))
	biasM.grade.Set(gradeValue(s.Grade))
	biasM.minESS.Set(s.MinESSRatio)
	biasM.maxZero.Set(s.MaxZeroSupportFrac)
	biasM.windows.Set(float64(s.Windows))
	if s.Grade != biasobs.GradeHealthy {
		srvLog.Warn("bias observatory", "id", id, "grade", s.Grade, "alarms", s.Alarms)
	}
	return &s, nil
}

// recordTraceSummary publishes the view drevald just built for the
// /healthz lastTrace block.
func recordTraceSummary(view *core.TraceView[traceio.FlatContext, string], buildDur time.Duration) {
	lastTraceSummary.Store(&traceSummary{
		records:      view.Len(),
		contexts:     view.NumContexts(),
		decisions:    view.NumDecisions(),
		buildSeconds: buildDur.Seconds(),
		when:         time.Now(),
	})
}

// lastTraceJSON is the /healthz lastTrace block.
type lastTraceJSON struct {
	Records          int     `json:"records"`
	UniqueContexts   int     `json:"uniqueContexts"`
	UniqueDecisions  int     `json:"uniqueDecisions"`
	ViewBuildSeconds float64 `json:"viewBuildSeconds"`
	AgeSeconds       float64 `json:"ageSeconds"`
}

// biasResponse is the GET /debug/bias body: the full report plus the
// identity and age of the request it was computed for.
type biasResponse struct {
	RequestID  string  `json:"requestId"`
	AgeSeconds float64 `json:"ageSeconds"`
	*biasobs.Report
}

// handleBias serves the most recent bias-observatory report. 404 with
// a machine-readable error until the first /evaluate or /diagnose
// request arrives (or when the observatory is disabled).
func handleBias(w http.ResponseWriter, _ *http.Request) {
	if biasWindows <= 0 {
		httpError(w, http.StatusNotFound, "bias observatory disabled (-bias-windows 0)")
		return
	}
	st := lastBias.Load()
	if st == nil {
		httpError(w, http.StatusNotFound, biasobs.ErrNoView.Error())
		return
	}
	writeJSON(w, biasResponse{
		RequestID:  st.requestID,
		AgeSeconds: time.Since(st.when).Seconds(),
		Report:     st.report,
	})
}
