package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"drnet/internal/obs"
	"drnet/internal/resilience"
	"drnet/internal/wideevent"
)

// srvLog is the service's structured logger. Access logs and handler
// events go through it; tests swap the sink via SetOutput.
var srvLog = obs.NewLogger(os.Stderr, obs.LevelInfo)

// serverStart anchors the uptime reported by /healthz and /debug/vars.
var serverStart = time.Now()

// Request metrics, one series per route (pre-created at mux wiring so
// every series is visible on /metrics from the first scrape).
var httpRequestBuckets = obs.TimeBuckets

// Estimator-regime metrics exported per /evaluate request: the paper's
// §4.1 overlap diagnostics as live histograms, so an operator can see
// a fleet drifting into an untrustworthy regime (ESS/N collapsing,
// weight tails growing, zero-support counts rising) without inspecting
// individual responses.
var (
	evalESSRatio = obs.Default.Histogram("drevald_eval_ess_ratio",
		obs.ExpBuckets(1.0/1024, 2, 11)) // 1/1024 … 1
	evalMaxWeight = obs.Default.Histogram("drevald_eval_max_weight",
		obs.ExpBuckets(0.5, 2, 14)) // 0.5 … 4096
	evalZeroSupport = obs.Default.Histogram("drevald_eval_zero_support",
		obs.ExpBuckets(1, 4, 10)) // 1 … 262144
	bootResamples = obs.Default.Counter("drevald_bootstrap_resamples_total")
	bootSkipped   = obs.Default.Counter("drevald_bootstrap_skipped_total")
)

// Resilience metrics: how often the service degrades, sheds, times out
// or recovers a panic — the operator's view of every non-happy path.
var (
	panicsTotal   = obs.Default.Counter("drevald_panics_total")
	degradedTotal = obs.Default.Counter("drevald_degraded_total")
	timeoutsTotal = obs.Default.Counter("drevald_request_timeouts_total")
	canceledTotal = obs.Default.Counter("drevald_request_canceled_total")
)

// traceRecorder buffers the most recent completed spans for
// /debug/traces and the optional -trace-out JSONL export. 512 spans ≈
// a few hundred requests of history at a handful of spans each; memory
// is bounded by construction (the ring overwrites). -trace-buffer
// resizes it at startup.
var traceRecorder = obs.NewTraceRecorder(512)

// tracedRoutes marks the routes that get a root span per request. Only
// the compute routes are traced: scrapes of /metrics, /healthz and
// /debug/vars would otherwise flood the ring with sub-millisecond
// timelines and evict the requests worth debugging.
var tracedRoutes = map[string]bool{
	"/evaluate": true,
	"/diagnose": true,
	"/ingest":   true,
}

func init() {
	obs.Default.SetTraceRecorder(traceRecorder)
	obs.RegisterRuntimeMetrics(obs.Default)
	// JSONL-export loss counter: the sampler reads the registry's
	// current recorder, so the -trace-buffer replacement at startup is
	// covered.
	obs.RegisterTraceSinkMetrics(obs.Default)
	obs.Default.Help("obs_span_seconds", "Span durations by span name; bucket exemplars carry the trace ID.")
	obs.Default.Help("obs_span_errors_total", "Spans ended in error state, by span name.")
	obs.Default.Help("drevald_http_requests_total", "HTTP requests served, by route and status class.")
	obs.Default.Help("drevald_http_request_seconds", "HTTP request latency, by route.")
	obs.Default.Help("drevald_http_in_flight", "Requests currently being served, by route.")
	obs.Default.Help("drevald_eval_ess_ratio", "ESS/N of the importance weights per /evaluate request.")
	obs.Default.Help("drevald_eval_max_weight", "Largest importance weight per /evaluate request.")
	obs.Default.Help("drevald_eval_zero_support", "Zero-support record count per /evaluate request.")
	obs.Default.Help("drevald_bootstrap_resamples_total", "Bootstrap resamples attempted by /evaluate.")
	obs.Default.Help("drevald_bootstrap_skipped_total", "Bootstrap resamples skipped because the estimator failed.")
	obs.Default.Help("drevald_panics_total", "Handler panics recovered and converted into 500s.")
	obs.Default.Help("drevald_degraded_total", "Responses tagged degraded because overlap diagnostics crossed a threshold.")
	obs.Default.Help("drevald_request_timeouts_total", "Requests answered 503 because -request-timeout expired mid-computation.")
	obs.Default.Help("drevald_request_canceled_total", "Requests answered 503 because the client went away mid-computation.")
	obs.Default.Help("drevald_load_shed_total", "Requests shed with 429 because the admission queue was full, by route.")
	obs.Default.Help("drevald_queue_wait_seconds", "Time admitted requests spent waiting for a compute slot, by route.")
}

// reqIDKey carries the request ID through the request context.
type reqIDKey struct{}

// requestID returns the X-Request-Id assigned by the middleware, or ""
// outside an instrumented handler.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// statusRecorder captures the status code and body size a handler
// writes, for metrics and access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	// wrote tracks whether the handler produced any output, so the
	// panic-recovery middleware knows if a 500 can still be written.
	wrote bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// statusClass maps a status code to its Prometheus-friendly class label.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps a handler with the service middleware: request-ID
// generation/propagation (X-Request-Id in and out, plus the request
// context), per-route request counters by status class, a latency
// histogram, an in-flight gauge, and a structured access log line.
func instrument(route string, h http.HandlerFunc) http.Handler {
	latency := obs.Default.Histogram("drevald_http_request_seconds", httpRequestBuckets, obs.L("route", route))
	inFlight := obs.Default.Gauge("drevald_http_in_flight", obs.L("route", route))
	byClass := map[string]*obs.Counter{}
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		byClass[class] = obs.Default.Counter("drevald_http_requests_total",
			obs.L("route", route), obs.L("code", class))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewID()
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		// Compute routes get a root span whose trace ID is the request
		// ID, so /debug/traces timelines, histogram exemplars and access
		// logs all correlate on the same key. Handlers reach it through
		// the request context to hang child spans off each phase. The
		// span closes via defer so a panic that escapes this middleware
		// still commits it to metrics and timelines; the extra tail it
		// measures (metric update + access log) is microseconds.
		var span *obs.Span
		if tracedRoutes[route] {
			span = obs.Default.StartSpanWithID("http"+route, id).
				Attr("route", route).
				Attr("method", r.Method)
			r = r.WithContext(obs.ContextWithSpan(r.Context(), span))
			defer func() {
				span.Attr("status", fmt.Sprint(rec.status))
				if rec.status >= 500 {
					span.SetError(fmt.Sprintf("status %d", rec.status))
				}
				span.End()
			}()
			// The same routes emit exactly one wide event per request:
			// the middleware owns begin and finish, handlers only
			// annotate through the request context, and the deferred
			// Finish commits even when the handler panics (the recovery
			// below has already rewritten the status to 500 by then).
			evb := eventJournal.Begin(id, route)
			r = r.WithContext(wideevent.ContextWith(r.Context(), evb))
			defer func() {
				if rec.status >= 400 {
					evb.SetError(fmt.Sprintf("status %d", rec.status))
				}
				evb.Finish(rec.status)
			}()
		}

		inFlight.Inc()
		defer inFlight.Dec()
		start := time.Now()
		func() {
			// Panic recovery: a handler (or injected) panic becomes a
			// 500 and a drevald_panics_total tick instead of killing
			// the connection with an empty reply. If the handler
			// already wrote, the status is only corrected in the
			// metrics/logs — the wire bytes are gone.
			defer func() {
				if p := recover(); p != nil {
					panicsTotal.Inc()
					srvLog.Error("handler panic", "id", id, "route", route, "panic", fmt.Sprint(p))
					if !rec.wrote {
						httpError(rec, http.StatusInternalServerError, "internal server error")
					} else {
						rec.status = http.StatusInternalServerError
					}
				}
			}()
			// Chaos hook: lets the fault-injection test suite fail or
			// stall whole requests at the HTTP boundary (point
			// "http/<route>"); a no-op when no plan is active.
			if err := resilience.Inject("http" + route); err != nil {
				httpError(rec, http.StatusInternalServerError, err.Error())
				return
			}
			h(rec, r)
		}()
		dur := time.Since(start)

		latency.Observe(dur.Seconds())
		byClass[statusClass(rec.status)].Inc()
		srvLog.Info("request",
			"id", id,
			"method", r.Method,
			"route", route,
			"status", rec.status,
			"bytes", rec.bytes,
			"durMs", float64(dur.Microseconds())/1000,
		)
	})
}

// limited puts a handler behind the shared evalLimiter: up to
// -max-concurrent requests compute at once, -max-queue more wait for a
// slot (the wait is exported as drevald_queue_wait_seconds), and
// everything beyond that is shed immediately with 429 + Retry-After so
// overload degrades into fast, explicit rejections instead of a pile of
// slow timeouts. A client that gives up while queued gets the usual
// 503 cancellation body.
func limited(route string, h http.HandlerFunc) http.HandlerFunc {
	return limitedBy(func() *resilience.Limiter { return evalLimiter }, route, h)
}

// ingestLimiterFn resolves the ingest admission limiter per request,
// so tests that swap the package variable take effect immediately.
func ingestLimiterFn() *resilience.Limiter { return ingestLimiter }

// limitedBy is limited with an explicit limiter source: /ingest admits
// through its own limiter so writers and evaluators cannot starve each
// other. The limiter is resolved per request (late bound) because the
// lifecycle tests swap the package variables.
func limitedBy(limiter func() *resilience.Limiter, route string, h http.HandlerFunc) http.HandlerFunc {
	shed := obs.Default.Counter("drevald_load_shed_total", obs.L("route", route))
	queueWait := obs.Default.Histogram("drevald_queue_wait_seconds", httpRequestBuckets, obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		release, waited, err := limiter().Acquire(r.Context())
		if err != nil {
			if errors.Is(err, resilience.ErrSaturated) {
				shed.Inc()
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusTooManyRequests, "server saturated: concurrency and queue limits reached, retry later")
				return
			}
			writeEvalError(w, err)
			return
		}
		defer release()
		queueWait.Observe(waited.Seconds())
		h(w, r)
	}
}

// handleMetrics serves the process-wide registry in Prometheus text
// format — drevald's own request/eval metrics plus the parallel pool
// gauges, which register on the same default registry.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	obs.Default.MetricsHandler().ServeHTTP(w, r)
}

// handleVars is the JSON twin of /metrics: a full metric snapshot plus
// process vitals, in the spirit of expvar.
func handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"version":       obs.Version(),
		"uptimeSeconds": time.Since(serverStart).Seconds(),
		"goroutines":    runtime.NumGoroutine(),
		"workers":       runtime.GOMAXPROCS(0),
		"events":        eventJournal.Stats(),
		"metrics":       obs.Default.Snapshot(),
	})
}

// handleTraces serves the slowest recently-completed request timelines
// as JSON: GET /debug/traces?n=10 returns the n slowest traces in the
// ring, each a parent→child span tree with offsets, durations,
// attributes and error state.
func handleTraces(w http.ResponseWriter, r *http.Request) {
	traceRecorder.Handler().ServeHTTP(w, r)
}

// newDebugMux builds the opt-in debug listener's mux: pprof, plus
// /metrics, /debug/vars and /debug/traces so a scraper pointed at the
// debug port sees everything. Served on a separate address
// (-debug-addr) so profiling endpoints are never exposed on the
// service port.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /debug/vars", handleVars)
	mux.HandleFunc("GET /debug/traces", handleTraces)
	mux.HandleFunc("GET /debug/bias", handleBias)
	mux.HandleFunc("GET /debug/events", handleEvents)
	mux.HandleFunc("GET /debug/slo", handleSLO)
	return mux
}
