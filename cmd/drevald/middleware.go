package main

import (
	"context"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"drnet/internal/obs"
)

// srvLog is the service's structured logger. Access logs and handler
// events go through it; tests swap the sink via SetOutput.
var srvLog = obs.NewLogger(os.Stderr, obs.LevelInfo)

// serverStart anchors the uptime reported by /healthz and /debug/vars.
var serverStart = time.Now()

// Request metrics, one series per route (pre-created at mux wiring so
// every series is visible on /metrics from the first scrape).
var httpRequestBuckets = obs.TimeBuckets

// Estimator-regime metrics exported per /evaluate request: the paper's
// §4.1 overlap diagnostics as live histograms, so an operator can see
// a fleet drifting into an untrustworthy regime (ESS/N collapsing,
// weight tails growing, zero-support counts rising) without inspecting
// individual responses.
var (
	evalESSRatio = obs.Default.Histogram("drevald_eval_ess_ratio",
		obs.ExpBuckets(1.0/1024, 2, 11)) // 1/1024 … 1
	evalMaxWeight = obs.Default.Histogram("drevald_eval_max_weight",
		obs.ExpBuckets(0.5, 2, 14)) // 0.5 … 4096
	evalZeroSupport = obs.Default.Histogram("drevald_eval_zero_support",
		obs.ExpBuckets(1, 4, 10)) // 1 … 262144
	bootResamples = obs.Default.Counter("drevald_bootstrap_resamples_total")
	bootSkipped   = obs.Default.Counter("drevald_bootstrap_skipped_total")
)

func init() {
	obs.Default.Help("drevald_http_requests_total", "HTTP requests served, by route and status class.")
	obs.Default.Help("drevald_http_request_seconds", "HTTP request latency, by route.")
	obs.Default.Help("drevald_http_in_flight", "Requests currently being served, by route.")
	obs.Default.Help("drevald_eval_ess_ratio", "ESS/N of the importance weights per /evaluate request.")
	obs.Default.Help("drevald_eval_max_weight", "Largest importance weight per /evaluate request.")
	obs.Default.Help("drevald_eval_zero_support", "Zero-support record count per /evaluate request.")
	obs.Default.Help("drevald_bootstrap_resamples_total", "Bootstrap resamples attempted by /evaluate.")
	obs.Default.Help("drevald_bootstrap_skipped_total", "Bootstrap resamples skipped because the estimator failed.")
}

// reqIDKey carries the request ID through the request context.
type reqIDKey struct{}

// requestID returns the X-Request-Id assigned by the middleware, or ""
// outside an instrumented handler.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey{}).(string)
	return id
}

// statusRecorder captures the status code and body size a handler
// writes, for metrics and access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// statusClass maps a status code to its Prometheus-friendly class label.
func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps a handler with the service middleware: request-ID
// generation/propagation (X-Request-Id in and out, plus the request
// context), per-route request counters by status class, a latency
// histogram, an in-flight gauge, and a structured access log line.
func instrument(route string, h http.HandlerFunc) http.Handler {
	latency := obs.Default.Histogram("drevald_http_request_seconds", httpRequestBuckets, obs.L("route", route))
	inFlight := obs.Default.Gauge("drevald_http_in_flight", obs.L("route", route))
	byClass := map[string]*obs.Counter{}
	for _, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		byClass[class] = obs.Default.Counter("drevald_http_requests_total",
			obs.L("route", route), obs.L("code", class))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewID()
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id))

		inFlight.Inc()
		defer inFlight.Dec()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		dur := time.Since(start)

		latency.Observe(dur.Seconds())
		byClass[statusClass(rec.status)].Inc()
		srvLog.Info("request",
			"id", id,
			"method", r.Method,
			"route", route,
			"status", rec.status,
			"bytes", rec.bytes,
			"durMs", float64(dur.Microseconds())/1000,
		)
	})
}

// handleMetrics serves the process-wide registry in Prometheus text
// format — drevald's own request/eval metrics plus the parallel pool
// gauges, which register on the same default registry.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	obs.Default.MetricsHandler().ServeHTTP(w, r)
}

// handleVars is the JSON twin of /metrics: a full metric snapshot plus
// process vitals, in the spirit of expvar.
func handleVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"version":       obs.Version(),
		"uptimeSeconds": time.Since(serverStart).Seconds(),
		"goroutines":    runtime.NumGoroutine(),
		"workers":       runtime.GOMAXPROCS(0),
		"metrics":       obs.Default.Snapshot(),
	})
}

// newDebugMux builds the opt-in debug listener's mux: pprof, plus
// /metrics and /debug/vars so a scraper pointed at the debug port sees
// everything. Served on a separate address (-debug-addr) so profiling
// endpoints are never exposed on the service port.
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /debug/vars", handleVars)
	return mux
}

