package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"drnet/internal/traceio"
)

// FuzzParseEvalRequest throws arbitrary bytes at the /evaluate request
// decoder. The contract under fuzzing: malformed input yields an error,
// never a panic, and accepted input yields a non-nil trace and policy.
func FuzzParseEvalRequest(f *testing.F) {
	// A well-formed request as the seed the mutator grows from.
	valid, err := json.Marshal(evalRequest{
		Trace: []traceio.FlatRecord{
			{Features: []float64{1}, Decision: "a", Reward: 0.5, Propensity: 0.5},
			{Features: []float64{2}, Decision: "b", Reward: 1.0, Propensity: 0.5},
		},
		Policy:  "constant:a",
		Options: evalOptions{Bootstrap: 10, Seed: 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"trace":[],"policy":"constant:a"}`))
	f.Add([]byte(`{"trace":[{"features":[1],"decision":"a","reward":1,"propensity":0}],"policy":"constant:a"}`))
	f.Add([]byte(`{"trace":[{"features":[1],"decision":"a","reward":1,"propensity":2}],"policy":"best-observed"}`))
	f.Add([]byte(`{"trace":null,"policy":null}`))
	f.Add([]byte(`{"unknown":true}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"trace":[{"features":[1e309],"decision":"a","reward":1,"propensity":0.5}],"policy":"constant:a"}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, trace, policy, err := parseEvalRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil || trace != nil || policy != nil {
				t.Fatal("non-nil results alongside an error")
			}
			return
		}
		if req == nil || trace == nil || policy == nil {
			t.Fatal("nil results without an error")
		}
		if len(trace) == 0 {
			t.Fatal("accepted an empty trace")
		}
	})
}
