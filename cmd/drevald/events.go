package main

import (
	"net/http"
	"sort"
	"sync"

	"drnet/internal/obs"
	"drnet/internal/resilience"
	"drnet/internal/slo"
	"drnet/internal/wideevent"
)

// Wide-event journal + SLO engine wiring: every instrumented compute
// request (/evaluate, /diagnose, /ingest) emits exactly one flat
// canonical event into the journal; the SLO engine observes the full
// (pre-sampling) stream and turns it into multi-window burn rates and
// an ok → warning → page state machine. Queryable on the service and
// debug muxes as GET /debug/events (filter language) and GET
// /debug/slo; counters and gauges on /metrics; rollups on /healthz
// and /debug/vars.

// Event-journal knobs, flag-configured in main. Package variables so
// the lifecycle tests can swap in journals/engines with fixed clocks
// and seeds, like the resilience knobs.
var (
	// eventJournal retains the tail-biased sample of recent request
	// events for /debug/events (-events-buffer, -events-sample,
	// -events-slow-ms, -events-seed; -events-out adds JSONL export).
	eventJournal = newEventJournal(wideevent.Options{
		Capacity:   1024,
		SampleRate: 1,
		SlowMs:     250,
		Seed:       1,
	})
	// sloEngine evaluates the burn-rate objectives (-slo-config; the
	// DefaultConfig axes otherwise). Replaced wholesale at startup or
	// by tests — the journal observer resolves it per event.
	sloEngine = mustSLOEngine(slo.DefaultConfig())
	// degradeOnSLOPage, when set, escalates a page-severity budget
	// burn into degraded /evaluate responses with an slo_burn reason
	// until the burn clears (-degrade-on-slo-page).
	degradeOnSLOPage = false
)

// newEventJournal builds a journal whose observer feeds the CURRENT
// SLO engine — late bound, so tests that swap sloEngine and main's
// -slo-config replacement both take effect without rewiring.
func newEventJournal(opts wideevent.Options) *wideevent.Journal {
	j := wideevent.NewJournal(opts)
	j.Observe(func(ev *wideevent.Event) { sloEngine.Observe(ev) })
	return j
}

// mustSLOEngine builds an engine for a config known to be valid (the
// compiled-in default); main rebuilds from -slo-config with a proper
// error path.
func mustSLOEngine(cfg slo.Config) *slo.Engine {
	e, err := newSLOEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// newSLOEngine builds an engine on the wall clock with the transition
// hook attached.
func newSLOEngine(cfg slo.Config) (*slo.Engine, error) {
	e, err := slo.New(cfg, nil)
	if err != nil {
		return nil, err
	}
	e.SetHook(sloTransition)
	return e, nil
}

// sloPages tracks the objectives currently burning at page severity,
// so the degrade-on-slo-page escalation knows when the LAST page
// clears (several objectives can page at once).
var (
	sloPageMu sync.Mutex
	sloPages  = map[string]resilience.Reason{} // guarded by sloPageMu
)

// sloTransition is the engine hook: log every state change, count it,
// and maintain the active-page set that handlers fold into degraded
// responses when -degrade-on-slo-page is set.
func sloTransition(tr slo.Transition) {
	sloTransitionsTotal.Inc()
	srvLog.Warn("slo transition",
		"objective", tr.Objective,
		"from", tr.From.String(),
		"to", tr.To.String(),
		"window", tr.Window,
		"burn", tr.Burn,
	)
	sloPageMu.Lock()
	defer sloPageMu.Unlock()
	if tr.To == slo.StatePage {
		sloPages[tr.Objective] = resilience.SLOBurnReason(tr.Objective, tr.Burn, tr.Threshold)
	} else {
		delete(sloPages, tr.Objective)
	}
}

// sloDegradeReasons returns the active page-severity burn reasons in
// objective order (deterministic), or nil when -degrade-on-slo-page
// is off or nothing is paging. Burn state advances on Eval — scrapes,
// /debug/slo and /healthz — not per request, so the per-request cost
// here is one mutex hold over a tiny map.
func sloDegradeReasons() []resilience.Reason {
	if !degradeOnSLOPage {
		return nil
	}
	sloPageMu.Lock()
	defer sloPageMu.Unlock()
	if len(sloPages) == 0 {
		return nil
	}
	names := make([]string, 0, len(sloPages))
	for name := range sloPages {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]resilience.Reason, 0, len(names))
	for _, name := range names {
		out = append(out, sloPages[name])
	}
	return out
}

// reasonCodes projects degradation reasons onto their machine-readable
// codes — the wide event carries the codes, not the prose.
func reasonCodes(reasons []resilience.Reason) []string {
	out := make([]string, len(reasons))
	for i, r := range reasons {
		out[i] = r.Code
	}
	return out
}

var sloTransitionsTotal = obs.Default.Counter("drevald_slo_transitions_total")

func init() {
	obs.Default.Help("drevald_slo_transitions_total", "SLO alert state changes (ok, warning, page — any direction).")
	obs.Default.Help("drevald_slo_state", "Current alert state per objective: 0 ok, 1 warning, 2 page.")
	obs.Default.Help("drevald_slo_budget_remaining", "Unspent error-budget fraction over the longest window, per objective (negative = overspent).")
	obs.Default.Help("drevald_events_emitted_total", "Wide events emitted by completed requests (before tail sampling).")
	obs.Default.Help("drevald_events_sampled_out_total", "Healthy wide events dropped by tail-biased sampling (-events-sample).")
	obs.Default.Help("drevald_events_sink_dropped_total", "Wide-event JSONL lines dropped because the -events-out queue was full.")
	// Journal counters ride the shared loss-counter shape: eagerly
	// created, synced at scrape time from the CURRENT journal (the
	// flag-driven rebuild in main and test swaps are both covered).
	obs.RegisterLossCounter(obs.Default, "drevald_events_emitted_total",
		"Wide events emitted by completed requests (before tail sampling).",
		func() (uint64, bool) { return eventJournal.Stats().Emitted, eventJournal != nil })
	obs.RegisterLossCounter(obs.Default, "drevald_events_sampled_out_total",
		"Healthy wide events dropped by tail-biased sampling (-events-sample).",
		func() (uint64, bool) { return eventJournal.Stats().SampledOut, eventJournal != nil })
	obs.RegisterLossCounter(obs.Default, "drevald_events_sink_dropped_total",
		"Wide-event JSONL lines dropped because the -events-out queue was full.",
		func() (uint64, bool) { return eventJournal.SinkDropped(), eventJournal != nil })
	// SLO gauges refresh at scrape time: one Eval per scrape also
	// advances the alert state machine, so burn state converges even
	// when nobody polls /debug/slo.
	obs.Default.RegisterSampler(func() {
		eng := sloEngine
		if eng == nil {
			return
		}
		rep := eng.Eval()
		for _, o := range rep.Objectives {
			st, _ := slo.ParseStateName(o.State)
			obs.Default.Gauge("drevald_slo_state", obs.L("objective", o.Name)).Set(float64(st))
			obs.Default.Gauge("drevald_slo_budget_remaining", obs.L("objective", o.Name)).Set(o.BudgetRemaining)
		}
	})
}

// handleEvents serves GET /debug/events: the filter language over the
// journal's retained ring. Late bound so test swaps take effect.
func handleEvents(w http.ResponseWriter, r *http.Request) {
	eventJournal.Handler().ServeHTTP(w, r)
}

// handleSLO serves GET /debug/slo: burn rates, alert states and
// budget remaining per objective, plus the rollup /healthz surfaces.
func handleSLO(w http.ResponseWriter, r *http.Request) {
	sloEngine.Handler().ServeHTTP(w, r)
}
