package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/traceio"
	"drnet/internal/wideevent"
)

func writeTestTrace(t *testing.T, blankPropensities bool) string {
	t.Helper()
	rng := mathx.NewRNG(1)
	old := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: []int{0, 1, 2},
		Epsilon:   0.4,
	}
	var ctxs []float64
	for i := 0; i < 600; i++ {
		ctxs = append(ctxs, float64(rng.Intn(4))) // discrete contexts so grouping works
	}
	tr := core.CollectTrace(ctxs, old, func(x float64, d int) float64 {
		return x*float64(d+1) + rng.Normal(0, 0.1)
	}, rng)
	if blankPropensities {
		for i := range tr {
			tr[i].Propensity = 0
		}
	}
	ft := traceio.Flatten(tr,
		func(x float64) []float64 { return []float64{x} },
		func(d int) string { return []string{"a", "b", "c"}[d] })
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := traceio.WriteCSV(f, ft); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunConstantPolicy(t *testing.T) {
	path := writeTestTrace(t, false)
	if err := run(path, "csv", "constant:c", false, 0, false, 50, 1, 0, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBestObserved(t *testing.T) {
	path := writeTestTrace(t, false)
	if err := run(path, "csv", "best-observed", false, 10, true, 0, 1, 0, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunEstimatesPropensities(t *testing.T) {
	path := writeTestTrace(t, true)
	// Without estimation the trace is invalid...
	if err := run(path, "csv", "constant:c", false, 0, false, 0, 1, 0, false, nil); err == nil {
		t.Fatal("expected validation error for zero propensities")
	}
	// ...with estimation it works.
	if err := run(path, "csv", "constant:c", true, 0, false, 0, 1, 0, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/does/not/exist.csv", "csv", "constant:c", false, 0, false, 0, 1, 0, false, nil); err == nil {
		t.Fatal("expected file error")
	}
	path := writeTestTrace(t, false)
	if err := run(path, "tsv", "constant:c", false, 0, false, 0, 1, 0, false, nil); err == nil {
		t.Fatal("expected format error")
	}
	if err := run(path, "csv", "wat", false, 0, false, 0, 1, 0, false, nil); err == nil {
		t.Fatal("expected policy error")
	}
	if err := run(path, "csv", "constant:", false, 0, false, 0, 1, 0, false, nil); err == nil {
		t.Fatal("expected empty-decision error")
	}
}

func TestBuildPolicyBestObserved(t *testing.T) {
	trace := core.Trace[traceio.FlatContext, string]{
		{Context: traceio.FlatContext{Features: []float64{1}}, Decision: "a", Reward: 1, Propensity: 1},
		{Context: traceio.FlatContext{Features: []float64{1}}, Decision: "b", Reward: 5, Propensity: 1},
		{Context: traceio.FlatContext{Features: []float64{2}}, Decision: "a", Reward: 9, Propensity: 1},
	}
	p, err := traceio.ParsePolicy("best-observed", trace)
	if err != nil {
		t.Fatal(err)
	}
	// Context {1}: b is best. Context {2}: a. Unseen context: global
	// best (a: mean 5 vs b: 5 — tie broken by map order; accept either).
	got := p.Distribution(traceio.FlatContext{Features: []float64{1}})
	if got[0].Decision != "b" {
		t.Fatalf("context 1 best = %q, want b", got[0].Decision)
	}
	got = p.Distribution(traceio.FlatContext{Features: []float64{2}})
	if got[0].Decision != "a" {
		t.Fatalf("context 2 best = %q, want a", got[0].Decision)
	}
	unseen := p.Distribution(traceio.FlatContext{Features: []float64{99}})
	if unseen[0].Decision != "a" && unseen[0].Decision != "b" {
		t.Fatalf("unseen context best = %q", unseen[0].Decision)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	os.Stdout = orig
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}

func TestRunWindowedReport(t *testing.T) {
	path := writeTestTrace(t, false)
	out := captureStdout(t, func() error {
		return run(path, "csv", "constant:c", false, 0, false, 0, 1, 6, false, nil)
	})
	if !strings.Contains(out, "bias observatory:") {
		t.Fatalf("windowed report missing from output:\n%s", out)
	}
	if !strings.Contains(out, "grade=") {
		t.Fatalf("report grade missing from output:\n%s", out)
	}
	if !strings.Contains(out, "DM") {
		t.Fatalf("estimators missing without -diagnose:\n%s", out)
	}
}

func TestRunDiagnoseOnlySkipsEstimators(t *testing.T) {
	path := writeTestTrace(t, false)
	out := captureStdout(t, func() error {
		return run(path, "csv", "constant:c", false, 0, false, 0, 1, 8, true, nil)
	})
	if !strings.Contains(out, "bias observatory:") {
		t.Fatalf("windowed report missing from output:\n%s", out)
	}
	if strings.Contains(out, "DM") || strings.Contains(out, "IPS:") {
		t.Fatalf("-diagnose still ran the estimators:\n%s", out)
	}
}

func TestRunJSONL(t *testing.T) {
	// Convert the CSV fixture to JSONL and evaluate.
	path := writeTestTrace(t, false)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := traceio.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "trace.jsonl")
	jf, err := os.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.WriteJSONL(jf, ft); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	if err := run(jpath, "jsonl", "constant:b", false, 0, false, 0, 1, 0, false, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunEmitsWideEvent covers -events-out: one JSONL wide event per
// invocation, success or failure, appended in order.
func TestRunEmitsWideEvent(t *testing.T) {
	path := writeTestTrace(t, false)
	out := filepath.Join(t.TempDir(), "events.jsonl")

	j := wideevent.NewJournal(wideevent.Options{Capacity: 1, SampleRate: 1})
	evb := j.Begin("run-ok", "dreval")
	runErr := run(path, "csv", "constant:c", false, 0, false, 25, 1, 4, false, evb)
	if err := writeRunEvent(j, evb, out, runErr); err != nil {
		t.Fatal(err)
	}

	j = wideevent.NewJournal(wideevent.Options{Capacity: 1, SampleRate: 1})
	evb = j.Begin("run-bad", "dreval")
	runErr = run(path, "csv", "wat", false, 0, false, 0, 1, 0, false, evb)
	if runErr == nil {
		t.Fatal("expected policy error")
	}
	if err := writeRunEvent(j, evb, out, runErr); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), raw)
	}
	var ok, bad wideevent.Event
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &bad); err != nil {
		t.Fatal(err)
	}
	if ok.RequestID != "run-ok" || ok.Route != "dreval" || ok.Status != 200 || ok.Policy != "constant:c" {
		t.Fatalf("success event = %+v", ok)
	}
	if ok.ESSRatio <= 0 || ok.BiasGrade == "" || ok.BootstrapResamples != 25 {
		t.Fatalf("success event missing regime fields: %+v", ok)
	}
	for _, phase := range []string{"read_trace", "diagnose", "bias_observatory", "bootstrap"} {
		if _, present := ok.PhaseMs[phase]; !present {
			t.Fatalf("success event phaseMs missing %q: %v", phase, ok.PhaseMs)
		}
	}
	if bad.RequestID != "run-bad" || bad.Status != 500 || bad.Error == "" {
		t.Fatalf("failure event = %+v", bad)
	}
}
