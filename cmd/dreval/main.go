// Command dreval evaluates a new policy on a logged trace using the
// Direct Method, IPS and the Doubly Robust estimator, with overlap
// diagnostics and bootstrap confidence intervals.
//
// The trace is a CSV or JSON-lines file in the traceio schema (numeric
// features, decision label, reward, propensity). The new policy is
// specified on the command line:
//
//	-policy constant:<decision>   always choose <decision>
//	-policy best-observed         per-context-group argmax of mean reward
//
// When the trace has no recorded propensities (all zero), pass
// -estimate-propensities to estimate them from per-context-group
// decision frequencies.
//
// Pass -windows N to append a windowed bias-observatory report (per
// window: ESS/N, weight mass, zero-support, coverage entropy, reward
// moments) with CUSUM drift alarms over the window series. -diagnose
// stops after the diagnostics — overlap plus windowed report — without
// running the estimators.
//
// Usage:
//
//	dreval -trace trace.csv -policy constant:cdnA [-format csv]
//	       [-estimate-propensities] [-clip 0] [-bootstrap 200]
//	       [-windows 8] [-diagnose]
package main

import (
	"flag"
	"fmt"
	"os"

	"drnet/internal/biasobs"
	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/traceio"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (required)")
		format    = flag.String("format", "csv", "trace format: csv or jsonl")
		policy    = flag.String("policy", "", "new policy: constant:<decision> or best-observed (required)")
		estProp   = flag.Bool("estimate-propensities", false, "estimate propensities from the trace")
		clip      = flag.Float64("clip", 0, "importance-weight clipping threshold (0 = off)")
		selfNorm  = flag.Bool("self-normalize", false, "use self-normalized IPS/DR")
		bootstrap = flag.Int("bootstrap", 200, "bootstrap resamples for the DR confidence interval (0 = off)")
		seed      = flag.Int64("seed", 1, "RNG seed for the bootstrap")
		windows   = flag.Int("windows", 0, "index windows for the bias-observatory report (0 = off)")
		diagOnly  = flag.Bool("diagnose", false, "print diagnostics only, skip the estimators")
	)
	flag.Parse()
	if *tracePath == "" || *policy == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *windows < 0 {
		fmt.Fprintln(os.Stderr, "dreval: -windows must be >= 0")
		os.Exit(2)
	}
	if *diagOnly && *windows == 0 {
		*windows = biasobs.DefaultWindows
	}
	if err := run(*tracePath, *format, *policy, *estProp, *clip, *selfNorm, *bootstrap, *seed, *windows, *diagOnly); err != nil {
		fmt.Fprintf(os.Stderr, "dreval: %v\n", err)
		os.Exit(1)
	}
}

func run(tracePath, format, policySpec string, estProp bool, clip float64, selfNorm bool, bootstrapB int, seed int64, windows int, diagOnly bool) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	var ft traceio.FlatTrace
	switch format {
	case "csv":
		ft, err = traceio.ReadCSV(f)
	case "jsonl":
		ft, err = traceio.ReadJSONL(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	trace := traceio.ToCore(ft)
	key := func(c traceio.FlatContext) string { return c.Key() }

	if estProp {
		if err := core.EstimatePropensities(trace, key, 5, 1e-3); err != nil {
			return err
		}
	}
	if err := trace.Validate(); err != nil {
		return fmt.Errorf("%w (use -estimate-propensities if the trace has none)", err)
	}

	newPolicy, err := traceio.ParsePolicy(policySpec, trace)
	if err != nil {
		return err
	}

	diag, err := core.Diagnose(trace, newPolicy)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d records, %d distinct decisions\n", len(trace), len(trace.DecisionCounts()))
	fmt.Printf("old policy on-policy value: %.4f\n", trace.MeanReward())
	fmt.Printf("overlap: %s\n\n", diag)

	if windows > 0 {
		view, err := core.NewTraceViewKeyed(trace, key)
		if err != nil {
			return err
		}
		report, err := biasobs.Compute(view, newPolicy, biasobs.Config{Windows: windows})
		if err != nil {
			return err
		}
		fmt.Println(report.Render())
	}
	if diagOnly {
		return nil
	}

	model := core.FitTable(trace, func(c traceio.FlatContext, d string) string {
		return c.Key() + "|" + d
	})
	dm, err := core.DirectMethod(trace, newPolicy, model)
	if err != nil {
		return err
	}
	ips, err := core.IPS(trace, newPolicy, core.IPSOptions{Clip: clip, SelfNormalize: selfNorm})
	if err != nil {
		return err
	}
	dr, err := core.DoublyRobust(trace, newPolicy, model, core.DROptions{Clip: clip, SelfNormalize: selfNorm})
	if err != nil {
		return err
	}
	fmt.Printf("DM  (table model):  %s\n", dm)
	fmt.Printf("IPS:                %s\n", ips)
	fmt.Printf("DR:                 %s\n", dr)

	if bootstrapB > 0 {
		rng := mathx.NewRNG(seed)
		ci, err := core.Bootstrap(trace, func(t core.Trace[traceio.FlatContext, string]) (core.Estimate, error) {
			m := core.FitTable(t, func(c traceio.FlatContext, d string) string { return c.Key() + "|" + d })
			return core.DoublyRobust(t, newPolicy, m, core.DROptions{Clip: clip, SelfNormalize: selfNorm})
		}, rng, bootstrapB, 0.95)
		if err != nil {
			return err
		}
		fmt.Printf("DR 95%% bootstrap CI: [%.4f, %.4f]\n", ci.Lo, ci.Hi)
	}
	return nil
}
