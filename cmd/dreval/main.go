// Command dreval evaluates a new policy on a logged trace using the
// Direct Method, IPS and the Doubly Robust estimator, with overlap
// diagnostics and bootstrap confidence intervals.
//
// The trace is a CSV or JSON-lines file in the traceio schema (numeric
// features, decision label, reward, propensity). The new policy is
// specified on the command line:
//
//	-policy constant:<decision>   always choose <decision>
//	-policy best-observed         per-context-group argmax of mean reward
//
// When the trace has no recorded propensities (all zero), pass
// -estimate-propensities to estimate them from per-context-group
// decision frequencies.
//
// Pass -windows N to append a windowed bias-observatory report (per
// window: ESS/N, weight mass, zero-support, coverage entropy, reward
// moments) with CUSUM drift alarms over the window series. -diagnose
// stops after the diagnostics — overlap plus windowed report — without
// running the estimators.
//
// Usage:
//
//	dreval -trace trace.csv -policy constant:cdnA [-format csv]
//	       [-estimate-propensities] [-clip 0] [-bootstrap 200]
//	       [-windows 8] [-diagnose]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"drnet/internal/biasobs"
	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/obs"
	"drnet/internal/traceio"
	"drnet/internal/wideevent"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (required)")
		format    = flag.String("format", "csv", "trace format: csv or jsonl")
		policy    = flag.String("policy", "", "new policy: constant:<decision> or best-observed (required)")
		estProp   = flag.Bool("estimate-propensities", false, "estimate propensities from the trace")
		clip      = flag.Float64("clip", 0, "importance-weight clipping threshold (0 = off)")
		selfNorm  = flag.Bool("self-normalize", false, "use self-normalized IPS/DR")
		bootstrap = flag.Int("bootstrap", 200, "bootstrap resamples for the DR confidence interval (0 = off)")
		seed      = flag.Int64("seed", 1, "RNG seed for the bootstrap")
		windows   = flag.Int("windows", 0, "index windows for the bias-observatory report (0 = off)")
		diagOnly  = flag.Bool("diagnose", false, "print diagnostics only, skip the estimators")
		eventsOut = flag.String("events-out", "", "append one JSONL wide event describing this run to the given file")
	)
	flag.Parse()
	if *tracePath == "" || *policy == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *windows < 0 {
		fmt.Fprintln(os.Stderr, "dreval: -windows must be >= 0")
		os.Exit(2)
	}
	if *diagOnly && *windows == 0 {
		*windows = biasobs.DefaultWindows
	}
	// The CLI honours the same one-run-one-event contract as the
	// server: a single flat wide event per invocation, success or
	// failure, appended as JSONL. The builder is nil when -events-out
	// is unset; every Builder method is nil-safe.
	var journal *wideevent.Journal
	var evb *wideevent.Builder
	if *eventsOut != "" {
		journal = wideevent.NewJournal(wideevent.Options{Capacity: 1, SampleRate: 1})
		evb = journal.Begin(obs.NewID(), "dreval")
	}
	err := run(*tracePath, *format, *policy, *estProp, *clip, *selfNorm, *bootstrap, *seed, *windows, *diagOnly, evb)
	if journal != nil {
		if werr := writeRunEvent(journal, evb, *eventsOut, err); werr != nil {
			fmt.Fprintf(os.Stderr, "dreval: writing -events-out: %v\n", werr)
			os.Exit(1)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dreval: %v\n", err)
		os.Exit(1)
	}
}

// writeRunEvent finalises the run's wide event (status 200 on
// success, 500 with the error message otherwise) and appends it as
// one JSONL line.
func writeRunEvent(journal *wideevent.Journal, evb *wideevent.Builder, path string, runErr error) error {
	if runErr != nil {
		evb.SetError(runErr.Error())
		evb.Finish(500)
	} else {
		evb.Finish(200)
	}
	evs := journal.Events()
	if len(evs) != 1 {
		return fmt.Errorf("journal holds %d events, want 1", len(evs))
	}
	line, err := json.Marshal(evs[0])
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		// The write error is already being returned; a close failure
		// here adds nothing the caller can act on.
		_ = f.Close()
		return err
	}
	return f.Close()
}

func run(tracePath, format, policySpec string, estProp bool, clip float64, selfNorm bool, bootstrapB int, seed int64, windows int, diagOnly bool, evb *wideevent.Builder) error {
	evb.SetPolicy(policySpec)
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	endRead := evb.Phase("read_trace")
	var ft traceio.FlatTrace
	switch format {
	case "csv":
		ft, err = traceio.ReadCSV(f)
	case "jsonl":
		ft, err = traceio.ReadJSONL(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	endRead()
	if err != nil {
		return err
	}
	trace := traceio.ToCore(ft)
	key := func(c traceio.FlatContext) string { return c.Key() }

	if estProp {
		if err := core.EstimatePropensities(trace, key, 5, 1e-3); err != nil {
			return err
		}
	}
	if err := trace.Validate(); err != nil {
		return fmt.Errorf("%w (use -estimate-propensities if the trace has none)", err)
	}

	newPolicy, err := traceio.ParsePolicy(policySpec, trace)
	if err != nil {
		return err
	}

	endDiag := evb.Phase("diagnose")
	diag, err := core.Diagnose(trace, newPolicy)
	endDiag()
	if err != nil {
		return err
	}
	evb.SetRegime(diag.ESS/float64(diag.N), diag.MaxWeight, diag.ZeroSupport)
	fmt.Printf("trace: %d records, %d distinct decisions\n", len(trace), len(trace.DecisionCounts()))
	fmt.Printf("old policy on-policy value: %.4f\n", trace.MeanReward())
	fmt.Printf("overlap: %s\n\n", diag)

	if windows > 0 {
		view, err := core.NewTraceViewKeyed(trace, key)
		if err != nil {
			return err
		}
		endBias := evb.Phase("bias_observatory")
		report, err := biasobs.Compute(view, newPolicy, biasobs.Config{Windows: windows})
		endBias()
		if err != nil {
			return err
		}
		evb.SetBiasGrade(report.Summary().Grade)
		fmt.Println(report.Render())
	}
	if diagOnly {
		return nil
	}

	model := core.FitTable(trace, func(c traceio.FlatContext, d string) string {
		return c.Key() + "|" + d
	})
	dm, err := core.DirectMethod(trace, newPolicy, model)
	if err != nil {
		return err
	}
	ips, err := core.IPS(trace, newPolicy, core.IPSOptions{Clip: clip, SelfNormalize: selfNorm})
	if err != nil {
		return err
	}
	dr, err := core.DoublyRobust(trace, newPolicy, model, core.DROptions{Clip: clip, SelfNormalize: selfNorm})
	if err != nil {
		return err
	}
	fmt.Printf("DM  (table model):  %s\n", dm)
	fmt.Printf("IPS:                %s\n", ips)
	fmt.Printf("DR:                 %s\n", dr)

	if bootstrapB > 0 {
		endBoot := evb.Phase("bootstrap")
		rng := mathx.NewRNG(seed)
		ci, err := core.Bootstrap(trace, func(t core.Trace[traceio.FlatContext, string]) (core.Estimate, error) {
			m := core.FitTable(t, func(c traceio.FlatContext, d string) string { return c.Key() + "|" + d })
			return core.DoublyRobust(t, newPolicy, m, core.DROptions{Clip: clip, SelfNormalize: selfNorm})
		}, rng, bootstrapB, 0.95)
		endBoot()
		if err != nil {
			return err
		}
		evb.SetBootstrap(bootstrapB, 0)
		fmt.Printf("DR 95%% bootstrap CI: [%.4f, %.4f]\n", ci.Lo, ci.Hi)
	}
	return nil
}
