package main

import (
	"bytes"
	"testing"

	"drnet/internal/mathx"
	"drnet/internal/traceio"
)

func TestGenerateAllScenarios(t *testing.T) {
	for _, scenario := range []string{"bandit", "cfa", "relay", "cdn"} {
		rng := mathx.NewRNG(1)
		ft, err := generate(scenario, 200, rng)
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		if len(ft.Records) == 0 {
			t.Fatalf("%s: empty trace", scenario)
		}
		// Every record must have valid propensities and consistent
		// feature dimensionality.
		nf := len(ft.Records[0].Features)
		for i, rec := range ft.Records {
			if rec.Propensity <= 0 || rec.Propensity > 1 {
				t.Fatalf("%s record %d: propensity %g", scenario, i, rec.Propensity)
			}
			if len(rec.Features) != nf {
				t.Fatalf("%s record %d: ragged features", scenario, i)
			}
			if rec.Decision == "" {
				t.Fatalf("%s record %d: empty decision", scenario, i)
			}
		}
		// And it must serialize round-trip.
		var buf bytes.Buffer
		if err := traceio.WriteCSV(&buf, ft); err != nil {
			t.Fatalf("%s: write: %v", scenario, err)
		}
		back, err := traceio.ReadCSV(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", scenario, err)
		}
		if len(back.Records) != len(ft.Records) {
			t.Fatalf("%s: round trip lost records", scenario)
		}
	}
}

func TestGenerateBanditSized(t *testing.T) {
	rng := mathx.NewRNG(2)
	ft, err := generate("bandit", 123, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Records) != 123 {
		t.Fatalf("got %d records, want 123", len(ft.Records))
	}
	if len(ft.FeatureNames) != 1 || ft.FeatureNames[0] != "x" {
		t.Fatalf("feature names %v", ft.FeatureNames)
	}
}

func TestGenerateCDNIgnoresN(t *testing.T) {
	rng := mathx.NewRNG(3)
	ft, err := generate("cdn", 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Records) != 2020 {
		t.Fatalf("cdn trace has %d records, want the paper's 2020", len(ft.Records))
	}
}

func TestGenerateUnknown(t *testing.T) {
	rng := mathx.NewRNG(4)
	if _, err := generate("nope", 10, rng); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}
