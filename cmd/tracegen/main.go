// Command tracegen generates synthetic off-policy evaluation traces
// from any of the repository's scenario worlds and writes them as CSV
// or JSON-lines for use with cmd/dreval or external tooling.
//
// Usage:
//
//	tracegen -scenario bandit|cfa|relay|cdn [-n 1000] [-seed 1]
//	         [-format csv|jsonl] [-out trace.csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"drnet/internal/cdnsim"
	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/relay"
	"drnet/internal/traceio"
)

func main() {
	var (
		scenario = flag.String("scenario", "bandit", "trace source: bandit, cfa, relay, cdn")
		n        = flag.Int("n", 1000, "number of records (ignored for cdn, which uses the paper's fixed counts)")
		seed     = flag.Int64("seed", 1, "RNG seed")
		format   = flag.String("format", "csv", "output format: csv or jsonl")
		out      = flag.String("out", "-", "output file ('-' for stdout)")
	)
	flag.Parse()

	rng := mathx.NewRNG(*seed)
	ft, err := generate(*scenario, *n, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	var f *os.File
	if *out != "-" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	switch *format {
	case "csv":
		err = traceio.WriteCSV(w, ft)
	case "jsonl":
		err = traceio.WriteJSONL(w, ft)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err == nil && f != nil {
		// Close surfaces deferred write-back failures; a silent one
		// would hand the caller a truncated trace file.
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func generate(scenario string, n int, rng *mathx.RNG) (traceio.FlatTrace, error) {
	switch scenario {
	case "bandit":
		old := core.EpsilonGreedyPolicy[float64, int]{
			Base:      func(float64) int { return 0 },
			Decisions: []int{0, 1, 2},
			Epsilon:   0.3,
		}
		ctxs := make([]float64, n)
		for i := range ctxs {
			ctxs[i] = rng.Float64()
		}
		tr := core.CollectTrace(ctxs, old, func(x float64, d int) float64 {
			return x*float64(d+1) + rng.Normal(0, 0.2)
		}, rng)
		ft := traceio.Flatten(tr,
			func(x float64) []float64 { return []float64{x} },
			strconv.Itoa)
		ft.FeatureNames = []string{"x"}
		return ft, nil
	case "cfa":
		w := cfa.DefaultWorld()
		if err := w.Init(rng); err != nil {
			return traceio.FlatTrace{}, err
		}
		d, err := w.Collect(n, rng)
		if err != nil {
			return traceio.FlatTrace{}, err
		}
		ft := traceio.Flatten(d.Trace,
			func(c cfa.Client) []float64 {
				out := make([]float64, len(c.Features))
				for i, f := range c.Features {
					out[i] = float64(f)
				}
				return out
			},
			func(dec cfa.Decision) string {
				return fmt.Sprintf("cdn%d-br%d", dec.CDN, dec.Bitrate)
			})
		for i := 0; i < w.NumFeatures; i++ {
			ft.FeatureNames = append(ft.FeatureNames, fmt.Sprintf("feat%d", i))
		}
		return ft, nil
	case "relay":
		w := relay.DefaultWorld()
		if err := w.Init(rng); err != nil {
			return traceio.FlatTrace{}, err
		}
		d, err := w.Collect(n, rng)
		if err != nil {
			return traceio.FlatTrace{}, err
		}
		ft := traceio.Flatten(d.Trace,
			func(c relay.Call) []float64 {
				nat := 0.0
				if c.NAT {
					nat = 1
				}
				return []float64{float64(c.SrcAS), float64(c.DstAS), nat}
			},
			func(p relay.Path) string { return p.String() })
		ft.FeatureNames = []string{"src_as", "dst_as", "nat"}
		return ft, nil
	case "cdn":
		w := cdnsim.DefaultWorld()
		d, err := cdnsim.Collect(w, rng)
		if err != nil {
			return traceio.FlatTrace{}, err
		}
		ft := traceio.Flatten(d.Trace,
			func(r cdnsim.Request) []float64 { return []float64{float64(r.ISP)} },
			func(c cdnsim.Config) string { return fmt.Sprintf("fe%d-be%d", c.FE, c.BE) })
		ft.FeatureNames = []string{"isp"}
		return ft, nil
	default:
		return traceio.FlatTrace{}, fmt.Errorf("unknown scenario %q (want bandit, cfa, relay or cdn)", scenario)
	}
}
