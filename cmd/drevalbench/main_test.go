package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drnet/internal/benchkit"
)

// tinyArgs keeps CLI tests fast: the smallest config that still
// exercises ≥3 sizes × 2 worker counts × every estimator.
func tinyArgs(outDir string, extra ...string) []string {
	args := []string{
		"-sizes", "50,100,200",
		"-workers", "1,2",
		"-iters", "2",
		"-bootstrap", "5",
		"-out", outDir,
		"-baseline", "",
	}
	return append(args, extra...)
}

func benchReports(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestRunWritesVersionedReport(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	if code := run(tinyArgs(dir), &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	files := benchReports(t, dir)
	if len(files) != 1 {
		t.Fatalf("found %d BENCH_*.json files, want 1: %v", len(files), files)
	}
	rep, err := benchkit.ReadReport(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != benchkit.SchemaVersion || rep.Timestamp == "" || rep.Version == "" {
		t.Fatalf("report header incomplete: %+v", rep)
	}
	// The acceptance shape: per-workload cells (4 estimators × columnar
	// and slice variants, plus the dr events on/off pair) at >= 3 sizes
	// × >= 2 worker counts, each with throughput and the latency
	// percentiles.
	if got, want := len(rep.Cells), 3*2*10; got != want {
		t.Fatalf("%d cells, want %d", got, want)
	}
	for _, c := range rep.Cells {
		if c.OpsPerSec <= 0 {
			t.Fatalf("cell %s throughput %g", c.Key(), c.OpsPerSec)
		}
		if c.P50Ms <= 0 || c.P95Ms < c.P50Ms || c.P99Ms < c.P95Ms {
			t.Fatalf("cell %s percentiles p50=%g p95=%g p99=%g", c.Key(), c.P50Ms, c.P95Ms, c.P99Ms)
		}
	}
	if !strings.Contains(out.String(), "report written to ") {
		t.Fatalf("stdout missing confirmation: %s", out.String())
	}
}

func TestRunBaselineDiffWarnVsStrict(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer

	// First run becomes the baseline.
	if code := run(tinyArgs(dir), &out, &errOut); code != 0 {
		t.Fatalf("baseline run failed: %s", errOut.String())
	}
	basePath := benchReports(t, dir)[0]

	// Doctor the baseline so every cell looks 100x faster and leaner
	// than reality: the next run must flag regressions.
	base, err := benchkit.ReadReport(basePath)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Cells {
		base.Cells[i].OpsPerSec *= 100
		base.Cells[i].P95Ms /= 100
		base.Cells[i].AllocsPerOp /= 100
	}
	doctored := filepath.Join(dir, "baseline.json")
	if err := benchkit.WriteReport(doctored, base); err != nil {
		t.Fatal(err)
	}

	// Warn-only (default): regressions print but exit 0.
	out.Reset()
	errOut.Reset()
	warnDir := t.TempDir()
	if code := run(tinyArgs(warnDir, "-baseline", doctored), &out, &errOut); code != 0 {
		t.Fatalf("warn-only run exited %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "warn-only") {
		t.Fatalf("warn-only output missing regression report:\n%s", out.String())
	}

	// Strict: same diff fails the run.
	out.Reset()
	errOut.Reset()
	strictDir := t.TempDir()
	if code := run(tinyArgs(strictDir, "-baseline", doctored, "-strict"), &out, &errOut); code != 1 {
		t.Fatalf("strict run exited %d, want 1\nstdout: %s", code, out.String())
	}

	// A clean baseline (the run's own numbers) passes strict mode. The
	// tiny 2-iteration cells jitter far more than a real run, so give
	// this leg generous thresholds — it checks the pass path, not noise.
	out.Reset()
	errOut.Reset()
	cleanDir := t.TempDir()
	clean := tinyArgs(cleanDir, "-baseline", basePath, "-strict",
		"-max-throughput-drop", "0.99",
		"-max-latency-growth", "20",
		"-max-alloc-growth", "5")
	if code := run(clean, &out, &errOut); code != 0 {
		t.Fatalf("strict run against honest baseline exited %d\nstdout: %s\nstderr: %s",
			code, out.String(), errOut.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "heap.pprof")
	var out, errOut bytes.Buffer
	args := tinyArgs(dir, "-cpuprofile", cpu, "-memprofile", mem)
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-sizes", "abc"}, &out, &errOut); code != 1 {
		t.Fatalf("bad -sizes accepted (exit %d)", code)
	}
	if code := run([]string{"-workers", "0"}, &out, &errOut); code != 1 {
		t.Fatalf("zero worker count accepted (exit %d)", code)
	}
}
