// Command drevalbench runs the repository's standardized performance
// workloads (internal/benchkit) and writes the result as one point of
// the repo's perf trajectory: a versioned BENCH_<timestamp>.json with
// per-estimator throughput, p50/p95/p99 latency, allocations and peak
// heap at every (trace size × worker count) combination, optionally
// followed by an HTTP loadgen leg against a live drevald and a diff
// against the checked-in baseline.
//
// Usage:
//
//	drevalbench [-quick] [-sizes 1000,10000,50000] [-workers 1,2,8]
//	            [-iters 20] [-bootstrap 100] [-seed 1]
//	            [-out .] [-baseline bench/baseline.json] [-strict]
//	            [-server http://127.0.0.1:8080] [-http-requests 100]
//	            [-http-concurrency 8] [-http-trace-size 2000]
//	            [-cpuprofile cpu.pprof] [-memprofile heap.pprof]
//
// Exit status: 0 on success (regressions against the baseline are
// warnings unless -strict), 1 on build/measure errors or, with
// -strict, on threshold violations. The HTTP leg runs only when
// -server is set and fails the run if any request errors.
//
// Comparing two machines' absolute numbers is meaningless; the
// trajectory works because CI and developers diff against a baseline
// recorded under the same workload definitions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"drnet/internal/benchkit"
	"drnet/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the tests can drive
// the full CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drevalbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick       = fs.Bool("quick", false, "CI smoke mode: small sizes and iteration counts, finishes in seconds")
		sizes       = fs.String("sizes", "", "comma-separated trace sizes (default from -quick or the full config)")
		workers     = fs.String("workers", "", "comma-separated worker-pool widths")
		iters       = fs.Int("iters", 0, "measured iterations per cell (0 = config default)")
		bootstrap   = fs.Int("bootstrap", 0, "bootstrap resamples in the bootstrap workload (0 = config default)")
		seed        = fs.Int64("seed", 1, "synthetic workload seed")
		outDir      = fs.String("out", ".", "directory the BENCH_<timestamp>.json report is written to")
		baseline    = fs.String("baseline", "bench/baseline.json", "baseline report to diff against (\"\" or a missing file skips the diff)")
		strict      = fs.Bool("strict", false, "exit non-zero when the diff crosses a regression threshold (default: warn only, for noisy CI runners)")
		thDrop      = fs.Float64("max-throughput-drop", benchkit.DefaultThresholds().MaxThroughputDrop, "regression threshold: fractional ops/s drop vs baseline")
		thLat       = fs.Float64("max-latency-growth", benchkit.DefaultThresholds().MaxLatencyGrowth, "regression threshold: fractional p95 growth vs baseline")
		thAlloc     = fs.Float64("max-alloc-growth", benchkit.DefaultThresholds().MaxAllocGrowth, "regression threshold: fractional allocs/op growth vs baseline")
		thMinP50    = fs.Float64("min-reliable-p50-ms", benchkit.DefaultThresholds().MinReliableP50Ms, "skip throughput/latency checks for cells whose p50 is below this on both sides (allocs always checked); 0 disables")
		server      = fs.String("server", "", "base URL of a live drevald for the HTTP loadgen leg (\"\" skips it)")
		httpReqs    = fs.Int("http-requests", 100, "loadgen request count")
		httpConc    = fs.Int("http-concurrency", 8, "loadgen concurrent clients")
		httpSize    = fs.Int("http-trace-size", 2000, "records per loadgen request")
		httpBoot    = fs.Int("http-bootstrap", 50, "options.bootstrap in loadgen requests")
		ingestRecs  = fs.Int("ingest-records", 0, "streaming-ingestion leg: total records POSTed to /ingest against -server (0 skips it; needs a drevald running with -wal-dir)")
		ingestBatch = fs.Int("ingest-batch", 100, "streaming-ingestion leg: records per /ingest batch")
		cpuProf     = fs.String("cpuprofile", "", "write a CPU pprof profile of the workload run to this file")
		memProf     = fs.String("memprofile", "", "write a heap pprof profile (taken after the run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	cfg := benchkit.DefaultConfig()
	if *quick {
		cfg = benchkit.QuickConfig()
	}
	cfg.Seed = *seed
	if *sizes != "" {
		v, err := parseInts(*sizes)
		if err != nil {
			fmt.Fprintf(stderr, "drevalbench: -sizes: %v\n", err)
			return 1
		}
		cfg.Sizes = v
	}
	if *workers != "" {
		v, err := parseInts(*workers)
		if err != nil {
			fmt.Fprintf(stderr, "drevalbench: -workers: %v\n", err)
			return 1
		}
		cfg.Workers = v
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	if *bootstrap > 0 {
		cfg.BootstrapResamples = *bootstrap
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "drevalbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "drevalbench: starting CPU profile: %v\n", err)
			_ = f.Close() // nothing was written yet
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "drevalbench: closing CPU profile: %v\n", err)
			}
		}()
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	logf("drevalbench: version=%s quick=%v sizes=%v workers=%v iters=%d",
		obs.Version(), *quick, cfg.Sizes, cfg.Workers, cfg.Iters)
	rep, err := benchkit.Run(cfg, obs.Version(), logf)
	if err != nil {
		fmt.Fprintf(stderr, "drevalbench: %v\n", err)
		return 1
	}
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	if *server != "" {
		logf("drevalbench: http leg against %s (%d requests, %d clients)", *server, *httpReqs, *httpConc)
		httpRes, err := benchkit.RunHTTP(benchkit.HTTPConfig{
			URL:         *server,
			Requests:    *httpReqs,
			Concurrency: *httpConc,
			TraceSize:   *httpSize,
			Bootstrap:   *httpBoot,
			Seed:        *seed,
		})
		if err != nil {
			fmt.Fprintf(stderr, "drevalbench: http leg: %v\n", err)
			return 1
		}
		rep.HTTP = httpRes
		if httpRes.Errors > 0 {
			fmt.Fprintf(stderr, "drevalbench: http leg: %d of %d requests failed (%v)\n",
				httpRes.Errors, httpRes.Requests, httpRes.StatusCount)
			return 1
		}
		logf("drevalbench: http ops/s=%.1f p50=%.1fms p95=%.1fms p99=%.1fms",
			httpRes.OpsPerSec, httpRes.P50Ms, httpRes.P95Ms, httpRes.P99Ms)
	}

	if *server != "" && *ingestRecs > 0 {
		logf("drevalbench: ingest leg against %s (%d records, batches of %d)", *server, *ingestRecs, *ingestBatch)
		ingRes, err := benchkit.RunIngest(benchkit.IngestConfig{
			URL:       *server,
			Records:   *ingestRecs,
			BatchSize: *ingestBatch,
			Seed:      *seed,
		})
		if err != nil {
			fmt.Fprintf(stderr, "drevalbench: ingest leg: %v\n", err)
			return 1
		}
		rep.Ingest = ingRes
		if ingRes.Errors > 0 {
			fmt.Fprintf(stderr, "drevalbench: ingest leg: %d of %d batches failed (%v)\n",
				ingRes.Errors, ingRes.Batches, ingRes.StatusCount)
			return 1
		}
		logf("drevalbench: ingest records/s=%.1f ack p50=%.2fms p95=%.2fms eval-flatness=%.2fx over %d→%d records",
			ingRes.RecordsPerSec, ingRes.AckP50Ms, ingRes.AckP95Ms,
			ingRes.EvalLatencyRatio, ingRes.Checkpoints[0].Epoch, ingRes.Checkpoints[len(ingRes.Checkpoints)-1].Epoch)
	}

	if *memProf != "" {
		runtime.GC()
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "drevalbench: -memprofile: %v\n", err)
			return 1
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "drevalbench: writing heap profile: %v\n", err)
			_ = f.Close() // the profile is already unusable
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "drevalbench: closing heap profile: %v\n", err)
			return 1
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(stderr, "drevalbench: %v\n", err)
		return 1
	}
	outPath := filepath.Join(*outDir, "BENCH_"+time.Now().UTC().Format("20060102T150405Z")+".json")
	if err := benchkit.WriteReport(outPath, rep); err != nil {
		fmt.Fprintf(stderr, "drevalbench: writing report: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "report written to %s (%d cells, %.1fs)\n", outPath, len(rep.Cells), rep.WallSeconds)

	if *baseline != "" {
		base, err := benchkit.ReadReport(*baseline)
		switch {
		case os.IsNotExist(err):
			logf("drevalbench: no baseline at %s, skipping diff", *baseline)
		case err != nil:
			fmt.Fprintf(stderr, "drevalbench: reading baseline: %v\n", err)
			return 1
		default:
			th := benchkit.Thresholds{
				MaxThroughputDrop: *thDrop,
				MaxLatencyGrowth:  *thLat,
				MaxAllocGrowth:    *thAlloc,
				MinReliableP50Ms:  *thMinP50,
			}
			regs := benchkit.Diff(rep, base, th)
			if len(regs) == 0 {
				fmt.Fprintf(stdout, "baseline %s: no regressions\n", *baseline)
			} else {
				for _, r := range regs {
					fmt.Fprintf(stdout, "REGRESSION %s\n", r)
				}
				if *strict {
					fmt.Fprintf(stderr, "drevalbench: %d regression(s) against %s\n", len(regs), *baseline)
					return 1
				}
				fmt.Fprintf(stdout, "%d regression(s) against %s (warn-only; pass -strict to fail)\n", len(regs), *baseline)
			}
		}
	}
	return 0
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", part)
		}
		if v < 1 {
			return nil, fmt.Errorf("%d must be >= 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
