// Command experiments regenerates every table and figure of the
// reproduction: the paper's Figure 7 panels (F7a, F7b, F7c) and the
// extension experiments E1–E9 described in DESIGN.md.
//
// Usage:
//
//	experiments [-run all|F7a,F7b,...] [-runs 50] [-seed 1] [-workers 0]
//	            [-manifest run-manifest.json]
//
// -workers sets the width of the shared worker pool the Monte Carlo
// replication loops run on (0 = GOMAXPROCS). Results are bit-identical
// at every worker count: -workers 8 reproduces exactly the numbers of
// -workers 1.
//
// After the run a JSON manifest is written to -manifest ("" disables)
// recording the seed, worker count, per-experiment wall times and
// memory footprint (sampled peak heap, GC cycles, allocations — see
// manifestEntry for the -parallel caveat) and the binary's version, so
// a results table can always be traced back to the exact configuration
// that produced it. Phase timings are also logged to stderr as
// structured key=value lines.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"drnet/internal/biasobs"
	"drnet/internal/experiments"
	"drnet/internal/obs"
	"drnet/internal/parallel"
	"drnet/internal/slo"
	"drnet/internal/wideevent"
)

type runner func(runs int, seed int64) (experiments.Result, error)

// expLog emits phase timings; the sink is swappable for tests.
var expLog = obs.NewLogger(os.Stderr, obs.LevelInfo)

func main() {
	var (
		which      = flag.String("run", "all", "comma-separated experiment ids (F7a F7b F7c E1..E12 ABL) or 'all'")
		runs       = flag.Int("runs", 50, "independent runs per experiment (the paper uses 50)")
		seed       = flag.Int64("seed", 1, "base RNG seed")
		concurrent = flag.Int("parallel", 1, "experiments to run concurrently (results print in order)")
		workers    = flag.Int("workers", 0, "worker-pool width for Monte Carlo runs within an experiment (0 = GOMAXPROCS; results are identical at any width)")
		manifest   = flag.String("manifest", "run-manifest.json", "write a JSON run manifest to this path after the run (\"\" disables)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)
	// SIGINT/SIGTERM cancel the run cooperatively: experiments that have
	// not started are skipped, in-flight ones finish, and the process
	// exits non-zero without writing a partial manifest.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	m, err := runAll(ctx, os.Stdout, *which, *runs, *seed, *concurrent)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if *manifest != "" {
		if err := writeManifest(*manifest, m); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		expLog.Info("manifest written", "path", *manifest)
	}
}

// manifestEntry records one experiment's wall time and memory
// footprint, measured as runtime.MemStats deltas across the
// experiment. MemStats is process-wide, so with -parallel > 1 the
// memory fields attribute everything the process did during the
// experiment's window — concurrent experiments inflate each other's
// numbers. Run with -parallel 1 when the footprint matters.
type manifestEntry struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wallSeconds"`
	// PeakHeapBytes is the largest live-heap size observed while the
	// experiment ran (sampled, so short spikes can be missed).
	PeakHeapBytes uint64 `json:"peakHeapBytes"`
	// GCCycles is how many collections completed during the experiment.
	GCCycles uint32 `json:"gcCycles"`
	// Allocs is the number of heap objects allocated during the
	// experiment.
	Allocs uint64 `json:"allocs"`
	// TraceHealth is the bias-observatory summary of the experiment's
	// run-0 logged trace (grade, windows, alarms, worst ESS/N and
	// zero-support), for experiments that compute one — so a results
	// table can be audited for trace pathologies after the fact.
	TraceHealth *biasobs.HealthSummary `json:"traceHealth,omitempty"`
	// Event is the experiment's wide event — the same flat canonical
	// record drevald emits per request, with the experiment id as the
	// request id — so manifest tooling and the serving stack share one
	// event vocabulary.
	Event *wideevent.Event `json:"event,omitempty"`
}

// memWatch measures one experiment's memory footprint: MemStats deltas
// plus a periodically-sampled live-heap peak.
type memWatch struct {
	stop   chan struct{}
	done   chan struct{}
	before runtime.MemStats
	peak   uint64
}

func startMemWatch() *memWatch {
	w := &memWatch{stop: make(chan struct{}), done: make(chan struct{})}
	runtime.ReadMemStats(&w.before)
	w.peak = w.before.HeapAlloc
	go func() {
		defer close(w.done)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

func (w *memWatch) end() (peakHeap uint64, gcCycles uint32, allocs uint64) {
	close(w.stop)
	<-w.done
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > w.peak {
		w.peak = after.HeapAlloc
	}
	return w.peak, after.NumGC - w.before.NumGC, after.Mallocs - w.before.Mallocs
}

// runManifest ties a results table to the configuration that produced
// it: seed, pool width, per-experiment timings, and the binary version
// (stamped from build info, git-describe style).
type runManifest struct {
	Seed        int64           `json:"seed"`
	Runs        int             `json:"runs"`
	Workers     int             `json:"workers"`
	Parallel    int             `json:"parallel"`
	Version     string          `json:"version"`
	StartedAt   time.Time       `json:"startedAt"`
	WallSeconds float64         `json:"wallSeconds"`
	Experiments []manifestEntry `json:"experiments"`
	// SLO is the run's compliance against the default objectives,
	// computed over the per-experiment wide events (drift-free grades
	// from the trace-health summaries in particular) — out-of-scope
	// objectives report total 0 / met true.
	SLO []slo.Compliance `json:"slo,omitempty"`
}

func writeManifest(path string, m *runManifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// run executes the selected experiments and renders the results to w
// in declaration order; kept as the manifest-free entry point.
func run(w io.Writer, which string, runs int, seed int64, parallel int) error {
	_, err := runAll(context.Background(), w, which, runs, seed, parallel)
	return err
}

// runAll executes the selected experiments — up to parallel of them
// concurrently — renders the results to w in declaration order, and
// returns a manifest of what ran and how long each phase took. Each
// experiment is timed as an obs span (obs_span_seconds{span="<id>"})
// and logged through expLog. Once ctx ends, experiments that have not
// yet started are skipped and runAll returns ctx's error after the
// in-flight ones finish.
func runAll(ctx context.Context, w io.Writer, which string, runs int, seed int64, concurrent int) (*runManifest, error) {
	all := []struct {
		id string
		fn runner
	}{
		{"F7a", experiments.Figure7a},
		{"F7b", func(r int, s int64) (experiments.Result, error) { return experiments.Figure7b(r, 5, s) }},
		{"F7c", func(r int, s int64) (experiments.Result, error) { return experiments.Figure7c(r, 0, s) }},
		{"E1", experiments.SecondOrderBias},
		{"E2", experiments.RandomnessSweep},
		{"E3", experiments.NonStationaryReplay},
		{"E4", experiments.WorldStateCorrection},
		{"E5", experiments.CouplingCorrection},
		{"E6", experiments.DimensionalitySweep},
		{"E7", experiments.RelayBias},
		{"E8", experiments.PolicySelection},
		{"E9", experiments.PropensityEstimation},
		{"E10", experiments.ExplorationDesign},
		{"E11", experiments.OnlineVsOffline},
		{"E12", experiments.CCReplayBias},
		{"ABL", experiments.Ablations},
	}

	want := map[string]bool{}
	if which != "all" {
		for _, id := range strings.Split(which, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	type job struct {
		id string
		fn runner
	}
	var jobs []job
	for _, e := range all {
		if which != "all" && !want[strings.ToUpper(e.id)] {
			continue
		}
		jobs = append(jobs, job{e.id, e.fn})
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("no experiment matches -run=%s", which)
	}
	if concurrent < 1 {
		concurrent = 1
	}
	if concurrent > len(jobs) {
		concurrent = len(jobs)
	}

	m := &runManifest{
		Seed:      seed,
		Runs:      runs,
		Workers:   parallel.DefaultWorkers(),
		Parallel:  concurrent,
		Version:   obs.Version(),
		StartedAt: time.Now().UTC(),
	}
	type outcome struct {
		res      experiments.Result
		err      error
		seconds  float64
		peakHeap uint64
		gcCycles uint32
		allocs   uint64
		skipped  bool
	}
	start := time.Now()
	results := make([]outcome, len(jobs))
	sem := make(chan struct{}, concurrent)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			// A signal that lands while this job is waiting for a
			// concurrency slot (or before it got one) skips the job
			// entirely; in-flight experiments are left to finish.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				results[i] = outcome{skipped: true}
				return
			}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				results[i] = outcome{skipped: true}
				return
			}
			expLog.Info("experiment start", "id", j.id, "runs", runs, "seed", seed)
			mw := startMemWatch()
			sp := obs.StartSpan(j.id)
			res, err := j.fn(runs, seed)
			//lint:allow obshygiene End's duration is the recorded wall time, so it must run inline
			d := sp.End()
			peakHeap, gcCycles, allocs := mw.end()
			results[i] = outcome{
				res: res, err: err, seconds: d.Seconds(),
				peakHeap: peakHeap, gcCycles: gcCycles, allocs: allocs,
			}
			if err != nil {
				expLog.Error("experiment failed", "id", j.id, "seconds", d.Seconds(), "err", err)
				return
			}
			expLog.Info("experiment done", "id", j.id, "seconds", d.Seconds())
		}(i, j)
	}
	wg.Wait()
	m.WallSeconds = time.Since(start).Seconds()
	skipped := 0
	var events []*wideevent.Event
	for i, out := range results {
		if out.skipped {
			skipped++
			continue
		}
		if out.err != nil {
			return nil, fmt.Errorf("%s: %w", jobs[i].id, out.err)
		}
		ev := &wideevent.Event{
			Time:       m.StartedAt,
			RequestID:  jobs[i].id,
			Route:      "experiment",
			Status:     200,
			DurationMs: out.seconds * 1000,
		}
		if out.res.Health != nil {
			ev.BiasGrade = out.res.Health.Grade
		}
		events = append(events, ev)
		m.Experiments = append(m.Experiments, manifestEntry{
			ID: jobs[i].id, WallSeconds: out.seconds,
			PeakHeapBytes: out.peakHeap, GCCycles: out.gcCycles, Allocs: out.allocs,
			TraceHealth: out.res.Health,
			Event:       ev,
		})
		fmt.Fprintln(w, out.res.Render())
	}
	if skipped > 0 {
		return nil, fmt.Errorf("interrupted: %d of %d experiments skipped: %w", skipped, len(jobs), ctx.Err())
	}
	m.SLO = slo.Summarize(slo.DefaultConfig().Objectives, events)
	return m, nil
}
