// Command experiments regenerates every table and figure of the
// reproduction: the paper's Figure 7 panels (F7a, F7b, F7c) and the
// extension experiments E1–E9 described in DESIGN.md.
//
// Usage:
//
//	experiments [-run all|F7a,F7b,...] [-runs 50] [-seed 1] [-workers 0]
//
// -workers sets the width of the shared worker pool the Monte Carlo
// replication loops run on (0 = GOMAXPROCS). Results are bit-identical
// at every worker count: -workers 8 reproduces exactly the numbers of
// -workers 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"drnet/internal/experiments"
	"drnet/internal/parallel"
)

type runner func(runs int, seed int64) (experiments.Result, error)

func main() {
	var (
		which    = flag.String("run", "all", "comma-separated experiment ids (F7a F7b F7c E1..E12 ABL) or 'all'")
		runs     = flag.Int("runs", 50, "independent runs per experiment (the paper uses 50)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		concurrent = flag.Int("parallel", 1, "experiments to run concurrently (results print in order)")
		workers    = flag.Int("workers", 0, "worker-pool width for Monte Carlo runs within an experiment (0 = GOMAXPROCS; results are identical at any width)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)
	if err := run(os.Stdout, *which, *runs, *seed, *concurrent); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// run executes the selected experiments — up to parallel of them
// concurrently — and renders the results to w in declaration order.
func run(w io.Writer, which string, runs int, seed int64, parallel int) error {
	all := []struct {
		id string
		fn runner
	}{
		{"F7a", experiments.Figure7a},
		{"F7b", func(r int, s int64) (experiments.Result, error) { return experiments.Figure7b(r, 5, s) }},
		{"F7c", func(r int, s int64) (experiments.Result, error) { return experiments.Figure7c(r, 0, s) }},
		{"E1", experiments.SecondOrderBias},
		{"E2", experiments.RandomnessSweep},
		{"E3", experiments.NonStationaryReplay},
		{"E4", experiments.WorldStateCorrection},
		{"E5", experiments.CouplingCorrection},
		{"E6", experiments.DimensionalitySweep},
		{"E7", experiments.RelayBias},
		{"E8", experiments.PolicySelection},
		{"E9", experiments.PropensityEstimation},
		{"E10", experiments.ExplorationDesign},
		{"E11", experiments.OnlineVsOffline},
		{"E12", experiments.CCReplayBias},
		{"ABL", experiments.Ablations},
	}

	want := map[string]bool{}
	if which != "all" {
		for _, id := range strings.Split(which, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	type job struct {
		id string
		fn runner
	}
	var jobs []job
	for _, e := range all {
		if which != "all" && !want[strings.ToUpper(e.id)] {
			continue
		}
		jobs = append(jobs, job{e.id, e.fn})
	}
	if len(jobs) == 0 {
		return fmt.Errorf("no experiment matches -run=%s", which)
	}
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(jobs) {
		parallel = len(jobs)
	}

	type outcome struct {
		res experiments.Result
		err error
	}
	results := make([]outcome, len(jobs))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := j.fn(runs, seed)
			results[i] = outcome{res: res, err: err}
		}(i, j)
	}
	wg.Wait()
	for i, out := range results {
		if out.err != nil {
			return fmt.Errorf("%s: %w", jobs[i].id, out.err)
		}
		fmt.Fprintln(w, out.res.Render())
	}
	return nil
}
