package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "E1", 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1 — Second-order bias") {
		t.Fatalf("missing E1 header:\n%s", out)
	}
	if strings.Contains(out, "F7a") {
		t.Fatal("unselected experiment was run")
	}
}

func TestRunMultipleAndCaseInsensitive(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "e1, E9", 2, 1, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1 —", "E9 —"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Parallel output preserves declaration order: E1 before E9.
	if strings.Index(out, "E1 —") > strings.Index(out, "E9 —") {
		t.Fatal("results out of order under -parallel")
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ZZZ", 1, 1, 1); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}
