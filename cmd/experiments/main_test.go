package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain silences phase-timing logs during tests unless -v is set.
func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Verbose() {
		expLog.SetOutput(io.Discard)
	}
	os.Exit(m.Run())
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "E1", 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1 — Second-order bias") {
		t.Fatalf("missing E1 header:\n%s", out)
	}
	if strings.Contains(out, "F7a") {
		t.Fatal("unselected experiment was run")
	}
}

func TestRunMultipleAndCaseInsensitive(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "e1, E9", 2, 1, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1 —", "E9 —"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Parallel output preserves declaration order: E1 before E9.
	if strings.Index(out, "E1 —") > strings.Index(out, "E9 —") {
		t.Fatal("results out of order under -parallel")
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ZZZ", 1, 1, 1); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

// TestRunManifest checks the manifest records configuration and one
// timed entry per selected experiment, in declaration order, and that
// it round-trips through writeManifest as valid JSON.
func TestRunManifest(t *testing.T) {
	var buf bytes.Buffer
	m, err := runAll(context.Background(), &buf, "E1,E9", 2, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 42 || m.Runs != 2 || m.Parallel != 2 {
		t.Fatalf("manifest config %+v", m)
	}
	if m.Workers < 1 {
		t.Fatalf("manifest workers = %d", m.Workers)
	}
	if m.Version == "" {
		t.Fatal("manifest missing version")
	}
	if len(m.Experiments) != 2 || m.Experiments[0].ID != "E1" || m.Experiments[1].ID != "E9" {
		t.Fatalf("manifest entries %+v", m.Experiments)
	}
	for _, e := range m.Experiments {
		if e.WallSeconds <= 0 {
			t.Fatalf("experiment %s has no wall time", e.ID)
		}
		// The memory fields come from MemStats deltas: every experiment
		// allocates, and the heap is never empty while one runs.
		if e.PeakHeapBytes == 0 {
			t.Fatalf("experiment %s has zero peak heap", e.ID)
		}
		if e.Allocs == 0 {
			t.Fatalf("experiment %s recorded zero allocations", e.ID)
		}
	}
	if m.WallSeconds < m.Experiments[0].WallSeconds && m.Parallel == 1 {
		t.Fatalf("total wall %g below a phase's", m.WallSeconds)
	}

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := writeManifest(path, m); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got runManifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Seed != 42 || len(got.Experiments) != 2 {
		t.Fatalf("round-tripped manifest %+v", got)
	}
}

// TestManifestCarriesTraceHealth: the Figure 7 experiments attach their
// run-0 bias-observatory summary, and it survives the JSON round trip
// under the traceHealth key.
func TestManifestCarriesTraceHealth(t *testing.T) {
	var buf bytes.Buffer
	m, err := runAll(context.Background(), &buf, "F7b", 2, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Experiments) != 1 {
		t.Fatalf("manifest entries %+v", m.Experiments)
	}
	th := m.Experiments[0].TraceHealth
	if th == nil || th.Grade == "" || th.Windows == 0 {
		t.Fatalf("manifest traceHealth = %+v", th)
	}
	// The wide event mirrors the entry and shares the trace-health
	// grade, and the run-level SLO rollup classifies it.
	ev := m.Experiments[0].Event
	if ev == nil || ev.RequestID != "F7b" || ev.Route != "experiment" || ev.Status != 200 {
		t.Fatalf("manifest event = %+v", ev)
	}
	if ev.BiasGrade != th.Grade || ev.DurationMs <= 0 {
		t.Fatalf("manifest event fields = %+v", ev)
	}
	drift := false
	for _, c := range m.SLO {
		if c.Name == "drift-free" {
			drift = true
			if c.Total != 1 {
				t.Fatalf("drift-free compliance = %+v, want the experiment in scope", c)
			}
		}
	}
	if !drift {
		t.Fatalf("manifest SLO rollup missing drift-free objective: %+v", m.SLO)
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"traceHealth"`)) || !bytes.Contains(b, []byte(`"grade"`)) {
		t.Fatalf("serialized manifest missing traceHealth block:\n%s", b)
	}
	if !bytes.Contains(b, []byte(`"slo"`)) || !bytes.Contains(b, []byte(`"event"`)) {
		t.Fatalf("serialized manifest missing slo/event blocks:\n%s", b)
	}
}

// TestRunAllInterrupted: a context cancelled before any experiment
// starts skips every job and surfaces as an "interrupted" error, so an
// operator's Ctrl-C never produces a silently truncated results table.
func TestRunAllInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	_, err := runAll(ctx, &buf, "E1,E9", 2, 1, 1)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("cancelled run still rendered results: %q", buf.String())
	}
}
