// CDN what-if analysis: the paper's Figure 4 / Figure 7a story.
//
// A CDN operator logs response times of requests from two ISPs routed
// through two frontends and two backends. Because the logging
// configuration nearly always pairs FE-1 with BE-1 and FE-2 with BE-2,
// a WISE-style Causal Bayesian Network learned from the trace cannot
// separate the frontend's effect from the backend's — and confidently
// mispredicts the unobserved combination (FE-1, BE-2) for ISP-1.
//
// The Doubly Robust estimator rescues the what-if answer by weighting in
// the handful of logged requests that actually used (FE-1, BE-2).
//
// Run with: go run ./examples/cdnwhatif
package main

import (
	"fmt"

	"drnet/internal/cdnsim"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(23)
	world := cdnsim.DefaultWorld()
	fmt.Println(world)

	data, err := cdnsim.Collect(world, rng)
	must(err)
	fmt.Printf("logged %d requests; decision counts: %v\n\n", len(data.Trace), data.Trace.DecisionCounts())

	// Learn the WISE model (CBN capped at 2 parents, like an
	// under-provisioned structure learner on a skewed trace).
	model, err := data.WISEModel(2)
	must(err)

	// The paper's "request X": ISP-1 via FE-1 and BE-2.
	x := cdnsim.Request{ISP: cdnsim.ISP1}
	cfg := cdnsim.Config{FE: 0, BE: 1}
	fmt.Printf("request X = ISP-1 via FE-1/BE-2\n")
	fmt.Printf("  WISE predicts: %6.1f ms\n", model.Predict(x, cfg))
	fmt.Printf("  ground truth:  %6.1f ms  (short — only FE-1 AND BE-1 is slow for ISP-1)\n\n",
		world.MeanResponse(x, cfg))

	// Evaluate the new configuration policy (50% of ISP-1 moves to
	// FE-1/BE-2) three ways.
	np := world.NewPolicy()
	truth := data.GroundTruth(np)
	dm, err := core.DirectMethod(data.Trace, np, model)
	must(err)
	dr, err := core.DoublyRobust(data.Trace, np, model, core.DROptions{})
	must(err)

	fmt.Printf("expected response time of the new configuration policy:\n")
	fmt.Printf("  ground truth: %7.2f ms\n", truth)
	fmt.Printf("  WISE (DM):    %7.2f ms  (error %.1f%%)\n", dm.Value, 100*mathx.RelativeError(truth, dm.Value))
	fmt.Printf("  DR:           %7.2f ms  (error %.1f%%)\n", dr.Value, 100*mathx.RelativeError(truth, dr.Value))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
