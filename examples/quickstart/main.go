// Quickstart: evaluate a new policy offline from a logged trace.
//
// This example builds the smallest possible data-driven networking
// problem — three server choices whose reward depends on a scalar
// client feature — logs a trace under an old ε-greedy policy, and then
// compares the Direct Method, IPS and Doubly Robust estimates of a new
// policy's value against the (simulation-only) ground truth.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(7)

	// The world: clients are scalar contexts x ∈ [0,1]; choosing server
	// d earns expected reward x·(d+1) — bigger servers help heavy
	// clients more — plus measurement noise.
	trueReward := func(x float64, d int) float64 { return x * float64(d+1) }
	drawReward := func(x float64, d int) float64 { return trueReward(x, d) + rng.Normal(0, 0.2) }
	servers := []int{0, 1, 2}

	// The old (logging) policy prefers server 0 but explores 30% of the
	// time — the randomness IPS and DR need (§4.1 of the paper).
	oldPolicy := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: servers,
		Epsilon:   0.3,
	}

	// Collect a trace: 2000 clients served by the old policy.
	clients := make([]float64, 2000)
	for i := range clients {
		clients[i] = rng.Float64()
	}
	trace := core.CollectTrace(clients, oldPolicy, drawReward, rng)
	fmt.Printf("logged %d records; old policy's on-policy value: %.3f\n\n",
		len(trace), trace.MeanReward())

	// The new policy we want to evaluate offline: prefer server 2.
	newPolicy := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 2 },
		Decisions: servers,
		Epsilon:   0.1,
	}

	// Always check overlap before trusting any off-policy estimate.
	diag, err := core.Diagnose(trace, newPolicy)
	must(err)
	fmt.Printf("overlap diagnostics: %s\n\n", diag)

	// A deliberately imperfect reward model (offset bias), standing in
	// for whatever predictor a real system would fit.
	model := core.RewardFunc[float64, int](func(x float64, d int) float64 {
		return trueReward(x, d) + 0.25
	})

	dm, err := core.DirectMethod(trace, newPolicy, model)
	must(err)
	ips, err := core.IPS(trace, newPolicy, core.IPSOptions{})
	must(err)
	dr, err := core.DoublyRobust(trace, newPolicy, model, core.DROptions{})
	must(err)

	truth := core.TrueValue(clients, newPolicy, trueReward)
	fmt.Printf("ground truth (simulation only): %.4f\n", truth)
	fmt.Printf("DM  (biased model): %s   (error %.1f%%)\n", dm, 100*mathx.RelativeError(truth, dm.Value))
	fmt.Printf("IPS:                %s   (error %.1f%%)\n", ips, 100*mathx.RelativeError(truth, ips.Value))
	fmt.Printf("DR:                 %s   (error %.1f%%)\n", dr, 100*mathx.RelativeError(truth, dr.Value))

	// Bootstrap a confidence interval for the DR estimate.
	ci, err := core.Bootstrap(trace, func(t core.Trace[float64, int]) (core.Estimate, error) {
		return core.DoublyRobust(t, newPolicy, model, core.DROptions{})
	}, rng, 300, 0.95)
	must(err)
	fmt.Printf("DR 95%% bootstrap CI: [%.4f, %.4f]\n", ci.Lo, ci.Hi)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
