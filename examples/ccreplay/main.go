// Congestion-control trace replay and its endogeneity bias — the §2
// use case ("traces of packet-level events ... to benchmark TCP
// congestion control") meeting the §4.1 coupling critique.
//
// Losses are not an exogenous process: a protocol's own window pushes
// the bottleneck queue into overflow. Replaying a trace recorded under
// protocol A to benchmark protocol B therefore inherits A's loss
// pattern, not the one B would have created. The example quantifies the
// error in both directions.
//
// Run with: go run ./examples/ccreplay
package main

import (
	"fmt"

	"drnet/internal/mathx"
	"drnet/internal/tcp"
)

func main() {
	link := tcp.Link{CapacityPkts: 100, QueuePkts: 30, CrossMean: 20, CrossStd: 5}
	const rounds = 5000

	protos := map[string]func() tcp.Protocol{
		"reno":       func() tcp.Protocol { return &tcp.Reno{} },
		"aggressive": func() tcp.Protocol { return &tcp.Aggressive{} },
	}

	// Closed-loop ground truths on the same cross-traffic realization.
	truths := map[string]float64{}
	traces := map[string][]tcp.RoundRecord{}
	for name, mk := range protos {
		//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
		rng := mathx.NewRNG(7)
		trace, goodput, err := tcp.RunClosedLoop(mk(), link, rounds, rng)
		if err != nil {
			panic(err)
		}
		truths[name] = goodput
		traces[name] = trace
		fmt.Printf("closed loop %-11s goodput %6.2f pkts/RTT, loss rate %.3f\n",
			name, goodput, tcp.LossRate(trace))
	}

	fmt.Println("\ntrace replay (rows: recorded under; columns: evaluated protocol)")
	for _, rec := range []string{"reno", "aggressive"} {
		for _, eval := range []string{"reno", "aggressive"} {
			est, err := tcp.ReplayTrace(protos[eval](), traces[rec])
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-11s → %-11s replay %6.2f   truth %6.2f   error %5.1f%%\n",
				rec, eval, est, truths[eval], 100*mathx.RelativeError(truths[eval], est))
		}
	}
	fmt.Println("\nself-replay is exact; cross-protocol replay inherits the recorder's endogenous losses")
}
