// ABR evaluation end-to-end: the paper's Figure 2 / Figure 7b story.
//
// A video provider logs sessions under a buffer-based (BBA) bitrate
// policy. The observed per-chunk throughput is b·p(r): low bitrates
// under-report the path capacity because TCP never exits slow start on
// small chunks. The provider then wants to know — offline — how a more
// aggressive MPC policy would have performed.
//
// The FastMPC-style evaluator (a Direct Method that assumes throughput
// is bitrate-independent) systematically underestimates the new policy;
// the Doubly Robust estimator corrects it using the chunks where the
// logging policy happened to explore the same bitrate.
//
// Run with: go run ./examples/abreval
package main

import (
	"fmt"

	"drnet/internal/abr"
	"drnet/internal/core"
	"drnet/internal/experiments"
	"drnet/internal/mathx"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(11)
	scn := experiments.Figure7bScenario()
	fmt.Println(scn)

	data, err := scn.CollectMany(rng, 5)
	must(err)
	fmt.Printf("logged %d chunks over 5 sessions\n", len(data.Trace))
	counts := data.Trace.DecisionCounts()
	fmt.Printf("bitrate usage under BBA: %v\n\n", counts)

	newPolicy := data.NewPolicy(0)
	diag, err := core.Diagnose(data.Trace, newPolicy)
	must(err)
	fmt.Printf("overlap with the MPC policy: %s\n\n", diag)

	truth := data.GroundTruth(newPolicy)
	model := core.RewardFunc[abr.Chunk, int](data.ModelReward)

	dm, err := core.DirectMethod(data.Trace, newPolicy, model)
	must(err)
	dr, err := core.DoublyRobust(data.Trace, newPolicy, model, core.DROptions{Clip: 8})
	must(err)

	fmt.Printf("ground truth per-chunk QoE of MPC: %8.4f\n", truth)
	fmt.Printf("FastMPC-style evaluator (DM):      %8.4f  (error %.1f%%)\n",
		dm.Value, 100*mathx.RelativeError(truth, dm.Value))
	fmt.Printf("Doubly Robust:                     %8.4f  (error %.1f%%)\n",
		dr.Value, 100*mathx.RelativeError(truth, dr.Value))

	// Show the Figure 2 mechanism on one concrete chunk: the model's
	// prediction vs the truth at the top bitrate.
	top := len(data.Ladder) - 1
	for _, c := range data.Contexts {
		if c.Index == 20 {
			fmt.Printf("\nchunk 20: predictor says %.0f Kbps, but at bitrate %d the path would deliver %.0f Kbps\n",
				c.PredictedKbps, top, scn.Config.Observation.Observe(scn.BandwidthKbps, top))
			fmt.Printf("  model reward at top bitrate: %7.3f\n", data.ModelReward(c, top))
			fmt.Printf("  true reward at top bitrate:  %7.3f\n", data.TrueReward(c, top))
			break
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
