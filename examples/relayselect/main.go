// Relay selection with NAT selection bias: the paper's Figure 3 story.
//
// A VoIP provider logs call quality. Historically only NAT-ed callers
// were relayed (they needed it for connectivity), so the per-AS-pair
// relay statistics are contaminated by the NAT population's worse
// last-mile conditions. A VIA-style evaluator that estimates
// Perf(A→R→B) from same-AS-pair relayed calls therefore underestimates
// how well relaying would serve public-IP callers.
//
// The example quantifies the bias, shows DR correcting it with the
// NAT-blind model, and shows that adding the NAT feature fixes the
// model directly (at the price the paper notes: higher dimensionality).
//
// Run with: go run ./examples/relayselect
package main

import (
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/relay"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(31)
	w := relay.DefaultWorld()
	world := &w
	if err := world.Init(rng); err != nil {
		panic(err)
	}
	fmt.Println(world)

	data, err := world.Collect(4000, rng)
	if err != nil {
		panic(err)
	}
	// How biased is the logging?
	natRelayed, pubRelayed := 0, 0
	for _, rec := range data.Trace {
		if rec.Decision == relay.Relayed {
			if rec.Context.NAT {
				natRelayed++
			} else {
				pubRelayed++
			}
		}
	}
	fmt.Printf("logged %d calls; relayed: %d NAT-ed vs %d public (the Figure 3 selection bias)\n\n",
		len(data.Trace), natRelayed, pubRelayed)

	np := world.NewPolicy() // relay every call
	truth := data.GroundTruth(np)

	via := data.VIAModel()
	full := data.FullModel()
	dmVIA, err := core.DirectMethod(data.Trace, np, via)
	must(err)
	drVIA, err := core.DoublyRobust(data.Trace, np, via, core.DROptions{})
	must(err)
	dmFull, err := core.DirectMethod(data.Trace, np, full)
	must(err)

	fmt.Printf("expected quality of 'relay everything':\n")
	fmt.Printf("  ground truth:            %6.3f\n", truth)
	fmt.Printf("  VIA (NAT-blind DM):      %6.3f  (error %.1f%%)\n", dmVIA.Value, 100*mathx.RelativeError(truth, dmVIA.Value))
	fmt.Printf("  DR with NAT-blind model: %6.3f  (error %.1f%%)\n", drVIA.Value, 100*mathx.RelativeError(truth, drVIA.Value))
	fmt.Printf("  DM with NAT feature:     %6.3f  (error %.1f%%)\n", dmFull.Value, 100*mathx.RelativeError(truth, dmFull.Value))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
