// World-state correction: §4.1/§4.3 of the paper, end to end.
//
// An operator's trace was logged during quiet morning hours, but the
// question is how a candidate server-selection policy would perform at
// peak. Raw DR answers the wrong question (it predicts morning-state
// rewards). The fix: collect a small calibration sample at peak, fit
// per-server transition functions between the states, transform the
// morning trace, and run DR on the corrected rewards.
//
// Run with: go run ./examples/statecorrection
package main

import (
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/worldstate"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(29)
	scn := worldstate.DefaultScenario()
	must(scn.Init(rng))

	morning, err := scn.Collect(2000, worldstate.MorningHour, rng)
	must(err)
	peakCal, err := scn.Collect(200, worldstate.PeakHour, rng)
	must(err)
	fmt.Printf("morning trace: %d sessions (mean QoE %.3f)\n", len(morning.Trace), morning.Trace.MeanReward())
	fmt.Printf("peak calibration: %d sessions (mean QoE %.3f)\n\n", len(peakCal.Trace), peakCal.Trace.MeanReward())

	np := scn.NewPolicy()
	truth := core.TrueValue(morning.Contexts, np, func(c, v int) float64 {
		return scn.TrueReward(c, v, worldstate.PeakHour)
	})

	estimate := func(tr core.Trace[int, int]) float64 {
		model := core.FitTable(tr, worldstate.ServerGroup)
		est, err := core.DoublyRobust(tr, np, model, core.DROptions{})
		must(err)
		return est.Value
	}

	raw := estimate(morning.Trace)

	trans, err := worldstate.FitPerGroup(
		worldstate.CalibrationFromTrace(morning.Trace, worldstate.ServerGroup),
		worldstate.CalibrationFromTrace(peakCal.Trace, worldstate.ServerGroup),
	)
	must(err)
	fmt.Println("fitted morning→peak transitions per server:")
	for g, tr := range trans {
		fmt.Printf("  %s: reward %+.3f\n", g, tr.Intercept)
	}
	corrected, skipped := worldstate.TransformTraceGrouped(morning.Trace, trans, worldstate.ServerGroup)
	if skipped > 0 {
		fmt.Printf("  (%d records had no fitted transition)\n", skipped)
	}
	fixed := estimate(corrected)

	fmt.Printf("\ntrue peak-hours value of the policy: %.4f\n", truth)
	fmt.Printf("DR on the raw morning trace:         %.4f  (error %.1f%%)\n",
		raw, 100*mathx.RelativeError(truth, raw))
	fmt.Printf("DR on the state-corrected trace:     %.4f  (error %.1f%%)\n",
		fixed, 100*mathx.RelativeError(truth, fixed))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
