// Streaming evaluation: watch a DR estimate converge as records arrive.
//
// A measurement pipeline rarely hands the evaluator a finished trace;
// records trickle in session by session. core.StreamingDR folds each
// record into the doubly robust estimate in O(1), so a dashboard can
// show the candidate policy's estimated value — with a standard error —
// at any moment, and an operator can stop collecting as soon as the
// interval is tight enough to act.
//
// Run with: go run ./examples/streamingeval
package main

import (
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(41)

	// World and policies as in the quickstart.
	trueReward := func(x float64, d int) float64 { return x * float64(d+1) }
	servers := []int{0, 1, 2}
	oldPolicy := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 0 },
		Decisions: servers,
		Epsilon:   0.3,
	}
	newPolicy := core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return 2 },
		Decisions: servers,
		Epsilon:   0.1,
	}
	// A deliberately offset model: the correction has work to do.
	model := core.RewardFunc[float64, int](func(x float64, d int) float64 {
		return trueReward(x, d) + 0.3
	})

	acc := core.NewStreamingDR[float64, int](newPolicy, model)
	var truth mathx.Welford // exact per-record value of the new policy

	fmt.Println("records    DR estimate    stderr     true value so far")
	const total = 20000
	for i := 0; i < total; i++ {
		// One live record arrives from the old policy.
		x := rng.Float64()
		dist := oldPolicy.Distribution(x)
		probs := make([]float64, len(dist))
		for j, w := range dist {
			probs[j] = w.Prob
		}
		pick := dist[rng.Categorical(probs)]
		err := acc.Offer(core.Record[float64, int]{
			Context:    x,
			Decision:   pick.Decision,
			Reward:     trueReward(x, pick.Decision) + rng.Normal(0, 0.3),
			Propensity: pick.Prob,
		})
		if err != nil {
			panic(err)
		}
		// Track what the DR estimate converges to (simulation only).
		v := 0.0
		for _, w := range newPolicy.Distribution(x) {
			v += w.Prob * trueReward(x, w.Decision)
		}
		truth.Add(v)

		if (i+1)%(total/8) == 0 {
			est, err := acc.Estimate()
			if err != nil {
				panic(err)
			}
			fmt.Printf("%7d    %8.4f     ±%.4f     %8.4f\n",
				est.N, est.Value, est.StdErr, truth.Mean())
		}
	}
}
