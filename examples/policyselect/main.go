// Policy selection: the full Figure 1 workflow.
//
// A video provider has one logged trace (randomized CDN/bitrate
// assignment) and four candidate assignment policies of varying
// quality. core.SelectBest estimates each candidate with DR, attaches
// bootstrap confidence intervals and overlap diagnostics, screens out
// candidates the trace cannot support, and ranks the rest — so the
// operator deploys the best policy without a live experiment.
//
// Run with: go run ./examples/policyselect
package main

import (
	"fmt"

	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

func main() {
	//lint:allow seedflow pedagogical fixed-seed walkthrough; reproducibility over variation
	rng := mathx.NewRNG(17)
	world := cfa.DefaultWorld()
	must(world.Init(rng))
	fmt.Println(&world)

	data, err := world.Collect(1500, rng)
	must(err)

	// Candidate policies: three data-driven assignments of decreasing
	// sharpness, plus keeping the randomized status quo.
	candidates := []core.Candidate[cfa.Client, cfa.Decision]{
		{Name: "sharp", Policy: world.NewPolicy(0.2, rng)},
		{Name: "medium", Policy: world.NewPolicy(0.8, rng)},
		{Name: "blurry", Policy: world.NewPolicy(2.0, rng)},
		{Name: "status-quo", Policy: world.OldPolicy()},
	}

	// Fit the reward model on half the trace, select on the other half,
	// so the model cannot memorize the records it scores.
	fitHalf, evalHalf, err := data.Trace.Split(0.5)
	must(err)
	model, err := (&cfa.Data{Trace: fitHalf, World: data.World}).PerDecisionKNNModel(3)
	must(err)

	ranked, err := core.SelectBest(evalHalf, model, candidates, rng, core.SelectOptions{
		Bootstrap: 200,
	})
	must(err)

	fmt.Println("\nranking (DR estimate with 95% bootstrap CI):")
	for i, r := range ranked {
		truth := data.GroundTruth(r.Candidate.Policy)
		fmt.Printf("  %d. %-10s  est %6.3f  [%6.3f, %6.3f]  ess %6.1f   (true value %6.3f)\n",
			i+1, r.Candidate.Name, r.Estimate.Value, r.Interval.Lo, r.Interval.Hi,
			r.Estimate.ESS, truth)
	}
	if core.Overlaps(ranked) {
		fmt.Println("\nthe top two intervals overlap — gather more (or more randomized) data before acting")
	} else {
		fmt.Printf("\nclear winner: deploy %q\n", ranked[0].Candidate.Name)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
