// Head-to-head ABR comparison under identical network conditions — the
// §2 use case: "to compare multiple adaptive bitrate algorithms under
// the same network conditions, video content providers often use traces
// of throughput observed by real clients".
//
// Five algorithms stream the same 40 bandwidth realizations of a
// mean-reverting log-normal link; the table reports QoE, rebuffering,
// average quality level and switching per session. A second table
// repeats the race on a regime-switching link where the CS2P-style
// Markov predictor earns its keep.
//
// Run with: go run ./examples/abrcompare
package main

import (
	"fmt"
	"math"

	"drnet/internal/abr"
	"drnet/internal/mathx"
)

// regimeSwitching is a two-state bandwidth process: long stretches of
// 3 Mbps interrupted by 500 Kbps troughs.
type regimeSwitching struct{}

func (regimeSwitching) Series(n int, rng *mathx.RNG) []float64 {
	out := make([]float64, n)
	state := 0
	for i := range out {
		if rng.Bernoulli(0.05) {
			state = 1 - state
		}
		mean := 3000.0
		if state == 1 {
			mean = 500
		}
		out[i] = mean * math.Exp(rng.Normal(0, 0.05))
	}
	return out
}

func main() {
	cfg := abr.SessionConfig{Ladder: abr.DefaultLadder(), NumChunks: 120}
	policies := map[string]abr.ABRPolicy{
		"bba":        abr.BBA{ReservoirSec: 5, CushionSec: 10},
		"festive":    abr.FESTIVE{},
		"rate-based": abr.RateBased{Predictor: abr.HarmonicMean{Window: 5, Prior: 1000}},
		"mpc":        abr.MPC{Predictor: abr.HarmonicMean{Window: 5, Prior: 1000}},
		"mpc+markov": abr.MPC{Predictor: abr.MarkovPredictor{States: 6, Prior: 1000}},
	}

	show := func(title string, process abr.BandwidthProcess, seed int64) {
		rows, err := abr.Compare(cfg, policies, process, 40, mathx.NewRNG(seed))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\n", title)
		fmt.Printf("  %-12s %10s %10s %10s %10s\n", "policy", "qoe/chunk", "rebuf s", "avg level", "switches")
		for _, r := range rows {
			fmt.Printf("  %-12s %10.3f %10.2f %10.2f %10.1f\n",
				r.Name, r.MeanQoE, r.MeanRebufferSec, r.MeanLevel, r.Switches)
		}
		fmt.Println()
	}

	show("steady link (log-normal AR, mean 2 Mbps):",
		abr.LogNormalAR{MeanKbps: 2000, Sigma: 0.3, Rho: 0.8}, 1)
	show("regime-switching link (3 Mbps ↔ 500 Kbps):",
		regimeSwitching{}, 2)
}
