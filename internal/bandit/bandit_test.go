package bandit

import (
	"fmt"
	"testing"

	"drnet/internal/mathx"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{1}, UCB1{}); err == nil {
		t.Fatal("one decision should fail")
	}
	if _, err := New[int]([]int{1, 2}, nil); err == nil {
		t.Fatal("nil algorithm should fail")
	}
}

// runBandit plays T rounds on a two-group world and returns the
// fraction of optimal plays in the last quarter.
func runBandit(t *testing.T, algo Algorithm, seed int64) float64 {
	t.Helper()
	b, err := New([]string{"a", "b", "c"}, algo)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(seed)
	// Group g0: arm a best; group g1: arm c best.
	mean := map[string]map[string]float64{
		"g0": {"a": 1.0, "b": 0.5, "c": 0.2},
		"g1": {"a": 0.2, "b": 0.5, "c": 1.0},
	}
	bestArm := map[string]string{"g0": "a", "g1": "c"}
	const T = 4000
	optimal, lastQ := 0, 0
	for i := 0; i < T; i++ {
		g := "g0"
		if rng.Bernoulli(0.5) {
			g = "g1"
		}
		arm := b.Choose(g, rng)
		r := mean[g][arm] + rng.Normal(0, 0.3)
		if err := b.Observe(g, arm, r); err != nil {
			t.Fatal(err)
		}
		if i >= 3*T/4 {
			lastQ++
			if arm == bestArm[g] {
				optimal++
			}
		}
	}
	if b.Groups() != 2 {
		t.Fatalf("groups = %d", b.Groups())
	}
	for g, want := range bestArm {
		got, ok := b.Best(g)
		if !ok || got != want {
			t.Fatalf("Best(%s) = %v (%v), want %s", g, got, ok, want)
		}
	}
	return float64(optimal) / float64(lastQ)
}

func TestUCB1Converges(t *testing.T) {
	if frac := runBandit(t, UCB1{}, 1); frac < 0.7 {
		t.Fatalf("UCB1 optimal-play fraction %g too low", frac)
	}
}

func TestEpsilonGreedyConverges(t *testing.T) {
	if frac := runBandit(t, EpsilonGreedy{Epsilon: 0.1}, 2); frac < 0.7 {
		t.Fatalf("ε-greedy optimal-play fraction %g too low", frac)
	}
}

func TestUCB1PlaysEveryArmFirst(t *testing.T) {
	b, _ := New([]int{0, 1, 2, 3}, UCB1{})
	rng := mathx.NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		arm := b.Choose("g", rng)
		seen[arm] = true
		if err := b.Observe("g", arm, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("UCB1 did not initialize all arms: %v", seen)
	}
}

func TestObserveUnknownDecision(t *testing.T) {
	b, _ := New([]int{0, 1}, UCB1{})
	if err := b.Observe("g", 99, 1); err == nil {
		t.Fatal("unknown decision should fail")
	}
}

func TestBestUnseenGroup(t *testing.T) {
	b, _ := New([]int{0, 1}, UCB1{})
	if _, ok := b.Best("nope"); ok {
		t.Fatal("unseen group should report not-ok")
	}
}

func TestGroupsAreIndependent(t *testing.T) {
	b, _ := New([]string{"x", "y"}, EpsilonGreedy{Epsilon: 0})
	rng := mathx.NewRNG(4)
	// Teach g0 that x is great and g1 that y is great.
	for i := 0; i < 50; i++ {
		mustObserve(t, b, "g0", "x", 1)
		mustObserve(t, b, "g0", "y", 0)
		mustObserve(t, b, "g1", "x", 0)
		mustObserve(t, b, "g1", "y", 1)
	}
	if got := b.Choose("g0", rng); got != "x" {
		t.Fatalf("g0 chose %s", got)
	}
	if got := b.Choose("g1", rng); got != "y" {
		t.Fatalf("g1 chose %s", got)
	}
}

func mustObserve(t *testing.T, b *GroupBandit[string], g, d string, r float64) {
	t.Helper()
	if err := b.Observe(g, d, r); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	seq := func(seed int64) string {
		b, _ := New([]int{0, 1, 2}, EpsilonGreedy{Epsilon: 0.3})
		rng := mathx.NewRNG(seed)
		out := ""
		for i := 0; i < 30; i++ {
			arm := b.Choose("g", rng)
			out += fmt.Sprint(arm)
			_ = b.Observe("g", arm, float64(arm))
		}
		return out
	}
	if seq(7) != seq(7) {
		t.Fatal("same seed produced different sequences")
	}
}
