// Package bandit implements the online counterpart of trace-driven
// evaluation: group-based exploration–exploitation in the style of
// Pytheas [18], which the paper's introduction cites as the live
// alternative to offline what-if analysis. Clients are bucketed into
// groups (feature profiles); each group runs an independent bandit over
// the decision set.
//
// The point of having this in the repository is experiment E11: an
// operator can either *learn online* — paying regret while the bandit
// explores — or *evaluate offline* with DR on logs they already have.
// The experiment quantifies that trade.
package bandit

import (
	"errors"
	"fmt"
	"math"

	"drnet/internal/mathx"
)

// Algorithm selects arms and absorbs observed rewards.
type Algorithm interface {
	// Select returns the arm to play given per-arm pull counts and
	// reward sums for the current group.
	Select(counts []int, sums []float64, totalPulls int, rng *mathx.RNG) int
}

// EpsilonGreedy explores uniformly with probability Epsilon and
// exploits the empirically best arm otherwise.
type EpsilonGreedy struct {
	Epsilon float64
}

// Select implements Algorithm.
func (a EpsilonGreedy) Select(counts []int, sums []float64, _ int, rng *mathx.RNG) int {
	if rng.Bernoulli(a.Epsilon) {
		return rng.Intn(len(counts))
	}
	best, bestV := 0, math.Inf(-1)
	for i := range counts {
		v := math.Inf(1) // unexplored arms first
		if counts[i] > 0 {
			v = sums[i] / float64(counts[i])
		}
		if v > bestV {
			bestV, best = v, i
		}
	}
	return best
}

// UCB1 plays the arm with the highest upper confidence bound
// (Auer et al.). C scales the exploration bonus (default √2).
type UCB1 struct {
	C float64
}

// Select implements Algorithm.
func (a UCB1) Select(counts []int, sums []float64, totalPulls int, _ *mathx.RNG) int {
	c := a.C
	if c <= 0 {
		c = math.Sqrt2
	}
	best, bestV := 0, math.Inf(-1)
	for i := range counts {
		if counts[i] == 0 {
			return i // play every arm once first
		}
		mean := sums[i] / float64(counts[i])
		bonus := c * math.Sqrt(math.Log(float64(totalPulls+1))/float64(counts[i]))
		if v := mean + bonus; v > bestV {
			bestV, best = v, i
		}
	}
	return best
}

// GroupBandit runs one bandit instance per client group.
type GroupBandit[D comparable] struct {
	decisions []D
	algo      Algorithm
	groups    map[string]*groupState
}

type groupState struct {
	counts []int
	sums   []float64
	pulls  int
}

// New creates a group bandit over the decision set.
func New[D comparable](decisions []D, algo Algorithm) (*GroupBandit[D], error) {
	if len(decisions) < 2 {
		return nil, errors.New("bandit: need at least two decisions")
	}
	if algo == nil {
		return nil, errors.New("bandit: nil algorithm")
	}
	return &GroupBandit[D]{
		decisions: append([]D(nil), decisions...),
		algo:      algo,
		groups:    make(map[string]*groupState),
	}, nil
}

// Choose picks a decision for a client in the given group.
func (b *GroupBandit[D]) Choose(group string, rng *mathx.RNG) D {
	st := b.state(group)
	return b.decisions[b.algo.Select(st.counts, st.sums, st.pulls, rng)]
}

// Observe feeds back the reward of a previously chosen decision.
func (b *GroupBandit[D]) Observe(group string, d D, reward float64) error {
	st := b.state(group)
	for i, dec := range b.decisions {
		if dec == d {
			st.counts[i]++
			st.sums[i] += reward
			st.pulls++
			return nil
		}
	}
	return fmt.Errorf("bandit: unknown decision %v", d)
}

// Best returns the empirically best decision for a group (the
// post-learning greedy policy), or false when the group is unseen.
func (b *GroupBandit[D]) Best(group string) (D, bool) {
	st, ok := b.groups[group]
	var zero D
	if !ok {
		return zero, false
	}
	best, bestV := -1, math.Inf(-1)
	for i := range st.counts {
		if st.counts[i] == 0 {
			continue
		}
		if v := st.sums[i] / float64(st.counts[i]); v > bestV {
			bestV, best = v, i
		}
	}
	if best < 0 {
		return zero, false
	}
	return b.decisions[best], true
}

// Groups returns the number of groups seen so far.
func (b *GroupBandit[D]) Groups() int { return len(b.groups) }

func (b *GroupBandit[D]) state(group string) *groupState {
	st, ok := b.groups[group]
	if !ok {
		st = &groupState{
			counts: make([]int, len(b.decisions)),
			sums:   make([]float64, len(b.decisions)),
		}
		b.groups[group] = st
	}
	return st
}
