// Package cbn implements discrete causal Bayesian networks: parameter
// estimation, score-based structure learning, exact inference by
// variable elimination, and ancestral sampling.
//
// It is the reward-model substrate for the WISE scenario (§2.2.1,
// Figure 4): WISE answers what-if CDN configuration questions by
// learning a CBN from packet traces and querying it — a Direct-Method
// style evaluator whose bias the paper's Figure 7a quantifies.
package cbn

import (
	"errors"
	"fmt"
	"math"

	"drnet/internal/mathx"
)

// Variable describes one discrete node.
type Variable struct {
	// Name identifies the variable (e.g. "ISP", "FE", "RT").
	Name string
	// Card is the number of discrete states (≥ 2).
	Card int
}

// Network is a directed acyclic graphical model over discrete variables.
type Network struct {
	vars    []Variable
	parents [][]int     // parents[i] lists parent variable indices of i
	cpt     [][]float64 // cpt[i][parentIndex*Card + state]
}

// New creates a network with the given variables and no edges. CPTs are
// uniform until fitted or set.
func New(vars []Variable) (*Network, error) {
	if len(vars) == 0 {
		return nil, errors.New("cbn: no variables")
	}
	seen := make(map[string]bool)
	for _, v := range vars {
		if v.Card < 2 {
			return nil, fmt.Errorf("cbn: variable %q has cardinality %d, want >= 2", v.Name, v.Card)
		}
		if seen[v.Name] {
			return nil, fmt.Errorf("cbn: duplicate variable %q", v.Name)
		}
		seen[v.Name] = true
	}
	n := &Network{
		vars:    append([]Variable(nil), vars...),
		parents: make([][]int, len(vars)),
		cpt:     make([][]float64, len(vars)),
	}
	for i := range vars {
		n.resetCPT(i)
	}
	return n, nil
}

// Index returns the index of the named variable, or -1.
func (n *Network) Index(name string) int {
	for i, v := range n.vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Vars returns the variable list (do not mutate).
func (n *Network) Vars() []Variable { return n.vars }

// Parents returns the parent indices of variable i (do not mutate).
func (n *Network) Parents(i int) []int { return n.parents[i] }

// parentConfigs returns the number of joint parent configurations of
// variable i.
func (n *Network) parentConfigs(i int) int {
	m := 1
	for _, p := range n.parents[i] {
		m *= n.vars[p].Card
	}
	return m
}

func (n *Network) resetCPT(i int) {
	rows := n.parentConfigs(i)
	card := n.vars[i].Card
	n.cpt[i] = make([]float64, rows*card)
	u := 1 / float64(card)
	for j := range n.cpt[i] {
		n.cpt[i][j] = u
	}
}

// parentConfigIndex maps an assignment (full sample) to the row index of
// variable i's CPT.
func (n *Network) parentConfigIndex(i int, sample []int) int {
	idx := 0
	for _, p := range n.parents[i] {
		idx = idx*n.vars[p].Card + sample[p]
	}
	return idx
}

// AddEdge adds parent → child. It rejects duplicate edges, self loops
// and cycles.
func (n *Network) AddEdge(parent, child int) error {
	if parent == child {
		return errors.New("cbn: self loop")
	}
	if parent < 0 || parent >= len(n.vars) || child < 0 || child >= len(n.vars) {
		return errors.New("cbn: variable index out of range")
	}
	for _, p := range n.parents[child] {
		if p == parent {
			return fmt.Errorf("cbn: edge %s→%s already exists", n.vars[parent].Name, n.vars[child].Name)
		}
	}
	n.parents[child] = append(n.parents[child], parent)
	if n.hasCycle() {
		n.parents[child] = n.parents[child][:len(n.parents[child])-1]
		return fmt.Errorf("cbn: edge %s→%s would create a cycle", n.vars[parent].Name, n.vars[child].Name)
	}
	n.resetCPT(child)
	return nil
}

// RemoveEdge removes parent → child if present.
func (n *Network) RemoveEdge(parent, child int) bool {
	for k, p := range n.parents[child] {
		if p == parent {
			n.parents[child] = append(n.parents[child][:k], n.parents[child][k+1:]...)
			n.resetCPT(child)
			return true
		}
	}
	return false
}

// HasEdge reports whether parent → child exists.
func (n *Network) HasEdge(parent, child int) bool {
	for _, p := range n.parents[child] {
		if p == parent {
			return true
		}
	}
	return false
}

func (n *Network) hasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(n.vars))
	var visit func(i int) bool
	visit = func(i int) bool {
		color[i] = gray
		for _, p := range n.parents[i] {
			switch color[p] {
			case gray:
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		color[i] = black
		return false
	}
	for i := range n.vars {
		if color[i] == white && visit(i) {
			return true
		}
	}
	return false
}

// topoOrder returns variable indices in topological (parents-first)
// order.
func (n *Network) topoOrder() []int {
	order := make([]int, 0, len(n.vars))
	state := make([]int, len(n.vars))
	var visit func(i int)
	visit = func(i int) {
		state[i] = 1
		for _, p := range n.parents[i] {
			if state[p] == 0 {
				visit(p)
			}
		}
		state[i] = 2
		order = append(order, i)
	}
	for i := range n.vars {
		if state[i] == 0 {
			visit(i)
		}
	}
	return order
}

// Fit estimates all CPTs from complete samples by maximum likelihood
// with the given Laplace smoothing pseudo-count (alpha = 1 is standard;
// 0 disables smoothing and leaves unseen rows uniform).
func (n *Network) Fit(samples [][]int, alpha float64) error {
	if len(samples) == 0 {
		return errors.New("cbn: no samples")
	}
	if alpha < 0 {
		return errors.New("cbn: negative smoothing")
	}
	for si, s := range samples {
		if len(s) != len(n.vars) {
			return fmt.Errorf("cbn: sample %d has %d values, want %d", si, len(s), len(n.vars))
		}
		for i, v := range s {
			if v < 0 || v >= n.vars[i].Card {
				return fmt.Errorf("cbn: sample %d: state %d out of range for %q", si, v, n.vars[i].Name)
			}
		}
	}
	for i := range n.vars {
		card := n.vars[i].Card
		rows := n.parentConfigs(i)
		counts := make([]float64, rows*card)
		for _, s := range samples {
			counts[n.parentConfigIndex(i, s)*card+s[i]]++
		}
		for r := 0; r < rows; r++ {
			total := alpha * float64(card)
			for v := 0; v < card; v++ {
				total += counts[r*card+v]
			}
			for v := 0; v < card; v++ {
				if total == 0 {
					n.cpt[i][r*card+v] = 1 / float64(card)
				} else {
					n.cpt[i][r*card+v] = (counts[r*card+v] + alpha) / total
				}
			}
		}
	}
	return nil
}

// SetCPT sets the conditional distribution of variable i for one parent
// configuration row. probs must have length Card and sum to ~1.
func (n *Network) SetCPT(i, row int, probs []float64) error {
	card := n.vars[i].Card
	if len(probs) != card {
		return fmt.Errorf("cbn: got %d probabilities, want %d", len(probs), card)
	}
	if row < 0 || row >= n.parentConfigs(i) {
		return fmt.Errorf("cbn: row %d out of range", row)
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			return errors.New("cbn: negative probability")
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("cbn: probabilities sum to %g", sum)
	}
	copy(n.cpt[i][row*card:(row+1)*card], probs)
	return nil
}

// Sample draws one complete assignment by ancestral sampling.
func (n *Network) Sample(rng *mathx.RNG) []int {
	out := make([]int, len(n.vars))
	for _, i := range n.topoOrder() {
		card := n.vars[i].Card
		row := n.parentConfigIndex(i, out)
		out[i] = rng.Categorical(n.cpt[i][row*card : (row+1)*card])
	}
	return out
}

// LogLikelihood returns the total log-likelihood of the samples under
// the current structure and CPTs.
func (n *Network) LogLikelihood(samples [][]int) float64 {
	ll := 0.0
	for _, s := range samples {
		for i := range n.vars {
			card := n.vars[i].Card
			p := n.cpt[i][n.parentConfigIndex(i, s)*card+s[i]]
			if p <= 0 {
				p = 1e-12
			}
			ll += math.Log(p)
		}
	}
	return ll
}
