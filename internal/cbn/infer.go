package cbn

import (
	"errors"
	"fmt"
	"sort"
)

// factor is a table over a subset of variables used by variable
// elimination.
type factor struct {
	vars   []int // network variable indices, ascending
	card   []int
	values []float64
}

func (n *Network) cptFactor(i int) factor {
	vars := append(append([]int(nil), n.parents[i]...), i)
	sort.Ints(vars)
	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = n.vars[v].Card
	}
	f := factor{vars: vars, card: card, values: make([]float64, size(card))}
	// Enumerate all assignments of f's scope and fill from the CPT.
	assign := make([]int, len(vars))
	full := make([]int, len(n.vars))
	for idx := range f.values {
		decode(idx, card, assign)
		for k, v := range vars {
			full[v] = assign[k]
		}
		row := n.parentConfigIndex(i, full)
		f.values[idx] = n.cpt[i][row*n.vars[i].Card+full[i]]
	}
	return f
}

func size(card []int) int {
	s := 1
	for _, c := range card {
		s *= c
	}
	return s
}

// decode writes the mixed-radix digits of idx into out (most significant
// digit first, matching encode).
func decode(idx int, card []int, out []int) {
	for k := len(card) - 1; k >= 0; k-- {
		out[k] = idx % card[k]
		idx /= card[k]
	}
}

func encode(assign, card []int) int {
	idx := 0
	for k := range card {
		idx = idx*card[k] + assign[k]
	}
	return idx
}

// multiply returns the factor product a·b.
func multiply(a, b factor) factor {
	// Union of scopes.
	varSet := make(map[int]bool)
	for _, v := range a.vars {
		varSet[v] = true
	}
	for _, v := range b.vars {
		varSet[v] = true
	}
	vars := make([]int, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	// Cardinalities.
	cardOf := make(map[int]int)
	for k, v := range a.vars {
		cardOf[v] = a.card[k]
	}
	for k, v := range b.vars {
		cardOf[v] = b.card[k]
	}
	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = cardOf[v]
	}
	out := factor{vars: vars, card: card, values: make([]float64, size(card))}
	assign := make([]int, len(vars))
	pos := make(map[int]int, len(vars))
	for k, v := range vars {
		pos[v] = k
	}
	aAssign := make([]int, len(a.vars))
	bAssign := make([]int, len(b.vars))
	for idx := range out.values {
		decode(idx, card, assign)
		for k, v := range a.vars {
			aAssign[k] = assign[pos[v]]
		}
		for k, v := range b.vars {
			bAssign[k] = assign[pos[v]]
		}
		out.values[idx] = a.values[encode(aAssign, a.card)] * b.values[encode(bAssign, b.card)]
	}
	return out
}

// sumOut marginalizes variable v out of f.
func sumOut(f factor, v int) factor {
	k := -1
	for i, fv := range f.vars {
		if fv == v {
			k = i
			break
		}
	}
	if k < 0 {
		return f
	}
	vars := append(append([]int(nil), f.vars[:k]...), f.vars[k+1:]...)
	card := append(append([]int(nil), f.card[:k]...), f.card[k+1:]...)
	out := factor{vars: vars, card: card, values: make([]float64, size(card))}
	assign := make([]int, len(f.vars))
	outAssign := make([]int, len(vars))
	for idx, val := range f.values {
		decode(idx, f.card, assign)
		copy(outAssign, assign[:k])
		copy(outAssign[k:], assign[k+1:])
		out.values[encode(outAssign, card)] += val
	}
	return out
}

// reduce fixes variable v to state s in f (unnormalized slice).
func reduce(f factor, v, s int) factor {
	k := -1
	for i, fv := range f.vars {
		if fv == v {
			k = i
			break
		}
	}
	if k < 0 {
		return f
	}
	vars := append(append([]int(nil), f.vars[:k]...), f.vars[k+1:]...)
	card := append(append([]int(nil), f.card[:k]...), f.card[k+1:]...)
	out := factor{vars: vars, card: card, values: make([]float64, size(card))}
	assign := make([]int, len(f.vars))
	outAssign := make([]int, len(vars))
	for idx, val := range f.values {
		decode(idx, f.card, assign)
		if assign[k] != s {
			continue
		}
		copy(outAssign, assign[:k])
		copy(outAssign[k:], assign[k+1:])
		out.values[encode(outAssign, card)] = val
	}
	return out
}

// Query computes the posterior distribution P(target | evidence) by
// variable elimination. evidence maps variable index → observed state.
// It returns an error when the evidence has probability zero.
func (n *Network) Query(target int, evidence map[int]int) ([]float64, error) {
	if target < 0 || target >= len(n.vars) {
		return nil, fmt.Errorf("cbn: target %d out of range", target)
	}
	for v, s := range evidence {
		if v < 0 || v >= len(n.vars) {
			return nil, fmt.Errorf("cbn: evidence variable %d out of range", v)
		}
		if s < 0 || s >= n.vars[v].Card {
			return nil, fmt.Errorf("cbn: evidence state %d out of range for %q", s, n.vars[v].Name)
		}
	}
	// Build factors, reducing by evidence immediately.
	factors := make([]factor, 0, len(n.vars))
	for i := range n.vars {
		f := n.cptFactor(i)
		for v, s := range evidence {
			f = reduce(f, v, s)
		}
		factors = append(factors, f)
	}
	// Eliminate all hidden variables (not target, not evidence) in
	// index order (fine for the small graphs used here).
	for v := range n.vars {
		if v == target {
			continue
		}
		if _, isEv := evidence[v]; isEv {
			continue
		}
		var joined *factor
		rest := factors[:0]
		for _, f := range factors {
			involved := false
			for _, fv := range f.vars {
				if fv == v {
					involved = true
					break
				}
			}
			if involved {
				if joined == nil {
					cp := f
					joined = &cp
				} else {
					j := multiply(*joined, f)
					joined = &j
				}
			} else {
				rest = append(rest, f)
			}
		}
		factors = rest
		if joined != nil {
			factors = append(factors, sumOut(*joined, v))
		}
	}
	// Multiply the remainder; everything left is over {target} or empty.
	result := factor{vars: nil, card: nil, values: []float64{1}}
	for _, f := range factors {
		result = multiply(result, f)
	}
	if len(result.vars) != 1 || result.vars[0] != target {
		// Target was part of evidence or got eliminated (shouldn't
		// happen); handle target-in-evidence gracefully.
		if s, ok := evidence[target]; ok {
			out := make([]float64, n.vars[target].Card)
			out[s] = 1
			return out, nil
		}
		return nil, errors.New("cbn: internal elimination error")
	}
	total := 0.0
	for _, v := range result.values {
		total += v
	}
	if total <= 0 {
		return nil, errors.New("cbn: evidence has probability zero")
	}
	out := make([]float64, len(result.values))
	for i, v := range result.values {
		out[i] = v / total
	}
	return out, nil
}

// Expectation returns E[g(target state) | evidence]: the posterior
// expectation of a numeric mapping of the target's states. This is how
// a WISE-style evaluator turns a discretized response-time node into a
// scalar reward prediction.
func (n *Network) Expectation(target int, evidence map[int]int, stateValue []float64) (float64, error) {
	if len(stateValue) != n.vars[target].Card {
		return 0, fmt.Errorf("cbn: got %d state values, want %d", len(stateValue), n.vars[target].Card)
	}
	post, err := n.Query(target, evidence)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for s, p := range post {
		e += p * stateValue[s]
	}
	return e, nil
}
