package cbn

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func rainNetwork(t *testing.T) *Network {
	t.Helper()
	// Classic sprinkler: Rain → WetGrass ← Sprinkler, Rain → Sprinkler.
	n, err := New([]Variable{
		{Name: "Rain", Card: 2},
		{Name: "Sprinkler", Card: 2},
		{Name: "Wet", Card: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustEdge(t, n, 0, 1) // Rain → Sprinkler
	mustEdge(t, n, 0, 2) // Rain → Wet
	mustEdge(t, n, 1, 2) // Sprinkler → Wet
	// P(Rain=1) = 0.2
	setCPT(t, n, 0, 0, []float64{0.8, 0.2})
	// P(Sprinkler | Rain): rain suppresses sprinkling.
	setCPT(t, n, 1, 0, []float64{0.6, 0.4}) // rain=0
	setCPT(t, n, 1, 1, []float64{0.99, 0.01})
	// P(Wet | Rain, Sprinkler); rows ordered by parent indices asc
	// (Rain, Sprinkler): (0,0),(0,1),(1,0),(1,1).
	setCPT(t, n, 2, 0, []float64{1.0, 0.0})
	setCPT(t, n, 2, 1, []float64{0.1, 0.9})
	setCPT(t, n, 2, 2, []float64{0.2, 0.8})
	setCPT(t, n, 2, 3, []float64{0.01, 0.99})
	return n
}

func mustEdge(t *testing.T, n *Network, a, b int) {
	t.Helper()
	if err := n.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
}

func setCPT(t *testing.T, n *Network, i, row int, probs []float64) {
	t.Helper()
	if err := n.SetCPT(i, row, probs); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("expected error for no variables")
	}
	if _, err := New([]Variable{{Name: "x", Card: 1}}); err == nil {
		t.Fatal("expected error for cardinality 1")
	}
	if _, err := New([]Variable{{Name: "x", Card: 2}, {Name: "x", Card: 2}}); err == nil {
		t.Fatal("expected error for duplicate name")
	}
}

func TestEdgeOperations(t *testing.T) {
	n, _ := New([]Variable{{Name: "a", Card: 2}, {Name: "b", Card: 2}, {Name: "c", Card: 2}})
	if err := n.AddEdge(0, 0); err == nil {
		t.Fatal("self loop should fail")
	}
	if err := n.AddEdge(0, 9); err == nil {
		t.Fatal("out of range should fail")
	}
	mustEdge(t, n, 0, 1)
	if err := n.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge should fail")
	}
	mustEdge(t, n, 1, 2)
	if err := n.AddEdge(2, 0); err == nil {
		t.Fatal("cycle should be rejected")
	}
	if !n.HasEdge(0, 1) || n.HasEdge(1, 0) {
		t.Fatal("HasEdge inconsistent")
	}
	if !n.RemoveEdge(0, 1) || n.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge inconsistent")
	}
	if n.Index("b") != 1 || n.Index("zzz") != -1 {
		t.Fatal("Index broken")
	}
	if len(n.Vars()) != 3 {
		t.Fatal("Vars broken")
	}
}

func TestQueryMarginals(t *testing.T) {
	n := rainNetwork(t)
	// Marginal P(Rain).
	post, err := n.Query(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post[1]-0.2) > 1e-12 {
		t.Fatalf("P(Rain=1) = %g, want 0.2", post[1])
	}
	// P(Wet=1) by hand:
	// P(S=1,R=0)=0.8*0.4=0.32 → wet 0.9; P(S=0,R=0)=0.48 → wet 0
	// P(S=1,R=1)=0.2*0.01=0.002 → wet 0.99; P(S=0,R=1)=0.198 → wet 0.8
	want := 0.32*0.9 + 0.48*0 + 0.002*0.99 + 0.198*0.8
	post, err = n.Query(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post[1]-want) > 1e-9 {
		t.Fatalf("P(Wet=1) = %g, want %g", post[1], want)
	}
}

func TestQueryPosterior(t *testing.T) {
	n := rainNetwork(t)
	// P(Rain=1 | Wet=1) via Bayes on the joint computed in
	// TestQueryMarginals: numerator 0.2*(0.01*0.99 + 0.99*0.8).
	num := 0.2 * (0.01*0.99 + 0.99*0.8)
	den := 0.32*0.9 + 0.002*0.99 + 0.198*0.8
	post, err := n.Query(0, map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post[1]-num/den) > 1e-9 {
		t.Fatalf("P(Rain=1|Wet=1) = %g, want %g", post[1], num/den)
	}
	// Explaining away: knowing the sprinkler ran lowers P(rain|wet).
	post2, err := n.Query(0, map[int]int{2: 1, 1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if post2[1] >= post[1] {
		t.Fatalf("explaining away violated: %g >= %g", post2[1], post[1])
	}
}

func TestQueryEvidenceOnTarget(t *testing.T) {
	n := rainNetwork(t)
	post, err := n.Query(0, map[int]int{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if post[1] != 1 || post[0] != 0 {
		t.Fatalf("target-in-evidence posterior %v", post)
	}
}

func TestQueryErrors(t *testing.T) {
	n := rainNetwork(t)
	if _, err := n.Query(9, nil); err == nil {
		t.Fatal("bad target should fail")
	}
	if _, err := n.Query(0, map[int]int{9: 0}); err == nil {
		t.Fatal("bad evidence variable should fail")
	}
	if _, err := n.Query(0, map[int]int{1: 7}); err == nil {
		t.Fatal("bad evidence state should fail")
	}
	// Impossible evidence: make Wet=1 impossible by zeroing CPTs.
	m, _ := New([]Variable{{Name: "a", Card: 2}, {Name: "b", Card: 2}})
	setCPT(t, m, 1, 0, []float64{1, 0})
	if _, err := m.Query(0, map[int]int{1: 1}); err == nil {
		t.Fatal("zero-probability evidence should fail")
	}
}

func TestExpectation(t *testing.T) {
	n := rainNetwork(t)
	// E[10·Wet] with no evidence.
	want := 0.0
	post, _ := n.Query(2, nil)
	want = 10 * post[1]
	got, err := n.Expectation(2, nil, []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Expectation = %g, want %g", got, want)
	}
	if _, err := n.Expectation(2, nil, []float64{1}); err == nil {
		t.Fatal("wrong state-value length should fail")
	}
}

func TestSampleFitRoundTrip(t *testing.T) {
	n := rainNetwork(t)
	rng := mathx.NewRNG(42)
	samples := make([][]int, 60000)
	for i := range samples {
		samples[i] = n.Sample(rng)
	}
	// Fit a fresh network with the same structure and compare CPTs.
	m := rainNetwork(t)
	if err := m.Fit(samples, 0); err != nil {
		t.Fatal(err)
	}
	postN, _ := n.Query(2, map[int]int{0: 1})
	postM, _ := m.Query(2, map[int]int{0: 1})
	if math.Abs(postN[1]-postM[1]) > 0.02 {
		t.Fatalf("refit posterior %g vs truth %g", postM[1], postN[1])
	}
}

func TestFitValidation(t *testing.T) {
	n := rainNetwork(t)
	if err := n.Fit(nil, 1); err == nil {
		t.Fatal("no samples should fail")
	}
	if err := n.Fit([][]int{{0, 0}}, 1); err == nil {
		t.Fatal("short sample should fail")
	}
	if err := n.Fit([][]int{{0, 0, 5}}, 1); err == nil {
		t.Fatal("out-of-range state should fail")
	}
	if err := n.Fit([][]int{{0, 0, 0}}, -1); err == nil {
		t.Fatal("negative alpha should fail")
	}
}

func TestSetCPTValidation(t *testing.T) {
	n, _ := New([]Variable{{Name: "a", Card: 2}})
	if err := n.SetCPT(0, 0, []float64{0.5}); err == nil {
		t.Fatal("wrong length should fail")
	}
	if err := n.SetCPT(0, 5, []float64{0.5, 0.5}); err == nil {
		t.Fatal("bad row should fail")
	}
	if err := n.SetCPT(0, 0, []float64{-0.1, 1.1}); err == nil {
		t.Fatal("negative prob should fail")
	}
	if err := n.SetCPT(0, 0, []float64{0.2, 0.2}); err == nil {
		t.Fatal("non-normalized should fail")
	}
}

func TestLearnStructureRecoversDependence(t *testing.T) {
	// Ground truth: X → Y strongly dependent, Z independent.
	truth, _ := New([]Variable{
		{Name: "X", Card: 2},
		{Name: "Y", Card: 2},
		{Name: "Z", Card: 2},
	})
	mustEdge(t, truth, 0, 1)
	setCPT(t, truth, 0, 0, []float64{0.5, 0.5})
	setCPT(t, truth, 1, 0, []float64{0.95, 0.05})
	setCPT(t, truth, 1, 1, []float64{0.05, 0.95})
	setCPT(t, truth, 2, 0, []float64{0.5, 0.5})

	rng := mathx.NewRNG(7)
	samples := make([][]int, 4000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	learned, _ := New(truth.Vars())
	if err := learned.LearnStructure(samples, LearnOptions{}); err != nil {
		t.Fatal(err)
	}
	// X and Y must be adjacent (either orientation); Z isolated.
	if !learned.HasEdge(0, 1) && !learned.HasEdge(1, 0) {
		t.Fatal("learner missed the X–Y dependence")
	}
	for _, pair := range [][2]int{{0, 2}, {2, 0}, {1, 2}, {2, 1}} {
		if learned.HasEdge(pair[0], pair[1]) {
			t.Fatalf("learner added spurious edge %v", pair)
		}
	}
}

func TestLearnStructureForbidden(t *testing.T) {
	truth, _ := New([]Variable{{Name: "X", Card: 2}, {Name: "Y", Card: 2}})
	mustEdge(t, truth, 0, 1)
	setCPT(t, truth, 0, 0, []float64{0.5, 0.5})
	setCPT(t, truth, 1, 0, []float64{0.9, 0.1})
	setCPT(t, truth, 1, 1, []float64{0.1, 0.9})
	rng := mathx.NewRNG(8)
	samples := make([][]int, 2000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	learned, _ := New(truth.Vars())
	err := learned.LearnStructure(samples, LearnOptions{
		Forbidden: [][2]int{{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if learned.HasEdge(0, 1) {
		t.Fatal("forbidden edge was added")
	}
	// The reverse should be found instead (same likelihood class).
	if !learned.HasEdge(1, 0) {
		t.Fatal("expected the reverse orientation")
	}
}

func TestLearnStructureErrors(t *testing.T) {
	n, _ := New([]Variable{{Name: "a", Card: 2}})
	if err := n.LearnStructure(nil, LearnOptions{}); err == nil {
		t.Fatal("no samples should fail")
	}
	if _, err := n.BIC(nil); err == nil {
		t.Fatal("BIC with no samples should fail")
	}
}

func TestBICPenalizesComplexity(t *testing.T) {
	// Independent variables: adding an edge should lower BIC.
	rng := mathx.NewRNG(9)
	samples := make([][]int, 1000)
	for i := range samples {
		samples[i] = []int{rng.Intn(2), rng.Intn(2)}
	}
	indep, _ := New([]Variable{{Name: "a", Card: 2}, {Name: "b", Card: 2}})
	s0, err := indep.BIC(samples)
	if err != nil {
		t.Fatal(err)
	}
	mustEdge(t, indep, 0, 1)
	s1, err := indep.BIC(samples)
	if err != nil {
		t.Fatal(err)
	}
	if s1 >= s0 {
		t.Fatalf("BIC should penalize the spurious edge: %g >= %g", s1, s0)
	}
}

func TestLogLikelihoodImprovesWithFit(t *testing.T) {
	n := rainNetwork(t)
	rng := mathx.NewRNG(10)
	samples := make([][]int, 3000)
	for i := range samples {
		samples[i] = n.Sample(rng)
	}
	fresh := rainNetwork(t)
	// Perturb CPTs badly.
	setCPT(t, fresh, 0, 0, []float64{0.01, 0.99})
	before := fresh.LogLikelihood(samples)
	if err := fresh.Fit(samples, 1); err != nil {
		t.Fatal(err)
	}
	after := fresh.LogLikelihood(samples)
	if after <= before {
		t.Fatalf("fit should improve likelihood: %g <= %g", after, before)
	}
}
