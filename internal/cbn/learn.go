package cbn

import (
	"errors"
	"math"
)

// BIC returns the Bayesian Information Criterion score of the current
// structure on the samples (higher is better): log-likelihood of the
// ML-fitted CPTs minus (log n / 2) · #free-parameters.
func (n *Network) BIC(samples [][]int) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("cbn: no samples")
	}
	if err := n.Fit(samples, 0); err != nil {
		return 0, err
	}
	ll := n.LogLikelihood(samples)
	params := 0
	for i := range n.vars {
		params += n.parentConfigs(i) * (n.vars[i].Card - 1)
	}
	return ll - 0.5*math.Log(float64(len(samples)))*float64(params), nil
}

// LearnOptions configures LearnStructure.
type LearnOptions struct {
	// MaxParents caps each node's in-degree (default 3).
	MaxParents int
	// MaxIters bounds hill-climbing rounds (default 100).
	MaxIters int
	// Forbidden lists edges (parent, child) the search may not add —
	// domain knowledge such as "response time cannot cause ISP".
	Forbidden [][2]int
}

// LearnStructure performs greedy hill climbing over edge additions,
// removals, and reversals, scored by BIC. The network's current
// structure is the starting point; on return the network holds the best
// structure found with ML-fitted CPTs (smoothed with alpha=1).
//
// This mirrors how WISE-style systems induce a causal structure from an
// observational trace — and therefore also inherits their failure mode:
// with skewed or scarce data the learned structure can omit true edges
// (Figure 4's "inferred CBN"), which is exactly the bias Figure 7a
// measures.
func (n *Network) LearnStructure(samples [][]int, opts LearnOptions) error {
	if len(samples) == 0 {
		return errors.New("cbn: no samples")
	}
	if opts.MaxParents <= 0 {
		opts.MaxParents = 3
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 100
	}
	forbidden := make(map[[2]int]bool, len(opts.Forbidden))
	for _, e := range opts.Forbidden {
		forbidden[e] = true
	}
	best, err := n.BIC(samples)
	if err != nil {
		return err
	}
	for iter := 0; iter < opts.MaxIters; iter++ {
		improved := false
		tryMove := func(apply func() bool, undo func()) {
			if !apply() {
				return
			}
			score, err := n.BIC(samples)
			if err == nil && score > best+1e-9 {
				best = score
				improved = true
				return
			}
			undo()
		}
		for a := 0; a < len(n.vars); a++ {
			for b := 0; b < len(n.vars); b++ {
				if a == b {
					continue
				}
				switch {
				case n.HasEdge(a, b):
					// Try removal.
					tryMove(
						func() bool { return n.RemoveEdge(a, b) },
						func() { _ = n.AddEdge(a, b) },
					)
					// Try reversal (if still present and allowed).
					if n.HasEdge(a, b) && !forbidden[[2]int{b, a}] && len(n.parents[a]) < opts.MaxParents {
						tryMove(
							func() bool {
								if !n.RemoveEdge(a, b) {
									return false
								}
								if err := n.AddEdge(b, a); err != nil {
									_ = n.AddEdge(a, b)
									return false
								}
								return true
							},
							func() {
								n.RemoveEdge(b, a)
								_ = n.AddEdge(a, b)
							},
						)
					}
				case !forbidden[[2]int{a, b}] && len(n.parents[b]) < opts.MaxParents:
					// Try addition.
					tryMove(
						func() bool { return n.AddEdge(a, b) == nil },
						func() { n.RemoveEdge(a, b) },
					)
				}
			}
		}
		if !improved {
			break
		}
	}
	return n.Fit(samples, 1)
}
