// Package coupling reproduces the paper's "hidden decision–reward
// coupling" challenge (§4.1) and its §4.3 remedy: in a network, the
// logging policy's own assignments induce load that degrades later
// rewards on the same server. A trace therefore mixes records from
// different self-induced system states, and a naive DR estimate pools
// them. The remedy sketched in §4.3 — monitor a per-server load proxy,
// detect state changes (change-point detection), and use only the
// records whose state matches the target state — is implemented here on
// top of internal/changepoint.
package coupling

import (
	"errors"
	"fmt"

	"drnet/internal/changepoint"
	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/netsim"
)

// Step is one timeline entry of the logged trace: the record plus the
// per-server induced-load proxy observed when the decision was made.
// The proxy is exactly the kind of domain-specific metric §4.3 proposes
// monitoring.
type Step struct {
	Rec core.Record[int, int]
	// Loads[s] is server s's induced load at decision time.
	Loads []float64
}

// Scenario is the E5 world: two-phase logging on servers with
// self-induced load feedback.
type Scenario struct {
	// Servers are the candidate servers.
	Servers []netsim.Server
	// HoldTicks is how many subsequent arrivals an assignment keeps
	// loading its server (session duration in arrival units).
	HoldTicks int
	// PhaseSwitch is the fraction of the trace after which the logging
	// policy shifts its traffic (the self-inflicted state change).
	PhaseSwitch float64
	// ShiftTarget is the server that receives concentrated traffic in
	// phase 2.
	ShiftTarget int
	// ShiftProb is the probability mass phase 2 puts on ShiftTarget.
	ShiftProb float64
	// NumClasses is the number of client classes.
	NumClasses int
	// AffinityStd scales per-(class, server) offsets.
	AffinityStd float64
	// NoiseStd is per-session reward noise.
	NoiseStd float64
	// HalfLifeMs converts latency to QoE.
	HalfLifeMs float64

	affinity [][]float64
}

// DefaultScenario returns a two-server world where phase 2 overloads
// server 0.
func DefaultScenario() *Scenario {
	return &Scenario{
		Servers: []netsim.Server{
			{Name: "a", Capacity: 60, BaseLatency: 15},
			{Name: "b", Capacity: 80, BaseLatency: 25},
		},
		HoldTicks:   40,
		PhaseSwitch: 0.5,
		ShiftTarget: 0,
		ShiftProb:   0.9,
		NumClasses:  3,
		AffinityStd: 0.05,
		NoiseStd:    0.02,
		HalfLifeMs:  60,
	}
}

// Init draws the class-server affinities.
func (s *Scenario) Init(rng *mathx.RNG) error {
	if len(s.Servers) < 2 {
		return errors.New("coupling: need at least two servers")
	}
	if s.HoldTicks < 1 {
		return errors.New("coupling: HoldTicks must be >= 1")
	}
	if s.PhaseSwitch <= 0 || s.PhaseSwitch >= 1 {
		return errors.New("coupling: PhaseSwitch must be in (0,1)")
	}
	if s.ShiftTarget < 0 || s.ShiftTarget >= len(s.Servers) {
		return errors.New("coupling: ShiftTarget out of range")
	}
	if s.ShiftProb <= 0 || s.ShiftProb >= 1 {
		return errors.New("coupling: ShiftProb must be in (0,1)")
	}
	if s.NumClasses < 1 {
		return errors.New("coupling: need at least one class")
	}
	s.affinity = make([][]float64, s.NumClasses)
	for c := range s.affinity {
		s.affinity[c] = make([]float64, len(s.Servers))
		for v := range s.affinity[c] {
			s.affinity[c][v] = rng.Normal(0, s.AffinityStd)
		}
	}
	return nil
}

// RewardAtLoads is the expected QoE of class c on server v given the
// current per-server induced loads.
func (s *Scenario) RewardAtLoads(c, v int, loads []float64) float64 {
	if s.affinity == nil {
		panic("coupling: scenario not initialized")
	}
	lat := s.Servers[v].Latency(loads[v])
	return netsim.QoE(lat, s.HalfLifeMs) + s.affinity[c][v]
}

// phaseDist returns the logging policy's distribution in the given
// phase.
func (s *Scenario) phaseDist(phase2 bool) []float64 {
	k := len(s.Servers)
	probs := make([]float64, k)
	if !phase2 {
		for i := range probs {
			probs[i] = 1 / float64(k)
		}
		return probs
	}
	rest := (1 - s.ShiftProb) / float64(k-1)
	for i := range probs {
		probs[i] = rest
	}
	probs[s.ShiftTarget] = s.ShiftProb
	return probs
}

// Run simulates n sequential arrivals: phase 1 spreads traffic
// uniformly; after PhaseSwitch·n arrivals the policy concentrates
// ShiftProb of traffic on ShiftTarget, self-inducing load that degrades
// that server's subsequent rewards. Propensities reflect the
// phase-specific distribution actually used.
func (s *Scenario) Run(n int, rng *mathx.RNG) ([]Step, error) {
	if s.affinity == nil {
		return nil, errors.New("coupling: scenario not initialized (call Init)")
	}
	if n <= 0 {
		return nil, errors.New("coupling: need at least one arrival")
	}
	lt, err := netsim.NewLoadTracker(s.HoldTicks)
	if err != nil {
		return nil, err
	}
	switchAt := int(s.PhaseSwitch * float64(n))
	steps := make([]Step, 0, n)
	for i := 0; i < n; i++ {
		probs := s.phaseDist(i >= switchAt)
		v := rng.Categorical(probs)
		loads := make([]float64, len(s.Servers))
		for j := range s.Servers {
			loads[j] = lt.Load(s.Servers[j].Name)
		}
		c := rng.Intn(s.NumClasses)
		steps = append(steps, Step{
			Rec: core.Record[int, int]{
				Context:    c,
				Decision:   v,
				Reward:     s.RewardAtLoads(c, v, loads) + rng.Normal(0, s.NoiseStd),
				Propensity: probs[v],
			},
			Loads: loads,
		})
		lt.Assign(s.Servers[v].Name)
		lt.Tick()
	}
	return steps, nil
}

// SteadyStateLoads returns the expected induced loads under a given
// assignment distribution: load_s = HoldTicks · P(s).
func (s *Scenario) SteadyStateLoads(probs []float64) []float64 {
	out := make([]float64, len(probs))
	for i, p := range probs {
		out[i] = float64(s.HoldTicks) * p
	}
	return out
}

// Phase1Loads returns the steady-state loads of the uniform phase-1
// policy — the "low load" system state the evaluation targets.
func (s *Scenario) Phase1Loads() []float64 {
	return s.SteadyStateLoads(s.phaseDist(false))
}

// GroundTruth returns the exact expected reward of a policy over the
// logged contexts, with the system held in the given load state.
func (s *Scenario) GroundTruth(steps []Step, p core.Policy[int, int], loads []float64) float64 {
	contexts := make([]int, len(steps))
	for i, st := range steps {
		contexts[i] = st.Rec.Context
	}
	return core.TrueValue(contexts, p, func(c, v int) float64 {
		return s.RewardAtLoads(c, v, loads)
	})
}

// NewPolicy is the target policy under evaluation: send every client to
// the server with the best low-load reward for its class (which is
// typically the ShiftTarget — the server the logging policy degraded in
// phase 2).
func (s *Scenario) NewPolicy() core.Policy[int, int] {
	loads := s.Phase1Loads()
	return core.DeterministicPolicy[int, int]{Choose: func(c int) int {
		best, bestV := 0, -1e300
		for v := range s.Servers {
			if r := s.RewardAtLoads(c, v, loads); r > bestV {
				bestV, best = r, v
			}
		}
		return best
	}}
}

// Trace extracts the plain off-policy trace (dropping proxy metrics).
func Trace(steps []Step) core.Trace[int, int] {
	out := make(core.Trace[int, int], len(steps))
	for i, st := range steps {
		out[i] = st.Rec
	}
	return out
}

// DetectStates segments the timeline by running PELT change-point
// detection on the monitored server's load proxy and labels each step
// with its segment index. penalty <= 0 selects the BIC default.
func DetectStates(steps []Step, server int, penalty float64) ([]int, error) {
	if len(steps) == 0 {
		return nil, errors.New("coupling: no steps")
	}
	if server < 0 || server >= len(steps[0].Loads) {
		return nil, fmt.Errorf("coupling: server %d out of range", server)
	}
	series := make([]float64, len(steps))
	for i, st := range steps {
		series[i] = st.Loads[server]
	}
	if penalty <= 0 {
		penalty = changepoint.BICPenalty(len(series), 2) * mathx.Variance(series) / 4
		if penalty <= 0 {
			penalty = changepoint.BICPenalty(len(series), 2)
		}
	}
	cps, err := changepoint.PELT(len(series), changepoint.MeanCost(series), penalty, 20)
	if err != nil {
		return nil, err
	}
	return changepoint.Labels(len(series), cps), nil
}

// MatchState keeps the steps from every segment whose mean monitored
// load is within tol of the target load — the paper's "use the empirical
// data in the trace when the network states match". When no segment
// falls within the tolerance the single closest segment is used. tol <=
// 0 defaults to 25% of the target load.
func MatchState(steps []Step, labels []int, server int, targetLoad, tol float64) (core.Trace[int, int], error) {
	if len(steps) != len(labels) {
		return nil, errors.New("coupling: labels/steps length mismatch")
	}
	if len(steps) == 0 {
		return nil, errors.New("coupling: no steps")
	}
	if tol <= 0 {
		tol = 0.25 * targetLoad
		if tol <= 0 {
			tol = 1
		}
	}
	// Mean load per segment.
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for i, st := range steps {
		sums[labels[i]] += st.Loads[server]
		counts[labels[i]]++
	}
	keep := make(map[int]bool)
	best, bestDist := -1, 0.0
	for seg, sum := range sums {
		mean := sum / float64(counts[seg])
		dist := mean - targetLoad
		if dist < 0 {
			dist = -dist
		}
		if dist <= tol {
			keep[seg] = true
		}
		if best < 0 || dist < bestDist {
			best, bestDist = seg, dist
		}
	}
	if len(keep) == 0 {
		keep[best] = true
	}
	var out core.Trace[int, int]
	for i, st := range steps {
		if keep[labels[i]] {
			out = append(out, st.Rec)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("coupling: matched segment is empty")
	}
	return out, nil
}
