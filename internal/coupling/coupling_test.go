package coupling

import (
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func initScenario(t *testing.T, seed int64) (*Scenario, *mathx.RNG) {
	t.Helper()
	s := DefaultScenario()
	rng := mathx.NewRNG(seed)
	if err := s.Init(rng); err != nil {
		t.Fatal(err)
	}
	return s, rng
}

func TestInitValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	cases := []func(*Scenario){
		func(s *Scenario) { s.Servers = s.Servers[:1] },
		func(s *Scenario) { s.HoldTicks = 0 },
		func(s *Scenario) { s.PhaseSwitch = 0 },
		func(s *Scenario) { s.ShiftTarget = 9 },
		func(s *Scenario) { s.ShiftProb = 1 },
		func(s *Scenario) { s.NumClasses = 0 },
	}
	for i, mutate := range cases {
		s := DefaultScenario()
		mutate(s)
		if err := s.Init(rng); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestRunProducesSelfInducedShift(t *testing.T) {
	s, rng := initScenario(t, 2)
	steps, err := s.Run(4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 4000 {
		t.Fatalf("got %d steps", len(steps))
	}
	if err := Trace(steps).Validate(); err != nil {
		t.Fatal(err)
	}
	// Server 0's load proxy must be clearly higher in phase 2.
	var lo, hi []float64
	for i, st := range steps {
		if i < 1800 {
			lo = append(lo, st.Loads[0])
		}
		if i > 2200 {
			hi = append(hi, st.Loads[0])
		}
	}
	if mathx.Mean(hi) < mathx.Mean(lo)*1.4 {
		t.Fatalf("phase 2 load %.1f not clearly above phase 1 %.1f", mathx.Mean(hi), mathx.Mean(lo))
	}
	// And its observed rewards must be lower in phase 2.
	var loR, hiR []float64
	for i, st := range steps {
		if st.Rec.Decision != 0 {
			continue
		}
		if i < 1800 {
			loR = append(loR, st.Rec.Reward)
		} else if i > 2200 {
			hiR = append(hiR, st.Rec.Reward)
		}
	}
	if mathx.Mean(hiR) >= mathx.Mean(loR) {
		t.Fatal("phase-2 rewards on the overloaded server should drop")
	}
}

func TestRunValidation(t *testing.T) {
	s, rng := initScenario(t, 3)
	if _, err := s.Run(0, rng); err == nil {
		t.Fatal("zero arrivals should fail")
	}
	un := DefaultScenario()
	if _, err := un.Run(5, rng); err == nil {
		t.Fatal("uninitialized should fail")
	}
}

func TestUninitializedPanics(t *testing.T) {
	s := DefaultScenario()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.RewardAtLoads(0, 0, []float64{0, 0})
}

func TestSteadyStateLoads(t *testing.T) {
	s, _ := initScenario(t, 4)
	loads := s.Phase1Loads()
	want := float64(s.HoldTicks) / float64(len(s.Servers))
	for i, l := range loads {
		if l != want {
			t.Fatalf("load[%d] = %g, want %g", i, l, want)
		}
	}
}

func TestDetectStatesFindsPhaseBoundary(t *testing.T) {
	s, rng := initScenario(t, 5)
	steps, err := s.Run(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := DetectStates(steps, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(steps) {
		t.Fatal("labels length mismatch")
	}
	// Early and late steps must be in different segments.
	if labels[100] == labels[2900] {
		t.Fatal("no state change detected across the phase boundary")
	}
	// Errors.
	if _, err := DetectStates(nil, 0, 0); err == nil {
		t.Fatal("empty steps should fail")
	}
	if _, err := DetectStates(steps, 9, 0); err == nil {
		t.Fatal("bad server should fail")
	}
}

func TestMatchStatePicksLowLoadSegment(t *testing.T) {
	s, rng := initScenario(t, 6)
	steps, err := s.Run(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := DetectStates(steps, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := s.Phase1Loads()[0]
	matched, err := MatchState(steps, labels, 0, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The matched trace should come from the first phase (low load).
	if len(matched) < 500 || len(matched) > 2200 {
		t.Fatalf("matched %d records", len(matched))
	}
	if _, err := MatchState(steps, labels[:5], 0, target, 0); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := MatchState(nil, nil, 0, target, 0); err == nil {
		t.Fatal("empty should fail")
	}
}

func TestStateMatchedDRBeatsNaive(t *testing.T) {
	// E5: estimating the new policy's value in the low-load state. The
	// naive DR pools phase-2 records whose rewards were degraded by the
	// logging policy's own traffic shift; state matching removes them.
	var naiveErrs, matchedErrs []float64
	for run := 0; run < 12; run++ {
		s, rng := initScenario(t, int64(100+run))
		steps, err := s.Run(3000, rng)
		if err != nil {
			t.Fatal(err)
		}
		np := s.NewPolicy()
		truth := s.GroundTruth(steps, np, s.Phase1Loads())
		full := Trace(steps)
		model := core.FitTable(full, func(c, v int) string {
			return string(rune('0'+c)) + "/" + string(rune('0'+v))
		})
		naive, err := core.DoublyRobust(full, np, model, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		labels, err := DetectStates(steps, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		matchedTrace, err := MatchState(steps, labels, 0, s.Phase1Loads()[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		mmodel := core.FitTable(matchedTrace, func(c, v int) string {
			return string(rune('0'+c)) + "/" + string(rune('0'+v))
		})
		matched, err := core.DoublyRobust(matchedTrace, np, mmodel, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		naiveErrs = append(naiveErrs, mathx.RelativeError(truth, naive.Value))
		matchedErrs = append(matchedErrs, mathx.RelativeError(truth, matched.Value))
	}
	nMean, mMean := mathx.Mean(naiveErrs), mathx.Mean(matchedErrs)
	t.Logf("naive DR error %.4f, state-matched DR error %.4f", nMean, mMean)
	if mMean >= nMean {
		t.Fatalf("state matching should reduce error: %g vs %g", mMean, nMean)
	}
}
