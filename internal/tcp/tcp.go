// Package tcp is a fluid-level congestion-control simulator for the
// paper's §2 use case: "prior work on TCP congestion control uses
// traces of packet-level events (e.g., round-trip time, packet loss) to
// benchmark TCP congestion control performance under same network
// conditions" [7, 11, 43].
//
// The simulator runs per-RTT rounds over a single drop-tail bottleneck
// with random cross traffic. It supports two evaluation modes:
//
//   - Closed loop: the protocol's own window determines queue overflow
//     and hence its loss events (ground truth).
//   - Trace replay: a loss/capacity trace recorded while protocol A was
//     running is replayed against protocol B, assuming the environment
//     is independent of the protocol's behaviour.
//
// The gap between the two quantifies, for congestion control, the same
// endogeneity the paper's §4.1 calls "hidden decision-reward coupling":
// loss is not an exogenous process; it is partly self-inflicted, so a
// trace recorded under a gentle protocol understates what an aggressive
// one would have suffered (and vice versa). Experiment E12 reports it.
package tcp

import (
	"errors"

	"drnet/internal/mathx"
)

// Protocol is a per-RTT congestion-control algorithm: it exposes its
// current window and reacts to ack/loss feedback.
type Protocol interface {
	// Window returns the current congestion window (packets per RTT).
	Window() float64
	// OnRound advances one RTT with the given loss indicator.
	OnRound(loss bool)
	// Reset restores the initial state.
	Reset()
}

// Reno is classic AIMD: +1 packet per RTT, multiplicative decrease 1/2
// on loss.
type Reno struct {
	cwnd float64
}

// Window implements Protocol.
func (r *Reno) Window() float64 {
	if r.cwnd < 1 {
		r.cwnd = 1
	}
	return r.cwnd
}

// OnRound implements Protocol.
func (r *Reno) OnRound(loss bool) {
	if loss {
		r.cwnd = r.Window() / 2
	} else {
		r.cwnd = r.Window() + 1
	}
	if r.cwnd < 1 {
		r.cwnd = 1
	}
}

// Reset implements Protocol.
func (r *Reno) Reset() { r.cwnd = 1 }

// Aggressive is a faster-probing AIMD (additive increase k packets per
// RTT, gentler backoff), standing in for high-speed variants.
type Aggressive struct {
	// Increase is the per-RTT additive increase (default 4).
	Increase float64
	// Backoff is the multiplicative decrease factor (default 0.7).
	Backoff float64
	cwnd    float64
}

// Window implements Protocol.
func (a *Aggressive) Window() float64 {
	if a.cwnd < 1 {
		a.cwnd = 1
	}
	return a.cwnd
}

// OnRound implements Protocol.
func (a *Aggressive) OnRound(loss bool) {
	inc := a.Increase
	if inc <= 0 {
		inc = 4
	}
	back := a.Backoff
	if back <= 0 || back >= 1 {
		back = 0.7
	}
	if loss {
		a.cwnd = a.Window() * back
	} else {
		a.cwnd = a.Window() + inc
	}
	if a.cwnd < 1 {
		a.cwnd = 1
	}
}

// Reset implements Protocol.
func (a *Aggressive) Reset() { a.cwnd = 1 }

// Link is the bottleneck environment.
type Link struct {
	// CapacityPkts is the bottleneck bandwidth in packets per RTT.
	CapacityPkts float64
	// QueuePkts is the drop-tail queue size in packets.
	QueuePkts float64
	// CrossMean/CrossStd parameterize per-round cross traffic
	// (truncated normal, packets per RTT).
	CrossMean, CrossStd float64
}

// RoundRecord is one per-RTT trace entry.
type RoundRecord struct {
	// Available is the capacity left after cross traffic.
	Available float64
	// Loss reports whether the round ended in queue overflow.
	Loss bool
	// Delivered is the protocol's goodput that round.
	Delivered float64
}

// RunClosedLoop simulates the protocol against the link for rounds
// RTTs: the protocol's own window interacts with cross traffic to
// produce losses. It returns the per-round trace and the mean goodput
// (packets per RTT).
func RunClosedLoop(p Protocol, link Link, rounds int, rng *mathx.RNG) ([]RoundRecord, float64, error) {
	if rounds <= 0 {
		return nil, 0, errors.New("tcp: need at least one round")
	}
	if link.CapacityPkts <= 0 || link.QueuePkts < 0 {
		return nil, 0, errors.New("tcp: invalid link")
	}
	p.Reset()
	trace := make([]RoundRecord, rounds)
	total := 0.0
	for i := 0; i < rounds; i++ {
		cross := link.CrossMean + rng.Normal(0, link.CrossStd)
		if cross < 0 {
			cross = 0
		}
		if cross > link.CapacityPkts {
			cross = link.CapacityPkts
		}
		avail := link.CapacityPkts - cross
		w := p.Window()
		// Drop-tail: overflow when the window exceeds the available
		// bandwidth-delay product plus queue headroom.
		loss := w > avail+link.QueuePkts
		delivered := w
		if delivered > avail {
			delivered = avail
		}
		trace[i] = RoundRecord{Available: avail, Loss: loss, Delivered: delivered}
		total += delivered
		p.OnRound(loss)
	}
	return trace, total / float64(rounds), nil
}

// ReplayTrace evaluates a protocol against a recorded trace the way
// replay-based CC benchmarks do: the recorded loss events and available
// bandwidth are treated as an exogenous environment. It returns the
// estimated mean goodput.
//
// The estimate is biased whenever the evaluated protocol's window
// process differs from the recording protocol's, because in reality
// losses depend on the window (self-induced queue overflow) — the
// §4.1 coupling, in congestion-control form.
func ReplayTrace(p Protocol, trace []RoundRecord) (float64, error) {
	if len(trace) == 0 {
		return 0, errors.New("tcp: empty trace")
	}
	p.Reset()
	total := 0.0
	for _, rec := range trace {
		delivered := p.Window()
		if delivered > rec.Available {
			delivered = rec.Available
		}
		total += delivered
		p.OnRound(rec.Loss)
	}
	return total / float64(len(trace)), nil
}

// LossRate returns the fraction of rounds with loss in a trace.
func LossRate(trace []RoundRecord) float64 {
	if len(trace) == 0 {
		return 0
	}
	n := 0
	for _, rec := range trace {
		if rec.Loss {
			n++
		}
	}
	return float64(n) / float64(len(trace))
}
