package tcp

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func testLink() Link {
	return Link{CapacityPkts: 100, QueuePkts: 30, CrossMean: 20, CrossStd: 5}
}

func TestRenoSawtooth(t *testing.T) {
	r := &Reno{}
	r.Reset()
	for i := 0; i < 10; i++ {
		r.OnRound(false)
	}
	if r.Window() != 11 {
		t.Fatalf("cwnd after 10 clean rounds = %g, want 11", r.Window())
	}
	r.OnRound(true)
	if r.Window() != 5.5 {
		t.Fatalf("cwnd after loss = %g, want halved", r.Window())
	}
	// Window never drops below 1.
	for i := 0; i < 20; i++ {
		r.OnRound(true)
	}
	if r.Window() < 1 {
		t.Fatalf("cwnd %g below 1", r.Window())
	}
}

func TestAggressiveDefaultsAndBehaviour(t *testing.T) {
	a := &Aggressive{}
	a.Reset()
	a.OnRound(false)
	if a.Window() != 5 { // 1 + default increase 4
		t.Fatalf("cwnd = %g, want 5", a.Window())
	}
	a.OnRound(true)
	if math.Abs(a.Window()-3.5) > 1e-12 { // 5 * 0.7
		t.Fatalf("cwnd after loss = %g, want 3.5", a.Window())
	}
}

func TestRunClosedLoopValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	if _, _, err := RunClosedLoop(&Reno{}, testLink(), 0, rng); err == nil {
		t.Fatal("zero rounds should fail")
	}
	if _, _, err := RunClosedLoop(&Reno{}, Link{}, 10, rng); err == nil {
		t.Fatal("invalid link should fail")
	}
	if _, err := ReplayTrace(&Reno{}, nil); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestClosedLoopUtilization(t *testing.T) {
	rng := mathx.NewRNG(2)
	trace, goodput, err := RunClosedLoop(&Reno{}, testLink(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Reno should achieve a sizable share of the ~80 pkts/RTT available
	// (AIMD sawtooth averages ~75% of the peak) without exceeding it.
	if goodput < 40 || goodput > 80 {
		t.Fatalf("Reno goodput %g pkts/RTT implausible", goodput)
	}
	if lr := LossRate(trace); lr <= 0 || lr > 0.2 {
		t.Fatalf("loss rate %g implausible", lr)
	}
}

func TestAggressiveSuffersMoreLossButGainsThroughput(t *testing.T) {
	rng := mathx.NewRNG(3)
	renoTrace, renoGoodput, err := RunClosedLoop(&Reno{}, testLink(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	rng = mathx.NewRNG(3) // same cross-traffic realization
	aggTrace, aggGoodput, err := RunClosedLoop(&Aggressive{}, testLink(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if LossRate(aggTrace) <= LossRate(renoTrace) {
		t.Fatalf("aggressive protocol should self-induce more loss: %g vs %g",
			LossRate(aggTrace), LossRate(renoTrace))
	}
	if aggGoodput <= renoGoodput {
		t.Fatalf("aggressive protocol should gain throughput alone on the link: %g vs %g",
			aggGoodput, renoGoodput)
	}
}

func TestReplayBiasIsEndogenous(t *testing.T) {
	// The §2/§4.1 point: replaying a Reno-recorded loss trace
	// overestimates an aggressive protocol (it would have induced more
	// loss than the trace contains).
	rng := mathx.NewRNG(4)
	renoTrace, _, err := RunClosedLoop(&Reno{}, testLink(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	replayEst, err := ReplayTrace(&Aggressive{}, renoTrace)
	if err != nil {
		t.Fatal(err)
	}
	rng = mathx.NewRNG(4)
	_, truth, err := RunClosedLoop(&Aggressive{}, testLink(), 5000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if replayEst <= truth {
		t.Fatalf("replay of a gentle protocol's trace should overestimate the aggressive one: replay %g vs truth %g",
			replayEst, truth)
	}
}

func TestReplayIsConsistentForSameProtocol(t *testing.T) {
	// Replaying a protocol against its own recorded trace reproduces
	// its goodput (the window process regenerates identically from the
	// same loss sequence).
	rng := mathx.NewRNG(5)
	trace, goodput, err := RunClosedLoop(&Reno{}, testLink(), 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := ReplayTrace(&Reno{}, trace)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(replay-goodput) > 1e-9 {
		t.Fatalf("self-replay %g != closed loop %g", replay, goodput)
	}
}

func TestLossRateEmpty(t *testing.T) {
	if LossRate(nil) != 0 {
		t.Fatal("empty trace loss rate should be 0")
	}
}
