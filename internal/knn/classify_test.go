package knn

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestClassifierSeparableClusters(t *testing.T) {
	rng := mathx.NewRNG(1)
	var x [][]float64
	var labels []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for li, c := range centers {
		for i := 0; i < 100; i++ {
			x = append(x, []float64{c[0] + rng.Normal(0, 1), c[1] + rng.Normal(0, 1)})
			labels = append(labels, li)
		}
	}
	cl, err := FitClassifier(x, labels, Options{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	const probes = 150
	for i := 0; i < probes; i++ {
		li := rng.Intn(3)
		q := []float64{centers[li][0] + rng.Normal(0, 1), centers[li][1] + rng.Normal(0, 1)}
		got, err := cl.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if got == li {
			correct++
		}
	}
	if acc := float64(correct) / probes; acc < 0.9 {
		t.Fatalf("accuracy %g too low", acc)
	}
}

func TestClassifierProba(t *testing.T) {
	x := [][]float64{{0}, {0.1}, {0.2}, {10}}
	labels := []int{1, 1, 1, 2}
	cl, err := FitClassifier(x, labels, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := cl.Proba([]float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[1]-1) > 1e-12 {
		t.Fatalf("P(1) = %g, want 1", p[1])
	}
	total := 0.0
	for _, v := range p {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", total)
	}
}

func TestClassifierErrors(t *testing.T) {
	if _, err := FitClassifier([][]float64{{1}}, []int{1, 2}, Options{}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := FitClassifier(nil, nil, Options{}); err == nil {
		t.Fatal("empty data should fail")
	}
	cl, err := FitClassifier([][]float64{{1, 2}}, []int{1}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Classify([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := cl.Proba([]float64{1}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
}
