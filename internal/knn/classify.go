package knn

import (
	"errors"
	"fmt"
)

// Classifier is a k-NN majority-vote classifier over integer labels.
// The CFA scenario uses the regressor; the classifier rounds out the
// package for discrete targets (e.g. predicting which CDN a session was
// assigned, the building block of propensity models over categorical
// contexts).
type Classifier struct {
	reg    *Regressor
	labels []int
}

// FitClassifier builds a Classifier from feature rows and integer
// labels.
func FitClassifier(x [][]float64, labels []int, opts Options) (*Classifier, error) {
	if len(x) != len(labels) {
		return nil, fmt.Errorf("knn: %d rows but %d labels", len(x), len(labels))
	}
	// Reuse the regressor's index; targets are unused for
	// classification but keep the API uniform.
	y := make([]float64, len(labels))
	for i, l := range labels {
		y[i] = float64(l)
	}
	reg, err := Fit(x, y, opts)
	if err != nil {
		return nil, err
	}
	return &Classifier{reg: reg, labels: append([]int(nil), labels...)}, nil
}

// Classify returns the majority label among the k nearest neighbours;
// ties break toward the closer neighbour's label.
func (c *Classifier) Classify(x []float64) (int, error) {
	nbrs, err := c.reg.Neighbors(x, 0)
	if err != nil {
		return 0, err
	}
	if len(nbrs) == 0 {
		return 0, errors.New("knn: no neighbours")
	}
	votes := make(map[int]int)
	for _, nb := range nbrs {
		votes[c.labels[nb.idx]]++
	}
	best, bestVotes := c.labels[nbrs[0].idx], 0
	// Iterate neighbours closest-first so ties resolve deterministically
	// toward nearer labels.
	seen := make(map[int]bool)
	for _, nb := range nbrs {
		l := c.labels[nb.idx]
		if seen[l] {
			continue
		}
		seen[l] = true
		if votes[l] > bestVotes {
			bestVotes, best = votes[l], l
		}
	}
	return best, nil
}

// Proba returns the neighbour-vote share for each label present in the
// neighbourhood of x.
func (c *Classifier) Proba(x []float64) (map[int]float64, error) {
	nbrs, err := c.reg.Neighbors(x, 0)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64)
	for _, nb := range nbrs {
		out[c.labels[nb.idx]] += 1 / float64(len(nbrs))
	}
	return out, nil
}
