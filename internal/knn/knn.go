// Package knn implements k-nearest-neighbour regression, the reward
// model used by the CFA scenario's Direct Method (the paper cites
// Larose's k-NN as the DM model for Figure 7c).
//
// Points live in a fixed-dimensional float64 feature space. Queries run
// against a kd-tree for low dimensions and fall back to brute force when
// the tree degenerates (high dimension or tiny datasets). Features can
// be standardized so that heterogeneous units (e.g. RTT in ms next to a
// 0/1 NAT flag) contribute comparably to distances.
package knn

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Metric is a distance function between equal-length feature vectors.
type Metric func(a, b []float64) float64

// Euclidean is the L2 distance.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Manhattan is the L1 distance.
func Manhattan(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Hamming counts coordinates that differ; it is the natural metric for
// categorical features encoded as small integers.
func Hamming(a, b []float64) float64 {
	n := 0.0
	for i := range a {
		//lint:allow floathygiene Hamming is defined by exact equality of integer-encoded categories
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

// Options configures a Regressor.
type Options struct {
	// K is the number of neighbours to average (default 5).
	K int
	// Metric is the distance function (default Euclidean).
	Metric Metric
	// Standardize rescales each feature to zero mean / unit variance
	// before building the index and at query time.
	Standardize bool
	// DistanceWeight, when true, weights neighbours by 1/(d+ε) instead
	// of uniformly.
	DistanceWeight bool
}

// Regressor is a fitted k-NN regression model.
type Regressor struct {
	opts   Options
	dim    int
	points [][]float64 // standardized copies
	ys     []float64
	mean   []float64
	scale  []float64
	tree   *kdNode
}

// Fit builds a Regressor from feature rows x and targets y.
func Fit(x [][]float64, y []float64, opts Options) (*Regressor, error) {
	if len(x) == 0 {
		return nil, errors.New("knn: no training data")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("knn: %d rows but %d targets", len(x), len(y))
	}
	dim := len(x[0])
	if dim == 0 {
		return nil, errors.New("knn: zero-dimensional features")
	}
	if opts.K <= 0 {
		opts.K = 5
	}
	if opts.Metric == nil {
		opts.Metric = Euclidean
	}
	r := &Regressor{opts: opts, dim: dim, ys: append([]float64(nil), y...)}
	r.mean = make([]float64, dim)
	r.scale = make([]float64, dim)
	for j := range r.scale {
		r.scale[j] = 1
	}
	if opts.Standardize {
		for _, row := range x {
			if len(row) != dim {
				return nil, fmt.Errorf("knn: inconsistent feature dimension %d vs %d", len(row), dim)
			}
			for j, v := range row {
				r.mean[j] += v
			}
		}
		n := float64(len(x))
		for j := range r.mean {
			r.mean[j] /= n
		}
		for _, row := range x {
			for j, v := range row {
				d := v - r.mean[j]
				r.scale[j] += d * d
			}
		}
		for j := range r.scale {
			r.scale[j] = math.Sqrt(r.scale[j] / n)
			if r.scale[j] < 1e-12 {
				r.scale[j] = 1 // constant feature: leave untouched
			}
		}
	}
	r.points = make([][]float64, len(x))
	for i, row := range x {
		if len(row) != dim {
			return nil, fmt.Errorf("knn: row %d has %d features, want %d", i, len(row), dim)
		}
		r.points[i] = r.transform(row)
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	r.tree = buildKD(r.points, idx, 0)
	return r, nil
}

func (r *Regressor) transform(row []float64) []float64 {
	out := make([]float64, r.dim)
	for j, v := range row {
		out[j] = (v - r.mean[j]) / r.scale[j]
	}
	return out
}

// Len returns the number of training points.
func (r *Regressor) Len() int { return len(r.ys) }

// neighbour is one query result.
type neighbour struct {
	idx  int
	dist float64
}

// Predict returns the (optionally distance-weighted) mean target of the
// K nearest training points.
func (r *Regressor) Predict(x []float64) (float64, error) {
	nbrs, err := r.Neighbors(x, r.opts.K)
	if err != nil {
		return 0, err
	}
	if !r.opts.DistanceWeight {
		s := 0.0
		for _, nb := range nbrs {
			s += r.ys[nb.idx]
		}
		return s / float64(len(nbrs)), nil
	}
	num, den := 0.0, 0.0
	for _, nb := range nbrs {
		w := 1 / (nb.dist + 1e-9)
		num += w * r.ys[nb.idx]
		den += w
	}
	return num / den, nil
}

// Neighbors returns the k nearest training points to x, closest first.
func (r *Regressor) Neighbors(x []float64, k int) ([]neighbour, error) {
	if len(x) != r.dim {
		return nil, fmt.Errorf("knn: query has %d features, want %d", len(x), r.dim)
	}
	if k <= 0 {
		k = r.opts.K
	}
	if k > len(r.points) {
		k = len(r.points)
	}
	q := r.transform(x)
	// The kd-tree prune test assumes a coordinate-difference lower
	// bound, valid for Euclidean and Manhattan. For other metrics use
	// brute force.
	useTree := isStdMetric(r.opts.Metric)
	var h nbrHeap
	if useTree {
		h = make(nbrHeap, 0, k+1)
		r.search(r.tree, q, k, &h)
	} else {
		h = make(nbrHeap, 0, len(r.points))
		for i, p := range r.points {
			h.push(neighbour{idx: i, dist: r.opts.Metric(q, p)}, k)
		}
	}
	out := make([]neighbour, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].dist < out[j].dist })
	return out, nil
}

func isStdMetric(m Metric) bool {
	// Function pointers cannot be compared portably except against nil;
	// compare behaviourally on probe points.
	probeA := []float64{0, 0}
	probeB := []float64{3, 4}
	d := m(probeA, probeB)
	//lint:allow floathygiene probe distances 5 (3-4-5 triangle) and 7 (3+4) are exactly representable
	return d == 5 || d == 7 // Euclidean or Manhattan signature
}

// nbrHeap is a bounded max-heap on distance (the root is the farthest
// kept neighbour).
type nbrHeap []neighbour

func (h *nbrHeap) push(n neighbour, k int) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist >= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
	if len(*h) > k {
		h.popMax()
	}
}

func (h *nbrHeap) popMax() neighbour {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].dist > (*h)[largest].dist {
			largest = l
		}
		if r < n && (*h)[r].dist > (*h)[largest].dist {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
	return top
}

func (h nbrHeap) maxDist() float64 {
	if len(h) == 0 {
		return math.Inf(1)
	}
	return h[0].dist
}

// kdNode is a node of the kd-tree over standardized points.
type kdNode struct {
	idx         int // index into points
	axis        int
	left, right *kdNode
}

func buildKD(points [][]float64, idx []int, depth int) *kdNode {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % len(points[idx[0]])
	sort.Slice(idx, func(i, j int) bool {
		return points[idx[i]][axis] < points[idx[j]][axis]
	})
	mid := len(idx) / 2
	node := &kdNode{idx: idx[mid], axis: axis}
	left := append([]int(nil), idx[:mid]...)
	right := append([]int(nil), idx[mid+1:]...)
	node.left = buildKD(points, left, depth+1)
	node.right = buildKD(points, right, depth+1)
	return node
}

func (r *Regressor) search(node *kdNode, q []float64, k int, h *nbrHeap) {
	if node == nil {
		return
	}
	p := r.points[node.idx]
	d := r.opts.Metric(q, p)
	if len(*h) < k || d < h.maxDist() {
		h.push(neighbour{idx: node.idx, dist: d}, k)
	}
	diff := q[node.axis] - p[node.axis]
	near, far := node.left, node.right
	if diff > 0 {
		near, far = far, near
	}
	r.search(near, q, k, h)
	// The axis-distance is a lower bound on the metric distance for
	// Euclidean/Manhattan; prune the far side when it cannot improve.
	if len(*h) < k || math.Abs(diff) < h.maxDist() {
		r.search(far, q, k, h)
	}
}
