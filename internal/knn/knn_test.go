package knn

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"drnet/internal/mathx"
)

func TestMetrics(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if Euclidean(a, b) != 5 {
		t.Fatal("Euclidean(3-4-5) != 5")
	}
	if Manhattan(a, b) != 7 {
		t.Fatal("Manhattan != 7")
	}
	if Hamming([]float64{1, 2, 3}, []float64{1, 0, 3}) != 1 {
		t.Fatal("Hamming != 1")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); err == nil {
		t.Fatal("expected error for no data")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, Options{}); err == nil {
		t.Fatal("expected error for zero dims")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, Options{}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestPredictExactNeighbor(t *testing.T) {
	x := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	y := []float64{1, 2, 3}
	r, err := Fit(x, y, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		got, err := r.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != y[i] {
			t.Fatalf("Predict(%v) = %g, want %g", x[i], got, y[i])
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPredictAverage(t *testing.T) {
	x := [][]float64{{0}, {1}, {100}}
	y := []float64{2, 4, 1000}
	r, err := Fit(x, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("Predict = %g, want mean(2,4)=3", got)
	}
}

func TestDistanceWeighting(t *testing.T) {
	x := [][]float64{{0}, {10}}
	y := []float64{0, 100}
	r, _ := Fit(x, y, Options{K: 2, DistanceWeight: true})
	got, err := r.Predict([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Query is 1 away from y=0 and 9 away from y=100: the prediction
	// must lean strongly toward 0.
	if got > 20 {
		t.Fatalf("distance-weighted prediction %g should be near 0", got)
	}
}

func TestStandardization(t *testing.T) {
	// Feature 0 spans [0, 1], feature 1 spans [0, 1e6]. Without
	// standardization the second feature dominates; with it, the first
	// feature matters.
	x := [][]float64{
		{0, 0}, {0, 1e6},
		{1, 0}, {1, 1e6},
	}
	y := []float64{0, 0, 10, 10} // target depends only on feature 0
	r, err := Fit(x, y, Options{K: 1, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{0.9, 500000})
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("standardized prediction = %g, want 10", got)
	}
}

func TestStandardizationConstantFeature(t *testing.T) {
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}}
	y := []float64{1, 2, 3}
	r, err := Fit(x, y, Options{K: 1, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{2.1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("prediction with constant feature = %g, want 2", got)
	}
}

func TestQueryDimensionMismatch(t *testing.T) {
	r, _ := Fit([][]float64{{1, 2}}, []float64{1}, Options{})
	if _, err := r.Predict([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestKLargerThanData(t *testing.T) {
	r, _ := Fit([][]float64{{1}, {2}}, []float64{10, 20}, Options{K: 50})
	got, err := r.Predict([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("K>n should average everything: %g", got)
	}
}

func TestHammingBruteForce(t *testing.T) {
	// Hamming is not tree-prunable; the brute-force path must be used
	// and produce exact neighbours.
	x := [][]float64{{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {1, 1, 1}}
	y := []float64{0, 1, 2, 3}
	r, err := Fit(x, y, Options{K: 1, Metric: Hamming})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Predict([]float64{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Hamming nearest = %g, want 2", got)
	}
}

// Property: kd-tree search returns exactly the same neighbours as brute
// force for random data (Euclidean).
func TestKDTreeMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRNG(seed)
		n := 5 + rng.Intn(100)
		dim := 1 + rng.Intn(4)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, dim)
			for j := range x[i] {
				x[i][j] = rng.Normal(0, 1)
			}
			y[i] = rng.Normal(0, 1)
		}
		k := 1 + rng.Intn(5)
		r, err := Fit(x, y, Options{K: k})
		if err != nil {
			return false
		}
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.Normal(0, 1)
		}
		nbrs, err := r.Neighbors(q, k)
		if err != nil {
			return false
		}
		// Brute force.
		type pair struct {
			idx  int
			dist float64
		}
		all := make([]pair, n)
		for i := range x {
			all[i] = pair{i, Euclidean(q, x[i])}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
		if len(nbrs) != k {
			return false
		}
		for i := 0; i < k; i++ {
			// Compare distances (indices can tie).
			if math.Abs(nbrs[i].dist-all[i].dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionQuality(t *testing.T) {
	// k-NN should recover a smooth function reasonably well.
	rng := mathx.NewRNG(5)
	var x [][]float64
	var y []float64
	f := func(a, b float64) float64 { return math.Sin(a) + b*b }
	for i := 0; i < 2000; i++ {
		a, b := rng.Uniform(-2, 2), rng.Uniform(-1, 1)
		x = append(x, []float64{a, b})
		y = append(y, f(a, b)+rng.Normal(0, 0.05))
	}
	r, err := Fit(x, y, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var errs []float64
	for i := 0; i < 100; i++ {
		a, b := rng.Uniform(-1.5, 1.5), rng.Uniform(-0.8, 0.8)
		got, err := r.Predict([]float64{a, b})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, math.Abs(got-f(a, b)))
	}
	if m := mathx.Mean(errs); m > 0.15 {
		t.Fatalf("mean absolute error %g too high", m)
	}
}
