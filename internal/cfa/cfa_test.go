package cfa

import (
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func newWorld(t *testing.T, seed int64) (*World, *mathx.RNG) {
	t.Helper()
	w := DefaultWorld()
	rng := mathx.NewRNG(seed)
	if err := w.Init(rng); err != nil {
		t.Fatal(err)
	}
	return &w, rng
}

func TestWorldInitValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	bad := DefaultWorld()
	bad.NumFeatures = 0
	if err := bad.Init(rng); err == nil {
		t.Fatal("zero features should fail")
	}
	bad = DefaultWorld()
	bad.InteractingFeatures = 99
	if err := bad.Init(rng); err == nil {
		t.Fatal("too many interacting features should fail")
	}
}

func TestDecisionsGrid(t *testing.T) {
	w, _ := newWorld(t, 2)
	if len(w.Decisions()) != w.NumCDNs*w.NumBitrates {
		t.Fatalf("decision grid size %d", len(w.Decisions()))
	}
	if w.String() == "" {
		t.Fatal("empty string")
	}
}

func TestTrueQualityDependsOnFeaturesAndDecision(t *testing.T) {
	w, rng := newWorld(t, 3)
	clients := w.SampleClients(50, rng)
	// Some pair of clients must differ in quality for the same
	// decision, and some pair of decisions must differ for the same
	// client — otherwise the world is degenerate.
	d0 := w.Decisions()[0]
	varies := false
	for _, c := range clients[1:] {
		if w.TrueQuality(c, d0) != w.TrueQuality(clients[0], d0) {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("quality should vary across clients")
	}
	c0 := clients[0]
	varies = false
	for _, d := range w.Decisions()[1:] {
		if w.TrueQuality(c0, d) != w.TrueQuality(c0, d0) {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("quality should vary across decisions")
	}
}

func TestUninitializedWorldPanics(t *testing.T) {
	w := DefaultWorld()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.TrueQuality(Client{Features: make([]int, w.NumFeatures)}, Decision{})
}

func TestCollectValidTrace(t *testing.T) {
	w, rng := newWorld(t, 4)
	if _, err := w.Collect(0, rng); err == nil {
		t.Fatal("zero clients should fail")
	}
	un := DefaultWorld()
	if _, err := un.Collect(10, rng); err == nil {
		t.Fatal("uninitialized world should fail")
	}
	d, err := w.Collect(500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Uniform logging: every propensity is 1/12.
	want := 1.0 / float64(len(w.Decisions()))
	for _, rec := range d.Trace {
		if rec.Propensity != want {
			t.Fatalf("propensity %g, want %g", rec.Propensity, want)
		}
	}
}

func TestNewPolicyQuality(t *testing.T) {
	// A mildly perturbed argmax policy should outperform uniform random
	// but trail the perfect oracle.
	w, rng := newWorld(t, 5)
	d, err := w.Collect(800, rng)
	if err != nil {
		t.Fatal(err)
	}
	np := w.NewPolicy(0.4, rng)
	vNew := d.GroundTruth(np)
	vOld := d.GroundTruth(w.OldPolicy())
	oracle := core.DeterministicPolicy[Client, Decision]{Choose: func(c Client) Decision {
		best, bestV := Decision{}, -1e300
		for _, dec := range w.Decisions() {
			if v := w.TrueQuality(c, dec); v > bestV {
				bestV, best = v, dec
			}
		}
		return best
	}}
	vOracle := d.GroundTruth(oracle)
	if vNew <= vOld {
		t.Fatalf("new policy %g should beat uniform %g", vNew, vOld)
	}
	if vNew > vOracle+1e-9 {
		t.Fatalf("new policy %g cannot beat the oracle %g", vNew, vOracle)
	}
}

func TestMatchRateNearUniformShare(t *testing.T) {
	w, rng := newWorld(t, 6)
	d, err := w.Collect(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	np := w.NewPolicy(0.4, rng)
	diag, err := core.Diagnose(d.Trace, np)
	if err != nil {
		t.Fatal(err)
	}
	share := 1.0 / float64(len(w.Decisions()))
	if diag.MatchRate < share/2 || diag.MatchRate > share*2 {
		t.Fatalf("match rate %g far from uniform share %g", diag.MatchRate, share)
	}
}

func TestKNNModelLearnsSignal(t *testing.T) {
	w, rng := newWorld(t, 7)
	d, err := w.Collect(3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	model, err := d.KNNModel(5)
	if err != nil {
		t.Fatal(err)
	}
	// Model predictions should correlate with the truth across random
	// (client, decision) pairs.
	var pred, truth []float64
	clients := w.SampleClients(300, rng)
	for _, c := range clients {
		dec := w.Decisions()[rng.Intn(len(w.Decisions()))]
		pred = append(pred, model.Predict(c, dec))
		truth = append(truth, w.TrueQuality(c, dec))
	}
	if r := mathx.Correlation(pred, truth); r < 0.5 {
		t.Fatalf("k-NN model correlation %g too low", r)
	}
}

func TestDRBeatsCFAMatching(t *testing.T) {
	// Figure 7c in miniature: DR (k-NN DM + correction) has lower
	// relative error than the CFA exact-matching evaluator.
	var cfaErrs, drErrs []float64
	for run := 0; run < 15; run++ {
		w, rng := newWorld(t, int64(100+run))
		d, err := w.Collect(1000, rng)
		if err != nil {
			t.Fatal(err)
		}
		np := w.NewPolicy(0.4, rng)
		truth := d.GroundTruth(np)
		matched, err := core.MatchedRewards(d.Trace, np)
		if err != nil {
			t.Fatal(err)
		}
		fit := func(tr core.Trace[Client, Decision]) (core.RewardModel[Client, Decision], error) {
			return (&Data{Trace: tr, World: d.World}).PerDecisionKNNModel(3)
		}
		dr, err := core.CrossFitDR(d.Trace, np, fit, 2, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		cfaErrs = append(cfaErrs, mathx.RelativeError(truth, matched.Value))
		drErrs = append(drErrs, mathx.RelativeError(truth, dr.Value))
	}
	cfaMean, drMean := mathx.Mean(cfaErrs), mathx.Mean(drErrs)
	t.Logf("CFA error %.4f, DR error %.4f", cfaMean, drMean)
	if drMean >= cfaMean {
		t.Fatalf("DR error %g should beat CFA matching error %g", drMean, cfaMean)
	}
}
