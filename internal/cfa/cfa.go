// Package cfa reproduces the paper's Figure 5 / Figure 7c scenario,
// modeled on CFA [15]: clients described by categorical feature vectors
// are assigned a CDN and a bitrate; video quality depends on
// feature–decision interactions. The logged trace comes from a policy
// that assigns clients to CDNs/bitrates uniformly at random (as in the
// original CFA work), and the CFA-style evaluator estimates a new
// assignment's quality from the subset of clients whose logged decision
// matches it — unbiased, but starved of data as the decision space
// grows ("curse of dimensionality", §2.2.2).
package cfa

import (
	"errors"
	"fmt"
	"math"

	"drnet/internal/core"
	"drnet/internal/knn"
	"drnet/internal/mathx"
)

// Client is a featurized client-context: categorical features such as
// ASN, city, device, player type, encoded as small integers.
type Client struct {
	Features []int
}

// Decision is a joint CDN and bitrate assignment.
type Decision struct {
	CDN     int
	Bitrate int
}

// World defines the scenario's ground truth.
type World struct {
	// NumFeatures is the client feature dimensionality.
	NumFeatures int
	// Cardinality is the number of values per feature.
	Cardinality int
	// NumCDNs and NumBitrates span the decision space.
	NumCDNs, NumBitrates int
	// InteractingFeatures is how many leading features interact with
	// the decision in the ground-truth quality (the rest are noise
	// dimensions that only hurt models).
	InteractingFeatures int
	// NoiseStd is the quality measurement noise.
	NoiseStd float64
	// ClientEffectStd scales decision-independent per-client quality
	// effects (e.g. last-mile capacity): heterogeneity that inflates
	// the variance of matching-based evaluators but is absorbed by any
	// reasonable reward model. Zero disables it.
	ClientEffectStd float64

	base         map[Decision]float64
	interact     []map[int]map[Decision]float64 // [featureIdx][value][decision]
	clientEffect []map[int]float64              // [featureIdx][value]
}

// DefaultWorld mirrors the scale of the paper's Figure 7c setup: a
// moderately rich feature space and a 3×4 decision grid.
func DefaultWorld() World {
	return World{
		NumFeatures:         4,
		Cardinality:         3,
		NumCDNs:             3,
		NumBitrates:         4,
		InteractingFeatures: 3,
		NoiseStd:            0.4,
		ClientEffectStd:     3.0,
	}
}

// Decisions enumerates the CDN×bitrate grid.
func (w *World) Decisions() []Decision {
	out := make([]Decision, 0, w.NumCDNs*w.NumBitrates)
	for c := 0; c < w.NumCDNs; c++ {
		for b := 0; b < w.NumBitrates; b++ {
			out = append(out, Decision{CDN: c, Bitrate: b})
		}
	}
	return out
}

// Init materializes the random ground-truth quality tables. It must be
// called once before use; the RNG seed determines the world.
func (w *World) Init(rng *mathx.RNG) error {
	if w.NumFeatures <= 0 || w.Cardinality < 2 || w.NumCDNs <= 0 || w.NumBitrates <= 0 {
		return errors.New("cfa: invalid world dimensions")
	}
	if w.InteractingFeatures < 0 || w.InteractingFeatures > w.NumFeatures {
		return errors.New("cfa: InteractingFeatures out of range")
	}
	w.base = make(map[Decision]float64)
	for _, d := range w.Decisions() {
		// A positive baseline keeps expected quality away from zero
		// (relative error is the paper's metric); higher bitrates are
		// generically better and CDNs differ.
		w.base[d] = 3 + 0.3*float64(d.Bitrate) + rng.Normal(0, 0.5)
	}
	w.interact = make([]map[int]map[Decision]float64, w.InteractingFeatures)
	for j := range w.interact {
		w.interact[j] = make(map[int]map[Decision]float64)
		for v := 0; v < w.Cardinality; v++ {
			m := make(map[Decision]float64)
			for _, d := range w.Decisions() {
				m[d] = rng.Normal(0, 0.8)
			}
			w.interact[j][v] = m
		}
	}
	w.clientEffect = make([]map[int]float64, w.InteractingFeatures)
	scale := w.ClientEffectStd
	if w.InteractingFeatures > 1 {
		scale /= math.Sqrt(float64(w.InteractingFeatures))
	}
	for j := range w.clientEffect {
		w.clientEffect[j] = make(map[int]float64)
		for v := 0; v < w.Cardinality; v++ {
			w.clientEffect[j][v] = rng.Normal(0, scale)
		}
	}
	return nil
}

// TrueQuality returns the noise-free expected quality of a decision for
// a client.
func (w *World) TrueQuality(c Client, d Decision) float64 {
	if w.base == nil {
		panic("cfa: world not initialized")
	}
	q := w.base[d]
	for j := 0; j < w.InteractingFeatures; j++ {
		q += w.interact[j][c.Features[j]][d]
		q += w.clientEffect[j][c.Features[j]]
	}
	return q
}

// DrawQuality samples a noisy quality measurement.
func (w *World) DrawQuality(c Client, d Decision, rng *mathx.RNG) float64 {
	return w.TrueQuality(c, d) + rng.Normal(0, w.NoiseStd)
}

// SampleClients draws n clients uniformly over the feature space.
func (w *World) SampleClients(n int, rng *mathx.RNG) []Client {
	out := make([]Client, n)
	for i := range out {
		f := make([]int, w.NumFeatures)
		for j := range f {
			f[j] = rng.Intn(w.Cardinality)
		}
		out[i] = Client{Features: f}
	}
	return out
}

// OldPolicy is CFA's logging policy: uniformly random CDN and bitrate.
func (w *World) OldPolicy() core.Policy[Client, Decision] {
	return core.UniformPolicy[Client, Decision]{Decisions: w.Decisions()}
}

// NewPolicy returns a plausible data-driven target assignment: for each
// client it picks the decision maximizing a perturbed version of the
// true quality (as if a prediction system had learned the interactions
// imperfectly). perturbStd controls how far from optimal it is; the
// perturbation is drawn once per (feature-profile, decision) via a
// deterministic hash-free table, so the policy is a fixed function.
func (w *World) NewPolicy(perturbStd float64, rng *mathx.RNG) core.Policy[Client, Decision] {
	// Per-decision global perturbation plus a per-interacting-value
	// perturbation: deterministic once drawn.
	perturb := make(map[Decision]float64)
	for _, d := range w.Decisions() {
		perturb[d] = rng.Normal(0, perturbStd)
	}
	vperturb := make([]map[int]map[Decision]float64, w.InteractingFeatures)
	for j := range vperturb {
		vperturb[j] = make(map[int]map[Decision]float64)
		for v := 0; v < w.Cardinality; v++ {
			m := make(map[Decision]float64)
			for _, d := range w.Decisions() {
				m[d] = rng.Normal(0, perturbStd)
			}
			vperturb[j][v] = m
		}
	}
	return core.DeterministicPolicy[Client, Decision]{Choose: func(c Client) Decision {
		best := Decision{}
		bestV := -1e300
		for _, d := range w.Decisions() {
			v := w.TrueQuality(c, d) + perturb[d]
			for j := 0; j < w.InteractingFeatures; j++ {
				v += vperturb[j][c.Features[j]][d]
			}
			if v > bestV {
				bestV, best = v, d
			}
		}
		return best
	}}
}

// Data is one collected scenario instance.
type Data struct {
	Trace    core.Trace[Client, Decision]
	Contexts []Client
	World    *World
}

// Collect logs n clients under the uniform-random old policy.
func (w *World) Collect(n int, rng *mathx.RNG) (*Data, error) {
	if w.base == nil {
		return nil, errors.New("cfa: world not initialized (call Init)")
	}
	if n <= 0 {
		return nil, errors.New("cfa: need at least one client")
	}
	clients := w.SampleClients(n, rng)
	trace := core.CollectTrace(clients, w.OldPolicy(), func(c Client, d Decision) float64 {
		return w.DrawQuality(c, d, rng)
	}, rng)
	return &Data{Trace: trace, Contexts: clients, World: w}, nil
}

// GroundTruth returns the exact expected quality of a policy over the
// logged clients.
func (d *Data) GroundTruth(p core.Policy[Client, Decision]) float64 {
	return core.TrueValue(d.Contexts, p, d.World.TrueQuality)
}

// featurize encodes a (client, decision) pair for the k-NN model:
// client features followed by the decision coordinates, all categorical,
// matched with the Hamming metric.
func featurize(c Client, d Decision) []float64 {
	out := make([]float64, 0, len(c.Features)+2)
	for _, f := range c.Features {
		out = append(out, float64(f))
	}
	return append(out, float64(d.CDN), float64(d.Bitrate))
}

// KNNModel fits the k-NN reward model the paper uses as the DM for
// Figure 7c ("DM estimates are based on a k-NN model trained by the
// trace").
func (d *Data) KNNModel(k int) (core.RewardModel[Client, Decision], error) {
	if k <= 0 {
		k = 5
	}
	x := make([][]float64, len(d.Trace))
	y := make([]float64, len(d.Trace))
	for i, rec := range d.Trace {
		x[i] = featurize(rec.Context, rec.Decision)
		y[i] = rec.Reward
	}
	reg, err := knn.Fit(x, y, knn.Options{K: k, Metric: knn.Hamming})
	if err != nil {
		return nil, err
	}
	return core.RewardFunc[Client, Decision](func(c Client, dec Decision) float64 {
		v, err := reg.Predict(featurize(c, dec))
		if err != nil {
			return 0
		}
		return v
	}), nil
}

// PerDecisionKNNModel fits one k-NN regressor per decision, each over
// client features only. Restricting neighbours to records that took the
// same decision mirrors how CFA groups sessions and gives a much less
// biased Direct Method than a joint model: a prediction for (c, d) never
// mixes in rewards earned under other decisions. Decisions with no
// training records fall back to the global mean reward.
func (d *Data) PerDecisionKNNModel(k int) (core.RewardModel[Client, Decision], error) {
	if k <= 0 {
		k = 5
	}
	type bucket struct {
		x [][]float64
		y []float64
	}
	buckets := make(map[Decision]*bucket)
	for _, rec := range d.Trace {
		b, ok := buckets[rec.Decision]
		if !ok {
			b = &bucket{}
			buckets[rec.Decision] = b
		}
		f := make([]float64, len(rec.Context.Features))
		for j, v := range rec.Context.Features {
			f[j] = float64(v)
		}
		b.x = append(b.x, f)
		b.y = append(b.y, rec.Reward)
	}
	models := make(map[Decision]*knn.Regressor, len(buckets))
	for dec, b := range buckets {
		reg, err := knn.Fit(b.x, b.y, knn.Options{K: k, Metric: knn.Hamming})
		if err != nil {
			return nil, err
		}
		models[dec] = reg
	}
	fallback := d.Trace.MeanReward()
	return core.RewardFunc[Client, Decision](func(c Client, dec Decision) float64 {
		reg, ok := models[dec]
		if !ok {
			return fallback
		}
		f := make([]float64, len(c.Features))
		for j, v := range c.Features {
			f[j] = float64(v)
		}
		v, err := reg.Predict(f)
		if err != nil {
			return fallback
		}
		return v
	}), nil
}

// String describes the world.
func (w *World) String() string {
	return fmt.Sprintf("cfa world: %d features × %d values, %d CDNs × %d bitrates",
		w.NumFeatures, w.Cardinality, w.NumCDNs, w.NumBitrates)
}
