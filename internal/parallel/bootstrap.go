package parallel

import (
	"drnet/internal/mathx"
)

// BootstrapCI estimates a two-sided percentile bootstrap confidence
// interval for the mean of xs at the given confidence level (e.g. 0.95)
// using b resamples computed on up to workers goroutines.
//
// It is the parallel counterpart of (*mathx.RNG).BootstrapCI, with one
// deliberate difference: resample i draws from its own PCG stream
// (ShardedRNG shard i) instead of a single shared stream, so the
// interval is a pure function of (xs, level, b, seed) — bit-identical
// whether computed with 1 worker or 64.
func BootstrapCI(xs []float64, level float64, b int, seed int64, workers int) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	if level <= 0 || level >= 1 {
		panic("parallel: confidence level must be in (0,1)")
	}
	if b <= 0 {
		b = 1000
	}
	sh := NewShardedRNG(seed)
	means, _ := Times(b, workers, func(i int) (float64, error) {
		rng := sh.Shard(i)
		buf := make([]float64, len(xs))
		return mathx.Mean(rng.Bootstrap(buf, xs)), nil
	})
	alpha := (1 - level) / 2
	return mathx.Quantile(means, alpha), mathx.Quantile(means, 1-alpha)
}
