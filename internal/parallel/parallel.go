// Package parallel is the repository's evaluation engine: a bounded
// worker pool with deterministic chunking and a sharded RNG, so that
// every Monte Carlo loop, per-record estimator pass and bootstrap
// resample in this codebase produces bit-identical results at any
// worker count (GOMAXPROCS, -workers 1, -workers 8, ...).
//
// Determinism comes from two rules every helper here enforces:
//
//  1. Work is addressed by index, never by arrival order. Outputs are
//     written to index i of a pre-sized slice and reductions run
//     sequentially in index order after the parallel phase, so no
//     floating-point sum is ever reassociated.
//  2. Randomness is sharded by index, never drawn from a shared
//     stream. ShardedRNG derives an independent PCG stream per shard
//     from a root seed, so shard i sees the same variates no matter
//     which worker runs it.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the pool-wide worker count used when a call
// passes workers <= 0. Zero means "use GOMAXPROCS".
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the worker count used by callers that do not
// specify one (the estimators in internal/core, the experiment runners,
// drevald request handling). n <= 0 restores the default, GOMAXPROCS.
// It is safe for concurrent use.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
	poolWorkers.Set(float64(DefaultWorkers()))
}

// DefaultWorkers returns the currently configured default worker count
// (GOMAXPROCS when unset).
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// resolve maps a caller-supplied worker count to a concrete one.
func resolve(workers int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return workers
}

// ForEach partitions [0, n) into consecutive chunks of at most grain
// indices and runs fn(lo, hi) once per chunk on up to workers
// goroutines (workers <= 0 means DefaultWorkers; grain <= 0 means one
// chunk per worker share, minimum 1).
//
// fn must be index-pure: its effect for index i (typically writing
// element i of a shared output slice) may not depend on which chunk or
// worker executes it. Under that contract the output is bit-identical
// for every worker count, including 1.
//
// When any chunk fails, ForEach returns the error of the lowest-indexed
// failing chunk. Because fn scans its chunk in order, that is exactly
// the error a sequential loop would have returned first. Chunks not yet
// claimed when a failure is observed are skipped.
func ForEach(n, workers, grain int, fn func(lo, hi int) error) error {
	return ForEachCtx(context.Background(), n, workers, grain, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx ends,
// no new chunk is claimed — already-running chunks finish (fn is never
// interrupted mid-chunk), so cancellation takes effect within one task
// boundary. Chunks skipped because of cancellation are counted in the
// obs_pool_cancelled_chunks_total metric.
//
// When chunks were skipped due to cancellation and no chunk failed,
// ForEachCtx returns ctx.Err(). A dispatch whose chunks all completed
// before the cancellation was observed returns nil: the work is done.
// Chunk errors take precedence (lowest index first, as in ForEach).
// A context that is never cancelled leaves results and scheduling
// bit-identical to ForEach.
func ForEachCtx(ctx context.Context, n, workers, grain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolve(workers)
	if grain <= 0 {
		grain = (n + workers - 1) / workers
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	if err := ctx.Err(); err != nil {
		// The whole dispatch was cancelled before any chunk ran.
		poolCancelled.Add(uint64(chunks))
		return err
	}
	done := ctx.Done()
	if workers == 1 {
		// Plain loop: no goroutines, no pool overhead (beyond per-chunk
		// task accounting, which is two atomics and a clock read).
		for lo := 0; lo < n; lo += grain {
			if done != nil {
				select {
				case <-done:
					poolCancelled.Add(uint64((n - lo + grain - 1) / grain))
					return ctx.Err()
				default:
				}
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if err := recordTask(func() error { return fn(lo, hi) }); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, chunks)
	var next atomic.Int64
	var claimed atomic.Int64
	var failed atomic.Bool
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	poolQueue.Add(float64(chunks))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			poolActive.Inc()
			defer poolActive.Dec()
			for {
				if done != nil && !cancelled.Load() {
					select {
					case <-done:
						cancelled.Store(true)
					default:
					}
				}
				c := int(next.Add(1)) - 1
				if c >= chunks || failed.Load() || cancelled.Load() {
					return
				}
				claimed.Add(1)
				poolQueue.Dec()
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				if err := recordTask(func() error { return fn(lo, hi) }); err != nil {
					errs[c] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Chunks abandoned after a failure or cancellation were counted into
	// the queue gauge but never claimed; settle the balance.
	leftover := int64(chunks) - claimed.Load()
	if leftover > 0 {
		poolQueue.Add(-float64(leftover))
		if cancelled.Load() {
			poolCancelled.Add(uint64(leftover))
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if cancelled.Load() && leftover > 0 {
		return ctx.Err()
	}
	return nil
}

// Map applies fn to every element of items on up to workers goroutines
// and returns the results in input order. Each item is its own chunk
// (grain 1), which suits the coarse-grained tasks this repository maps
// over: Monte Carlo runs, bootstrap resamples, whole experiments.
//
// On failure Map returns the error of the lowest-indexed failing item,
// matching a sequential loop.
func Map[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), items, workers, fn)
}

// MapCtx is Map with cooperative cancellation via ForEachCtx: once ctx
// ends no new item is started, and the call returns ctx.Err() (unless
// an item error takes precedence).
func MapCtx[T, R any](ctx context.Context, items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEachCtx(ctx, len(items), workers, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			r, err := fn(i, items[i])
			if err != nil {
				return err
			}
			out[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Times runs fn(i) for i in [0, n) on up to workers goroutines and
// returns the n results in index order. It is Map without a materialized
// input slice — the natural shape for "repeat this replication n times".
func Times[R any](n, workers int, fn func(i int) (R, error)) ([]R, error) {
	return TimesCtx(context.Background(), n, workers, fn)
}

// TimesCtx is Times with cooperative cancellation via ForEachCtx.
func TimesCtx[R any](ctx context.Context, n, workers int, fn func(i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	err := ForEachCtx(ctx, n, workers, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			r, err := fn(i)
			if err != nil {
				return err
			}
			out[i] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapReduce maps items in parallel, then folds the mapped values
// sequentially in input order: acc = reduce(acc, r_0), reduce(acc, r_1),
// and so on starting from init. Because the fold order is fixed,
// floating-point accumulation is never reassociated and the result is
// bit-identical at every worker count.
func MapReduce[T, R any](items []T, workers int, mapFn func(i int, item T) (R, error), init R, reduce func(acc, next R) R) (R, error) {
	return MapReduceCtx(context.Background(), items, workers, mapFn, init, reduce)
}

// MapReduceCtx is MapReduce with cooperative cancellation via MapCtx:
// once ctx ends no new item is mapped and the zero value is returned
// with ctx.Err(); the fold only runs over a fully mapped slice.
func MapReduceCtx[T, R any](ctx context.Context, items []T, workers int, mapFn func(i int, item T) (R, error), init R, reduce func(acc, next R) R) (R, error) {
	mapped, err := MapCtx(ctx, items, workers, mapFn)
	if err != nil {
		var zero R
		return zero, err
	}
	acc := init
	for _, r := range mapped {
		acc = reduce(acc, r)
	}
	return acc, nil
}
