package parallel

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"drnet/internal/mathx"
)

// workerCounts are the worker counts every determinism test sweeps, as
// required by the acceptance criteria.
var workerCounts = []int{1, 2, 8}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, grain := range []int{1, 3, 64, 5000} {
			for _, w := range workerCounts {
				hits := make([]int32, n)
				err := ForEach(n, w, grain, func(lo, hi int) error {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
					return nil
				})
				if err != nil {
					t.Fatalf("n=%d grain=%d workers=%d: %v", n, grain, w, err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("n=%d grain=%d workers=%d: index %d visited %d times", n, grain, w, i, h)
					}
				}
			}
		}
	}
}

func TestForEachDefaultGrain(t *testing.T) {
	var visited atomic.Int64
	if err := ForEach(100, 4, 0, func(lo, hi int) error {
		visited.Add(int64(hi - lo))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 100 {
		t.Fatalf("visited %d indices, want 100", visited.Load())
	}
}

// TestForEachFirstError asserts the returned error is always the one a
// sequential loop would hit first, at any worker count.
func TestForEachFirstError(t *testing.T) {
	// Indices 41, 43 and 97 fail; the sequential loop dies at 41.
	bad := map[int]bool{41: true, 43: true, 97: true}
	for _, w := range workerCounts {
		err := ForEach(200, w, 4, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if bad[i] {
					return fmt.Errorf("index %d", i)
				}
			}
			return nil
		})
		if err == nil || err.Error() != "index 41" {
			t.Fatalf("workers=%d: got %v, want index 41", w, err)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 500)
	for i := range in {
		in[i] = i
	}
	for _, w := range workerCounts {
		out, err := Map(in, w, func(i, x int) (int, error) { return x * x, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapFirstError(t *testing.T) {
	in := make([]int, 100)
	sentinel := errors.New("boom")
	for _, w := range workerCounts {
		_, err := Map(in, w, func(i, _ int) (int, error) {
			if i >= 30 {
				return 0, fmt.Errorf("item %d: %w", i, sentinel)
			}
			return 0, nil
		})
		if err == nil || !errors.Is(err, sentinel) || err.Error() != "item 30: boom" {
			t.Fatalf("workers=%d: got %v, want item 30", w, err)
		}
	}
}

func TestTimesDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []float64 {
		sh := NewShardedRNG(42)
		out, err := Times(64, workers, func(i int) (float64, error) {
			rng := sh.Shard(i)
			s := 0.0
			for k := 0; k < 100; k++ {
				s += rng.NormFloat64()
			}
			return s, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range workerCounts[1:] {
		got := run(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: output differs from workers=1", w)
		}
	}
}

func TestMapReduceFoldsInOrder(t *testing.T) {
	// A non-commutative reduction (string concat) exposes any ordering
	// violation immediately.
	in := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, w := range workerCounts {
		got, err := MapReduce(in, w,
			func(i, x int) (string, error) { return fmt.Sprint(x), nil },
			"", func(acc, next string) string { return acc + next })
		if err != nil {
			t.Fatal(err)
		}
		if got != "0123456789" {
			t.Fatalf("workers=%d: %q", w, got)
		}
	}
}

// TestMapMatchesSequentialProperty checks, for random inputs, that a
// parallel Map of a pure function equals the plain loop.
func TestMapMatchesSequentialProperty(t *testing.T) {
	f := func(xs []float64, workers uint8) bool {
		w := int(workers%8) + 1
		fn := func(x float64) float64 { return math.Sin(x) * 3.7 }
		got, err := Map(xs, w, func(i int, x float64) (float64, error) { return fn(x), nil })
		if err != nil {
			return false
		}
		for i, x := range xs {
			if got[i] != fn(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() = %d, want >= 1", got)
	}
	SetDefaultWorkers(-5)
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers() after negative = %d, want >= 1", got)
	}
}

func TestShardedRNGReproducible(t *testing.T) {
	sh := NewShardedRNG(7)
	a, b := sh.Shard(5), sh.Shard(5)
	for k := 0; k < 1000; k++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("shard 5 not reproducible at draw %d", k)
		}
	}
}

func TestShardedRNGStreamsDiffer(t *testing.T) {
	sh := NewShardedRNG(7)
	seen := make(map[uint64]int)
	for i := 0; i < 100; i++ {
		v := sh.Shard(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("shards %d and %d produced the same first draw", j, i)
		}
		seen[v] = i
	}
	// Different root seeds give different streams for the same shard.
	if NewShardedRNG(1).Shard(0).Uint64() == NewShardedRNG(2).Shard(0).Uint64() {
		t.Fatal("different seeds produced identical shard-0 draws")
	}
}

// TestShardedRNGMeanSane is a coarse statistical sanity check: pooled
// uniform draws across shards should average near 0.5.
func TestShardedRNGMeanSane(t *testing.T) {
	sh := NewShardedRNG(11)
	s, n := 0.0, 0
	for i := 0; i < 200; i++ {
		rng := sh.Shard(i)
		for k := 0; k < 100; k++ {
			s += rng.Float64()
			n++
		}
	}
	if mean := s / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("pooled mean %g too far from 0.5", mean)
	}
}

func TestBootstrapCIDeterministicAcrossWorkers(t *testing.T) {
	rng := mathx.NewRNG(3)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.Normal(2, 1)
	}
	lo1, hi1 := BootstrapCI(xs, 0.95, 400, 9, 1)
	for _, w := range workerCounts[1:] {
		lo, hi := BootstrapCI(xs, 0.95, 400, 9, w)
		if lo != lo1 || hi != hi1 {
			t.Fatalf("workers=%d: CI [%g,%g] != workers=1 [%g,%g]", w, lo, hi, lo1, hi1)
		}
	}
	if lo1 >= hi1 {
		t.Fatalf("degenerate CI [%g,%g]", lo1, hi1)
	}
	m := mathx.Mean(xs)
	if m < lo1 || m > hi1 {
		t.Fatalf("sample mean %g outside 95%% CI [%g,%g]", m, lo1, hi1)
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 0.95, 10, 1, 2); lo != 0 || hi != 0 {
		t.Fatalf("empty input: got [%g,%g]", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad level did not panic")
		}
	}()
	BootstrapCI([]float64{1, 2}, 1.5, 10, 1, 2)
}

// TestStressManyTasks hammers the pool with many tiny tasks from many
// goroutines at once; run under -race this is the package's data-race
// canary.
func TestStressManyTasks(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var total atomic.Int64
			if err := ForEach(10000, 16, 7, func(lo, hi int) error {
				for i := lo; i < hi; i++ {
					total.Add(int64(i))
				}
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
			if want := int64(10000 * 9999 / 2); total.Load() != want {
				t.Errorf("goroutine %d: sum %d, want %d", g, total.Load(), want)
			}
		}(g)
	}
	wg.Wait()
}
