package parallel

import (
	"time"

	"drnet/internal/obs"
)

// Pool instrumentation on the process-wide obs registry. A "task" is
// one chunk claimed from a ForEach dispatch (every Map/Times/MapReduce
// call and every estimator or bootstrap fan-out lands here). All
// updates are atomics on cached pointers, so instrumentation cannot
// reorder work or touch the sharded RNG streams — determinism is
// untouched.
var (
	poolTasks       = obs.Default.Counter("parallel_pool_tasks_total")
	poolTaskSeconds = obs.Default.Histogram("parallel_pool_task_seconds", obs.TimeBuckets)
	poolActive      = obs.Default.Gauge("parallel_pool_active_workers")
	poolQueue       = obs.Default.Gauge("parallel_pool_queue_depth")
	poolWorkers     = obs.Default.Gauge("parallel_pool_default_workers")
)

func init() {
	obs.Default.Help("parallel_pool_tasks_total", "Chunks executed by the shared worker pool.")
	obs.Default.Help("parallel_pool_task_seconds", "Per-chunk execution time on the worker pool.")
	obs.Default.Help("parallel_pool_active_workers", "Worker goroutines currently running pool chunks.")
	obs.Default.Help("parallel_pool_queue_depth", "Chunks dispatched but not yet claimed by a worker.")
	obs.Default.Help("parallel_pool_default_workers", "Configured default worker count (SetDefaultWorkers; 0 resolves to GOMAXPROCS).")
	poolWorkers.Set(float64(DefaultWorkers()))
}

// recordTask times fn as one pool task.
func recordTask(fn func() error) error {
	start := time.Now()
	err := fn()
	poolTaskSeconds.Observe(time.Since(start).Seconds())
	poolTasks.Inc()
	return err
}
