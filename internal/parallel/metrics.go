package parallel

import (
	"fmt"
	"time"

	"drnet/internal/obs"
	"drnet/internal/resilience"
)

// Pool instrumentation on the process-wide obs registry. A "task" is
// one chunk claimed from a ForEach dispatch (every Map/Times/MapReduce
// call and every estimator or bootstrap fan-out lands here). All
// updates are atomics on cached pointers, so instrumentation cannot
// reorder work or touch the sharded RNG streams — determinism is
// untouched.
var (
	poolTasks       = obs.Default.Counter("obs_pool_tasks_total")
	poolTaskSeconds = obs.Default.Histogram("obs_pool_task_seconds", obs.TimeBuckets)
	poolActive      = obs.Default.Gauge("obs_pool_active_workers")
	poolQueue       = obs.Default.Gauge("obs_pool_queue_depth")
	poolWorkers     = obs.Default.Gauge("obs_pool_default_workers")
	poolCancelled   = obs.Default.Counter("obs_pool_cancelled_chunks_total")
	poolPanics      = obs.Default.Counter("obs_pool_panics_total")
)

func init() {
	obs.Default.Help("obs_pool_tasks_total", "Chunks executed by the shared worker pool.")
	obs.Default.Help("obs_pool_task_seconds", "Per-chunk execution time on the worker pool.")
	obs.Default.Help("obs_pool_active_workers", "Worker goroutines currently running pool chunks.")
	obs.Default.Help("obs_pool_queue_depth", "Chunks dispatched but not yet claimed by a worker.")
	obs.Default.Help("obs_pool_default_workers", "Configured default worker count (SetDefaultWorkers; 0 resolves to GOMAXPROCS).")
	obs.Default.Help("obs_pool_cancelled_chunks_total", "Chunks skipped because their dispatch's context was cancelled.")
	obs.Default.Help("obs_pool_panics_total", "Panics recovered inside pool tasks and converted to task errors.")
	poolWorkers.Set(float64(DefaultWorkers()))
}

// recordTask times fn as one pool task. A panic inside the task is
// recovered and converted into a task error — one request's bug (or an
// injected chaos panic) must fail that dispatch, not kill the process.
// The resilience injection point runs inside the recovery scope, so
// injected panics exercise the same path as real ones.
func recordTask(fn func() error) (err error) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			poolPanics.Inc()
			err = fmt.Errorf("parallel: recovered panic in pool task: %v", p)
		}
		poolTaskSeconds.Observe(time.Since(start).Seconds())
		poolTasks.Inc()
	}()
	if err := resilience.Inject(resilience.PointPoolTask); err != nil {
		return err
	}
	return fn()
}
