package parallel

import "drnet/internal/mathx"

// ShardedRNG derives an independent random stream per shard from one
// root seed. Shard i's stream is a PCG generator seeded with
// (root seed, mix(i)), so the variates consumed by shard i are a pure
// function of (seed, i) — independent of worker count, scheduling and
// of how many draws other shards make. That is what makes parallel
// bootstrap resampling and parallel Monte Carlo runs bit-identical to
// their sequential counterparts.
//
// A ShardedRNG is immutable and safe for concurrent use; the *mathx.RNG
// values it hands out are not, so each shard must keep its own.
type ShardedRNG struct {
	seed uint64
}

// NewShardedRNG returns a sharded RNG rooted at seed.
func NewShardedRNG(seed int64) *ShardedRNG {
	return &ShardedRNG{seed: uint64(seed)}
}

// Shard returns a fresh RNG for shard i. Calling Shard(i) twice returns
// two generators that produce identical sequences.
func (s *ShardedRNG) Shard(i int) *mathx.RNG {
	return mathx.NewPCG(s.seed, splitmix64(uint64(i)))
}

// splitmix64 scatters consecutive shard indices across the stream-id
// space so adjacent shards do not get adjacent PCG stream constants.
// (SplitMix64 is the finalizer recommended for seeding PCG-family
// generators; it is a bijection, so distinct shards keep distinct
// streams.)
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
