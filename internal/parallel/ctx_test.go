package parallel

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCtxBackgroundMatchesForEach: an un-cancelled context must
// leave scheduling and results bit-identical to the plain call.
func TestForEachCtxBackgroundMatchesForEach(t *testing.T) {
	for _, w := range workerCounts {
		plain := make([]int, 100)
		ctxed := make([]int, 100)
		if err := ForEach(100, w, 7, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				plain[i] = i * i
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := ForEachCtx(context.Background(), 100, w, 7, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				ctxed[i] = i * i
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, ctxed) {
			t.Fatalf("workers=%d: ctx variant diverged", w)
		}
	}
}

// TestForEachCtxPreCancelled: a context already cancelled at dispatch
// runs nothing and counts every chunk as cancelled.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := poolCancelled.Value()
	ran := atomic.Int64{}
	err := ForEachCtx(ctx, 100, 4, 10, func(lo, hi int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d chunks ran on a cancelled context", ran.Load())
	}
	if got := poolCancelled.Value() - before; got != 10 {
		t.Fatalf("cancelled-chunk counter advanced by %d, want 10", got)
	}
}

// TestForEachCtxStopsSchedulingMidRun cancels while chunks are in
// flight: the dispatch must stop claiming new chunks within one task
// boundary, return ctx.Err(), and account the skipped chunks in the
// pool metrics (the queue gauge settles back, the cancelled counter
// advances).
func TestForEachCtxStopsSchedulingMidRun(t *testing.T) {
	for _, w := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		before := poolCancelled.Value()
		var started atomic.Int64
		release := make(chan struct{})
		const chunks = 64
		errc := make(chan error, 1)
		go func() {
			errc <- ForEachCtx(ctx, chunks, w, 1, func(lo, hi int) error {
				started.Add(1)
				<-release
				return nil
			})
		}()
		// Wait until every worker has a chunk in flight, then cancel and
		// let the blocked chunks finish. Workers must observe the
		// cancellation before claiming their next chunk.
		for i := 0; i < 1000 && started.Load() < int64(w); i++ {
			time.Sleep(time.Millisecond)
		}
		if started.Load() < int64(w) {
			t.Fatalf("workers=%d: chunks never started", w)
		}
		cancel()
		close(release)
		var err error
		select {
		case err = <-errc:
		case <-time.After(5 * time.Second):
			t.Fatalf("workers=%d: dispatch did not stop after cancel", w)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", w, err)
		}
		// At most one extra chunk per worker can squeeze in between the
		// cancel and a worker's next done-check; the rest are skipped.
		if s := started.Load(); s > int64(2*w) {
			t.Fatalf("workers=%d: %d of %d chunks ran after cancellation", w, s, chunks)
		}
		if poolCancelled.Value() <= before {
			t.Fatalf("workers=%d: cancelled-chunk counter did not advance", w)
		}
		if q := poolQueue.Value(); q != 0 {
			t.Fatalf("workers=%d: queue gauge %g after dispatch, want 0", w, q)
		}
	}
}

// TestForEachCtxChunkErrorBeatsCancel: a chunk error observed alongside
// cancellation is still reported (lowest index first).
func TestForEachCtxChunkErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 50, 4, 1, func(lo, hi int) error {
		if lo == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the chunk error", err)
	}
}

// TestTimesCtxMatchesTimes: determinism of the ctx variants with a live
// (never-cancelled) context, including the sharded RNG path.
func TestTimesCtxMatchesTimes(t *testing.T) {
	sh := NewShardedRNG(17)
	draw := func(i int) (float64, error) { return sh.Shard(i).Float64(), nil }
	want, err := Times(200, 1, draw)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts {
		got, err := TimesCtx(context.Background(), 200, w, draw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: TimesCtx diverged from Times", w)
		}
	}
}

func TestMapCtxAndMapReduceCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := make([]int, 32)
	if _, err := MapCtx(ctx, items, 4, func(i, v int) (int, error) { return v, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapCtx: %v", err)
	}
	got, err := MapReduceCtx(ctx, items, 4, func(i, v int) (int, error) { return 1, nil }, 0, func(a, b int) int { return a + b })
	if !errors.Is(err, context.Canceled) || got != 0 {
		t.Fatalf("MapReduceCtx: %d, %v", got, err)
	}
}

// TestRecordTaskRecoversPanic: a panicking task must surface as an
// error on the dispatch (lowest index, like any chunk error), count in
// the panic metric, and leave the process alive at every worker count.
func TestRecordTaskRecoversPanic(t *testing.T) {
	for _, w := range workerCounts {
		before := poolPanics.Value()
		err := ForEach(100, w, 5, func(lo, hi int) error {
			if lo == 45 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: got %v, want recovered panic error", w, err)
		}
		if poolPanics.Value() != before+1 {
			t.Fatalf("workers=%d: panic counter went %d → %d", w, before, poolPanics.Value())
		}
	}
}
