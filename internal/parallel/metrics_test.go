package parallel

import (
	"errors"
	"testing"
)

// TestPoolMetricsCountTasks asserts the task counter advances by
// exactly the number of chunks executed, on both the serial and the
// parallel path, and that the duration histogram keeps pace.
func TestPoolMetricsCountTasks(t *testing.T) {
	before := poolTasks.Value()
	histBefore := poolTaskSeconds.Count()

	// Serial path: workers=1, grain=1 → 10 chunks.
	if err := ForEach(10, 1, 1, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Parallel path: 4 workers, grain=1 → 20 chunks.
	if err := ForEach(20, 4, 1, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}

	if got := poolTasks.Value() - before; got != 30 {
		t.Fatalf("tasks delta = %d, want 30", got)
	}
	if got := poolTaskSeconds.Count() - histBefore; got != 30 {
		t.Fatalf("task-duration observations delta = %d, want 30", got)
	}
}

// TestPoolQueueGaugeSettles asserts the queue-depth gauge returns to
// its prior level after a run — including when a failure abandons
// unclaimed chunks.
func TestPoolQueueGaugeSettles(t *testing.T) {
	before := poolQueue.Value()
	if err := ForEach(64, 4, 1, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := poolQueue.Value(); got != before {
		t.Fatalf("queue depth after clean run = %g, want %g", got, before)
	}

	boom := errors.New("boom")
	err := ForEach(64, 4, 1, func(lo, hi int) error {
		if lo == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := poolQueue.Value(); got != before {
		t.Fatalf("queue depth after failed run = %g, want %g", got, before)
	}
	if got := poolActive.Value(); got != 0 {
		t.Fatalf("active workers after runs = %g, want 0", got)
	}
}

// TestDefaultWorkersGauge tracks SetDefaultWorkers through the gauge.
func TestDefaultWorkersGauge(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := poolWorkers.Value(); got != 3 {
		t.Fatalf("default-workers gauge = %g, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := poolWorkers.Value(); got != float64(DefaultWorkers()) {
		t.Fatalf("default-workers gauge = %g, want %d", got, DefaultWorkers())
	}
}
