package analysis

// SARIF 2.1.0 output for drevallint, so CI can upload findings as
// code-scanning annotations. The encoding is deliberately minimal and
// byte-stable: rules sorted by check name, results in the runner's
// deterministic diagnostic order, file URIs module-root-relative under
// the %SRCROOT% base, and json.MarshalIndent with fixed struct field
// order. Byte-stability is tested (TestSARIFDeterministic) because CI
// diffs consecutive uploads to detect new findings.

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. analyzers supplies
// the rule table (every check that ran, found something or not); root
// is the module root that file paths are made relative to. The output
// is byte-stable for identical inputs.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	// The runner's own meta-findings (malformed //lint:allow) carry the
	// "lint" check; load errors carry "load".
	rules = append(rules,
		sarifRule{ID: "lint", ShortDescription: sarifText{Text: "malformed or unexplained //lint:allow suppression"}},
		sarifRule{ID: "load", ShortDescription: sarifText{Text: "package failed to parse or type-check"}},
	)
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	index := map[string]int{}
	for i, r := range rules {
		index[r.ID] = i
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Check]
		if !ok {
			idx = 0
		}
		res := sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
		}
		if d.File != "" {
			phys := sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relURI(root, d.File), URIBaseID: "%SRCROOT%"},
			}
			if d.Line > 0 {
				phys.Region = &sarifRegion{StartLine: d.Line, StartColumn: d.Col}
			}
			res.Locations = []sarifLocation{{PhysicalLocation: phys}}
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "drevallint", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// relURI renders file relative to root with forward slashes; files
// outside root (or when root is empty) keep their slashed path.
func relURI(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

func hasDotDotPrefix(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
