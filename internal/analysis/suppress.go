package analysis

import (
	"go/token"
	"strings"
)

// suppressions maps file → line → set of allowed check names. A
// //lint:allow comment covers its own line (trailing form) and the
// line directly below it (standalone form above the flagged code).
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans every comment in the package for
//
//	//lint:allow <check> <reason>
//
// entries. A missing check name or missing reason is itself a finding
// (check "lint"): a suppression that doesn't say what it allows, or
// why, defeats the audit trail the mechanism exists to provide.
func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				fields := strings.Fields(text)
				if len(fields) == 0 {
					diags = append(diags, lintDiag(pos, "lint:allow needs a check name and a reason"))
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, lintDiag(pos, "lint:allow "+fields[0]+" needs a reason"))
					continue
				}
				check := fields[0]
				m := sup[pos.Filename]
				if m == nil {
					m = map[int]map[string]bool{}
					sup[pos.Filename] = m
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if m[line] == nil {
						m[line] = map[string]bool{}
					}
					m[line][check] = true
				}
			}
		}
	}
	return sup, diags
}

func lintDiag(pos token.Position, msg string) Diagnostic {
	return Diagnostic{Pos: pos, Check: "lint", Message: msg}
}

// allows reports whether d is covered by a suppression for its check
// on its line.
func (s suppressions) allows(d Diagnostic) bool {
	m := s[d.Pos.Filename]
	if m == nil {
		return false
	}
	return m[d.Pos.Line][d.Check]
}
