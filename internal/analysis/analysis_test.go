package analysis_test

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
	"testing"

	"drnet/internal/analysis"
)

// probe reports one "define" diagnostic per := statement; the
// suppression tests pivot on it.
var probe = &analysis.Analyzer{
	Name: "probe",
	Doc:  "reports every short variable declaration",
	Run: func(p *analysis.Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if asg, ok := n.(*ast.AssignStmt); ok && asg.Tok == token.DEFINE {
					p.Reportf(asg.Pos(), "define")
				}
				return true
			})
		}
	},
}

func newLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// lineOf finds the 1-based line of the first occurrence of marker in
// the fixture source, so the tests don't hardcode line numbers.
func lineOf(t *testing.T, path, marker string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, marker) {
			return i + 1
		}
	}
	t.Fatalf("%s: marker %q not found", path, marker)
	return 0
}

func TestSuppressionMatching(t *testing.T) {
	const fixture = "testdata/suppress/fixture.go"
	pkg, err := newLoader(t).LoadDir("testdata/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Errs) > 0 {
		t.Fatalf("fixture should load cleanly: %v", pkg.Errs)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe})

	reported := map[int]string{}
	var lintMsgs []string
	for _, d := range diags {
		switch d.Check {
		case "probe":
			reported[d.Line] = d.Message
		case "lint":
			lintMsgs = append(lintMsgs, d.Message)
		default:
			t.Errorf("unexpected check %q: %s", d.Check, d)
		}
	}

	for _, tc := range []struct {
		marker     string
		suppressed bool
		why        string
	}{
		{"x := 1", true, "standalone //lint:allow on the line above"},
		{"y := 2", true, "trailing //lint:allow on the same line"},
		{"z := 3", false, "no suppression at all"},
		{"w := 4", false, "suppression names a different check"},
		{"v := 5", false, "suppression missing its reason is void"},
		{"u := 6", false, "suppression missing check and reason is void"},
	} {
		line := lineOf(t, fixture, tc.marker)
		_, got := reported[line]
		if got == tc.suppressed {
			t.Errorf("%s (line %d): suppressed=%v, want %v (%s)",
				tc.marker, line, !got, tc.suppressed, tc.why)
		}
	}

	wantLint := []string{
		"lint:allow probe needs a reason",
		"lint:allow needs a check name and a reason",
	}
	for _, want := range wantLint {
		found := false
		for _, msg := range lintMsgs {
			if msg == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing lint diagnostic %q (got %v)", want, lintMsgs)
		}
	}
	if len(lintMsgs) != len(wantLint) {
		t.Errorf("want %d lint diagnostics, got %v", len(wantLint), lintMsgs)
	}
}

func TestLoaderDegradesOnParseError(t *testing.T) {
	pkg, err := newLoader(t).LoadDir("testdata/broken", "fixture/broken")
	if err != nil {
		t.Fatalf("LoadDir must not fail outright on a broken package: %v", err)
	}
	if len(pkg.Errs) == 0 {
		t.Fatal("want parse errors recorded in pkg.Errs")
	}
	if len(pkg.Files) == 0 {
		t.Fatal("want the parseable file to survive the broken sibling")
	}
	// The degraded package must still be analyzable: the probe walks
	// whatever parsed without panicking, and the good file's contents
	// are visible.
	sawFine := false
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Fine" {
				sawFine = true
			}
			return true
		})
	}
	if !sawFine {
		t.Error("good.go's Fine() should be visible in the degraded package")
	}
	_ = analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe})
}

func TestLoaderDegradesOnTypeError(t *testing.T) {
	pkg, err := newLoader(t).LoadDir("testdata/typeerr", "fixture/typeerr")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Errs) == 0 {
		t.Fatal("want the type error recorded in pkg.Errs")
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("want the file parsed despite the type error, got %d files", len(pkg.Files))
	}
	// Analyzers must tolerate the partial type info.
	_ = analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe})
}

func TestRunOrdersDiagnosticsDeterministically(t *testing.T) {
	pkg, err := newLoader(t).LoadDir("testdata/suppress", "fixture/suppress")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{probe})
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
