package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src (a full file), returns the body of the named
// function.
func parseBody(t *testing.T, src, fn string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd.Body
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

// lockTransfer is the test transfer: lock() adds "held", unlock()
// removes it; deferred calls are ignored (they run at exit).
func lockTransfer(state Set, n ast.Node) Set {
	if _, ok := n.(*ast.DeferStmt); ok {
		return state
	}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "lock":
				state["held"] = true
			case "unlock":
				delete(state, "held")
			}
		}
		return true
	})
	return state
}

// stateAtCall replays the fixpoint and returns the state immediately
// before the statement calling name.
func stateAtCall(t *testing.T, g *CFG, name string) Set {
	t.Helper()
	ins := g.ForwardMust(Set{}, lockTransfer)
	for _, bl := range g.Blocks {
		st := ins[bl].Clone()
		for _, n := range bl.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.DeferStmt); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return st
			}
			st = lockTransfer(st, n)
		}
	}
	t.Fatalf("no call to %s found in CFG", name)
	return nil
}

const cfgPrelude = `package p
func lock()   {}
func unlock() {}
func work()   {}
func use()    {}
func after()  {}
`

func TestCFGBranchJoinIntersects(t *testing.T) {
	src := cfgPrelude + `
func f(c bool) {
	lock()
	if c {
		unlock()
	}
	use()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); st["held"] {
		t.Fatalf("held survived a join where one branch unlocked: %v", st)
	}
}

func TestCFGBranchBothPathsHold(t *testing.T) {
	src := cfgPrelude + `
func f(c bool) {
	lock()
	if c {
		work()
	} else {
		work()
	}
	use()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); !st["held"] {
		t.Fatalf("held lost across a join where no branch unlocked: %v", st)
	}
}

func TestCFGEarlyReturnDoesNotPoisonJoin(t *testing.T) {
	src := cfgPrelude + `
func f(c bool) {
	lock()
	if c {
		unlock()
		return
	}
	use()
	unlock()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); !st["held"] {
		t.Fatalf("early unlock+return leaked into the fallthrough path: %v", st)
	}
}

func TestCFGLoopBodyAndExit(t *testing.T) {
	src := cfgPrelude + `
func f(n int) {
	for i := 0; i < n; i++ {
		lock()
		use()
		unlock()
	}
	after()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); !st["held"] {
		t.Fatalf("lock acquired earlier in the loop body not visible: %v", st)
	}
	if st := stateAtCall(t, g, "after"); st["held"] {
		t.Fatalf("held escaped the loop that released it every iteration: %v", st)
	}
}

func TestCFGDeferredUnlockHoldsToExit(t *testing.T) {
	src := cfgPrelude + `
func f() {
	lock()
	defer unlock()
	use()
}`
	body := parseBody(t, src, "f")
	g := BuildCFG(body)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	if st := stateAtCall(t, g, "use"); !st["held"] {
		t.Fatalf("deferred unlock cleared the state mid-body: %v", st)
	}
}

func TestCFGSwitchAllCasesLock(t *testing.T) {
	src := cfgPrelude + `
func f(x int) {
	switch x {
	case 1:
		lock()
	case 2:
		lock()
	default:
		lock()
	}
	use()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); !st["held"] {
		t.Fatalf("all-cases lock (with default) not held at join: %v", st)
	}
}

func TestCFGSwitchWithoutDefaultSkips(t *testing.T) {
	src := cfgPrelude + `
func f(x int) {
	switch x {
	case 1:
		lock()
	}
	use()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); st["held"] {
		t.Fatalf("no-default switch must admit the skip path: %v", st)
	}
}

func TestCFGBreakCarriesState(t *testing.T) {
	src := cfgPrelude + `
func f(n int) {
	lock()
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
	}
	use()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); !st["held"] {
		t.Fatalf("state lost across a loop containing break: %v", st)
	}
}

func TestCFGEveryBlockReachesInMap(t *testing.T) {
	src := cfgPrelude + `
func f(c bool) {
	if c {
		return
	}
	use()
	return
}`
	g := BuildCFG(parseBody(t, src, "f"))
	ins := g.ForwardMust(Set{}, lockTransfer)
	for _, bl := range g.Blocks {
		if ins[bl] == nil {
			t.Fatalf("block %d has nil in-state", bl.Index)
		}
	}
}

func TestCFGNilBodyTrivial(t *testing.T) {
	g := BuildCFG(nil)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("nil body must still yield entry and exit")
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should fall through to exit, got %d succs", len(g.Entry.Succs))
	}
}

func TestCFGSelectClauses(t *testing.T) {
	src := cfgPrelude + `
func f(a, b chan int) {
	lock()
	select {
	case <-a:
		work()
	case <-b:
		unlock()
	}
	use()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	if st := stateAtCall(t, g, "use"); st["held"] {
		t.Fatalf("one select arm unlocked; join must drop held: %v", st)
	}
}

func TestCFGBlocksCoverAllStatements(t *testing.T) {
	src := cfgPrelude + `
func f(n int) {
	lock()
	for i := 0; i < n; i++ {
		work()
	}
	switch n {
	case 1:
		use()
	}
	unlock()
}`
	g := BuildCFG(parseBody(t, src, "f"))
	var got []string
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						got = append(got, id.Name)
					}
				}
				return true
			})
		}
	}
	joined := strings.Join(got, ",")
	for _, want := range []string{"lock", "work", "use", "unlock"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("call %s missing from CFG nodes (got %s)", want, joined)
		}
	}
}
