// Package analysis is the repository's static-analysis framework: a
// stdlib-only analyzer harness (go/parser + go/types + the source
// importer — deliberately no golang.org/x/tools, matching the module's
// zero-dependency stance) that cmd/drevallint drives over the tree.
//
// The framework exists because the repo's core guarantees — bit-identical
// results at every worker count, seeded RNG streams, ctx-aware hot
// paths, well-formed telemetry — are invariants of the *source*, not
// just of the current test suite. A stray map-range feeding a float
// accumulator or a global math/rand call silently re-introduces the
// evaluation biases the paper warns about; the analyzers in
// internal/analysis/checks turn each of those invariants into a
// mechanical, position-accurate diagnostic.
//
// Findings are suppressed line-by-line with
//
//	//lint:allow <check> <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory: an unexplained suppression is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects the package held by the
// Pass and reports findings through pass.Report; it must tolerate
// partial type information (nil objects, missing map entries), because
// the loader degrades to best-effort info when a package has type
// errors.
type Analyzer struct {
	// Name identifies the check in diagnostics and in
	// //lint:allow comments. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the analysis.
	Run func(*Pass)
}

// Pass carries one loaded package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// Pkg is the type-checked package; may be incomplete when the
	// package had type errors.
	Pkg *types.Package
	// Info holds use/def/type facts for the files. All maps are
	// non-nil, but entries may be missing under type errors.
	Info *types.Info
	// Path is the package's import path (e.g. drnet/internal/core).
	Path string
	// Facts is the package's shared fact store: analyzers attach
	// interprocedural findings to types.Objects here and may read
	// facts published by analyzers that ran earlier in the suite.
	Facts *Facts

	diags *[]Diagnostic
	cache *passCache
}

// passCache holds per-package structures shared by every analyzer in
// the run, built lazily: the call graph and one CFG per function body.
type passCache struct {
	cg   *CallGraph
	cfgs map[*ast.BlockStmt]*CFG
}

// CallGraph returns the package's call graph, building it on first
// use and sharing it across analyzers.
func (p *Pass) CallGraph() *CallGraph {
	if p.cache.cg == nil {
		p.cache.cg = BuildCallGraph(p.Files, p.Info)
	}
	return p.cache.cg
}

// FuncCFG returns the CFG of a function (or function literal) body,
// building and caching it on first use.
func (p *Pass) FuncCFG(body *ast.BlockStmt) *CFG {
	if g, ok := p.cache.cfgs[body]; ok {
		return g
	}
	g := BuildCFG(body)
	p.cache.cfgs[body] = g
	return g
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, suppression already NOT applied (the
// runner filters suppressed findings before returning them).
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// fill populates the flattened position fields used for JSON output.
func (d *Diagnostic) fill() {
	d.File = d.Pos.Filename
	d.Line = d.Pos.Line
	d.Col = d.Pos.Column
}

// String renders the conventional file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Run applies every analyzer to every package, filters findings
// through the packages' //lint:allow comments, and returns the
// surviving diagnostics in deterministic (file, line, col, check)
// order. Malformed suppression comments are reported under the "lint"
// check and cannot themselves be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, supDiags := collectSuppressions(pkg)
		diags = append(diags, supDiags...)
		var raw []Diagnostic
		facts := NewFacts()
		cache := &passCache{cfgs: map[*ast.BlockStmt]*CFG{}}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Facts:    facts,
				diags:    &raw,
				cache:    cache,
			}
			a.Run(pass)
		}
		for _, d := range raw {
			if !sup.allows(d) {
				diags = append(diags, d)
			}
		}
	}
	for i := range diags {
		diags[i].fill()
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	return diags
}

// WalkStack traverses root in ast.Inspect order, passing each node the
// stack of its ancestors (outermost first, root's parent excluded).
// Returning false skips the node's children. Analyzers use it where a
// finding depends on context — e.g. "is this call inside a defer".
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
