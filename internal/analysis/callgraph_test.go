package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// loadSynthetic typechecks one synthetic file and returns what
// BuildCallGraph needs.
func loadSynthetic(t *testing.T, src string) ([]*ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return []*ast.File{f}, info, pkg
}

// funcByName finds a declared function or method object by name.
func funcByName(t *testing.T, info *types.Info, name string) *types.Func {
	t.Helper()
	for _, obj := range info.Defs {
		if fn, ok := obj.(*types.Func); ok && fn != nil && fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

const cgSrc = `package p

type T struct{}

func (t *T) m() { helper() }

func helper() {}

func caller() {
	t := &T{}
	t.m()
	for i := 0; i < 3; i++ {
		helper()
	}
	f := t.m
	f()
}
`

func TestCallGraphEdges(t *testing.T) {
	files, info, _ := loadSynthetic(t, cgSrc)
	g := BuildCallGraph(files, info)

	if got := len(g.Decls()); got != 3 {
		t.Fatalf("Decls() = %d, want 3 (m, helper, caller)", got)
	}

	helper := funcByName(t, info, "helper")
	hi := g.Lookup(helper)
	if hi == nil {
		t.Fatal("helper not in graph")
	}
	if len(hi.In) != 2 {
		t.Fatalf("helper has %d in-edges, want 2 (from m and caller)", len(hi.In))
	}

	caller := funcByName(t, info, "caller")
	ci := g.Lookup(caller)
	if ci == nil {
		t.Fatal("caller not in graph")
	}
	// t.m() call, helper() in loop, t.m method value: 3 edges.
	if len(ci.Out) != 3 {
		t.Fatalf("caller has %d out-edges, want 3: %+v", len(ci.Out), ci.Out)
	}
}

func TestCallGraphInLoopFlag(t *testing.T) {
	files, info, _ := loadSynthetic(t, cgSrc)
	g := BuildCallGraph(files, info)
	helper := funcByName(t, info, "helper")

	var fromM, fromCaller *Edge
	for i, e := range g.Lookup(helper).In {
		switch e.Caller.Name() {
		case "m":
			fromM = &g.Lookup(helper).In[i]
		case "caller":
			fromCaller = &g.Lookup(helper).In[i]
		}
	}
	if fromM == nil || fromCaller == nil {
		t.Fatalf("missing expected callers of helper")
	}
	if fromM.Site.InLoop {
		t.Error("helper call from m is not in a loop")
	}
	if !fromCaller.Site.InLoop {
		t.Error("helper call from caller sits in a for loop; InLoop must be true")
	}
}

func TestCallGraphMethodValueIsReferenceEdge(t *testing.T) {
	files, info, _ := loadSynthetic(t, cgSrc)
	g := BuildCallGraph(files, info)
	m := funcByName(t, info, "m")

	mi := g.Lookup(m)
	if mi == nil {
		t.Fatal("m not in graph")
	}
	var calls, refs int
	for _, e := range mi.In {
		if e.Site.Call != nil {
			calls++
		} else {
			refs++
		}
	}
	if calls != 1 || refs != 1 {
		t.Fatalf("m in-edges: %d calls, %d references; want 1 and 1 (t.m() and f := t.m)", calls, refs)
	}
}

func TestCallGraphCallersOfDeterministic(t *testing.T) {
	files, info, _ := loadSynthetic(t, cgSrc)
	g := BuildCallGraph(files, info)
	helper := funcByName(t, info, "helper")

	first := g.CallersOf(helper)
	for i := 0; i < 5; i++ {
		again := g.CallersOf(helper)
		if len(again) != len(first) {
			t.Fatalf("CallersOf length changed: %d vs %d", len(again), len(first))
		}
		for j := range again {
			if again[j].Caller != first[j].Caller || again[j].Site.Ref.Pos() != first[j].Site.Ref.Pos() {
				t.Fatalf("CallersOf order unstable at %d", j)
			}
		}
	}
	// Source order: m's call precedes caller's loop call.
	if first[0].Caller.Name() != "m" || first[1].Caller.Name() != "caller" {
		t.Fatalf("CallersOf not in source order: %s, %s", first[0].Caller.Name(), first[1].Caller.Name())
	}
}

func TestCallGraphCrossPackageCalleeKept(t *testing.T) {
	src := `package p

import "strings"

func f() string { return strings.ToUpper("x") }
`
	files, info, _ := loadSynthetic(t, src)
	g := BuildCallGraph(files, info)
	f := funcByName(t, info, "f")
	fi := g.Lookup(f)
	if fi == nil || len(fi.Out) != 1 {
		t.Fatalf("f should have exactly one out-edge to strings.ToUpper")
	}
	callee := fi.Out[0].Callee
	if callee.Pkg() == nil || callee.Pkg().Path() != "strings" {
		t.Fatalf("callee = %v, want strings.ToUpper", callee)
	}
	if ci := g.Lookup(callee); ci == nil || ci.Decl != nil {
		t.Fatalf("cross-package callee must be present with nil Decl")
	}
}
