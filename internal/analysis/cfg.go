package analysis

// Control-flow graphs for the dataflow analyzers (lockguard, hotalloc,
// seedflow). BuildCFG lowers one function body into basic blocks with
// successor edges, precise enough for the path-sensitive questions the
// repo's invariants ask ("is the mutex held on every path reaching
// this access?") while staying stdlib-only. Nested function literals
// are NOT inlined: each FuncLit body is its own analysis unit, because
// a closure may run on another goroutine where the enclosing frame's
// lock state means nothing.
//
// Soundness caveats (documented in DESIGN.md): goto transfers are
// modeled as function exits, panics are not modeled as edges, and a
// deferred call is recorded (CFG.Defers) but executes only at exit —
// a `defer mu.Unlock()` therefore keeps the mutex held for the rest of
// the body, which is exactly the repo's locking idiom.

import (
	"go/ast"
)

// Block is one basic block: a maximal straight-line sequence of
// statements and control expressions, executed in order, ending in a
// branch to the successor blocks.
type Block struct {
	Index int
	// Nodes holds the block's statements plus the control expressions
	// (if/for conditions, switch tags) evaluated in it, in execution
	// order. Nodes never contains the *bodies* of nested FuncLits.
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // synthetic: every return and normal fall-off leads here
	Blocks []*Block
	// Defers lists the defer statements encountered anywhere in the
	// body, in source order. Their calls run at Exit, last-in-first-out.
	Defers []*ast.DeferStmt
}

// cfgBuilder carries the state of one lowering.
type cfgBuilder struct {
	g *CFG
	// cur is the block new statements append to; nil after a terminator
	// (return, break) until the next join point.
	cur *Block
	// break/continue targets, innermost last, with optional labels.
	breaks    []branchTarget
	continues []branchTarget
}

type branchTarget struct {
	label string
	block *Block
}

// BuildCFG lowers body (a function or function-literal body) into a
// CFG. A nil body yields a trivial entry→exit graph.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edgeTo(b.g.Exit)
	return b.g
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

// edgeTo links the current block to next (if the current path is
// live) and makes next current.
func (b *cfgBuilder) edgeTo(next *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, next)
	}
	b.cur = next
}

// add appends a node to the current block, resurrecting an unreachable
// block if a terminator just ran (the node is dead code, but analyzers
// still want to see it).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the pending label when the
// statement is the body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock()
		// then branch
		thenB := b.newBlock()
		cond.Succs = append(cond.Succs, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edgeTo(join)
		// else branch (or fallthrough to join)
		if s.Else != nil {
			elseB := b.newBlock()
			cond.Succs = append(cond.Succs, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			b.edgeTo(join)
		} else {
			cond.Succs = append(cond.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		exit := b.newBlock()
		b.edgeTo(head)
		if s.Cond != nil {
			b.add(s.Cond)
			head.Succs = append(head.Succs, exit) // cond false
		}
		// An infinite `for {}` still gets the exit edge from breaks.
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.cur = body
		b.pushLoop(label, exit, head)
		b.stmtList(s.Body.List)
		b.popLoop()
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		b.edgeTo(head)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		exit := b.newBlock()
		b.add(s.X)
		b.edgeTo(head)
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		head.Succs = append(head.Succs, exit) // range exhausted
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.cur = body
		b.pushLoop(label, exit, head)
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edgeTo(head)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		// Each comm clause is an alternative; select with no default
		// blocks, but every analyzed path goes through some clause.
		b.switchClauses(s.Body.List, label, nil)

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok.String() {
		case "break":
			if t := findTarget(b.breaks, name); t != nil {
				b.edgeTo(t)
			} else {
				b.edgeTo(b.g.Exit)
			}
		case "continue":
			if t := findTarget(b.continues, name); t != nil {
				b.edgeTo(t)
			} else {
				b.edgeTo(b.g.Exit)
			}
		case "goto":
			// Modeled as leaving the function: no held-state claims
			// survive a goto (soundness caveat, gotos are banned by
			// convention in this repo anyway).
			b.edgeTo(b.g.Exit)
		case "fallthrough":
			// Handled structurally in switchClauses; nothing here.
			return
		}
		b.cur = nil

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)

	default:
		// Assignments, expression statements, go statements, decls,
		// send statements, inc/dec: straight-line.
		b.add(s)
	}
}

// switchClauses lowers the case list of a switch / type switch /
// select. Each clause body branches from the dispatch block to a
// shared join; fallthrough chains a clause into the next one.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, _ *Block) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	join := b.newBlock()
	b.pushSwitch(label, join)
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	var bodyStmts [][]ast.Stmt
	for i, c := range clauses {
		bl := b.newBlock()
		bodies[i] = bl
		dispatch.Succs = append(dispatch.Succs, bl)
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				bl.Nodes = append(bl.Nodes, e)
			}
			bodyStmts = append(bodyStmts, c.Body)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				bl.Nodes = append(bl.Nodes, c.Comm)
			}
			bodyStmts = append(bodyStmts, c.Body)
		default:
			bodyStmts = append(bodyStmts, nil)
		}
	}
	for i, stmts := range bodyStmts {
		b.cur = bodies[i]
		ft := false
		for _, s := range stmts {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ft = true
				continue
			}
			b.stmt(s, "")
		}
		if ft && i+1 < len(bodies) {
			b.edgeTo(bodies[i+1])
		} else {
			b.edgeTo(join)
		}
	}
	if !hasDefault {
		// No matching case: control skips the switch entirely.
		dispatch.Succs = append(dispatch.Succs, join)
	}
	b.popSwitch()
	b.cur = join
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushSwitch(label string, brk *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
}

func (b *cfgBuilder) popSwitch() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// findTarget resolves a break/continue target: unlabeled takes the
// innermost, labeled the innermost with that label.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// Set is the dataflow state the framework's fixpoint driver operates
// on: a set of opaque string keys (lockguard uses "root.mutex" keys).
type Set map[string]bool

// Clone copies a Set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// intersect returns a ∩ b.
func intersect(a, b Set) Set {
	out := Set{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equalSets(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// ForwardMust runs a forward "must" dataflow to fixpoint: the state
// reaching a block is the intersection of the states leaving its seen
// predecessors (so a fact holds at a point only if it holds on every
// path there), entry starts at init, and transfer folds a block's
// nodes left to right. It returns the fixpoint in-state of every
// block. transfer must be pure with respect to the graph (it may
// mutate and return its argument).
func (g *CFG) ForwardMust(init Set, transfer func(state Set, n ast.Node) Set) map[*Block]Set {
	in := map[*Block]Set{g.Entry: init.Clone()}
	out := map[*Block]Set{}
	// Worklist seeded in index order for determinism.
	work := make([]*Block, 0, len(g.Blocks))
	work = append(work, g.Entry)
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		bl := work[0]
		work = work[1:]
		queued[bl] = false
		st := in[bl].Clone()
		for _, n := range bl.Nodes {
			st = transfer(st, n)
		}
		prev, seen := out[bl]
		if seen && equalSets(prev, st) {
			continue
		}
		out[bl] = st
		for _, succ := range bl.Succs {
			next, ok := in[succ]
			if !ok {
				next = st.Clone()
			} else {
				next = intersect(next, st)
			}
			if cur, ok := in[succ]; !ok || !equalSets(cur, next) {
				in[succ] = next
				if !queued[succ] {
					queued[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	// Blocks never reached keep a nil in-state; give them an empty set
	// so clients can visit dead code without nil checks.
	for _, bl := range g.Blocks {
		if in[bl] == nil {
			in[bl] = Set{}
		}
	}
	return in
}
