package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked
// package. When Errs is non-empty the package is degraded: files that
// failed to parse are absent from Files, and Info/Types may be
// incomplete — but whatever parsed is still analyzable, so a single
// broken file never hides findings in the rest of the tree.
type Package struct {
	// Path is the import path (drnet/internal/core) or, for fixture
	// loads, the synthetic path supplied by the caller.
	Path string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Errs holds parse and type errors encountered while loading.
	Errs []error
}

// Loader discovers, parses and type-checks packages of the enclosing
// module using only the standard library: module-local imports are
// resolved by directory, everything else through the go/importer
// source importer (which reads GOROOT/src). Loaded packages are cached
// by import path, so shared dependencies type-check once.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	cache      map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	// loading guards against import cycles: a package seen while its
	// own load is still in progress resolves to an error, not a hang.
	loading bool
}

// NewLoader locates the module containing dir (walking up to the
// nearest go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*loadResult{},
	}, nil
}

// Fset returns the loader's shared file set; all positions in loaded
// packages resolve through it.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the enclosing module's path (e.g. "drnet").
func (l *Loader) ModulePath() string { return l.modulePath }

// ModuleRoot returns the absolute directory containing go.mod; SARIF
// and baseline fingerprints are rooted here so they stay stable across
// checkouts.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// Load expands the given patterns — "./...", "./dir/...", "./dir", or
// plain import paths within the module — and returns the matched
// packages sorted by import path. Directories without buildable
// non-test Go files are skipped silently, matching `go list ./...`.
// Per-package parse/type errors land in Package.Errs, not in err; err
// is reserved for unusable patterns.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			l.walkDirs(l.moduleRoot, dirs)
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			l.walkDirs(filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(base, "./"))), dirs)
		default:
			p := pat
			if rest, ok := strings.CutPrefix(p, l.modulePath+"/"); ok {
				p = "./" + rest
			}
			dir := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(p, "./")))
			st, err := os.Stat(dir)
			if err != nil || !st.IsDir() {
				return nil, fmt.Errorf("analysis: pattern %q matches no directory", pat)
			}
			dirs[dir] = true
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		if !l.hasGoFiles(dir) {
			continue
		}
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil {
			continue
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkgs = append(pkgs, l.loadPath(path, dir))
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads one directory as a package under the supplied import
// path, bypassing module layout — the fixture harness uses it to give
// testdata packages the package path an analyzer's scoping rules
// expect (e.g. a fixture analyzed "as if" it were drnet/internal/core).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if !l.hasGoFiles(abs) {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	return l.loadPath(asPath, abs), nil
}

// walkDirs collects candidate package directories under root, skipping
// the trees `go list` would skip: testdata, vendor, VCS metadata, and
// any name starting with "." or "_".
func (l *Loader) walkDirs(root string, out map[string]bool) {
	filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		out[path] = true
		return nil
	})
}

func (l *Loader) hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// loadPath parses and type-checks the package in dir, caching by
// import path. It never returns nil: failures degrade to a Package
// whose Errs explain what is missing.
func (l *Loader) loadPath(path, dir string) *Package {
	if r, ok := l.cache[path]; ok {
		if r.loading {
			p := &Package{Path: path, Dir: dir, Fset: l.fset, Info: newInfo()}
			p.Errs = append(p.Errs, fmt.Errorf("analysis: import cycle through %s", path))
			return p
		}
		return r.pkg
	}
	res := &loadResult{loading: true}
	l.cache[path] = res

	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Info: newInfo()}
	ents, err := os.ReadDir(dir)
	if err != nil {
		pkg.Errs = append(pkg.Errs, err)
		res.pkg, res.loading = pkg, false
		return pkg
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.Errs = append(pkg.Errs, err)
			if f == nil {
				continue
			}
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		pkg.Errs = append(pkg.Errs, fmt.Errorf("analysis: no parseable Go files in %s", dir))
		res.pkg, res.loading = pkg, false
		return pkg
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.Errs = append(pkg.Errs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.Errs) == 0 {
		pkg.Errs = append(pkg.Errs, err)
	}
	pkg.Types = tpkg
	res.pkg, res.loading = pkg, false
	return pkg
}

// loaderImporter resolves imports during type checking: module-local
// paths recurse through the loader, everything else (the standard
// library) goes to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		pkg := l.loadPath(path, dir)
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: could not load %s: %v", path, pkg.Errs)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
