package lintmain_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"drnet/internal/analysis/lintmain"
)

// Explicit patterns resolve against the module root, so the fixture
// dirs are named by their full repo-relative path.
const (
	cleanPat    = "./internal/analysis/lintmain/testdata/clean"
	findingsPat = "./internal/analysis/lintmain/testdata/findings"
	brokenPat   = "./internal/analysis/lintmain/testdata/broken"
)

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = lintmain.Run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestExitCleanOnCleanPackage(t *testing.T) {
	code, stdout, stderr := run(t, cleanPat)
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitClean, stdout, stderr)
	}
	if !strings.Contains(stdout, "packages clean") {
		t.Errorf("stdout should report a clean run, got: %s", stdout)
	}
}

func TestExitFindingsOnViolation(t *testing.T) {
	code, stdout, stderr := run(t, findingsPat)
	if code != lintmain.ExitFindings {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitFindings, stdout, stderr)
	}
	if !strings.Contains(stdout, "gosafety") {
		t.Errorf("the mutex copy should surface as a gosafety finding, got: %s", stdout)
	}
	if !strings.Contains(stderr, "1 findings, 0 load errors") {
		t.Errorf("stderr summary missing, got: %s", stderr)
	}
}

func TestExitLoadErrorOnBrokenPackage(t *testing.T) {
	code, _, stderr := run(t, brokenPat)
	if code != lintmain.ExitLoadError {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lintmain.ExitLoadError, stderr)
	}
	if !strings.Contains(stderr, "load") {
		t.Errorf("stderr should carry the load error, got: %s", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := run(t, "-json", findingsPat)
	if code != lintmain.ExitFindings {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitFindings)
	}
	var got struct {
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		} `json:"findings"`
		LoadErrors []json.RawMessage `json:"loadErrors"`
		Exit       int               `json:"exit"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if got.Exit != lintmain.ExitFindings {
		t.Errorf("json exit = %d, want %d", got.Exit, lintmain.ExitFindings)
	}
	if len(got.Findings) == 0 {
		t.Fatal("json findings empty; want the gosafety diagnostic")
	}
	f := got.Findings[0]
	if f.Check != "gosafety" || f.Line == 0 || !strings.HasSuffix(f.File, "bad.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
	if got.LoadErrors == nil {
		t.Error("loadErrors must serialize as [] rather than null")
	}
}

func TestJSONCleanRun(t *testing.T) {
	code, stdout, _ := run(t, "-json", cleanPat)
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitClean)
	}
	var got struct {
		Findings []json.RawMessage `json:"findings"`
		Exit     int               `json:"exit"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if got.Findings == nil {
		t.Error("findings must serialize as [] rather than null")
	}
	if got.Exit != lintmain.ExitClean {
		t.Errorf("json exit = %d, want 0", got.Exit)
	}
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	code, stdout, _ := run(t, "-list")
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"nondet", "floathygiene", "ctxdiscipline", "obshygiene", "gosafety"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownCheckIsLoadError(t *testing.T) {
	code, _, stderr := run(t, "-checks", "nosuchcheck", cleanPat)
	if code != lintmain.ExitLoadError {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitLoadError)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr should name the unknown check, got: %s", stderr)
	}
}

func TestChecksSubsetSkipsOtherAnalyzers(t *testing.T) {
	// With only nondet selected, the gosafety violation in the findings
	// fixture must not be reported.
	code, stdout, stderr := run(t, "-checks", "nondet", findingsPat)
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitClean, stdout, stderr)
	}
}

func TestSARIFOutput(t *testing.T) {
	code, stdout, _ := run(t, "-sarif", findingsPat)
	if code != lintmain.ExitFindings {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitFindings)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("stdout is not valid SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "drevallint" {
		t.Fatalf("unexpected SARIF header: %s", stdout)
	}
	results := log.Runs[0].Results
	if len(results) != 1 || results[0].RuleID != "gosafety" {
		t.Fatalf("results = %+v, want the one gosafety finding", results)
	}
	uri := results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "internal/analysis/lintmain/testdata/findings/bad.go" {
		t.Errorf("uri = %q, want module-root-relative slashed path", uri)
	}
}

func TestSARIFJSONMutuallyExclusive(t *testing.T) {
	code, _, stderr := run(t, "-json", "-sarif", cleanPat)
	if code != lintmain.ExitLoadError {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitLoadError)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("stderr should explain the conflict, got: %s", stderr)
	}
}

// TestBaselineFlagRoundTrip drives the CLI adoption flow end to end:
// freeze the findings fixture's diagnostics, then re-lint against the
// frozen file — the run must exit clean because every finding is
// pre-existing debt, not a regression.
func TestBaselineFlagRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	code, stdout, stderr := run(t, "-write-baseline", path, findingsPat)
	if code != lintmain.ExitClean {
		t.Fatalf("write-baseline exit = %d, want %d\nstderr: %s", code, lintmain.ExitClean, stderr)
	}
	if !strings.Contains(stdout, "wrote 1 findings") {
		t.Errorf("stdout should report the frozen count, got: %s", stdout)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}

	code, stdout, stderr = run(t, "-baseline", path, findingsPat)
	if code != lintmain.ExitClean {
		t.Fatalf("baseline-filtered exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitClean, stdout, stderr)
	}

	// Without the baseline the same fixture still fails — the filter is
	// opt-in per run, not sticky state.
	code, _, _ = run(t, findingsPat)
	if code != lintmain.ExitFindings {
		t.Fatalf("unfiltered exit = %d, want %d", code, lintmain.ExitFindings)
	}
}

func TestBaselineMissingFileIsLoadError(t *testing.T) {
	code, _, stderr := run(t, "-baseline", filepath.Join(t.TempDir(), "nope.json"), cleanPat)
	if code != lintmain.ExitLoadError {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lintmain.ExitLoadError, stderr)
	}
}

// TestDeliberateViolationFixtures pins the CI failure legs: each new
// analyzer must fail its seeded-violation package, so a regression
// that silences a check cannot pass as "clean".
func TestDeliberateViolationFixtures(t *testing.T) {
	cases := []struct {
		check, pat, wantMsg string
	}{
		{"lockguard", "./internal/analysis/lintmain/testdata/lockguardbad", "guarded by mu but accessed without holding it"},
		{"hotalloc", "./internal/analysis/lintmain/testdata/hotallocbad", "allocates in hot path"},
		{"seedflow", "./internal/analysis/lintmain/testdata/seedflowbad", "traces to a constant on every path"},
	}
	for _, tc := range cases {
		t.Run(tc.check, func(t *testing.T) {
			code, stdout, stderr := run(t, "-checks", tc.check, tc.pat)
			if code != lintmain.ExitFindings {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitFindings, stdout, stderr)
			}
			if !strings.Contains(stdout, tc.wantMsg) {
				t.Errorf("stdout missing %q:\n%s", tc.wantMsg, stdout)
			}
		})
	}
}
