package lintmain_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"drnet/internal/analysis/lintmain"
)

// Explicit patterns resolve against the module root, so the fixture
// dirs are named by their full repo-relative path.
const (
	cleanPat    = "./internal/analysis/lintmain/testdata/clean"
	findingsPat = "./internal/analysis/lintmain/testdata/findings"
	brokenPat   = "./internal/analysis/lintmain/testdata/broken"
)

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = lintmain.Run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestExitCleanOnCleanPackage(t *testing.T) {
	code, stdout, stderr := run(t, cleanPat)
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitClean, stdout, stderr)
	}
	if !strings.Contains(stdout, "packages clean") {
		t.Errorf("stdout should report a clean run, got: %s", stdout)
	}
}

func TestExitFindingsOnViolation(t *testing.T) {
	code, stdout, stderr := run(t, findingsPat)
	if code != lintmain.ExitFindings {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitFindings, stdout, stderr)
	}
	if !strings.Contains(stdout, "gosafety") {
		t.Errorf("the mutex copy should surface as a gosafety finding, got: %s", stdout)
	}
	if !strings.Contains(stderr, "1 findings, 0 load errors") {
		t.Errorf("stderr summary missing, got: %s", stderr)
	}
}

func TestExitLoadErrorOnBrokenPackage(t *testing.T) {
	code, _, stderr := run(t, brokenPat)
	if code != lintmain.ExitLoadError {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, lintmain.ExitLoadError, stderr)
	}
	if !strings.Contains(stderr, "load") {
		t.Errorf("stderr should carry the load error, got: %s", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := run(t, "-json", findingsPat)
	if code != lintmain.ExitFindings {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitFindings)
	}
	var got struct {
		Findings []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		} `json:"findings"`
		LoadErrors []json.RawMessage `json:"loadErrors"`
		Exit       int               `json:"exit"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if got.Exit != lintmain.ExitFindings {
		t.Errorf("json exit = %d, want %d", got.Exit, lintmain.ExitFindings)
	}
	if len(got.Findings) == 0 {
		t.Fatal("json findings empty; want the gosafety diagnostic")
	}
	f := got.Findings[0]
	if f.Check != "gosafety" || f.Line == 0 || !strings.HasSuffix(f.File, "bad.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
	if got.LoadErrors == nil {
		t.Error("loadErrors must serialize as [] rather than null")
	}
}

func TestJSONCleanRun(t *testing.T) {
	code, stdout, _ := run(t, "-json", cleanPat)
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitClean)
	}
	var got struct {
		Findings []json.RawMessage `json:"findings"`
		Exit     int               `json:"exit"`
	}
	if err := json.Unmarshal([]byte(stdout), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if got.Findings == nil {
		t.Error("findings must serialize as [] rather than null")
	}
	if got.Exit != lintmain.ExitClean {
		t.Errorf("json exit = %d, want 0", got.Exit)
	}
}

func TestListPrintsAllAnalyzers(t *testing.T) {
	code, stdout, _ := run(t, "-list")
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"nondet", "floathygiene", "ctxdiscipline", "obshygiene", "gosafety"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing analyzer %q:\n%s", name, stdout)
		}
	}
}

func TestUnknownCheckIsLoadError(t *testing.T) {
	code, _, stderr := run(t, "-checks", "nosuchcheck", cleanPat)
	if code != lintmain.ExitLoadError {
		t.Fatalf("exit = %d, want %d", code, lintmain.ExitLoadError)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr should name the unknown check, got: %s", stderr)
	}
}

func TestChecksSubsetSkipsOtherAnalyzers(t *testing.T) {
	// With only nondet selected, the gosafety violation in the findings
	// fixture must not be reported.
	code, stdout, stderr := run(t, "-checks", "nondet", findingsPat)
	if code != lintmain.ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, lintmain.ExitClean, stdout, stderr)
	}
}
