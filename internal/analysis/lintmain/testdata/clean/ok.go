// A package with nothing to report: the exit-code contract's 0 case.
package clean

// OK returns a constant.
func OK() int { return 1 }
