// A package with one deliberate gosafety violation (a mutex-bearing
// struct copied by value): the exit-code contract's 1 case.
package findings

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// Fork copies g, forking the lock from the state it guards.
func Fork(g *guarded) int {
	snapshot := *g
	return snapshot.n
}
