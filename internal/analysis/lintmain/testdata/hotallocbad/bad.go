// Package hotallocbad is a deliberate hotalloc violation, kept for the
// CI leg that proves the analyzer still fails a build: a per-record
// hot function that allocates on every call.
package hotallocbad

// Sum is marked as running once per record but makes a fresh slice
// every call.
//
//lint:hot perrecord
func Sum(xs []float64) float64 {
	buf := make([]float64, 0, len(xs))
	buf = append(buf, xs...)
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}
