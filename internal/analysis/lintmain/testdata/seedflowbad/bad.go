// Package seedflowbad is a deliberate seedflow violation, kept for the
// CI leg that proves the analyzer still fails a build: an RNG seeded
// with a bare constant, so every run draws the same stream.
package seedflowbad

import "drnet/internal/mathx"

// Draw builds a constant-seeded generator.
func Draw() float64 {
	rng := mathx.NewRNG(42)
	return rng.Float64()
}
