// A package that fails to parse: the exit-code contract's 2 case.
package broken

func unfinished( {
