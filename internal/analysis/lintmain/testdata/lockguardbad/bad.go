// Package lockguardbad is a deliberate lockguard violation, kept for
// the CI leg that proves the analyzer still fails a build: a guarded
// field is read without holding its mutex.
package lockguardbad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Peek reads n without taking mu — the exact bug the annotation exists
// to catch.
func (c *counter) Peek() int {
	return c.n
}
