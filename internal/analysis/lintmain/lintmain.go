// Package lintmain is the drevallint driver, split out of cmd so the
// exit-code contract is testable in-process: 0 clean, 1 findings,
// 2 load error (a package that would not parse or type-check — the
// tree was analyzed best-effort, but the run cannot vouch for it).
package lintmain

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/scanner"
	"go/types"
	"io"
	"os"
	"strings"

	"drnet/internal/analysis"
	"drnet/internal/analysis/checks"
)

// Exit codes of the drevallint CLI.
const (
	ExitClean     = 0
	ExitFindings  = 1
	ExitLoadError = 2
)

// Run executes drevallint with the given arguments, writing findings
// to stdout and load errors/usage to stderr, and returns the exit code.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drevallint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON (findings + load errors + exit code)")
	sarifOut := fs.Bool("sarif", false, "emit SARIF 2.1.0 to stdout (for code-scanning upload)")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	dir := fs.String("dir", ".", "directory inside the module to resolve patterns from")
	baselinePath := fs.String("baseline", "", "baseline file: frozen findings are filtered out, only regressions remain")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit clean")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: drevallint [flags] [patterns]\n\nAnalyzes the module's packages (default pattern ./...) with the repo's\ninvariant checks. Suppress a finding with //lint:allow <check> <reason>\non or directly above the flagged line.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitLoadError
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "drevallint: -json and -sarif are mutually exclusive\n")
		return ExitLoadError
	}

	all := checks.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	selected := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "drevallint: unknown check %q (try -list)\n", name)
				return ExitLoadError
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "drevallint: %v\n", err)
		return ExitLoadError
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "drevallint: %v\n", err)
		return ExitLoadError
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "drevallint: no packages matched %v\n", patterns)
		return ExitLoadError
	}

	var loadErrs []analysis.Diagnostic
	for _, p := range pkgs {
		for _, e := range p.Errs {
			loadErrs = append(loadErrs, errDiags(e)...)
		}
	}
	findings := analysis.Run(pkgs, selected)
	root := loader.ModuleRoot()

	if *writeBaseline != "" {
		data, err := analysis.WriteBaseline(findings, root)
		if err != nil {
			fmt.Fprintf(stderr, "drevallint: %v\n", err)
			return ExitLoadError
		}
		if err := os.WriteFile(*writeBaseline, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "drevallint: %v\n", err)
			return ExitLoadError
		}
		fmt.Fprintf(stdout, "drevallint: wrote %d findings to baseline %s\n", len(findings), *writeBaseline)
		if len(loadErrs) > 0 {
			for _, d := range loadErrs {
				fmt.Fprintf(stderr, "%s\n", d)
			}
			return ExitLoadError
		}
		return ExitClean
	}

	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "drevallint: %v\n", err)
			return ExitLoadError
		}
		bl, err := analysis.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(stderr, "drevallint: %v\n", err)
			return ExitLoadError
		}
		findings = bl.Filter(findings, root)
	}

	code := ExitClean
	if len(findings) > 0 {
		code = ExitFindings
	}
	if len(loadErrs) > 0 {
		code = ExitLoadError
	}

	if *sarifOut {
		data, err := analysis.SARIF(findings, selected, root)
		if err != nil {
			fmt.Fprintf(stderr, "drevallint: %v\n", err)
			return ExitLoadError
		}
		if _, err := stdout.Write(data); err != nil {
			return ExitLoadError
		}
		for _, d := range loadErrs {
			fmt.Fprintf(stderr, "%s\n", d)
		}
		return code
	}

	if *jsonOut {
		out := struct {
			Findings   []analysis.Diagnostic `json:"findings"`
			LoadErrors []analysis.Diagnostic `json:"loadErrors"`
			Exit       int                   `json:"exit"`
		}{findings, loadErrs, code}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		if out.LoadErrors == nil {
			out.LoadErrors = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
		return code
	}

	for _, d := range loadErrs {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	for _, d := range findings {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if code == ExitClean {
		fmt.Fprintf(stdout, "drevallint: %d packages clean\n", len(pkgs))
	} else {
		fmt.Fprintf(stderr, "drevallint: %d findings, %d load errors\n", len(findings), len(loadErrs))
	}
	return code
}

// errDiags converts loader errors (scanner error lists, type errors,
// plain errors) into position-bearing diagnostics under the "load"
// check, so JSON consumers see one shape for everything.
func errDiags(err error) []analysis.Diagnostic {
	switch e := err.(type) {
	case scanner.ErrorList:
		out := make([]analysis.Diagnostic, 0, len(e))
		for _, item := range e {
			out = append(out, analysis.Diagnostic{
				File: item.Pos.Filename, Line: item.Pos.Line, Col: item.Pos.Column,
				Check: "load", Message: item.Msg,
			})
		}
		return out
	case *scanner.Error:
		return []analysis.Diagnostic{{
			File: e.Pos.Filename, Line: e.Pos.Line, Col: e.Pos.Column,
			Check: "load", Message: e.Msg,
		}}
	case types.Error:
		pos := e.Fset.Position(e.Pos)
		return []analysis.Diagnostic{{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Check: "load", Message: e.Msg,
		}}
	default:
		return []analysis.Diagnostic{{Check: "load", Message: err.Error()}}
	}
}
