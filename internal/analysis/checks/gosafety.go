package checks

import (
	"go/ast"
	"go/types"
	"strings"

	"drnet/internal/analysis"
)

// GoSafety enforces two goroutine-safety invariants. In cmd/drevald, a
// `go func` launch must open with a panic-recovery defer: the server's
// panic middleware only guards handler goroutines, so a panic in a
// hand-rolled goroutine kills the whole process mid-drain. Everywhere,
// copying a struct that embeds sync/atomic state (by assignment, call
// argument, range value, or value receiver) forks the lock from the
// data it guards.
var GoSafety = &analysis.Analyzer{
	Name: "gosafety",
	Doc: "go func in cmd/drevald without a leading recovery defer; " +
		"copies of structs with sync/atomic fields",
	Run: runGoSafety,
}

func runGoSafety(pass *analysis.Pass) {
	checkGoLaunch := pathHasSuffix(pass.Path, "cmd/drevald")
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkValueReceiver(pass, fd)
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if checkGoLaunch {
						if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && !startsWithRecovery(pass.Info, lit) {
							pass.Reportf(n.Pos(), "go func in cmd/drevald without a leading panic-recovery defer: a panic here bypasses the HTTP recovery middleware and kills the process; start the body with the recovery defer (see recoverGoroutine)")
						}
					}
				case *ast.AssignStmt:
					checkCopyAssign(pass, n)
				case *ast.CallExpr:
					checkCopyArgs(pass, n)
				case *ast.RangeStmt:
					checkCopyRange(pass, n)
				}
				return true
			})
		}
	}
}

// startsWithRecovery reports whether the goroutine body's first
// statement is a defer that recovers — either `defer func() { ...
// recover() ... }()` or a deferred call to a helper whose name says it
// recovers (recoverGoroutine, RecoverPanic, ...).
func startsWithRecovery(info *types.Info, lit *ast.FuncLit) bool {
	if len(lit.Body.List) == 0 {
		return false
	}
	def, ok := lit.Body.List[0].(*ast.DeferStmt)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(def.Call.Fun).(type) {
	case *ast.FuncLit:
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "recover") {
				found = true
			}
			return !found
		})
		return found
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "recover")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fun.Sel.Name), "recover")
	}
	return false
}

func checkValueReceiver(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	t := fd.Recv.List[0].Type
	if _, isPtr := t.(*ast.StarExpr); isPtr {
		return
	}
	tv, ok := pass.Info.Types[t]
	if !ok {
		return
	}
	if name := lockFieldPath(tv.Type); name != "" {
		pass.Reportf(fd.Recv.List[0].Pos(), "value receiver copies %s on every call; the method must use a pointer receiver so the synchronization state stays shared", name)
	}
}

func checkCopyAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i, rhs := range asg.Rhs {
		if !isLiveValue(rhs) {
			continue
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok {
			continue
		}
		if name := lockFieldPath(tv.Type); name != "" {
			pass.Reportf(asg.Rhs[i].Pos(), "assignment copies a struct containing %s: the copy's lock no longer guards the original's data; keep a pointer", name)
		}
	}
}

func checkCopyArgs(pass *analysis.Pass, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			if _, isB := obj.(*types.Builtin); isB {
				return
			}
		}
	}
	for _, arg := range call.Args {
		if !isLiveValue(arg) {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok {
			continue
		}
		if name := lockFieldPath(tv.Type); name != "" {
			pass.Reportf(arg.Pos(), "call passes a struct containing %s by value; pass a pointer so the synchronization state stays shared", name)
		}
	}
}

func checkCopyRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// A `:=` range variable is a definition: its type lives in Defs,
	// not in the expression-type map.
	var t types.Type
	if tv, ok := pass.Info.Types[rng.Value]; ok {
		t = tv.Type
	} else if id, ok := rng.Value.(*ast.Ident); ok {
		if obj := pass.Info.Defs[id]; obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		return
	}
	if name := lockFieldPath(t); name != "" {
		pass.Reportf(rng.Value.Pos(), "range value copies a struct containing %s each iteration; range over indices or a slice of pointers", name)
	}
}

// isLiveValue reports whether expr denotes an existing value whose
// copy would fork shared state: a variable, field, element or deref.
// Fresh values (composite literals, call results, &x) pass.
func isLiveValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return true
	}
	return false
}

// lockFieldPath returns a human-readable path to the first sync/atomic
// component found in t ("sync.Mutex", "obs.Histogram.count"), or ""
// when t carries no synchronization state. Pointers, slices, maps and
// channels are references — copying them is fine — so recursion stops
// there.
func lockFieldPath(t types.Type) string {
	return lockPath(t, map[types.Type]bool{}, 0)
}

func lockPath(t types.Type, seen map[types.Type]bool, depth int) string {
	if t == nil || depth > 10 || seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj != nil && obj.Pkg() != nil {
			// Interface types from sync (sync.Locker) are references;
			// only concrete sync/atomic types pin their address.
			if _, isIface := n.Underlying().(*types.Interface); !isIface {
				switch obj.Pkg().Path() {
				case "sync", "sync/atomic":
					return obj.Pkg().Name() + "." + obj.Name()
				}
			}
		}
		if inner := lockPath(t.Underlying(), seen, depth+1); inner != "" {
			if obj := n.Obj(); obj != nil {
				return obj.Name() + " (via " + inner + ")"
			}
			return inner
		}
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner := lockPath(u.Field(i).Type(), seen, depth+1); inner != "" {
				return inner
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen, depth+1)
	}
	return ""
}
