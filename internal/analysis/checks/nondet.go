package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"drnet/internal/analysis"
)

// nondetScope is where the nondeterminism check applies: the estimator
// core, the experiment drivers, and the scenario/simulator packages —
// everywhere a result that must be bit-identical across runs and
// worker counts is computed.
var nondetScope = []string{
	"internal/core",
	"internal/experiments",
	"internal/abr",
	"internal/cdnsim",
	"internal/netsim",
	"internal/relay",
	"internal/tcp",
	"internal/worldstate",
}

// Nondet flags the two classic ways a deterministic pipeline goes
// quietly nondeterministic: order-sensitive work inside a map-range
// loop (float accumulation, slice appends, output writes — map
// iteration order is randomized per run), and clock or process-global
// randomness (time.Now/time.Since, global math/rand) in packages whose
// outputs the determinism tests pin down.
var Nondet = &analysis.Analyzer{
	Name: "nondet",
	Doc: "map-range loops feeding order-sensitive accumulators, and " +
		"global math/rand / time.Now in deterministic packages",
	Run: runNondet,
}

// randConstructors are the math/rand package-level functions that only
// build generators (seeded explicitly by the caller) rather than
// drawing from the process-global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNondet(pass *analysis.Pass) {
	if !pathHasSuffix(pass.Path, nondetScope...) {
		return
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						checkMapRangeBody(pass, n, stack)
					}
				}
			case *ast.CallExpr:
				checkGlobalRandClock(pass, n)
			}
			return true
		})
	}
}

// checkMapRangeBody reports order-sensitive statements in the body of
// a map-range loop. Writes keyed by the range variable (m2[k] = ...)
// are order-independent and pass; accumulating into one location that
// outlives the loop, appending to an outer slice, or printing do not.
// The canonical fix — collecting keys into a slice that is sorted
// right after the loop — is recognized and passes.
func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	lo, hi := rng.Pos(), rng.End()
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			lhs := ast.Unparen(n.Lhs[0])
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if accumulatesFixedFloat(pass.Info, lhs, lo, hi) {
					pass.Reportf(n.Pos(), "float accumulation into %s inside a map-range loop: iteration order is randomized, so the rounded sum differs across runs; iterate sorted keys or accumulate per-key", exprText(lhs))
				}
			case token.ASSIGN:
				// x = x <op> y is the spelled-out accumulator.
				if bin, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr); ok && isFloatAccumRewrite(pass.Info, lhs, bin) &&
					accumulatesFixedFloat(pass.Info, lhs, lo, hi) {
					pass.Reportf(n.Pos(), "float accumulation into %s inside a map-range loop: iteration order is randomized; iterate sorted keys or accumulate per-key", exprText(lhs))
				}
				// s = append(s, ...) into a slice that outlives the loop
				// bakes the random order into the result.
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if isBuiltin(pass.Info, call, "append") && declaredOutside(pass.Info, lhs, lo, hi) &&
						!sortedAfterLoop(pass.Info, rng, stack, lhs) {
						pass.Reportf(n.Pos(), "append to %s inside a map-range loop bakes randomized iteration order into the slice; collect and sort keys first", exprText(lhs))
					}
				}
			}
		case *ast.CallExpr:
			if isPkgCall(pass.Info, n, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln") {
				pass.Reportf(n.Pos(), "output written inside a map-range loop appears in randomized order; iterate sorted keys")
			}
		}
		return true
	})
}

// accumulatesFixedFloat reports whether lhs is a float-typed location
// rooted outside [lo,hi] that is written on every iteration — i.e. a
// single accumulator, not a per-key map entry. Index expressions whose
// index is itself declared inside the loop (m[k], s[i] with k,i range
// vars) address a different element each iteration and pass.
func accumulatesFixedFloat(info *types.Info, lhs ast.Expr, lo, hi token.Pos) bool {
	tv, ok := info.Types[lhs]
	if !ok || !isFloat(tv.Type) {
		return false
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if !declaredOutside(info, idx.Index, lo, hi) {
			return false // per-iteration element: order-independent
		}
	}
	return declaredOutside(info, lhs, lo, hi)
}

// isFloatAccumRewrite reports whether bin is `lhs <op> y` for an
// arithmetic op — the x = x + y spelling of x += y.
func isFloatAccumRewrite(info *types.Info, lhs ast.Expr, bin *ast.BinaryExpr) bool {
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	l, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == l.Name {
			return true
		}
	}
	return false
}

// sortedAfterLoop reports whether the slice appended to inside the
// map-range loop is sorted by a statement following the loop in its
// enclosing block — the collect-then-sort idiom that restores a
// deterministic order before the slice is consumed.
func sortedAfterLoop(info *types.Info, rng *ast.RangeStmt, stack []ast.Node, slice ast.Expr) bool {
	target := rootIdent(slice)
	if target == nil {
		return false
	}
	var block []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b.List
			break
		}
	}
	past := false
	for _, st := range block {
		if st == ast.Stmt(rng) {
			past = true
			continue
		}
		if !past {
			continue
		}
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			continue
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			continue
		}
		if !strings.Contains(f.Name(), "Sort") && !sortFuncNames[f.Name()] {
			continue
		}
		if id := rootIdent(call.Args[0]); id != nil && id.Name == target.Name {
			return true
		}
	}
	return false
}

// sortFuncNames are the package sort helpers whose names do not
// contain "Sort".
var sortFuncNames = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Stable": true, "Slice": true, "SliceStable": true,
}

// checkGlobalRandClock flags process-global randomness and clock reads.
func checkGlobalRandClock(pass *analysis.Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch f.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			pass.Reportf(call.Pos(), "global math/rand.%s draws from process-wide state and breaks seeded reproducibility; use internal/parallel.ShardedRNG or a locally seeded source", f.Name())
		}
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in a deterministic package makes results run-dependent; thread timestamps in from the caller", f.Name())
		}
	}
}

// isBuiltin reports whether call invokes the named predeclared builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if obj := info.Uses[id]; obj != nil {
		_, ok := obj.(*types.Builtin)
		return ok
	}
	return false
}

// exprText renders a short source-ish form of simple lvalue
// expressions for messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	default:
		return "accumulator"
	}
}
