package checks

import (
	"go/ast"
	"go/token"

	"drnet/internal/analysis"
)

// FloatHygiene flags the float patterns that undermine bit-identical
// evaluation: exact == / != on floating-point values outside
// internal/mathx (where the comparison helpers live), and float
// accumulation into captured variables from inside a goroutine —
// summation order across goroutines is scheduler-dependent, so such
// sums must go through internal/parallel's deterministic reduce.
//
// Comparisons against the exact constant zero are allowed: they are
// well-defined sentinel/guard checks (zero support, division guards),
// not rounding-sensitive equality.
var FloatHygiene = &analysis.Analyzer{
	Name: "floathygiene",
	Doc: "exact float ==/!= outside internal/mathx, and float " +
		"accumulation across goroutine boundaries",
	Run: runFloatHygiene,
}

func runFloatHygiene(pass *analysis.Pass) {
	checkEq := !pathHasSuffix(pass.Path, "internal/mathx")
	// The pool is the one place allowed to move float partials between
	// goroutines: its ordered reduce is what makes that deterministic.
	checkGo := !pathHasSuffix(pass.Path, "internal/parallel")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if checkEq {
					checkFloatCompare(pass, n)
				}
			case *ast.GoStmt:
				if checkGo {
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						checkGoroutineFloatAccum(pass, lit)
					}
				}
			}
			return true
		})
	}
}

func checkFloatCompare(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	xt, xok := pass.Info.Types[bin.X]
	yt, yok := pass.Info.Types[bin.Y]
	if !xok || !yok || (!isFloat(xt.Type) && !isFloat(yt.Type)) {
		return
	}
	// Both sides constant: folded at compile time, exact by
	// construction. Either side exactly zero: a sentinel test.
	if isConst(pass.Info, bin.X) && isConst(pass.Info, bin.Y) {
		return
	}
	if isZeroConst(pass.Info, bin.X) || isZeroConst(pass.Info, bin.Y) {
		return
	}
	if sameIdent(bin.X, bin.Y) {
		pass.Reportf(bin.OpPos, "x %s x on floats is a NaN test; spell it math.IsNaN for readers and vet", bin.Op)
		return
	}
	pass.Reportf(bin.OpPos, "exact float %s comparison outside internal/mathx; rounding makes it order- and optimization-sensitive — use a mathx helper, an epsilon, or lint:allow with why exactness is intended", bin.Op)
}

// sameIdent reports whether both sides are the same plain identifier.
func sameIdent(a, b ast.Expr) bool {
	x, ok1 := ast.Unparen(a).(*ast.Ident)
	y, ok2 := ast.Unparen(b).(*ast.Ident)
	return ok1 && ok2 && x.Name == y.Name
}

// checkGoroutineFloatAccum flags `go func() { ... captured += v ... }`:
// each goroutine's contribution lands in scheduler order, so the
// rounded total differs run to run even with perfect locking.
func checkGoroutineFloatAccum(pass *analysis.Pass, lit *ast.FuncLit) {
	lo, hi := lit.Pos(), lit.End()
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		if len(asg.Lhs) != 1 {
			return true
		}
		lhs := ast.Unparen(asg.Lhs[0])
		tv, ok := pass.Info.Types[lhs]
		if !ok || !isFloat(tv.Type) {
			return true
		}
		if declaredOutside(pass.Info, lhs, lo, hi) {
			pass.Reportf(asg.Pos(), "float accumulated into captured %s inside a goroutine: cross-goroutine summation order is scheduler-dependent; return per-worker partials and reduce them in deterministic order (internal/parallel.MapReduce)", exprText(lhs))
		}
		return true
	})
}
