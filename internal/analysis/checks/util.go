// Package checks holds the six domain analyzers drevallint ships:
// nondet, floathygiene, ctxdiscipline, obshygiene, gosafety and
// fsynchygiene. Each one mechanizes an invariant the repo otherwise
// enforces only through tests and review — see the Doc string on each
// Analyzer for the mapping from check to invariant.
package checks

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"drnet/internal/analysis"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Nondet, FloatHygiene, CtxDiscipline, ObsHygiene, GoSafety, FsyncHygiene, LockGuard, HotAlloc, SeedFlow}
}

// pathHasSuffix reports whether the package path matches one of the
// given module-relative suffixes (e.g. "internal/core"). Matching by
// suffix instead of full path keeps the analyzers correct under both
// the real module path and the synthetic paths fixtures load under.
func pathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// isFloat reports whether t's core type is float32 or float64.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// calleeFunc resolves a call to the *types.Func it invokes (package
// function or method), or nil for builtins, conversions, func-typed
// variables and calls the type checker could not resolve.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

// isPkgCall reports whether call invokes a package-level function of
// the package with import path pkgPath named one of names (all names
// match when names is empty).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// methodRecv returns the receiver's named type for a method call
// expression, dereferencing one pointer level, or nil when call is not
// a resolved method call.
func methodRecv(info *types.Info, call *ast.CallExpr) (*types.Named, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n, sel.Sel.Name
}

// namedFrom reports whether n is the named type name declared in a
// package whose path matches pkgSuffix.
func namedFrom(n *types.Named, pkgSuffix, name string) bool {
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return pathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// declaredOutside reports whether the object behind expr's root
// identifier was declared outside the [lo, hi] node range — i.e. the
// expression refers to state that outlives the loop or closure being
// inspected. Unresolvable expressions conservatively return false.
func declaredOutside(info *types.Info, expr ast.Expr, lo, hi token.Pos) bool {
	id := rootIdent(expr)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// rootIdent unwraps selectors, indexes, derefs and parens down to the
// base identifier, e.g. (*s.buf[i]).n → s.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// constStringArg returns the compile-time string value of call
// argument i, if the type checker resolved one (literal or constant).
func constStringArg(info *types.Info, call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	tv, ok := info.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isZeroConst reports whether expr is a compile-time constant equal to
// exactly zero.
func isZeroConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isConst reports whether expr has a compile-time constant value.
func isConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}
