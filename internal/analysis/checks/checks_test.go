package checks_test

import (
	"testing"

	"drnet/internal/analysis/atest"
	"drnet/internal/analysis/checks"
)

// Each fixture seeds the violations its analyzer exists to catch (plus
// the idioms that must stay clean); atest fails the test if a seeded
// violation goes unflagged or a clean idiom gets flagged.

func TestNondetFixture(t *testing.T) {
	atest.Run(t, "testdata/nondet", "fixture/internal/core", checks.Nondet)
}

func TestFloatHygieneFixture(t *testing.T) {
	atest.Run(t, "testdata/floathygiene", "fixture/floats", checks.FloatHygiene)
}

func TestFloatHygieneExemptInMathx(t *testing.T) {
	// The same fixture loaded as internal/mathx must produce only the
	// goroutine-accumulation findings: the ==/!= rule is scoped out.
	atest.Run(t, "testdata/floathygiene_mathx", "fixture/internal/mathx", checks.FloatHygiene)
}

func TestCtxDisciplineFixture(t *testing.T) {
	atest.Run(t, "testdata/ctxdiscipline", "fixture/internal/core", checks.CtxDiscipline)
}

func TestCtxBackgroundFixture(t *testing.T) {
	atest.Run(t, "testdata/ctxbackground", "fixture/cmd/drevald", checks.CtxDiscipline)
}

func TestObsHygieneFixture(t *testing.T) {
	atest.Run(t, "testdata/obshygiene", "fixture/obshyg", checks.ObsHygiene)
}

func TestFsyncHygieneFixture(t *testing.T) {
	atest.Run(t, "testdata/fsynchygiene", "fixture/io", checks.FsyncHygiene)
}

func TestGoSafetyFixture(t *testing.T) {
	atest.Run(t, "testdata/gosafety", "fixture/cmd/drevald", checks.GoSafety)
}

func TestLockGuardFixture(t *testing.T) {
	atest.Run(t, "testdata/lockguard", "fixture/lockguard", checks.LockGuard)
}

func TestHotAllocFixture(t *testing.T) {
	// Loaded as internal/core so the View/ViewIdx naming seeds apply.
	atest.Run(t, "testdata/hotalloc", "fixture/internal/core", checks.HotAlloc)
}

func TestSeedFlowFixture(t *testing.T) {
	atest.Run(t, "testdata/seedflow", "fixture/seedflow", checks.SeedFlow)
}
