package checks

import (
	"go/ast"
	"go/constant"
	"go/types"

	"drnet/internal/analysis"
)

// FsyncHygiene enforces the durability contract the WAL is built on:
// an fsync or close whose error is thrown away silently converts
// "durable" into "probably durable". A discarded (*os.File).Sync error
// is always a bug — Sync exists only to surface write-back failures.
// A discarded (*os.File).Close error is a bug on write paths, where
// close is the last chance to observe a flush failure; closes of
// read-only files are left alone. Explicitly assigning the error
// (`_ = f.Close()`) is treated as an acknowledged decision, and
// //lint:allow fsynchygiene suppresses the rest.
var FsyncHygiene = &analysis.Analyzer{
	Name: "fsynchygiene",
	Doc: "discarded (*os.File).Sync errors anywhere, and discarded " +
		"(*os.File).Close errors on write paths (files opened for " +
		"writing or demonstrably written to)",
	Run: runFsyncHygiene,
}

func runFsyncHygiene(pass *analysis.Pass) {
	for _, f := range pass.Files {
		written := collectWriteEvidence(pass.Info, f)
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method := methodRecv(pass.Info, call)
			if !isOSFile(recv) || !resultDiscarded(stack) {
				return true
			}
			switch method {
			case "Sync":
				pass.Reportf(call.Pos(), "(*os.File).Sync error discarded: a failed fsync means the kernel could not persist the data, and dropping the error turns a durability guarantee into a guess — check it (or lint:allow with why this sync is advisory)")
			case "Close":
				if obj := fileObject(pass.Info, call); obj != nil && written[obj] {
					pass.Reportf(call.Pos(), "(*os.File).Close error discarded on a write path: close is the last point a buffered write-back failure can surface, so an unchecked close can silently lose acknowledged data — check it, or `_ =` it with a comment if loss is acceptable")
				}
			}
			return true
		})
	}
}

// resultDiscarded reports whether the innermost statement around the
// call throws its value away: a bare expression statement or a defer.
// Assignments (including `_ =`), conditions, returns and argument
// positions all count as handled.
func resultDiscarded(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch stack[len(stack)-1].(type) {
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
		return true
	}
	return false
}

// collectWriteEvidence walks one file and returns the set of objects
// (variables, fields rooted at a variable) that are provably write-path
// files: opened via os.Create / os.OpenFile with write flags, written
// to through a Write-family method, or handed to fmt.Fprint* / io.Copy
// as the destination.
func collectWriteEvidence(info *types.Info, f *ast.File) map[types.Object]bool {
	written := map[types.Object]bool{}
	mark := func(expr ast.Expr) {
		if id := rootIdent(expr); id != nil {
			if obj := info.Uses[id]; obj != nil {
				written[obj] = true
			} else if obj := info.Defs[id]; obj != nil {
				written[obj] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// f, err := os.Create(...) / os.OpenFile(..., write flags, ...)
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isWriteOpen(info, call) {
					mark(n.Lhs[0])
				}
			}
		case *ast.CallExpr:
			if recv, method := methodRecv(info, n); isOSFile(recv) {
				switch method {
				case "Write", "WriteString", "WriteAt", "ReadFrom", "Truncate":
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						mark(sel.X)
					}
				}
				return true
			}
			// Destination position of the stdlib's writer-consuming
			// helpers: fmt.Fprint*(f, ...) and io.Copy(f, r).
			if isPkgCall(info, n, "fmt", "Fprint", "Fprintf", "Fprintln") ||
				isPkgCall(info, n, "io", "Copy", "CopyN", "CopyBuffer") {
				if len(n.Args) > 0 && isOSFileExpr(info, n.Args[0]) {
					mark(n.Args[0])
				}
			}
		}
		return true
	})
	return written
}

// isWriteOpen reports whether call opens a file for writing:
// os.Create always, os.OpenFile unless its flag argument is a known
// compile-time O_RDONLY (zero).
func isWriteOpen(info *types.Info, call *ast.CallExpr) bool {
	if isPkgCall(info, call, "os", "Create") {
		return true
	}
	if !isPkgCall(info, call, "os", "OpenFile") {
		return false
	}
	if len(call.Args) < 2 {
		return true
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
			return false // O_RDONLY: a read path
		}
	}
	return true
}

// fileObject resolves the receiver variable of an (*os.File) method
// call to its declaring object, or nil when the receiver is not a
// plain variable chain (e.g. a fresh call result).
func fileObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id := rootIdent(sel.X)
	if id == nil {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isOSFile reports whether the named type is os.File.
func isOSFile(n *types.Named) bool {
	return namedFrom(n, "os", "File")
}

// isOSFileExpr reports whether expr's type is *os.File (or os.File).
func isOSFileExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return isOSFile(n)
}
