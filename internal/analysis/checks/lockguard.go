package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"drnet/internal/analysis"
)

// LockGuard enforces annotated mutex discipline interprocedurally.
// A struct field (or package-level variable) annotated
//
//	// guarded by <mu>
//
// where <mu> names a sibling sync.Mutex/sync.RWMutex field (or a
// package-level mutex variable), may only be accessed on paths where
// that mutex is provably held: after <base>.<mu>.Lock()/RLock() and
// before the matching Unlock (a deferred Unlock holds to function
// exit). The variant
//
//	// guarded by <mu> (writes)
//
// guards only mutations — assignments, ++/--, address-taking and
// atomic Store/Swap/CompareAndSwap/Add calls — leaving lock-free
// atomic reads unconstrained (the Journal.sink contract: the mutex
// serializes swaps, not loads).
//
// The analysis is interprocedural through the package's call graph
// via the repo's *Locked convention: a method whose name ends in
// "Locked" asserts "my caller holds the receiver's guards"; its own
// unguarded accesses are legal, but every call site of a *Locked
// method must hold the mutexes the callee (transitively) touches.
// Objects freshly constructed in the current function (composite
// literals that have not escaped) are exempt — a constructor may
// initialize guarded fields before the value is shared.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "fields annotated '// guarded by <mu>' accessed without the " +
		"mutex held, traced through *Locked method calls",
	Run: runLockGuard,
}

// guardedByRe matches the annotation grammar. The line must start
// with the phrase so prose mentioning a mutex does not bind.
var guardedByRe = regexp.MustCompile(`^guarded by ([A-Za-z_][A-Za-z0-9_]*)(\s*\(writes\))?\.?\s*$`)

// guardSpec records how one object is protected.
type guardSpec struct {
	mu     *types.Var // canonical (Origin) mutex object
	writes bool       // only mutations need the lock
	pkg    bool       // mu is a package-level variable, not a field
}

// lockFactKey is the name under which lockguard publishes each guarded
// object's spec into the pass fact store (consumed by tests and
// available to later analyzers).
const lockFactKey = "lockguard.guard"

type lockguardState struct {
	pass *analysis.Pass
	// guards maps canonical guarded objects (field vars or package
	// vars) to their spec.
	guards map[*types.Var]guardSpec
	// mutexes is the set of canonical mutex objects named by any
	// annotation, for fast lock-op matching.
	mutexes map[*types.Var]bool
	// requires maps a *Locked method (canonical) to the mutexes its
	// body (transitively) touches unprotected — what call sites owe it.
	requires map[*types.Func]map[*types.Var]bool
	units    []*funcUnit
}

// funcUnit is one analysis unit: a declared function body or a
// function-literal body (closures are separate units because they may
// run on goroutines where the enclosing lock state means nothing).
type funcUnit struct {
	name     string
	decl     *ast.FuncDecl // nil for literals
	body     *ast.BlockStmt
	recvName string       // receiver identifier, "" when absent
	recvType *types.Named // receiver's named type (deref'd), or nil
	fn       *types.Func  // canonical func object, nil for literals
	fresh    map[types.Object]bool
	writes   map[ast.Node]bool
}

func runLockGuard(pass *analysis.Pass) {
	st := &lockguardState{
		pass:     pass,
		guards:   map[*types.Var]guardSpec{},
		mutexes:  map[*types.Var]bool{},
		requires: map[*types.Func]map[*types.Var]bool{},
	}
	st.collectGuards()
	if len(st.guards) == 0 {
		return
	}
	for obj, spec := range st.guards {
		pass.Facts.Set(obj, lockFactKey, spec)
	}
	st.collectUnits()
	st.solveRequires()
	for _, u := range st.units {
		st.checkUnit(u, true)
	}
}

// ---- annotation collection ----

// collectGuards parses '// guarded by' annotations off struct fields
// and package-level var specs, validating that the named mutex exists
// and is a mutex.
func (st *lockguardState) collectGuards() {
	for _, f := range st.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				st.structGuards(n)
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					st.varGuards(n)
				}
			}
			return true
		})
	}
}

// annotationOf extracts the guard annotation from a doc comment group
// and/or trailing comment, returning the mutex name and writes flag;
// ok is false when no line matches.
func annotationOf(groups ...*ast.CommentGroup) (name string, writes bool, ok bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			m := guardedByRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			return m[1], m[2] != "", true
		}
	}
	return "", false, false
}

func (st *lockguardState) structGuards(s *ast.StructType) {
	// First index the struct's own fields by name so the annotation's
	// mutex reference can be resolved to a sibling.
	byName := map[string]*ast.Field{}
	for _, fld := range s.Fields.List {
		for _, id := range fld.Names {
			byName[id.Name] = fld
		}
	}
	for _, fld := range s.Fields.List {
		muName, writes, ok := annotationOf(fld.Doc, fld.Comment)
		if !ok {
			continue
		}
		sib, ok := byName[muName]
		if !ok {
			st.pass.Reportf(fld.Pos(), "guarded by %s: no sibling field named %s in this struct", muName, muName)
			continue
		}
		var muVar *types.Var
		for _, id := range sib.Names {
			if id.Name == muName {
				muVar, _ = st.pass.Info.Defs[id].(*types.Var)
			}
		}
		if muVar == nil || !isMutexVar(muVar) {
			st.pass.Reportf(fld.Pos(), "guarded by %s: %s is not a sync.Mutex or sync.RWMutex", muName, muName)
			continue
		}
		muVar = muVar.Origin()
		st.mutexes[muVar] = true
		for _, id := range fld.Names {
			if v, ok := st.pass.Info.Defs[id].(*types.Var); ok && v != nil {
				st.guards[v.Origin()] = guardSpec{mu: muVar, writes: writes}
			}
		}
	}
}

func (st *lockguardState) varGuards(d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		// A single-spec `var x = ...` hangs its doc off the GenDecl;
		// grouped specs carry their own.
		groups := []*ast.CommentGroup{vs.Doc, vs.Comment}
		if len(d.Specs) == 1 {
			groups = append(groups, d.Doc)
		}
		muName, writes, ok := annotationOf(groups...)
		if !ok {
			continue
		}
		var muVar *types.Var
		if st.pass.Pkg != nil {
			if o, ok := st.pass.Pkg.Scope().Lookup(muName).(*types.Var); ok {
				muVar = o
			}
		}
		if muVar == nil || !isMutexVar(muVar) {
			st.pass.Reportf(vs.Pos(), "guarded by %s: no package-level sync.Mutex or sync.RWMutex named %s", muName, muName)
			continue
		}
		st.mutexes[muVar] = true
		for _, id := range vs.Names {
			if v, ok := st.pass.Info.Defs[id].(*types.Var); ok && v != nil {
				// Only package-level variables take the pkg form.
				if v.Parent() == st.pass.Pkg.Scope() {
					st.guards[v] = guardSpec{mu: muVar, writes: writes, pkg: true}
				}
			}
		}
	}
}

// isMutexVar reports whether v's type (one pointer level deref'd) is
// sync.Mutex or sync.RWMutex.
func isMutexVar(v *types.Var) bool {
	t := v.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// ---- unit collection ----

func (st *lockguardState) collectUnits() {
	for _, f := range st.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			u := &funcUnit{name: fd.Name.Name, decl: fd, body: fd.Body}
			if fn, ok := st.pass.Info.Defs[fd.Name].(*types.Func); ok && fn != nil {
				u.fn = fn.Origin()
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				u.recvName = fd.Recv.List[0].Names[0].Name
				if tv, ok := st.pass.Info.Types[fd.Recv.List[0].Type]; ok {
					t := tv.Type
					if p, ok := t.Underlying().(*types.Pointer); ok {
						t = p.Elem()
					}
					if n, ok := t.(*types.Named); ok {
						u.recvType = n
					}
				}
			}
			st.prepUnit(u)
			st.units = append(st.units, u)
			// Each nested function literal is its own unit.
			base := u.name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lu := &funcUnit{name: base + ".func", body: lit.Body}
					st.prepUnit(lu)
					st.units = append(st.units, lu)
				}
				return true
			})
		}
	}
}

// prepUnit precomputes the unit's fresh-object set and write sites.
func (st *lockguardState) prepUnit(u *funcUnit) {
	u.fresh = map[types.Object]bool{}
	u.writes = map[ast.Node]bool{}
	info := st.pass.Info
	ast.Inspect(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if isFreshAlloc(info, rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								u.fresh[obj] = true
							}
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				st.markWrite(u, lhs)
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && isFreshAlloc(info, n.Values[i]) {
					if obj := info.Defs[id]; obj != nil {
						u.fresh[obj] = true
					}
				}
			}
		case *ast.IncDecStmt:
			st.markWrite(u, n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				st.markWrite(u, n.X)
			}
		case *ast.CallExpr:
			// Atomic mutation methods on a guarded field count as
			// writes; Load and friends stay reads.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Store", "Swap", "CompareAndSwap", "Add", "Or", "And":
					st.markWrite(u, sel.X)
				}
			}
		}
		return true
	})
}

// markWrite marks the guarded selector at the base of expr (if any)
// as a mutation site. `j.sink.Swap(x)` marks the `j.sink` selector;
// `l.cells[i] = v` marks `l.cells`.
func (st *lockguardState) markWrite(u *funcUnit, expr ast.Expr) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			if v := st.guardedObj(e.Sel); v != nil {
				u.writes[e] = true
				return
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			if v, ok := st.pass.Info.Uses[e].(*types.Var); ok && v != nil {
				if spec, ok := st.guards[canonVar(v)]; ok && spec.pkg {
					u.writes[e] = true
				}
			}
			return
		default:
			return
		}
	}
}

// guardedObj resolves a selector identifier to a guarded field var,
// or nil.
func (st *lockguardState) guardedObj(id *ast.Ident) *types.Var {
	v, ok := st.pass.Info.Uses[id].(*types.Var)
	if !ok || v == nil {
		return nil
	}
	cv := canonVar(v)
	if _, ok := st.guards[cv]; ok {
		return cv
	}
	return nil
}

// canonVar maps an (possibly instantiated-generic) field var to its
// declared origin so guards on generic structs match at use sites.
func canonVar(v *types.Var) *types.Var { return v.Origin() }

// isFreshAlloc reports whether rhs constructs a brand-new value —
// a composite literal, &literal, or new(T) — that cannot yet be
// shared with another goroutine.
func isFreshAlloc(info *types.Info, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b != nil {
				return true
			}
		}
	}
	return false
}

// ---- lock-state dataflow ----

// heldKey renders one held-mutex abstract value: "<basePath>\x00<mu>"
// for field mutexes, "\x00<mu>" for package-level ones. mu is made
// unique by its declaration position.
func heldKey(base string, mu *types.Var) string {
	return base + "\x00" + mu.Name() + "@" + strconv.Itoa(int(mu.Pos()))
}

// pathOf canonicalizes a selector base expression to a dotted path of
// identifiers plus the root object; ok is false for bases the
// analysis cannot name (calls, index expressions, ...).
func pathOf(info *types.Info, expr ast.Expr) (path string, root types.Object, ok bool) {
	var parts []string
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj == nil {
				return "", nil, false
			}
			parts = append(parts, e.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), obj, true
		case *ast.SelectorExpr:
			parts = append(parts, e.Sel.Name)
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return "", nil, false
		}
	}
}

// lockOp describes one Lock/Unlock call found in a statement.
type lockOp struct {
	key     string
	acquire bool
}

// lockOps extracts the mutex operations in a node, excluding nested
// function literals and deferred calls (a deferred Unlock releases at
// exit, so it never clears the held state mid-body).
func (st *lockguardState) lockOps(n ast.Node) []lockOp {
	var ops []lockOp
	skipDefer := map[ast.Node]bool{}
	analysis.WalkStack(n, func(node ast.Node, stack []ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			skipDefer[node.Call] = true
		case *ast.CallExpr:
			if skipDefer[node] {
				return true
			}
			sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var acquire bool
			switch sel.Sel.Name {
			case "Lock", "RLock":
				acquire = true
			case "Unlock", "RUnlock":
				acquire = false
			default:
				return true
			}
			// The callee must be a known guard mutex: base.mu.Lock()
			// or pkgMu.Lock().
			switch x := ast.Unparen(sel.X).(type) {
			case *ast.SelectorExpr:
				mv, ok := st.pass.Info.Uses[x.Sel].(*types.Var)
				if !ok || mv == nil || !st.mutexes[canonVar(mv)] {
					return true
				}
				base, _, okp := pathOf(st.pass.Info, x.X)
				if !okp {
					return true
				}
				ops = append(ops, lockOp{key: heldKey(base, canonVar(mv)), acquire: acquire})
			case *ast.Ident:
				mv, ok := st.pass.Info.Uses[x].(*types.Var)
				if !ok || mv == nil || !st.mutexes[mv] {
					return true
				}
				ops = append(ops, lockOp{key: heldKey("", mv), acquire: acquire})
			}
		}
		return true
	})
	return ops
}

// entryState builds the held set assumed at a unit's entry: a *Locked
// method starts with every guard of its receiver held (the caller's
// obligation); everything else starts empty.
func (st *lockguardState) entryState(u *funcUnit) analysis.Set {
	s := analysis.Set{}
	if u.decl == nil || !strings.HasSuffix(u.name, "Locked") {
		return s
	}
	for _, mu := range st.recvGuardMutexes(u.recvType) {
		s[heldKey(u.recvName, mu)] = true
	}
	// By the same convention a *Locked function is entitled to assume
	// package-level guards it touches are held by its caller.
	for _, spec := range st.guards {
		if spec.pkg {
			s[heldKey("", spec.mu)] = true
		}
	}
	return s
}

// recvGuardMutexes lists the distinct guard mutexes protecting fields
// of named type n, sorted for determinism.
func (st *lockguardState) recvGuardMutexes(n *types.Named) []*types.Var {
	if n == nil {
		return nil
	}
	stru, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	seen := map[*types.Var]bool{}
	var out []*types.Var
	for i := 0; i < stru.NumFields(); i++ {
		if spec, ok := st.guards[canonVar(stru.Field(i))]; ok && !seen[spec.mu] {
			seen[spec.mu] = true
			out = append(out, spec.mu)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// ---- interprocedural requires fixpoint ----

// solveRequires computes, for every *Locked method, the set of guard
// mutexes its body touches while relying on the caller — directly or
// through further *Locked calls — so call sites can be charged.
func (st *lockguardState) solveRequires() {
	var locked []*funcUnit
	for _, u := range st.units {
		if u.decl != nil && u.fn != nil && strings.HasSuffix(u.name, "Locked") {
			locked = append(locked, u)
			st.requires[u.fn] = map[*types.Var]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, u := range locked {
			need := st.unitNeeds(u)
			cur := st.requires[u.fn]
			for mu := range need {
				if !cur[mu] {
					cur[mu] = true
					changed = true
				}
			}
		}
	}
}

// unitNeeds runs the unit's dataflow with an EMPTY entry and returns
// the mutexes it touches unprotected (receiver-rooted or package-
// level) — i.e. what it needs its caller to hold.
func (st *lockguardState) unitNeeds(u *funcUnit) map[*types.Var]bool {
	need := map[*types.Var]bool{}
	st.walkUnit(u, analysis.Set{}, func(state analysis.Set, sel ast.Node, base string, root types.Object, mu *types.Var) {
		if base == "" || (u.recvName != "" && rootIsNamed(root, u.recvName)) {
			need[mu] = true
		}
	})
	return need
}

func rootIsNamed(root types.Object, name string) bool {
	return root != nil && root.Name() == name
}

// ---- checking ----

// checkUnit re-runs the unit's dataflow with the convention entry
// state and reports violations (report=true) at access sites and
// *Locked call sites.
func (st *lockguardState) checkUnit(u *funcUnit, report bool) {
	st.walkUnit(u, st.entryState(u), func(state analysis.Set, at ast.Node, base string, root types.Object, mu *types.Var) {
		if !report {
			return
		}
		if root != nil && u.fresh[root] {
			return
		}
		switch n := at.(type) {
		case *ast.CallExpr:
			fnName := "function"
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				fnName = sel.Sel.Name
			}
			st.pass.Reportf(at.Pos(), "call to %s requires %s held (a *Locked method touches fields guarded by it); lock %s first or call from a *Locked method", fnName, mu.Name(), mu.Name())
		default:
			name := ""
			if sel, ok := at.(*ast.SelectorExpr); ok {
				name = sel.Sel.Name
			} else if id, ok := at.(*ast.Ident); ok {
				name = id.Name
			}
			st.pass.Reportf(at.Pos(), "%s is guarded by %s but accessed without holding it; acquire %s or move this access into a *Locked method", name, mu.Name(), mu.Name())
		}
	})
}

// walkUnit runs the must-held dataflow over a unit and invokes
// violate for every guarded access or under-locked *Locked call.
func (st *lockguardState) walkUnit(u *funcUnit, entry analysis.Set, violate func(state analysis.Set, at ast.Node, base string, root types.Object, mu *types.Var)) {
	g := st.pass.FuncCFG(u.body)
	transfer := func(state analysis.Set, n ast.Node) analysis.Set {
		for _, op := range st.lockOps(n) {
			if op.acquire {
				state[op.key] = true
			} else {
				delete(state, op.key)
			}
		}
		return state
	}
	ins := g.ForwardMust(entry, transfer)
	for _, bl := range g.Blocks {
		state := ins[bl].Clone()
		for _, n := range bl.Nodes {
			st.checkNode(u, state, n, violate)
			state = transfer(state, n)
		}
	}
}

// checkNode scans one CFG node for guarded accesses and *Locked calls
// and charges them against the current held state.
func (st *lockguardState) checkNode(u *funcUnit, state analysis.Set, n ast.Node, violate func(analysis.Set, ast.Node, string, types.Object, *types.Var)) {
	analysis.WalkStack(n, func(node ast.Node, stack []ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // separate unit
		case *ast.SelectorExpr:
			if v := st.guardedObj(node.Sel); v != nil {
				spec := st.guards[v]
				if spec.writes && !u.writes[node] {
					return true
				}
				base, root, ok := pathOf(st.pass.Info, node.X)
				if !ok {
					return true
				}
				if !state[heldKey(base, spec.mu)] {
					violate(state, node, base, root, spec.mu)
				}
				return true
			}
		case *ast.Ident:
			// Package-level guarded vars are referenced bare.
			if len(stack) > 0 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == node {
					return true
				}
			}
			if v, ok := st.pass.Info.Uses[node].(*types.Var); ok && v != nil {
				if spec, ok := st.guards[v]; ok && spec.pkg {
					if spec.writes && !u.writes[node] {
						return true
					}
					if !state[heldKey("", spec.mu)] {
						violate(state, node, "", v, spec.mu)
					}
				}
			}
		case *ast.CallExpr:
			st.checkLockedCall(u, state, node, violate)
		}
		return true
	})
}

// checkLockedCall charges a call to a *Locked method against the held
// state: every mutex in the callee's requires set must be held for
// the call's receiver base.
func (st *lockguardState) checkLockedCall(u *funcUnit, state analysis.Set, call *ast.CallExpr, violate func(analysis.Set, ast.Node, string, types.Object, *types.Var)) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := st.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn == nil {
		return
	}
	req := st.requires[fn.Origin()]
	if len(req) == 0 {
		return
	}
	base, root, okp := pathOf(st.pass.Info, sel.X)
	if !okp {
		return
	}
	mus := make([]*types.Var, 0, len(req))
	for mu := range req {
		mus = append(mus, mu)
	}
	sort.Slice(mus, func(i, j int) bool { return mus[i].Pos() < mus[j].Pos() })
	for _, mu := range mus {
		spec := guardSpec{}
		for _, s := range st.guards {
			if s.mu == mu {
				spec = s
				break
			}
		}
		key := heldKey(base, mu)
		if spec.pkg {
			key = heldKey("", mu)
		}
		if !state[key] {
			violate(state, call, base, root, mu)
		}
	}
}
