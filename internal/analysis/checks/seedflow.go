package checks

import (
	"go/ast"
	"go/types"

	"drnet/internal/analysis"
)

// SeedFlow traces the provenance of every RNG seed. The paper's
// methodology lives or dies on controlled randomness: a seed hardwired
// to a constant silently collapses every "independent" run onto one
// sample path, and a seed drawn from the wall clock makes runs
// unreproducible. SeedFlow finds each construction of the repo's RNGs
// (mathx.NewRNG, mathx.NewPCG, parallel.NewShardedRNG) and walks the
// seed expression backwards — through conversions, arithmetic, local
// definitions, and (via the package call graph) the arguments of every
// in-package caller when the seed is a parameter. A construction is
// flagged when the seed provably bottoms out in constants on every
// path, or in a wall-clock read on any path. Parameters of exported
// entry points with no in-package callers are presumed caller-
// controlled and stay clean.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "RNG constructions whose seed bottoms out in a constant " +
		"(non-varied runs) or wall-clock time (unreproducible runs)",
	Run: runSeedFlow,
}

type seedVerdict int

const (
	seedOK    seedVerdict = iota // parameter/flag/opaque: caller-controlled
	seedConst                    // provably constant on every path
	seedClock                    // wall-clock derived on some path
)

const (
	seedMaxDepth = 6  // interprocedural hops before giving up (→ ok)
	seedMaxFanIn = 20 // caller sites examined per parameter
)

func runSeedFlow(pass *analysis.Pass) {
	tr := &seedTracer{pass: pass, cg: pass.CallGraph()}
	for _, fi := range tr.cg.Decls() {
		decl := fi.Decl
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind := rngConstruction(pass.Info, call)
			if kind == "" {
				return true
			}
			switch tr.trace(decl, call.Args[0], 0) {
			case seedConst:
				pass.Reportf(call.Pos(), "%s seed traces to a constant on every path; derive it from a parameter or flag so runs can be varied", kind)
			case seedClock:
				pass.Reportf(call.Pos(), "%s seed traces to wall-clock time; evaluation runs become unreproducible", kind)
			}
			return true
		})
	}
}

// rngConstruction classifies a call as one of the repo's RNG
// constructors, returning its display name or "".
func rngConstruction(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	switch {
	case pathHasSuffix(f.Pkg().Path(), "internal/mathx") && (f.Name() == "NewRNG" || f.Name() == "NewPCG"):
		return f.Name()
	case pathHasSuffix(f.Pkg().Path(), "internal/parallel") && f.Name() == "NewShardedRNG":
		return f.Name()
	}
	return ""
}

type seedTracer struct {
	pass *analysis.Pass
	cg   *analysis.CallGraph
}

// combine merges the verdicts of two operands feeding one value:
// wall-clock taints everything; a value is constant only when every
// input is.
func combineSeed(a, b seedVerdict) seedVerdict {
	if a == seedClock || b == seedClock {
		return seedClock
	}
	if a == seedConst && b == seedConst {
		return seedConst
	}
	return seedOK
}

// combineCallers merges verdicts across independent call sites of one
// parameter: any wall-clock site taints; constant only when every site
// passes a constant.
func combineCallers(vs []seedVerdict) seedVerdict {
	if len(vs) == 0 {
		return seedOK
	}
	out := vs[0]
	for _, v := range vs[1:] {
		out = combineSeed(out, v)
	}
	return out
}

// trace walks a seed expression backwards inside decl.
func (tr *seedTracer) trace(decl *ast.FuncDecl, e ast.Expr, depth int) seedVerdict {
	if depth > seedMaxDepth {
		return seedOK
	}
	info := tr.pass.Info
	e = tr.strip(e)
	switch e := e.(type) {
	case *ast.BasicLit:
		return seedConst
	case *ast.BinaryExpr:
		return combineSeed(tr.trace(decl, e.X, depth), tr.trace(decl, e.Y, depth))
	case *ast.CallExpr:
		if isWallClockCall(info, e) {
			return seedClock
		}
		return seedOK // opaque computation: assume caller-controlled
	case *ast.SelectorExpr:
		if c, ok := info.Uses[e.Sel].(*types.Const); ok && c != nil {
			return seedConst
		}
		return seedOK // struct field / foreign var: opaque
	case *ast.Ident:
		switch obj := info.Uses[e].(type) {
		case *types.Const:
			return seedConst
		case *types.Var:
			if obj.Parent() != nil && tr.pass.Pkg != nil && obj.Parent() == tr.pass.Pkg.Scope() {
				return seedOK // package-level var: opaque
			}
			if idx, ok := paramIndex(decl, obj); ok {
				return tr.traceParam(decl, idx, depth)
			}
			return tr.traceLocal(decl, obj, depth)
		}
		return seedOK
	}
	return seedOK
}

// strip removes wrappers that do not change provenance: parens, unary
// +/-/^, and type conversions.
func (tr *seedTracer) strip(e ast.Expr) ast.Expr {
	info := tr.pass.Info
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}

// isWallClockCall matches time.Now() and the Unix* extractors on a
// time.Time value (a stored start time is still wall clock).
func isWallClockCall(info *types.Info, call *ast.CallExpr) bool {
	if isPkgCall(info, call, "time", "Now") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Unix", "UnixNano", "UnixMilli", "UnixMicro", "Nanosecond":
	default:
		return false
	}
	return namedFrom(namedType(info.TypeOf(sel.X)), "time", "Time")
}

// namedType unwraps one pointer level to a named type.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// paramIndex returns obj's flattened position in decl's parameter
// list, when obj is one of decl's parameters.
func paramIndex(decl *ast.FuncDecl, obj *types.Var) (int, bool) {
	if decl.Type.Params == nil {
		return 0, false
	}
	idx := 0
	for _, fld := range decl.Type.Params.List {
		if len(fld.Names) == 0 {
			idx++
			continue
		}
		for _, name := range fld.Names {
			if name.Pos() == obj.Pos() && name.Name == obj.Name() {
				return idx, true
			}
			idx++
		}
	}
	return 0, false
}

// traceParam follows a parameter back through the in-package call
// sites of the enclosing function. No analyzable in-package callers →
// the parameter is an external input → ok.
func (tr *seedTracer) traceParam(decl *ast.FuncDecl, idx int, depth int) seedVerdict {
	fn, _ := tr.pass.Info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return seedOK
	}
	callers := tr.cg.CallersOf(fn)
	if len(callers) == 0 || len(callers) > seedMaxFanIn {
		return seedOK
	}
	var vs []seedVerdict
	for _, e := range callers {
		if e.Site.Call == nil || len(e.Site.Call.Args) <= idx || e.Site.Call.Ellipsis.IsValid() {
			return seedOK // reference edge or unanalyzable call shape
		}
		callerInfo := tr.cg.Lookup(e.Caller)
		if callerInfo == nil || callerInfo.Decl == nil {
			return seedOK
		}
		vs = append(vs, tr.trace(callerInfo.Decl, e.Site.Call.Args[idx], depth+1))
	}
	return combineCallers(vs)
}

// traceLocal follows a local variable to its defining assignments
// within the enclosing declaration; multiple assignments combine like
// independent call sites.
func (tr *seedTracer) traceLocal(decl *ast.FuncDecl, obj *types.Var, depth int) seedVerdict {
	info := tr.pass.Info
	var vs []seedVerdict
	opaque := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				for _, lhs := range n.Lhs {
					if identIs(info, lhs, obj) {
						opaque = true // multi-value assignment: give up
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				if identIs(info, lhs, obj) {
					vs = append(vs, tr.trace(decl, n.Rhs[i], depth+1))
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] == types.Object(obj) {
					if i < len(n.Values) {
						vs = append(vs, tr.trace(decl, n.Values[i], depth+1))
					} else {
						vs = append(vs, seedConst) // zero value
					}
				}
			}
		case *ast.RangeStmt:
			if identIs(info, n.Key, obj) || identIs(info, n.Value, obj) {
				opaque = true // range-derived index: treat as external
			}
		}
		return true
	})
	if opaque || len(vs) == 0 {
		return seedOK
	}
	return combineCallers(vs)
}

// identIs reports whether expr is an identifier bound to obj (as a
// definition or a use).
func identIs(info *types.Info, expr ast.Expr, obj *types.Var) bool {
	if expr == nil {
		return false
	}
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Defs[id] == types.Object(obj) || info.Uses[id] == types.Object(obj)
}
