package checks

import (
	"go/ast"
	"go/types"

	"drnet/internal/analysis"
)

// ctxScope is where exported record-iterating entry points must accept
// a context: the estimator core, the pool, and the resilience layer —
// the packages whose loops drevald runs under a request deadline.
var ctxScope = []string{"internal/core", "internal/parallel", "internal/resilience"}

// CtxDiscipline enforces the cancellation contract from the resilience
// layer: an exported function in internal/core, internal/parallel or
// internal/resilience whose body does per-record work over a trace
// (a range over []core.Record with non-trivial calls per iteration)
// must take a context.Context, so a request deadline can cut the loop
// short. It also flags context.Background() in drevald's request
// paths, where the request context must be derived, never replaced.
//
// Single-pass arithmetic accessors (sums, validation) are exempt: a
// loop whose body only does arithmetic, error construction or math/fmt
// calls is bounded and cheap per record.
var CtxDiscipline = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc: "exported trace-iterating funcs without a ctx parameter in " +
		"core/parallel/resilience; context.Background in drevald request paths",
	Run: runCtxDiscipline,
}

func runCtxDiscipline(pass *analysis.Pass) {
	if pathHasSuffix(pass.Path, ctxScope...) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok {
					checkExportedLoop(pass, fd)
				}
			}
		}
	}
	if pathHasSuffix(pass.Path, "cmd/drevald") {
		checkBackground(pass)
	}
}

func checkExportedLoop(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !fd.Name.IsExported() {
		return
	}
	if recv := receiverTypeName(fd); recv != "" && !ast.IsExported(recv) {
		return // method on an unexported type: not a public entry point
	}
	if hasCtxParam(pass.Info, fd) {
		return
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// Loops inside closures are executed by whoever receives
			// the closure (typically the ctx-aware pool), not by this
			// function's own control flow.
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverRecords(pass.Info, rng) {
			return true
		}
		if loopDoesWork(pass.Info, rng.Body) {
			found = true
			pass.Reportf(fd.Name.Pos(), "exported %s does per-record work over a trace but takes no context.Context; a request deadline cannot cancel it — add a ctx parameter (see the *Ctx estimator variants)", fd.Name.Name)
		}
		return true
	})
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[C]
			t = x.X
		case *ast.IndexListExpr: // generic receiver T[C, D]
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		if n, ok := tv.Type.(*types.Named); ok && namedFrom(n, "context", "Context") {
			return true
		}
	}
	return false
}

// rangesOverRecords reports whether rng iterates a slice/array of
// core.Record (which covers core.Trace, a named slice of Record).
func rangesOverRecords(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	var elem types.Type
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	n, _ := elem.(*types.Named)
	return namedFrom(n, "internal/core", "Record")
}

// loopDoesWork reports whether the loop body makes calls beyond cheap
// arithmetic plumbing (math.*, fmt error formatting, errors.*, and
// builtins are exempt).
func loopDoesWork(info *types.Info, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil {
			// Builtin, conversion, or unresolved func value. Builtins
			// and conversions are cheap; an unresolved call is most
			// likely a func-typed variable (model, policy) — work.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
						return true
					}
					if _, isVar := obj.(*types.Var); isVar {
						work = true
						return false
					}
				}
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			return true
		}
		if pkg := f.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "math", "fmt", "errors":
				return true
			}
		}
		work = true
		return false
	})
	return work
}

// checkBackground flags context.Background()/TODO() in drevald outside
// main/init: handlers and helpers must derive from the request ctx so
// timeouts and client disconnects propagate.
func checkBackground(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && (fd.Name.Name == "main" || fd.Name.Name == "init") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgCall(pass.Info, call, "context", "Background", "TODO") {
					f := calleeFunc(pass.Info, call)
					pass.Reportf(call.Pos(), "context.%s in a drevald request path discards the request's deadline and cancellation; derive from the incoming ctx", f.Name())
				}
				return true
			})
		}
	}
}
