// Fixture for the fsynchygiene analyzer: discarded durability errors
// on write paths, alongside the read-path and acknowledged idioms that
// must stay clean.
package fixture

import (
	"fmt"
	"io"
	"os"
)

// --- Sync: the error always matters ---

func syncDiscarded(f *os.File) {
	f.Sync() // want "Sync error discarded"
}

func syncDeferred(f *os.File) {
	defer f.Sync() // want "Sync error discarded"
}

func syncChecked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Sync()
}

func syncAllowed(f *os.File) {
	//lint:allow fsynchygiene advisory flush, durability is the caller's problem
	f.Sync()
}

// --- Close: flagged only with write evidence ---

func createThenClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "Close error discarded on a write path"
	_, err = f.WriteString("x")
	return err
}

func openFileWriteFlags(path string) {
	f, _ := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	f.Close() // want "Close error discarded on a write path"
}

func openFileReadOnly(path string) {
	f, _ := os.OpenFile(path, 0, 0) // O_RDONLY: read path
	f.Close()
}

func writeMethodEvidence(f *os.File, b []byte) {
	_, _ = f.Write(b)
	f.Close() // want "Close error discarded on a write path"
}

func fprintEvidence(f *os.File) {
	fmt.Fprintf(f, "n=%d\n", 1)
	f.Close() // want "Close error discarded on a write path"
}

func copyEvidence(f *os.File, r io.Reader) {
	_, _ = io.Copy(f, r)
	defer f.Close() // want "Close error discarded on a write path"
}

func closureEvidence(path string) {
	f, _ := os.Create(path)
	func() {
		f.Close() // want "Close error discarded on a write path"
	}()
}

// Read paths stay clean: os.Open, reads, and reader-position io.Copy.
func readPath(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

// Explicit discard is an acknowledged decision, not an accident.
func acknowledgedClose(path string) {
	f, _ := os.Create(path)
	_, _ = f.WriteString("x")
	_ = f.Close()
}

// Checked close on a write path is the idiom the check exists to protect.
func checkedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Suppression works on closes too.
func allowedClose(path string) {
	f, _ := os.Create(path)
	_, _ = f.WriteString("x")
	//lint:allow fsynchygiene scratch file, loss is harmless
	f.Close()
}
