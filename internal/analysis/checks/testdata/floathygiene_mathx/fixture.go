// The floathygiene fixture's scope counterpart: loaded as
// fixture/internal/mathx, where exact comparisons are the package's
// job and must not be flagged — but goroutine accumulation still is.
package fixture

func compareEq(a, b float64) bool {
	return a == b // inside mathx: the comparison helpers live here
}

func goroutineAccum(vals []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, v := range vals {
			total += v // want "float accumulated into captured total inside a goroutine"
		}
		close(done)
	}()
	<-done
	return total
}
