// Fixture for ctxdiscipline's exported-loop rule, loaded as
// fixture/internal/core. The local Record type satisfies the detector
// because the fixture's package path ends in internal/core, mirroring
// the real core.Record.
package fixture

import "context"

// Record mirrors core.Record closely enough for the range detector.
type Record struct {
	Reward     float64
	Propensity float64
}

// Trace is a named slice of Record, like core.Trace.
type Trace []Record

func work(x float64) float64 { return x * x }

// Sum does per-record work without a ctx parameter.
func Sum(t Trace) float64 { // want "exported Sum does per-record work over a trace but takes no context.Context"
	s := 0.0
	for _, rec := range t {
		s += work(rec.Reward)
	}
	return s
}

// SumCtx is the compliant spelling.
func SumCtx(ctx context.Context, t Trace) (float64, error) {
	s := 0.0
	for i, rec := range t {
		if i%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		s += work(rec.Reward)
	}
	return s, nil
}

// Mean only does arithmetic per record: cheap loops are exempt.
func Mean(t Trace) float64 {
	s := 0.0
	for _, rec := range t {
		s += rec.Reward
	}
	return s / float64(len(t))
}

// Evaluator is an exported receiver, so its methods are entry points.
type Evaluator struct{}

func (Evaluator) Run(t Trace) float64 { // want "exported Run does per-record work"
	s := 0.0
	for _, rec := range t {
		s += work(rec.Reward)
	}
	return s
}

// evaluator is unexported: its methods are not public entry points.
type evaluator struct{}

func (evaluator) Run(t Trace) float64 {
	s := 0.0
	for _, rec := range t {
		s += work(rec.Reward)
	}
	return s
}

// sum is unexported and exempt.
func sum(t Trace) float64 {
	s := 0.0
	for _, rec := range t {
		s += work(rec.Reward)
	}
	return s
}

// Offload loops only inside a closure handed to a runner (the pool
// pattern): the closure's executor owns cancellation.
func Offload(t Trace, run func(func())) {
	run(func() {
		s := 0.0
		for _, rec := range t {
			s += work(rec.Reward)
		}
		_ = s
	})
}
