// Fixture for the hotalloc analyzer, loaded as fixture/internal/core
// so the estimator naming seeds apply. Covers: name-seeded kernels
// (allocs flagged only inside loops), //lint:hot and
// //lint:hot perrecord markers, interprocedural propagation (callee of
// a hot function, stricter grade when called in a loop), closure
// capture, and interface boxing.
package fixture

import (
	"fmt"
	"io"
)

type pair struct{ a int }

// --- name-seeded kernels: bodyHot, loop allocations flagged ---

func DirectMethodView(n int) float64 {
	buf := make([]float64, n) // clean: one-time setup outside the loop
	var s float64
	for i := 0; i < n; i++ {
		tmp := make([]float64, 4) // want "make allocates in hot path DirectMethodView"
		s += buf[i] + tmp[0]
	}
	return s
}

func ipsViewIdx(idx []int) float64 {
	var s float64
	for _, i := range idx {
		p := &pair{a: i} // want "&composite literal allocates in hot path ipsViewIdx"
		s += float64(p.a)
	}
	return s
}

// NewSummaryView merely ends in the kernel suffix: New* is excluded.
func NewSummaryView(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		s := []float64{1, 2} // clean: constructors are not hot
		out[i] = s[0]
	}
	return out
}

// --- markers ---

//lint:hot
func hotBody(n int) int {
	m := map[int]int{} // clean: bodyHot flags only loop-nested allocs
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return len(m)
}

//lint:hot perrecord
func perRecord(x int) []int {
	return append([]int(nil), x) // want "append may grow its backing array in hot path perRecord"
}

// --- propagation through the call graph ---

//lint:hot
func hotCaller(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += helperInLoop(i)
	}
	return total + helperOutside(n)
}

// helperInLoop is called inside hotCaller's loop → loopHot: every
// allocation counts.
func helperInLoop(i int) int {
	s := []int{i} // want "slice literal allocates in hot path helperInLoop"
	return s[0]
}

// helperOutside is called outside the loop → bodyHot: only its own
// loop-nested allocations count.
func helperOutside(n int) int {
	buf := []int{n} // clean: not in a loop
	for i := 0; i < n; i++ {
		buf = append(buf, i) // want "append may grow its backing array in hot path helperOutside"
	}
	return len(buf)
}

// --- closures ---

//lint:hot perrecord
func closureCapture(x int) func() int {
	return func() int { return x } // want "closure capturing locals allocates in hot path closureCapture"
}

//lint:hot perrecord
func closureNoCapture() func() int {
	return func() int { return 7 } // clean: captures nothing
}

// --- interface boxing ---

//lint:hot perrecord
func boxing(v float64, w io.Writer) {
	fmt.Fprintf(w, "%v", v) // want "passing a non-pointer value as an interface boxes it"
}

//lint:hot perrecord
func convBox(v int) any {
	return any(v) // want "conversion to interface boxes its operand"
}

//lint:hot perrecord
func noBox(w io.Writer, err error) error {
	_ = w
	return err // clean: interfaces pass through without boxing
}

// --- cold error exits: return-terminated if-branches never repeat ---

//lint:hot perrecord
func coldError(x int) ([]int, error) {
	if x < 0 {
		return nil, fmt.Errorf("bad value %d", x) // clean: branch returns, runs at most once
	}
	out := []int{x} // want "slice literal allocates in hot path coldError"
	return out, nil
}

func ColdInLoopView(xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if x < 0 {
			return 0, fmt.Errorf("bad element %d", x) // clean: exits the kernel
		}
		total += helperInLoop(x)
	}
	return total, nil
}

// buildSummaryView is a builder despite the suffix: build* is excluded.
func buildSummaryView(n int) []float64 {
	out := make([]float64, 0)
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // clean: builders are not hot
	}
	return out
}

// --- suppression ---

//lint:hot perrecord
func allowedAlloc(n int) []int {
	//lint:allow hotalloc cold error path, executed at most once per run
	return make([]int, n)
}
