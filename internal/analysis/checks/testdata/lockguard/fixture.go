// Fixture for the lockguard analyzer: every way a '// guarded by'
// annotation can be honored or violated — straight-line locking,
// deferred unlocks, early-unlock branches, the *Locked convention,
// fresh constructors, writes-only guards, package-level guards and
// closures.
package fixture

import "sync"

// --- basic field guard ---

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bad() int {
	return c.n // want "n is guarded by mu but accessed without holding it"
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) goodExplicit() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// --- path sensitivity: must-held at joins ---

func (c *counter) earlyUnlockReturn(flip bool) int {
	c.mu.Lock()
	if flip {
		c.mu.Unlock()
		return 0
	}
	v := c.n // held on every path reaching here
	c.mu.Unlock()
	return v
}

func (c *counter) unlockOneBranch(flip bool) int {
	c.mu.Lock()
	if flip {
		c.mu.Unlock()
	}
	return c.n // want "n is guarded by mu but accessed without holding it"
}

func (c *counter) lockInLoop(k int) {
	for i := 0; i < k; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

func (c *counter) lockBeforeLoop(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < k; i++ {
		c.n++ // defer holds across the whole body, including loops
	}
}

// --- RWMutex: RLock counts as held ---

type table struct {
	rw    sync.RWMutex
	cells map[string]int // guarded by rw
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.cells[k]
}

func (t *table) badPut(k string, v int) {
	t.cells[k] = v // want "cells is guarded by rw but accessed without holding it"
}

// --- *Locked convention: callee assumes, call site owes ---

func (c *counter) bumpLocked() {
	c.n++ // clean: a *Locked method's caller holds mu
}

func (c *counter) doubleLocked() {
	c.bumpLocked() // clean: our own caller already holds mu
}

func (c *counter) callLockedBad() {
	c.doubleLocked() // want "call to doubleLocked requires mu held"
}

func (c *counter) callLockedGood() {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

// --- fresh constructors are exempt ---

func newCounter() *counter {
	c := &counter{}
	c.n = 7 // clean: c has not escaped yet
	return c
}

// --- writes-only guards: reads stay lock-free ---

type swapper struct {
	smu  sync.Mutex
	dest int // guarded by smu (writes)
}

func (s *swapper) read() int {
	return s.dest // clean: only writes need smu
}

func (s *swapper) badWrite(v int) {
	s.dest = v // want "dest is guarded by smu but accessed without holding it"
}

func (s *swapper) goodWrite(v int) {
	s.smu.Lock()
	s.dest = v
	s.smu.Unlock()
}

// --- package-level guards ---

var pageMu sync.Mutex

// guarded by pageMu
var pages = map[string]int{}

func badPage(k string) int {
	return pages[k] // want "pages is guarded by pageMu but accessed without holding it"
}

func goodPage(k string) int {
	pageMu.Lock()
	defer pageMu.Unlock()
	return pages[k]
}

// --- closures are separate units: held state does not flow in ---

func (c *counter) closureBad() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want "n is guarded by mu but accessed without holding it"
	}
}

func (c *counter) closureGood() func() int {
	return func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
}

// --- annotation validation ---

type brokenSibling struct {
	// guarded by nosuch
	x int // want "guarded by nosuch: no sibling field named nosuch"
}

type brokenType struct {
	notAMutex int
	// guarded by notAMutex
	y int // want "guarded by notAMutex: notAMutex is not a sync.Mutex or sync.RWMutex"
}

// --- suppression still works ---

func (c *counter) allowed() int {
	//lint:allow lockguard snapshot read, torn value is acceptable here
	return c.n
}

var _ = brokenSibling{}
var _ = brokenType{}
