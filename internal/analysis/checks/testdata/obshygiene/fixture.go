// Fixture for the obshygiene analyzer. It uses the real internal/obs
// package so the receiver-type detection matches production call sites.
package fixture

import (
	"drnet/internal/obs"
	"drnet/internal/wideevent"
)

func metricNames() {
	_ = obs.Default.Counter("drevald_requests_total")    // server prefix: fine
	_ = obs.Default.Gauge("obs_queue_depth")             // obs layer prefix: fine
	_ = obs.Default.Counter("requests_total")            // want "violates the naming contract"
	_ = obs.Default.Histogram("Bad-Name", nil)           // want "violates the naming contract"
	obs.Default.Help("widget_total", "how many widgets") // want "violates the naming contract"
}

func emptyStrings() {
	_ = obs.Default.Counter("")                           // want "empty metric name"
	obs.Default.Help("", "described but nameless")        // want "empty metric name"
	obs.Default.Help("obs_good_total", "")                // want "empty help string"
	_ = obs.Default.Counter("drevald_bias_reports_total") // bias family: fine
}

func logging(l *obs.Logger) {
	l.Info("msg", "key", 1)     // paired: fine
	l.Info("msg", "key")        // want "1 key=value args \\(odd\\)"
	l.Error("msg", "a", 1, "b") // want "3 key=value args \\(odd\\)"
	_ = l.With("k", "v")        // paired: fine
}

func kvPassthrough(l *obs.Logger, kv []any) {
	l.Info("msg", kv...) // spread arity is unknowable statically: fine
}

func spans() {
	sp := obs.StartSpan("phase")
	defer sp.End() // deferred at start: fine

	sp2 := obs.StartSpan("other")
	use(sp2)
	sp2.End() // want "Span.End not deferred"
}

func deferredClosure() {
	sp := obs.StartSpan("wrapped")
	defer func() {
		sp.End() // inside the deferred closure: fine
	}()
}

func allowedInline() {
	sp := obs.StartSpan("timed")
	//lint:allow obshygiene the returned duration is the recorded wall time
	d := sp.End()
	_ = d
}

func use(*obs.Span) {}

func eventAnnotations(b *wideevent.Builder, key string) {
	b.Annotate("retryCount", "3")  // lowerCamel: fine
	b.Annotate("cacheHit", "true") // lowerCamel: fine
	b.Annotate("snake_case", "v")  // want "violates the lowerCamel contract"
	b.Annotate("UpperCamel", "v")  // want "violates the lowerCamel contract"
	b.Annotate("kebab-case", "v")  // want "violates the lowerCamel contract"
	b.Annotate("", "v")            // want "empty wide-event field name"
	b.Annotate(key, "v")           // non-constant name is unknowable statically: fine
	b.SetPolicy("constant:c")      // canonical setters are not Annotate: fine
}
