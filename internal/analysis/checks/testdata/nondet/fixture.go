// Fixture for the nondet analyzer, loaded as fixture/internal/core so
// the scope rule treats it as a deterministic package.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func sumMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into total inside a map-range loop"
	}
	return total
}

func sumMapSpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation into total inside a map-range loop"
	}
	return total
}

func perKeyWrite(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v * 2 // keyed by the range variable: order-independent
	}
	return out
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside a map-range loop"
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted right after the loop: canonical fix
	}
	sort.Strings(keys)
	return keys
}

func printLoop(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "output written inside a map-range loop"
	}
}

func globalRandAndClock() {
	_ = rand.Intn(10)               // want "global math/rand.Intn"
	_ = rand.New(rand.NewSource(1)) // explicit seeded source: fine
	_ = time.Now()                  // want "time.Now in a deterministic package"
}

func allowedClock() time.Time {
	//lint:allow nondet this helper reports wall time on purpose
	return time.Now()
}
