// Fixture for the seedflow analyzer: RNG constructions whose seed
// bottoms out in constants or wall-clock reads, against the clean
// parameter/flag-derived idioms. Imports the real module RNG packages
// so the constructor matching is exercised end to end.
package fixture

import (
	"time"

	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// --- direct constants ---

func constSeed() *mathx.RNG {
	return mathx.NewRNG(42) // want "NewRNG seed traces to a constant"
}

func constPCG() *mathx.RNG {
	return mathx.NewPCG(7, 11) // want "NewPCG seed traces to a constant"
}

func constSharded() *parallel.ShardedRNG {
	return parallel.NewShardedRNG(1) // want "NewShardedRNG seed traces to a constant"
}

func constArithmetic() *mathx.RNG {
	return mathx.NewRNG(int64(3)*7919 + 13) // want "NewRNG seed traces to a constant"
}

// --- wall clock ---

func clockSeed() *mathx.RNG {
	return mathx.NewRNG(time.Now().UnixNano()) // want "NewRNG seed traces to wall-clock time"
}

func clockLocal() *mathx.RNG {
	now := time.Now().UnixNano()
	return mathx.NewRNG(now) // want "NewRNG seed traces to wall-clock time"
}

// --- clean: caller-controlled parameters ---

func paramSeed(seed int64) *mathx.RNG {
	return mathx.NewRNG(seed) // clean: no in-package caller pins the seed
}

func paramArithmetic(seed int64, run int) *mathx.RNG {
	return mathx.NewRNG(seed + int64(run)) // clean: mixes a parameter
}

// --- local definitions ---

func localConst() *mathx.RNG {
	s := int64(9)
	return mathx.NewRNG(s) // want "NewRNG seed traces to a constant"
}

func localZero() *mathx.RNG {
	var s int64
	return mathx.NewRNG(s) // want "NewRNG seed traces to a constant"
}

func localMixed(p int64) *mathx.RNG {
	s := p + 3
	return mathx.NewRNG(s) // clean: derived from a parameter
}

// --- loop variables trace to their constant init ---

func loopSeeds(n int) []*mathx.RNG {
	out := make([]*mathx.RNG, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, mathx.NewRNG(int64(i)*7919)) // want "NewRNG seed traces to a constant"
	}
	return out
}

// --- interprocedural: parameters traced through in-package callers ---

// helper's only in-package caller passes a literal, so the parameter
// is constant in every reachable configuration.
func helper(seed int64) *mathx.RNG {
	return mathx.NewRNG(seed) // want "NewRNG seed traces to a constant"
}

func callsHelper() *mathx.RNG {
	return helper(1234)
}

// helperClock inherits the wall-clock taint from its caller.
func helperClock(seed int64) *mathx.RNG {
	return mathx.NewRNG(seed) // want "NewRNG seed traces to wall-clock time"
}

func callsHelperClock() *mathx.RNG {
	return helperClock(time.Now().UnixNano())
}

// helperMixed has one constant caller and one parameter caller: not
// provably constant, so it stays clean.
func helperMixed(seed int64) *mathx.RNG {
	return mathx.NewRNG(seed) // clean: a caller passes a live value
}

func callsHelperMixed(flagSeed int64) (*mathx.RNG, *mathx.RNG) {
	return helperMixed(99), helperMixed(flagSeed)
}

// --- suppression ---

func allowedWalkthrough() *mathx.RNG {
	//lint:allow seedflow pedagogical fixed-seed walkthrough
	return mathx.NewRNG(5)
}
