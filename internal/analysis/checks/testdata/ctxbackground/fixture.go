// Fixture for ctxdiscipline's context.Background rule, loaded as
// fixture/cmd/drevald so the request-path scope applies.
package fixture

import "context"

func helper() context.Context {
	return context.Background() // want "context.Background in a drevald request path"
}

func todoHelper() context.Context {
	return context.TODO() // want "context.TODO in a drevald request path"
}

func derive(ctx context.Context) context.Context {
	c, cancel := context.WithCancel(ctx) // deriving from the caller: fine
	cancel()
	return c
}

func main() {
	_ = context.Background() // main is process setup, exempt
}

func allowedDrain() context.Context {
	//lint:allow ctxdiscipline shutdown drain has no request context
	return context.Background()
}
