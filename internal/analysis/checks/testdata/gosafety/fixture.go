// Fixture for the gosafety analyzer, loaded as fixture/cmd/drevald so
// the goroutine-launch rule applies alongside the copylocks rule.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func launches() {
	go func() { // want "go func in cmd/drevald without a leading panic-recovery defer"
		_ = 1 + 1
	}()
	go func() {
		defer func() {
			_ = recover()
		}()
		_ = 2 + 2
	}()
	go func() {
		defer recoverGoroutine("worker")
		_ = 3 + 3
	}()
	go named() // non-literal launches are the callee's responsibility
}

func named() {}

func recoverGoroutine(string) { _ = recover() }

func (g guarded) Bad() int { // want "value receiver copies .*sync.Mutex.* on every call"
	return g.n
}

func (g *guarded) Good() int { return g.n }

func copies(g guarded, list []guarded, ptrs []*guarded) int {
	x := g  // want "assignment copies a struct containing .*sync.Mutex"
	use(x)  // want "passes a struct containing .*sync.Mutex.* by value"
	use2(&g) // passing a pointer: fine
	total := 0
	for _, item := range list { // want "range value copies a struct containing .*sync.Mutex"
		total += item.n
	}
	for _, p := range ptrs { // pointers share state: fine
		total += p.n
	}
	fresh := guarded{} // composite literal is a fresh value: fine
	return total + fresh.n
}

func use(guarded)   {}
func use2(*guarded) {}

func allowedCopy(g guarded) {
	//lint:allow gosafety snapshot taken before the struct is ever shared
	x := g
	_ = x.n
}
