// Fixture for the floathygiene analyzer, loaded under a path outside
// internal/mathx and internal/parallel so both rules apply.
package fixture

func compareEq(a, b float64) bool {
	return a == b // want "exact float == comparison outside internal/mathx"
}

func compareNeq(a, b float64) bool {
	return a != b // want "exact float != comparison outside internal/mathx"
}

func zeroSentinel(a float64) bool {
	return a == 0 // comparison against exact zero: allowed
}

func nanTest(a float64) bool {
	return a != a // want "NaN test; spell it math.IsNaN"
}

func constantFold() bool {
	return 0.25+0.5 == 0.75 // both sides constant: folded exactly
}

func intCompare(a, b int) bool {
	return a == b // integers: not float hygiene's business
}

func goroutineAccum(vals []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, v := range vals {
			total += v // want "float accumulated into captured total inside a goroutine"
		}
		close(done)
	}()
	<-done
	return total
}

func goroutineLocalAccum(vals []float64, out chan<- float64) {
	go func() {
		local := 0.0
		for _, v := range vals {
			local += v // accumulator owned by the goroutine: fine
		}
		out <- local
	}()
}

func allowedExact(a, b float64) bool {
	//lint:allow floathygiene grid values are exact binary fractions
	return a == b
}
