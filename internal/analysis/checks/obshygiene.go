package checks

import (
	"go/ast"
	"regexp"

	"drnet/internal/analysis"
)

// metricNameRE is the repo's metric naming contract: drevald_* for the
// server (including the drevald_bias_* estimator-health family),
// obs_* for the observability layer's own series, go_* for runtime
// gauges. One namespace per layer keeps dashboards greppable and
// prevents collisions with scrape-time relabeling.
var metricNameRE = regexp.MustCompile(`^(drevald|obs|go)_[a-z0-9_]+$`)

// eventFieldRE is the wide-event annotation naming contract: custom
// fields attached via Builder.Annotate must be lowerCamel, like the
// canonical Event fields they sit beside in the flat JSON object —
// /debug/events filters and downstream JSONL consumers key on exact
// field names, so one casing convention is load-bearing.
var eventFieldRE = regexp.MustCompile(`^[a-z][a-zA-Z0-9]*$`)

// ObsHygiene enforces the telemetry contracts that keep the
// observability layer trustworthy: metric names must match
// ^(drevald|obs|go)_[a-z0-9_]+$ and be non-empty, Help registrations
// must carry a non-empty description, logger key=value calls must have
// even arity (an odd tail becomes !badkey noise), Span.End must be
// deferred so panics and early returns still record the span, and
// wide-event Annotate field names must be non-empty lowerCamel so they
// sit consistently beside the canonical Event fields.
var ObsHygiene = &analysis.Analyzer{
	Name: "obshygiene",
	Doc: "metric-name policy (incl. empty name/help strings), odd-arity " +
		"key=value logger calls, non-deferred Span.End, and wide-event " +
		"Annotate field naming",
	Run: runObsHygiene,
}

// loggerKVMethods maps obs.Logger methods to the index of their first
// key=value argument.
var loggerKVMethods = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1, "With": 0,
}

func runObsHygiene(pass *analysis.Pass) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method := methodRecv(pass.Info, call)
			if recv == nil {
				return true
			}
			switch {
			case namedFrom(recv, "internal/obs", "Registry"):
				switch method {
				case "Counter", "Gauge", "Histogram", "Help":
					if name, ok := constStringArg(pass.Info, call, 0); ok {
						switch {
						case name == "":
							pass.Reportf(call.Args[0].Pos(), "empty metric name: the series registers but can never be scraped by name — give it a ^(drevald|obs|go)_ name")
						case !metricNameRE.MatchString(name):
							pass.Reportf(call.Args[0].Pos(), "metric name %q violates the naming contract ^(drevald|obs|go)_[a-z0-9_]+$; pick the layer's prefix so dashboards and relabeling stay consistent", name)
						}
					}
					if method == "Help" {
						if help, ok := constStringArg(pass.Info, call, 1); ok && help == "" {
							pass.Reportf(call.Args[1].Pos(), "empty help string: the # HELP line renders blank on /metrics — describe what the series measures")
						}
					}
				}
			case namedFrom(recv, "internal/obs", "Logger"):
				if start, ok := loggerKVMethods[method]; ok && !call.Ellipsis.IsValid() {
					if kv := len(call.Args) - start; kv > 0 && kv%2 != 0 {
						pass.Reportf(call.Pos(), "%s call has %d key=value args (odd): the dangling value logs as !badkey — pair every key with a value", method, kv)
					}
				}
			case namedFrom(recv, "internal/wideevent", "Builder"):
				if method == "Annotate" {
					if name, ok := constStringArg(pass.Info, call, 0); ok {
						switch {
						case name == "":
							pass.Reportf(call.Args[0].Pos(), "empty wide-event field name: the annotation serializes under \"\" and no /debug/events filter can address it — give it a lowerCamel name")
						case !eventFieldRE.MatchString(name):
							pass.Reportf(call.Args[0].Pos(), "wide-event field name %q violates the lowerCamel contract ^[a-z][a-zA-Z0-9]*$; custom annotations sit beside the canonical fields in one flat JSON object, so they share its casing", name)
						}
					}
				}
			case namedFrom(recv, "internal/obs", "Span"):
				if method == "End" && !underDefer(stack) {
					pass.Reportf(call.Pos(), "Span.End not deferred: a panic or early return between Start and this call loses the span (and its error mark) from metrics and timelines; defer it at Start, or lint:allow with why mid-function End is required")
				}
			}
			return true
		})
	}
}

// underDefer reports whether the node whose ancestor stack is given
// executes as part of a defer: either `defer sp.End()` directly, or
// inside a deferred function literal.
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncDecl:
			return false
		case *ast.FuncLit:
			// Keep climbing: a FuncLit directly under a DeferStmt is
			// the deferred closure; one under a GoStmt or assignment
			// is not, and the next ancestor decides.
			if i > 0 {
				if _, ok := stack[i-1].(*ast.DeferStmt); ok {
					return true
				}
				if _, ok := stack[i-1].(*ast.CallExpr); ok && i > 1 {
					if _, ok := stack[i-2].(*ast.DeferStmt); ok {
						return true
					}
				}
			}
			return false
		}
	}
	return false
}
