package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"drnet/internal/analysis"
)

// HotAlloc keeps the per-record paths allocation-free. A function is
// "hot" when it is one of internal/core's estimator kernels (name
// ending in View/ViewIdx/ViewCtx/ViewIdxCtx, excluding constructors
// and fitters), or carries a marker:
//
//	//lint:hot            — the body runs once per request; allocation
//	                        inside its loops is per-record cost
//	//lint:hot perrecord  — the whole body runs once per record; any
//	                        allocation at all is per-record cost
//
// Hotness propagates through the package call graph: a callee of a hot
// function is hot too, and a callee invoked inside one of the hot
// body's loops inherits the stricter per-record grade. Flagged
// constructs: make, map/slice composite literals, &T{...}, new,
// append (growth can reallocate), closures capturing enclosing locals,
// and implicit interface boxing of concrete non-pointer values at call
// sites. Calls that resolve into other packages are opaque — the
// analyzer trusts their documented allocation behavior (soundness
// caveat; see DESIGN.md).
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "heap allocation (make, literals, append growth, closure " +
		"capture, interface boxing) on hot estimator/journal paths",
	Run: runHotAlloc,
}

type hotness int

const (
	notHot  hotness = iota
	bodyHot         // allocations inside the body's loops are per-record
	loopHot         // the whole body is per-record: any allocation counts
)

// hotFactKey publishes each hot function's grade into the fact store.
const hotFactKey = "hotalloc.hot"

// estimatorSuffixes are the internal/core kernel naming conventions.
var estimatorSuffixes = []string{"View", "ViewIdx", "ViewCtx", "ViewIdxCtx"}

// estimatorPrefixSkip excludes constructors/fitters/builders that
// merely end in a kernel suffix (NewView, buildView, ...): they run
// once per trace, not once per record.
var estimatorPrefixSkip = []string{"New", "Fit", "Bootstrap", "build"}

func runHotAlloc(pass *analysis.Pass) {
	cg := pass.CallGraph()
	hot := map[*types.Func]hotness{}
	why := map[*types.Func]string{}

	// Seeds.
	for _, fi := range cg.Decls() {
		h, reason := seedHotness(pass, fi.Decl)
		if h > hot[canonFunc(fi.Fn)] {
			hot[canonFunc(fi.Fn)] = h
			why[canonFunc(fi.Fn)] = reason
		}
	}

	// Propagate through same-package call edges to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Decls() {
			h := hot[canonFunc(fi.Fn)]
			if h == notHot {
				continue
			}
			for _, e := range fi.Out {
				if e.Callee == nil {
					continue
				}
				callee := canonFunc(e.Callee)
				if ci := cg.Lookup(callee); ci == nil || ci.Decl == nil {
					continue // declared in another package: opaque
				}
				target := h
				if h == bodyHot && e.Site.InLoop {
					target = loopHot
				}
				if target > hot[callee] {
					hot[callee] = target
					why[callee] = "called from " + fi.Decl.Name.Name
					changed = true
				}
			}
		}
	}

	for _, fi := range cg.Decls() {
		if h := hot[canonFunc(fi.Fn)]; h != notHot {
			pass.Facts.Set(fi.Fn, hotFactKey, h)
			checkHotBody(pass, fi.Decl, h, why[canonFunc(fi.Fn)])
		}
	}
}

// canonFunc maps instantiated generic functions/methods back to their
// declared origin so graph lookups and fact keys agree.
func canonFunc(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// seedHotness classifies one declaration as a hot seed.
func seedHotness(pass *analysis.Pass, decl *ast.FuncDecl) (hotness, string) {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			switch text {
			case "lint:hot":
				return bodyHot, "//lint:hot"
			case "lint:hot perrecord":
				return loopHot, "//lint:hot perrecord"
			}
		}
	}
	if pathHasSuffix(pass.Path, "internal/core") {
		name := decl.Name.Name
		for _, p := range estimatorPrefixSkip {
			if strings.HasPrefix(name, p) {
				return notHot, ""
			}
		}
		for _, s := range estimatorSuffixes {
			if strings.HasSuffix(name, s) {
				return bodyHot, "estimator kernel"
			}
		}
	}
	return notHot, ""
}

// checkHotBody reports the allocating constructs in one hot body:
// everything for loopHot, loop-nested sites for bodyHot.
func checkHotBody(pass *analysis.Pass, decl *ast.FuncDecl, h hotness, why string) {
	name := decl.Name.Name
	origin := name
	if why != "" {
		origin = name + " (" + why + ")"
	}
	analysis.WalkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		inLoop := false
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
		if coldBranch(stack) {
			// An if-branch that ends in return executes at most once
			// per call — validation/error exits are never per-record.
			return true
		}
		if h == bodyHot && !inLoop {
			// Still descend: a loop may be deeper in the subtree.
			if what := allocDesc(pass, n, stack); what != "" {
				return !isAllocSubtreeOpaque(n)
			}
			return true
		}
		if what := allocDesc(pass, n, stack); what != "" {
			pass.Reportf(n.Pos(), "%s in hot path %s", what, origin)
			return !isAllocSubtreeOpaque(n)
		}
		return true
	})
}

// coldBranch reports whether the node whose ancestor stack is given
// sits inside an if-branch block terminated by a return, with no loop
// or function literal between that block and the node. Such code runs
// at most once per call of the enclosing function, so its allocations
// are never per-record (the cold error-exit idiom).
func coldBranch(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 1; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if _, isIf := stack[i-1].(*ast.IfStmt); !isIf {
				continue
			}
			if len(n.List) == 0 {
				continue
			}
			if _, ok := n.List[len(n.List)-1].(*ast.ReturnStmt); ok {
				return true
			}
		}
	}
	return false
}

// isAllocSubtreeOpaque reports whether, having flagged n, its children
// should be skipped to avoid double counting (a &T{...} contains a
// composite literal; flagging both is noise).
func isAllocSubtreeOpaque(n ast.Node) bool {
	switch n.(type) {
	case *ast.UnaryExpr, *ast.FuncLit:
		return true
	}
	return false
}

// allocDesc classifies one node as an allocating construct, returning
// a human-readable description or "".
func allocDesc(pass *analysis.Pass, n ast.Node, stack []ast.Node) string {
	info := pass.Info
	switch n := n.(type) {
	case *ast.CompositeLit:
		// &T{...} is reported at the UnaryExpr; T{...} of map/slice
		// type heap-allocates its backing store directly.
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				return ""
			}
		}
		t := info.TypeOf(n)
		if t == nil {
			return ""
		}
		switch t.Underlying().(type) {
		case *types.Map:
			return "map literal allocates"
		case *types.Slice:
			return "slice literal allocates"
		}
		return ""
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				return "&composite literal allocates"
			}
		}
		return ""
	case *ast.FuncLit:
		if capturesLocals(info, n) {
			return "closure capturing locals allocates"
		}
		return ""
	case *ast.CallExpr:
		return callAllocDesc(info, n)
	}
	return ""
}

// callAllocDesc classifies a call expression: allocating builtins,
// type conversions to interface, and implicit interface boxing of
// concrete non-pointer arguments.
func callAllocDesc(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b != nil {
			switch id.Name {
			case "make":
				return "make allocates"
			case "new":
				return "new allocates"
			case "append":
				return "append may grow its backing array"
			}
			return ""
		}
	}
	// Conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(info, call.Args[0]) {
			return "conversion to interface boxes its operand"
		}
		return ""
	}
	// Implicit boxing at argument positions with interface parameters.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return ""
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if boxes(info, arg) {
			return "passing a non-pointer value as an interface boxes it"
		}
	}
	return ""
}

// boxes reports whether storing arg's value in an interface heap-
// allocates: a concrete non-pointer value does; interfaces, pointers,
// nils and untyped constants folded at compile time do not count.
func boxes(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[info1(arg)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return false
	}
	return true
}

// info1 unwraps parens so Types lookups hit the recorded expression.
func info1(e ast.Expr) ast.Expr { return ast.Unparen(e) }

// capturesLocals reports whether lit references variables (locals,
// parameters, receivers) declared in an enclosing function — the
// condition under which the closure and its captured frame escape to
// the heap. Package-level variables do not capture.
func capturesLocals(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v == nil || v.IsField() || v.Pos() == token.NoPos {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package scope
		}
		// Declared lexically before the literal (and not inside it):
		// an enclosing function's variable.
		if v.Pos() < lit.Pos() {
			captured = true
			return false
		}
		return true
	})
	return captured
}
