package analysis

// Package-level call graphs for the interprocedural analyzers. The
// graph is built per package from resolved identifier uses (stdlib
// go/types only): direct calls to package functions and methods become
// call edges, and a *reference* to a package function outside call
// position (a method value handed to another API) becomes a reference
// edge, treated conservatively as a potential call. Calls that resolve
// into other packages are kept as edges too (the callee just has no
// Decl), so analyzers can decide how to treat opaque boundaries.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallSite is one use of a function inside another function's body.
type CallSite struct {
	// Call is the invoking expression; nil when the function was only
	// referenced (method value / function value) rather than called.
	Call *ast.CallExpr
	// Ref is the identifier or selector that named the callee.
	Ref ast.Node
	// InLoop reports whether the site sits lexically inside a for or
	// range statement of the enclosing declaration (loops inside nested
	// function literals count; a literal's body may itself be invoked
	// per iteration, which lexical nesting approximates).
	InLoop bool
}

// Edge is one caller→callee relationship at one site.
type Edge struct {
	Caller *types.Func // nil for package-level initializer expressions
	Callee *types.Func
	Site   CallSite
}

// FuncInfo aggregates what the graph knows about one function object.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil when declared in another package
	Out  []Edge        // calls made by this function's body
	In   []Edge        // sites where this function is called/referenced
}

// CallGraph is the package-level call graph.
type CallGraph struct {
	funcs map[*types.Func]*FuncInfo
}

// Lookup returns the node for fn, or nil if fn never appears in the
// package (neither declared nor referenced).
func (g *CallGraph) Lookup(fn *types.Func) *FuncInfo {
	return g.funcs[fn]
}

// Decls returns the functions declared (with bodies) in the package,
// sorted by source position for deterministic iteration.
func (g *CallGraph) Decls() []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range g.funcs {
		if fi.Decl != nil {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// BuildCallGraph constructs the call graph of one loaded package.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{funcs: map[*types.Func]*FuncInfo{}}
	node := func(fn *types.Func) *FuncInfo {
		fi, ok := g.funcs[fn]
		if !ok {
			fi = &FuncInfo{Fn: fn}
			g.funcs[fn] = fi
		}
		return fi
	}
	// Register declarations first so Decls is complete even for
	// functions nobody calls.
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok && fn != nil {
				node(fn).Decl = fd
			}
		}
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, _ := info.Defs[fd.Name].(*types.Func)
			collectSites(fd.Body, info, caller, g, node)
		}
	}
	return g
}

// collectSites walks one body recording call and reference edges with
// their lexical loop depth.
func collectSites(body *ast.BlockStmt, info *types.Info, caller *types.Func, g *CallGraph, node func(*types.Func) *FuncInfo) {
	// callFuns maps the Fun expression of each call so identifier
	// visits can tell "named in call position" from "referenced".
	callFuns := map[ast.Node]*ast.CallExpr{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = call
		}
		return true
	})
	WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		var id *ast.Ident
		var ref ast.Node
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ref = n.Sel, n
		case *ast.Ident:
			// The Sel of a selector was already handled at the
			// selector node; visiting it again would double-count.
			if len(stack) > 0 {
				if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true
				}
			}
			id, ref = n, n
		default:
			return true
		}
		callee, ok := info.Uses[id].(*types.Func)
		if !ok || callee == nil {
			return true
		}
		inLoop := false
		for _, anc := range stack {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
		site := CallSite{Ref: ref, InLoop: inLoop}
		if call, ok := callFuns[ref]; ok {
			site.Call = call
		}
		e := Edge{Caller: caller, Callee: callee, Site: site}
		node(callee).In = append(node(callee).In, e)
		if caller != nil {
			node(caller).Out = append(node(caller).Out, e)
		}
		return true
	})
}

// CallersOf returns the in-edges of fn whose callers have bodies in
// this package, in deterministic source order.
func (g *CallGraph) CallersOf(fn *types.Func) []Edge {
	fi := g.funcs[fn]
	if fi == nil {
		return nil
	}
	out := make([]Edge, 0, len(fi.In))
	for _, e := range fi.In {
		if e.Caller != nil && g.funcs[e.Caller] != nil && g.funcs[e.Caller].Decl != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return refPos(out[i]) < refPos(out[j]) })
	return out
}

func refPos(e Edge) token.Pos {
	if e.Site.Ref != nil {
		return e.Site.Ref.Pos()
	}
	return token.NoPos
}
