package broken

// Fine returns a constant; it must survive the sibling parse failure.
func Fine() int { return 42 }
