// This file deliberately fails to parse: the loader must degrade to
// the files that do parse instead of crashing or hiding the package.
package broken

func unfinished( {
