// This file parses but does not type-check: the loader must surface
// the type error in Errs while keeping the AST analyzable.
package typeerr

func Uses() int {
	return undefinedIdentifier + 1
}
