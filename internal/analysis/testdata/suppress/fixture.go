// Fixture for suppression matching. The test's probe analyzer reports
// one diagnostic per := statement under the check name "probe".
package fixture

func standalone() {
	//lint:allow probe checked by hand
	x := 1
	_ = x
}

func trailing() {
	y := 2 //lint:allow probe measured exhaustively
	_ = y
}

func unsuppressed() {
	z := 3
	_ = z
}

func wrongCheck() {
	//lint:allow othercheck reason does not transfer across checks
	w := 4
	_ = w
}

func missingReason() {
	//lint:allow probe
	v := 5
	_ = v
}

func missingEverything() {
	//lint:allow
	u := 6
	_ = u
}
