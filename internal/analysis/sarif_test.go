package analysis_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"drnet/internal/analysis"
)

func sampleDiags() []analysis.Diagnostic {
	return []analysis.Diagnostic{
		{File: "/repo/internal/core/a.go", Line: 10, Col: 3, Check: "hotalloc", Message: "make allocates in hot path DirectView (estimator kernel)"},
		{File: "/repo/cmd/drevald/b.go", Line: 42, Col: 1, Check: "lockguard", Message: "rewards is guarded by mu but accessed without holding it; acquire mu or move this access into a *Locked method"},
		{File: "", Line: 0, Col: 0, Check: "load", Message: "package x: parse error"},
	}
}

func sampleAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		{Name: "lockguard", Doc: "guarded-by field accesses must hold the named mutex"},
		{Name: "hotalloc", Doc: "hot-path functions must not heap-allocate"},
	}
}

// TestSARIFDeterministic locks down byte-stability: CI diffs
// consecutive uploads, so identical inputs must marshal identically.
func TestSARIFDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 5; i++ {
		out, err := analysis.SARIF(sampleDiags(), sampleAnalyzers(), "/repo")
		if err != nil {
			t.Fatalf("SARIF: %v", err)
		}
		if first == nil {
			first = out
			continue
		}
		if !bytes.Equal(out, first) {
			t.Fatalf("run %d produced different bytes:\n%s\nvs\n%s", i, out, first)
		}
	}
	if first[len(first)-1] != '\n' {
		t.Error("output must end in a newline")
	}
}

// TestSARIFShape validates the structural contract GitHub code
// scanning depends on: schema/version header, one run, a sorted rule
// table covering every selected analyzer plus the runner's lint/load
// meta-rules, ruleIndex agreeing with that table, and root-relative
// slash-separated URIs under %SRCROOT%.
func TestSARIFShape(t *testing.T) {
	out, err := analysis.SARIF(sampleDiags(), sampleAnalyzers(), "/repo")
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("header = %q %q, want SARIF 2.1.0", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "drevallint" {
		t.Errorf("driver = %q, want drevallint", run.Tool.Driver.Name)
	}
	var ids []string
	for _, r := range run.Tool.Driver.Rules {
		ids = append(ids, r.ID)
	}
	if !sortedStrings(ids) {
		t.Errorf("rules not sorted: %v", ids)
	}
	for _, want := range []string{"lockguard", "hotalloc", "lint", "load"} {
		if !containsString(ids, want) {
			t.Errorf("rule table missing %q: %v", want, ids)
		}
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	for _, res := range run.Results {
		if res.Level != "error" {
			t.Errorf("level = %q, want error", res.Level)
		}
		if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != res.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, want %q", res.RuleIndex, got, res.RuleID)
		}
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/a.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact = %+v, want root-relative URI under %%SRCROOT%%", loc.ArtifactLocation)
	}
	if loc.Region == nil || loc.Region.StartLine != 10 {
		t.Errorf("region = %+v, want startLine 10", loc.Region)
	}
	// The positionless load error must carry no location at all (and in
	// particular no zero-valued region, which code scanning rejects).
	for _, res := range run.Results {
		if res.RuleID == "load" && len(res.Locations) != 0 {
			t.Errorf("load error must have no location, got %+v", res.Locations)
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

func containsString(s []string, want string) bool {
	for _, v := range s {
		if v == want {
			return true
		}
	}
	return false
}
