package analysis

// The fact store lets analyzers attach findings to types.Objects and
// read them back across function boundaries — the piece that turns the
// per-file AST checks into interprocedural analyses. Facts live for
// one package run: Run creates one store per package and hands it to
// every analyzer in sequence, so an analyzer can also consume facts a
// predecessor published (the analyzer slice order in checks.All is
// therefore part of the contract).

import (
	"go/types"
	"sort"
)

// Facts is a per-package fact store keyed by (object, fact name).
type Facts struct {
	m map[types.Object]map[string]any
}

// NewFacts returns an empty store.
func NewFacts() *Facts {
	return &Facts{m: map[types.Object]map[string]any{}}
}

// Set records fact key = val on obj, replacing any previous value.
func (f *Facts) Set(obj types.Object, key string, val any) {
	if obj == nil {
		return
	}
	m, ok := f.m[obj]
	if !ok {
		m = map[string]any{}
		f.m[obj] = m
	}
	m[key] = val
}

// Get returns the fact key attached to obj, if any.
func (f *Facts) Get(obj types.Object, key string) (any, bool) {
	if obj == nil {
		return nil, false
	}
	v, ok := f.m[obj][key]
	return v, ok
}

// Objects returns every object carrying fact key, sorted by source
// position so iteration (and therefore diagnostics derived from it)
// is deterministic.
func (f *Facts) Objects(key string) []types.Object {
	var out []types.Object
	for obj, m := range f.m {
		if _, ok := m[key]; ok {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos() != out[j].Pos() {
			return out[i].Pos() < out[j].Pos()
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
