package analysis

// Baselines freeze a tree's pre-existing findings so a new analyzer
// can be adopted without a flag-day cleanup: `drevallint
// -write-baseline lint-baseline.json` records today's findings, and
// subsequent runs with `-baseline lint-baseline.json` report only
// findings NOT in the file — new regressions fail the build while the
// frozen debt stays visible in the baseline for later burn-down.
//
// A fingerprint is (module-root-relative file, check, message) with a
// count — deliberately line-insensitive, so unrelated edits that shift
// a frozen finding up or down the file do not resurrect it. If a file
// accumulates an ADDITIONAL identical finding, the count excess is
// reported.

import (
	"encoding/json"
	"fmt"
	"sort"
)

// baselineVersion guards the file format.
const baselineVersion = 1

// Baseline is the serialized form.
type Baseline struct {
	Version  int               `json:"version"`
	Findings []BaselineFinding `json:"findings"`
}

// BaselineFinding is one frozen fingerprint with its multiplicity.
type BaselineFinding struct {
	File    string `json:"file"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

func fingerprint(root string, d Diagnostic) BaselineFinding {
	return BaselineFinding{File: relURI(root, d.File), Check: d.Check, Message: d.Message}
}

// WriteBaseline serializes the given diagnostics as a baseline file,
// deterministically sorted and counted.
func WriteBaseline(diags []Diagnostic, root string) ([]byte, error) {
	counts := map[BaselineFinding]int{}
	for _, d := range diags {
		counts[fingerprint(root, d)]++
	}
	b := Baseline{Version: baselineVersion, Findings: make([]BaselineFinding, 0, len(counts))}
	for f, n := range counts {
		f.Count = n
		b.Findings = append(b.Findings, f)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseBaseline decodes and validates a baseline file.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline: unsupported version %d (want %d)", b.Version, baselineVersion)
	}
	return &b, nil
}

// Filter returns the diagnostics NOT covered by the baseline: each
// fingerprint absorbs up to its frozen count, in the runner's
// deterministic order; the excess (new regressions) survives.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	budget := map[BaselineFinding]int{}
	for _, f := range b.Findings {
		key := f
		key.Count = 0
		budget[key] += f.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		key := fingerprint(root, d)
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}
