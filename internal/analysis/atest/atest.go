// Package atest is the fixture harness for drevallint analyzers — the
// repo's stdlib stand-in for golang.org/x/tools' analysistest. A
// fixture is a directory of Go files annotated with
//
//	offending() // want "regexp matching the diagnostic"
//
// comments; Run loads the directory under a caller-chosen import path
// (so path-scoped analyzers see the package they expect), applies the
// analyzer plus the framework's //lint:allow filtering, and fails the
// test on any unmatched want or unexpected diagnostic.
package atest

import (
	"regexp"
	"strconv"
	"testing"

	"drnet/internal/analysis"
)

// wantRE pulls the quoted patterns out of a `// want "a" "b"` comment.
var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run analyzes the fixture directory as package asPath and asserts the
// diagnostics exactly match the fixture's want comments.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if len(pkg.Errs) > 0 {
		t.Fatalf("fixture %s failed to load cleanly: %v", dir, pkg.Errs)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	wants := collectWants(t, pkg)
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// collectWants reads the want comments out of the already-parsed
// fixture files, keyed by the position of the comment itself (want
// comments trail the offending line).
func collectWants(t *testing.T, pkg *analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: want pattern %q does not compile: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
