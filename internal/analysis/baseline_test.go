package analysis_test

import (
	"bytes"
	"testing"

	"drnet/internal/analysis"
)

// TestBaselineRoundTrip is the adoption contract: freezing a tree's
// findings and immediately filtering against the frozen file must
// suppress every one of them.
func TestBaselineRoundTrip(t *testing.T) {
	diags := sampleDiags()
	data, err := analysis.WriteBaseline(diags, "/repo")
	if err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := analysis.ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if left := b.Filter(diags, "/repo"); len(left) != 0 {
		t.Fatalf("round trip left %d findings: %+v", len(left), left)
	}
}

// TestBaselineLineInsensitive: unrelated edits shift frozen findings
// up and down the file; the fingerprint must not care.
func TestBaselineLineInsensitive(t *testing.T) {
	diags := sampleDiags()
	data, err := analysis.WriteBaseline(diags, "/repo")
	if err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := analysis.ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	moved := make([]analysis.Diagnostic, len(diags))
	copy(moved, diags)
	for i := range moved {
		moved[i].Line += 100
		moved[i].Col = 1
	}
	if left := b.Filter(moved, "/repo"); len(left) != 0 {
		t.Fatalf("line shift resurrected %d findings: %+v", len(left), left)
	}
}

// TestBaselineExcessCountSurvives: a frozen fingerprint absorbs only
// its recorded multiplicity — an ADDITIONAL identical finding is a
// regression and must be reported.
func TestBaselineExcessCountSurvives(t *testing.T) {
	d := analysis.Diagnostic{File: "/repo/a.go", Line: 1, Check: "hotalloc", Message: "make allocates in hot path F (//lint:hot)"}
	data, err := analysis.WriteBaseline([]analysis.Diagnostic{d, d}, "/repo")
	if err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := analysis.ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	three := []analysis.Diagnostic{d, d, d}
	left := b.Filter(three, "/repo")
	if len(left) != 1 {
		t.Fatalf("count 2 baseline against 3 findings left %d, want 1", len(left))
	}
}

// TestBaselineNewFindingSurvives: a finding absent from the baseline
// passes through untouched.
func TestBaselineNewFindingSurvives(t *testing.T) {
	data, err := analysis.WriteBaseline(sampleDiags(), "/repo")
	if err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := analysis.ParseBaseline(data)
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	fresh := analysis.Diagnostic{File: "/repo/new.go", Line: 7, Check: "seedflow", Message: "NewRNG seed traces to a constant on every path; derive it from a parameter or flag so runs can be varied"}
	left := b.Filter(append(sampleDiags(), fresh), "/repo")
	if len(left) != 1 || left[0].File != "/repo/new.go" {
		t.Fatalf("filter = %+v, want only the fresh seedflow finding", left)
	}
}

// TestBaselineDeterministic: the serialized file is byte-stable, so a
// re-freeze with no underlying change is a no-op diff.
func TestBaselineDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 5; i++ {
		out, err := analysis.WriteBaseline(sampleDiags(), "/repo")
		if err != nil {
			t.Fatalf("WriteBaseline: %v", err)
		}
		if first == nil {
			first = out
			continue
		}
		if !bytes.Equal(out, first) {
			t.Fatalf("run %d produced different bytes:\n%s\nvs\n%s", i, out, first)
		}
	}
}

// TestBaselineVersionGuard: an unknown version is a hard error, not a
// silently-empty baseline that would flood CI with frozen findings.
func TestBaselineVersionGuard(t *testing.T) {
	if _, err := analysis.ParseBaseline([]byte(`{"version": 99, "findings": []}`)); err == nil {
		t.Fatal("version 99 must be rejected")
	}
	if _, err := analysis.ParseBaseline([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON must be rejected")
	}
}
