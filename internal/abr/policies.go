package abr

import (
	"drnet/internal/mathx"
)

// BBA is the buffer-based policy of Huang et al. (the paper's "old ABR
// policy"): below ReservoirSec it streams the lowest bitrate, above
// ReservoirSec+CushionSec the highest, and in between it maps buffer
// occupancy linearly onto the ladder. Epsilon adds uniform exploration,
// which the logging policy needs for IPS/DR to be applicable (§4.1).
type BBA struct {
	ReservoirSec float64
	CushionSec   float64
	// Epsilon is the probability of choosing a uniformly random level
	// instead of the buffer-mapped one.
	Epsilon float64
}

// Greedy returns BBA's deterministic (pre-exploration) choice.
func (p BBA) Greedy(s State, l Ladder) int {
	reservoir := p.ReservoirSec
	if reservoir <= 0 {
		reservoir = 5
	}
	cushion := p.CushionSec
	if cushion <= 0 {
		cushion = 10
	}
	switch {
	case s.BufferSec <= reservoir:
		return 0
	case s.BufferSec >= reservoir+cushion:
		return len(l) - 1
	default:
		frac := (s.BufferSec - reservoir) / cushion
		level := int(frac * float64(len(l)))
		if level >= len(l) {
			level = len(l) - 1
		}
		return level
	}
}

// Next implements ABRPolicy.
func (p BBA) Next(s State, l Ladder, rng *mathx.RNG) int {
	if p.Epsilon > 0 && rng.Bernoulli(p.Epsilon) {
		return rng.Intn(len(l))
	}
	return p.Greedy(s, l)
}

// Probabilities returns BBA's full decision distribution at a state —
// its propensities, needed by IPS/DR.
func (p BBA) Probabilities(s State, l Ladder) []float64 {
	out := make([]float64, len(l))
	share := p.Epsilon / float64(len(l))
	for i := range out {
		out[i] = share
	}
	out[p.Greedy(s, l)] += 1 - p.Epsilon
	return out
}

// RateBased picks the highest bitrate below Safety × predicted
// throughput (FESTIVE-style).
type RateBased struct {
	Predictor Predictor
	// Safety discounts the prediction (default 0.85).
	Safety float64
}

// Next implements ABRPolicy.
func (p RateBased) Next(s State, l Ladder, _ *mathx.RNG) int {
	safety := p.Safety
	if safety <= 0 {
		safety = 0.85
	}
	est := p.Predictor.Predict(s.Observed)
	return l.HighestBelow(safety * est)
}

// MPC is a model-predictive ABR controller in the style of FastMPC: it
// enumerates all bitrate sequences over a lookahead horizon, simulates
// buffer evolution under the predicted throughput, and picks the first
// step of the sequence maximizing the QoE objective.
//
// Crucially — and this is the bias the paper's Figure 2 illustrates —
// MPC's internal model assumes the observed throughput is independent of
// the chosen bitrate.
type MPC struct {
	Predictor Predictor
	// Horizon is the lookahead depth in chunks (default 3).
	Horizon int
	// ChunkSec must match the session's chunk duration (default 4).
	ChunkSec float64
	// Weights are the QoE weights being optimized (default
	// DefaultQoEWeights).
	Weights QoEWeights
}

// Next implements ABRPolicy.
func (p MPC) Next(s State, l Ladder, _ *mathx.RNG) int {
	horizon := p.Horizon
	if horizon <= 0 {
		horizon = 3
	}
	chunkSec := p.ChunkSec
	if chunkSec <= 0 {
		chunkSec = 4
	}
	weights := p.Weights
	if weights == (QoEWeights{}) {
		weights = DefaultQoEWeights()
	}
	est := p.Predictor.Predict(s.Observed)
	if est <= 0 {
		return 0
	}
	bestFirst, bestScore := 0, negInf
	seq := make([]int, horizon)
	var search func(depth int, buffer float64, lastLevel int, score float64)
	search = func(depth int, buffer float64, lastLevel int, score float64) {
		if depth == horizon {
			if score > bestScore {
				bestScore = score
				bestFirst = seq[0]
			}
			return
		}
		for level := 0; level < len(l); level++ {
			seq[depth] = level
			dl := l[level] * chunkSec / est
			b := buffer
			rebuf := 0.0
			if dl > b {
				rebuf = dl - b
				b = 0
			} else {
				b -= dl
			}
			b += chunkSec
			q := l.Quality(level)
			gain := q - weights.RebufferPenalty*rebuf
			if lastLevel >= 0 {
				gain -= weights.SwitchPenalty * absf(q-l.Quality(lastLevel))
			}
			search(depth+1, b, level, score+gain)
		}
	}
	search(0, s.BufferSec, s.LastLevel, 0)
	return bestFirst
}

const negInf = -1e300

// FixedLevel always streams one ladder level; useful as a degenerate
// baseline and in tests.
type FixedLevel struct {
	Level int
}

// Next implements ABRPolicy.
func (p FixedLevel) Next(_ State, l Ladder, _ *mathx.RNG) int {
	if p.Level < 0 {
		return 0
	}
	if p.Level >= len(l) {
		return len(l) - 1
	}
	return p.Level
}
