package abr

import (
	"errors"
	"fmt"
	"sort"

	"drnet/internal/mathx"
)

// FESTIVE is a FESTIVE-style rate policy [17]: rate-based selection with
// a harmonic-mean predictor, gradual switching (at most one ladder rung
// per chunk), and randomized chunk scheduling smoothing (modeled here as
// a small exploration probability).
type FESTIVE struct {
	// Window is the harmonic-mean window (default 5).
	Window int
	// Safety discounts the throughput estimate (default 0.85).
	Safety float64
	// Epsilon randomizes the choice by one rung occasionally to break
	// synchronization between competing players (default 0).
	Epsilon float64
}

// Next implements ABRPolicy.
func (p FESTIVE) Next(s State, l Ladder, rng *mathx.RNG) int {
	window := p.Window
	if window <= 0 {
		window = 5
	}
	safety := p.Safety
	if safety <= 0 {
		safety = 0.85
	}
	est := HarmonicMean{Window: window, Prior: l[0]}.Predict(s.Observed)
	target := l.HighestBelow(safety * est)
	// Gradual switching: move at most one rung per chunk.
	cur := s.LastLevel
	if cur < 0 {
		cur = 0
	}
	switch {
	case target > cur:
		target = cur + 1
	case target < cur:
		target = cur - 1
	}
	if target < 0 {
		target = 0
	}
	if target >= len(l) {
		target = len(l) - 1
	}
	if p.Epsilon > 0 && rng != nil && rng.Bernoulli(p.Epsilon) {
		if rng.Bernoulli(0.5) && target+1 < len(l) {
			target++
		} else if target > 0 {
			target--
		}
	}
	return target
}

// ComparisonRow is one algorithm's outcome in a head-to-head comparison.
type ComparisonRow struct {
	Name string
	// MeanQoE is the mean per-chunk QoE across sessions.
	MeanQoE float64
	// MeanRebufferSec is the mean total stall per session.
	MeanRebufferSec float64
	// MeanLevel is the average ladder index streamed.
	MeanLevel float64
	// Switches is the mean number of bitrate changes per session.
	Switches float64
}

// Compare runs every named policy over the same bandwidth realizations —
// the §2 use case "to compare multiple ABR algorithms under the same
// network conditions" [31, 37, 42] — and returns per-algorithm summary
// rows sorted by mean QoE (best first). sessions independent bandwidth
// series are drawn from the process; every policy sees the same series.
func Compare(cfg SessionConfig, policies map[string]ABRPolicy, process BandwidthProcess, sessions int, rng *mathx.RNG) ([]ComparisonRow, error) {
	if len(policies) == 0 {
		return nil, errors.New("abr: no policies to compare")
	}
	if sessions <= 0 {
		return nil, errors.New("abr: need at least one session")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	// Pre-draw the shared bandwidth series.
	series := make([][]float64, sessions)
	for i := range series {
		series[i] = process.Series(cfg.NumChunks, rng)
	}
	names := make([]string, 0, len(policies))
	for name := range policies {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic order (and RNG consumption)

	rows := make([]ComparisonRow, 0, len(policies))
	for _, name := range names {
		policy := policies[name]
		var qoe, rebuf, level, switches float64
		for i := 0; i < sessions; i++ {
			// Each policy gets its own RNG stream per session so a
			// stochastic policy cannot perturb others.
			prng := mathx.NewRNG(int64(i)*7919 + int64(len(name)))
			res, err := Simulate(cfg, policy, series[i], prng)
			if err != nil {
				return nil, fmt.Errorf("abr: %s session %d: %w", name, i, err)
			}
			qoe += res.MeanChunkQoE()
			rebuf += res.TotalRebufferSec
			prev := -1
			for _, out := range res.Outcomes {
				level += float64(out.Level)
				if prev >= 0 && out.Level != prev {
					switches++
				}
				prev = out.Level
			}
		}
		n := float64(sessions)
		rows = append(rows, ComparisonRow{
			Name:            name,
			MeanQoE:         qoe / n,
			MeanRebufferSec: rebuf / n,
			MeanLevel:       level / n / float64(cfg.NumChunks),
			Switches:        switches / n,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].MeanQoE > rows[j].MeanQoE })
	return rows, nil
}
