package abr

import (
	"errors"
	"math"

	"drnet/internal/mathx"
)

// BandwidthProcess generates the true available bandwidth (Kbps) for
// each chunk slot of a session.
type BandwidthProcess interface {
	// Series returns n per-chunk available bandwidths.
	Series(n int, rng *mathx.RNG) []float64
}

// ConstantBandwidth is the paper's Figure 7b setting: "the available
// bandwidth is a constant b".
type ConstantBandwidth struct {
	Kbps float64
}

// Series implements BandwidthProcess.
func (c ConstantBandwidth) Series(n int, _ *mathx.RNG) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = c.Kbps
	}
	return out
}

// LogNormalAR is a mean-reverting log-normal bandwidth process — a
// standard synthetic stand-in for cellular/Wi-Fi throughput traces. The
// log-bandwidth follows an AR(1) around log(MeanKbps).
type LogNormalAR struct {
	MeanKbps float64
	// Sigma is the stationary standard deviation of log-bandwidth.
	Sigma float64
	// Rho is the AR(1) coefficient in [0, 1).
	Rho float64
}

// Series implements BandwidthProcess.
func (p LogNormalAR) Series(n int, rng *mathx.RNG) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	mu := math.Log(p.MeanKbps)
	innov := p.Sigma
	if p.Rho > 0 {
		innov = p.Sigma * math.Sqrt(1-p.Rho*p.Rho)
	}
	x := rng.Normal(0, p.Sigma)
	for i := range out {
		out[i] = math.Exp(mu + x)
		x = p.Rho*x + rng.Normal(0, innov)
	}
	return out
}

// StepBandwidth switches between two constant levels at a fixed chunk
// index — useful for testing policy reactivity and change-point
// scenarios.
type StepBandwidth struct {
	BeforeKbps, AfterKbps float64
	StepAt                int
}

// Series implements BandwidthProcess.
func (p StepBandwidth) Series(n int, _ *mathx.RNG) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i < p.StepAt {
			out[i] = p.BeforeKbps
		} else {
			out[i] = p.AfterKbps
		}
	}
	return out
}

// Predictor estimates the next chunk's throughput from the observed
// download throughputs so far.
type Predictor interface {
	// Predict returns the throughput estimate (Kbps) given the history
	// of observed throughputs, oldest first. It must handle an empty
	// history (return a prior).
	Predict(observed []float64) float64
}

// LastSample predicts the most recent observation (FESTIVE-style naive
// predictor).
type LastSample struct {
	// Prior is returned when no observations exist.
	Prior float64
}

// Predict implements Predictor.
func (p LastSample) Predict(observed []float64) float64 {
	if len(observed) == 0 {
		return p.Prior
	}
	return observed[len(observed)-1]
}

// HarmonicMean predicts the harmonic mean of the last Window
// observations — the FastMPC paper's throughput predictor, robust to
// outliers on the high side.
type HarmonicMean struct {
	Window int
	Prior  float64
}

// Predict implements Predictor.
func (p HarmonicMean) Predict(observed []float64) float64 {
	if len(observed) == 0 {
		return p.Prior
	}
	w := p.Window
	if w <= 0 {
		w = 5
	}
	if w > len(observed) {
		w = len(observed)
	}
	recent := observed[len(observed)-w:]
	s := 0.0
	for _, o := range recent {
		if o <= 0 {
			return p.Prior
		}
		s += 1 / o
	}
	return float64(len(recent)) / s
}

// EWMA predicts an exponentially weighted moving average with the given
// smoothing factor Alpha in (0, 1].
type EWMA struct {
	Alpha float64
	Prior float64
}

// Predict implements Predictor.
func (p EWMA) Predict(observed []float64) float64 {
	if len(observed) == 0 {
		return p.Prior
	}
	alpha := p.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	est := observed[0]
	for _, o := range observed[1:] {
		est = alpha*o + (1-alpha)*est
	}
	return est
}

var errNoBandwidth = errors.New("abr: bandwidth series shorter than session")
