// Package abr simulates HTTP adaptive-bitrate video streaming: chunked
// sessions with buffer dynamics, rebuffering, QoE accounting, classic
// ABR policies (buffer-based BBA, rate-based, and model-predictive
// FastMPC-style control), and the bitrate-dependent throughput
// observation model at the heart of the paper's Figure 2 / Figure 7b:
// the throughput a client observes while downloading a chunk is
// b·p(r) — a fraction of the available bandwidth b that shrinks for
// small (low-bitrate) chunks because TCP never reaches steady state.
package abr

import (
	"errors"
	"fmt"
	"math"
)

// Ladder is an ascending set of available bitrates in Kbps.
type Ladder []float64

// DefaultLadder is a typical five-level ladder (the paper's "five
// bitrate levels"), in Kbps: 240p … 1080p.
func DefaultLadder() Ladder {
	return Ladder{350, 750, 1200, 1850, 2850}
}

// Validate checks that the ladder is non-empty, positive and ascending.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return errors.New("abr: empty ladder")
	}
	prev := 0.0
	for i, r := range l {
		if r <= prev {
			return fmt.Errorf("abr: ladder not strictly ascending at index %d (%g after %g)", i, r, prev)
		}
		prev = r
	}
	return nil
}

// Quality maps a bitrate to perceptual quality. Following the FastMPC
// formulation we use q(r) = log(r / r_min), so quality gains saturate at
// high bitrates.
func (l Ladder) Quality(level int) float64 {
	return math.Log(l[level] / l[0])
}

// HighestBelow returns the highest ladder index whose bitrate does not
// exceed kbps, or 0 when even the lowest bitrate exceeds it.
func (l Ladder) HighestBelow(kbps float64) int {
	best := 0
	for i, r := range l {
		if r <= kbps {
			best = i
		}
	}
	return best
}

// ObservationModel captures how the observed throughput of a chunk
// download relates to the true available bandwidth: observed = b·p(r)
// where p(r) ∈ (0, 1] increases monotonically with the chunk's bitrate
// (small chunks under-utilize the path). PMin is p at the lowest ladder
// rung; p reaches 1 at the top rung.
type ObservationModel struct {
	Ladder Ladder
	// PMin is the utilization fraction at the lowest bitrate, in (0, 1].
	PMin float64
}

// P returns the utilization fraction p(r) for a ladder level.
func (m ObservationModel) P(level int) float64 {
	if len(m.Ladder) == 1 {
		return 1
	}
	frac := float64(level) / float64(len(m.Ladder)-1)
	return m.PMin + (1-m.PMin)*frac
}

// Observe returns the throughput (Kbps) a client observes downloading a
// chunk at the given ladder level when the true available bandwidth is
// availKbps.
func (m ObservationModel) Observe(availKbps float64, level int) float64 {
	return availKbps * m.P(level)
}

// QoEWeights weigh the three QoE components of the FastMPC objective:
// total quality − RebufferPenalty·(rebuffer seconds) −
// SwitchPenalty·(Σ |q_k − q_{k−1}|).
type QoEWeights struct {
	RebufferPenalty float64
	SwitchPenalty   float64
}

// DefaultQoEWeights mirrors common FastMPC settings.
func DefaultQoEWeights() QoEWeights {
	return QoEWeights{RebufferPenalty: 4.3, SwitchPenalty: 1}
}

// ChunkOutcome records what happened for one chunk of a simulated
// session.
type ChunkOutcome struct {
	// Level is the ladder index chosen.
	Level int
	// ObservedKbps is the throughput observed during the download.
	ObservedKbps float64
	// DownloadSec is how long the chunk took to fetch.
	DownloadSec float64
	// RebufferSec is the stall time incurred by this chunk.
	RebufferSec float64
	// BufferAfterSec is the playout buffer after the chunk arrived.
	BufferAfterSec float64
}

// SessionResult summarizes a simulated session.
type SessionResult struct {
	Outcomes []ChunkOutcome
	// QoE is the total session QoE under the weights used.
	QoE float64
	// TotalRebufferSec is the summed stall time.
	TotalRebufferSec float64
}

// MeanChunkQoE returns QoE per chunk, the session-size-independent
// metric used when comparing evaluators.
func (r SessionResult) MeanChunkQoE() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	return r.QoE / float64(len(r.Outcomes))
}
