package abr

import (
	"math"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func figure7bScenario() *Scenario {
	return &Scenario{
		Config: SessionConfig{
			Ladder:    DefaultLadder(),
			NumChunks: 100, // the paper's "video session with 100 chunks"
			Observation: ObservationModel{
				Ladder: DefaultLadder(),
				PMin:   0.55,
			},
		},
		BandwidthKbps: 1200,
		OldPolicy:     BBA{ReservoirSec: 5, CushionSec: 10, Epsilon: 0.2},
	}
}

func TestCollectValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	s := figure7bScenario()
	s.OldPolicy.Epsilon = 0
	if _, err := s.Collect(rng); err == nil {
		t.Fatal("no exploration should fail")
	}
	s = figure7bScenario()
	s.BandwidthKbps = 0
	if _, err := s.Collect(rng); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
	s = figure7bScenario()
	s.Config.Observation.PMin = 1
	if _, err := s.Collect(rng); err == nil {
		t.Fatal("PMin=1 should fail (no bias to study)")
	}
}

func TestCollectProducesValidTrace(t *testing.T) {
	rng := mathx.NewRNG(2)
	s := figure7bScenario()
	d, err := s.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trace) != 100 || len(d.Contexts) != 100 {
		t.Fatalf("trace %d, contexts %d", len(d.Trace), len(d.Contexts))
	}
	if err := d.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, rec := range d.Trace {
		// The logged reward equals the true reward at the logged
		// decision (outcomes are deterministic given context).
		if got := d.TrueReward(rec.Context, rec.Decision); math.Abs(got-rec.Reward) > 1e-9 {
			t.Fatalf("record %d: logged reward %g != true reward %g", i, rec.Reward, got)
		}
	}
	if s.String() == "" {
		t.Fatal("empty scenario string")
	}
}

func TestModelRewardIsBiasedDownwardAtHighBitrates(t *testing.T) {
	// The Figure 2 mechanism: the predictor is contaminated by
	// low-bitrate observations, so the model underestimates what high
	// bitrates would achieve (over-predicts rebuffering).
	rng := mathx.NewRNG(3)
	s := figure7bScenario()
	d, err := s.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	top := len(d.Ladder) - 1
	biasedLow, total := 0, 0
	for _, c := range d.Contexts {
		if c.Index < 5 {
			continue // predictor warm-up
		}
		total++
		if d.ModelReward(c, top) < d.TrueReward(c, top)-1e-9 {
			biasedLow++
		}
	}
	if total == 0 || float64(biasedLow)/float64(total) < 0.5 {
		t.Fatalf("expected systematic underestimation at top bitrate: %d/%d", biasedLow, total)
	}
}

func TestDRBeatsFastMPCEvaluator(t *testing.T) {
	// The Figure 7b claim, in miniature: over repeated runs, DR's
	// relative evaluation error is well below the FastMPC (pure DM)
	// evaluator's.
	var dmErrs, drErrs []float64
	for run := 0; run < 30; run++ {
		rng := mathx.NewRNG(int64(100 + run))
		s := figure7bScenario()
		d, err := s.CollectMany(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		np := d.NewPolicy(0)
		truth := d.GroundTruth(np)
		model := core.RewardFunc[Chunk, int](d.ModelReward)
		dm, err := core.DirectMethod(d.Trace, np, model)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := core.DoublyRobust(d.Trace, np, model, core.DROptions{Clip: 8})
		if err != nil {
			t.Fatal(err)
		}
		dmErrs = append(dmErrs, mathx.RelativeError(truth, dm.Value))
		drErrs = append(drErrs, mathx.RelativeError(truth, dr.Value))
	}
	dmMean, drMean := mathx.Mean(dmErrs), mathx.Mean(drErrs)
	t.Logf("FastMPC evaluator error %.3f, DR error %.3f", dmMean, drMean)
	if drMean >= dmMean {
		t.Fatalf("DR error %g should beat FastMPC evaluator error %g", drMean, dmMean)
	}
}

func TestNewPolicyDeterministicAndValid(t *testing.T) {
	rng := mathx.NewRNG(4)
	s := figure7bScenario()
	d, err := s.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	np := d.NewPolicy(0)
	for _, c := range d.Contexts[:10] {
		dist := np.Distribution(c)
		if err := core.ValidateDistribution(dist); err != nil {
			t.Fatal(err)
		}
		if dist[0].Decision < 0 || dist[0].Decision >= len(d.Ladder) {
			t.Fatalf("policy chose invalid level %d", dist[0].Decision)
		}
		// Determinism.
		if again := np.Distribution(c); again[0].Decision != dist[0].Decision {
			t.Fatal("new policy not deterministic")
		}
	}
}
