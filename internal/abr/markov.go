package abr

import (
	"math"
)

// MarkovPredictor is a CS2P-style state-based throughput predictor
// (Sun et al., SIGCOMM 2016 — cited as [37] in the paper): observed
// throughput is discretized into states, a first-order Markov
// transition matrix is estimated from the session's history, and the
// next chunk's throughput is predicted as the expected next-state
// centre given the current state.
//
// Unlike the harmonic mean, a Markov predictor can anticipate
// regime-switching bandwidth (e.g. Wi-Fi ↔ cellular handoffs): after it
// has seen a few transitions, being in the "low" state predicts low
// even if the recent window average is high. With too little history to
// estimate transitions it falls back to the harmonic mean.
type MarkovPredictor struct {
	// States is the number of throughput bins (default 8).
	States int
	// MinKbps / MaxKbps bound the bin range; when zero they are taken
	// from the observed history.
	MinKbps, MaxKbps float64
	// MinHistory is the fallback threshold (default 10 observations).
	MinHistory int
	// Prior is returned when there is no history at all.
	Prior float64
}

// Predict implements Predictor.
func (p MarkovPredictor) Predict(observed []float64) float64 {
	states := p.States
	if states < 2 {
		states = 8
	}
	minHist := p.MinHistory
	if minHist <= 0 {
		minHist = 10
	}
	if len(observed) == 0 {
		return p.Prior
	}
	if len(observed) < minHist {
		return HarmonicMean{Window: minHist, Prior: p.Prior}.Predict(observed)
	}
	lo, hi := p.MinKbps, p.MaxKbps
	if lo <= 0 || hi <= lo {
		lo, hi = observed[0], observed[0]
		for _, o := range observed {
			if o < lo {
				lo = o
			}
			if o > hi {
				hi = o
			}
		}
		if hi <= lo {
			return observed[len(observed)-1] // constant history
		}
	}
	// Bin in log space: throughput is multiplicative.
	logLo, logHi := math.Log(lo), math.Log(hi)
	bin := func(v float64) int {
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		b := int(float64(states) * (math.Log(v) - logLo) / (logHi - logLo))
		if b >= states {
			b = states - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	centre := make([]float64, states)
	for s := 0; s < states; s++ {
		frac := (float64(s) + 0.5) / float64(states)
		centre[s] = math.Exp(logLo + frac*(logHi-logLo))
	}
	// Count transitions with Laplace smoothing toward self-transition.
	counts := make([][]float64, states)
	for s := range counts {
		counts[s] = make([]float64, states)
		counts[s][s] = 0.5 // sticky prior
	}
	for i := 1; i < len(observed); i++ {
		counts[bin(observed[i-1])][bin(observed[i])]++
	}
	cur := bin(observed[len(observed)-1])
	// Predict the harmonic expectation E[1/X]^-1 over the next-state
	// distribution rather than the arithmetic mean: chunk download time
	// is proportional to 1/throughput, so the harmonic aggregate is the
	// one that makes a controller's time estimates unbiased — and it is
	// conservative under regime mixtures, which matters because the QoE
	// cost of overestimating (rebuffering) far exceeds the cost of
	// underestimating (one rung lower quality).
	total, invExp := 0.0, 0.0
	for s, c := range counts[cur] {
		total += c
		invExp += c / centre[s]
	}
	if total == 0 || invExp == 0 {
		return observed[len(observed)-1]
	}
	return total / invExp
}
