package abr

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestLadderValidate(t *testing.T) {
	if err := DefaultLadder().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Ladder{}).Validate(); err == nil {
		t.Fatal("empty ladder should fail")
	}
	if err := (Ladder{500, 400}).Validate(); err == nil {
		t.Fatal("descending ladder should fail")
	}
	if err := (Ladder{0, 100}).Validate(); err == nil {
		t.Fatal("zero bitrate should fail")
	}
}

func TestLadderQuality(t *testing.T) {
	l := DefaultLadder()
	if q := l.Quality(0); q != 0 {
		t.Fatalf("lowest quality = %g, want 0", q)
	}
	for i := 1; i < len(l); i++ {
		if l.Quality(i) <= l.Quality(i-1) {
			t.Fatal("quality not increasing")
		}
	}
}

func TestHighestBelow(t *testing.T) {
	l := DefaultLadder() // 350 750 1200 1850 2850
	if got := l.HighestBelow(1000); got != 1 {
		t.Fatalf("HighestBelow(1000) = %d, want 1", got)
	}
	if got := l.HighestBelow(100); got != 0 {
		t.Fatalf("HighestBelow(100) = %d, want 0", got)
	}
	if got := l.HighestBelow(1e9); got != len(l)-1 {
		t.Fatalf("HighestBelow(inf) = %d", got)
	}
}

func TestObservationModel(t *testing.T) {
	m := ObservationModel{Ladder: DefaultLadder(), PMin: 0.5}
	if p := m.P(0); p != 0.5 {
		t.Fatalf("P(0) = %g, want 0.5", p)
	}
	if p := m.P(4); p != 1 {
		t.Fatalf("P(top) = %g, want 1", p)
	}
	for i := 1; i < 5; i++ {
		if m.P(i) <= m.P(i-1) {
			t.Fatal("p(r) must increase with bitrate")
		}
	}
	if got := m.Observe(1000, 0); got != 500 {
		t.Fatalf("Observe = %g, want 500", got)
	}
	one := ObservationModel{Ladder: Ladder{500}, PMin: 0.3}
	if one.P(0) != 1 {
		t.Fatal("single-rung ladder should have p=1")
	}
}

func TestBandwidthProcesses(t *testing.T) {
	rng := mathx.NewRNG(1)
	c := ConstantBandwidth{Kbps: 1500}.Series(10, rng)
	for _, b := range c {
		if b != 1500 {
			t.Fatal("constant bandwidth not constant")
		}
	}
	s := StepBandwidth{BeforeKbps: 100, AfterKbps: 900, StepAt: 3}.Series(6, rng)
	if s[2] != 100 || s[3] != 900 {
		t.Fatalf("step series %v", s)
	}
	ln := LogNormalAR{MeanKbps: 2000, Sigma: 0.3, Rho: 0.8}.Series(5000, rng)
	for _, b := range ln {
		if b <= 0 {
			t.Fatal("lognormal bandwidth must be positive")
		}
	}
	// Median of the log-normal is MeanKbps.
	med := mathx.Median(ln)
	if med < 1500 || med > 2700 {
		t.Fatalf("lognormal median %g far from 2000", med)
	}
	if got := (LogNormalAR{MeanKbps: 1}).Series(0, rng); len(got) != 0 {
		t.Fatal("zero-length series")
	}
}

func TestPredictors(t *testing.T) {
	if got := (LastSample{Prior: 7}).Predict(nil); got != 7 {
		t.Fatalf("LastSample prior = %g", got)
	}
	if got := (LastSample{}).Predict([]float64{1, 2, 3}); got != 3 {
		t.Fatalf("LastSample = %g", got)
	}
	hm := HarmonicMean{Window: 2, Prior: 9}
	if got := hm.Predict(nil); got != 9 {
		t.Fatalf("HarmonicMean prior = %g", got)
	}
	// Harmonic mean of 2 and 6 = 3.
	if got := hm.Predict([]float64{100, 2, 6}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("HarmonicMean = %g, want 3", got)
	}
	if got := hm.Predict([]float64{0, 5}); got != 9 {
		t.Fatalf("HarmonicMean with zero obs should return prior, got %g", got)
	}
	// Default window.
	hmd := HarmonicMean{Prior: 1}
	if got := hmd.Predict([]float64{4, 4, 4, 4, 4, 4, 4}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("HarmonicMean default window = %g", got)
	}
	ew := EWMA{Alpha: 0.5, Prior: 2}
	if got := ew.Predict(nil); got != 2 {
		t.Fatalf("EWMA prior = %g", got)
	}
	if got := ew.Predict([]float64{4, 8}); got != 6 {
		t.Fatalf("EWMA = %g, want 6", got)
	}
	// Invalid alpha falls back to 0.5.
	bad := EWMA{Alpha: 7}
	if got := bad.Predict([]float64{4, 8}); got != 6 {
		t.Fatalf("EWMA fallback alpha = %g", got)
	}
}

func TestSimulateSteadyState(t *testing.T) {
	// Plenty of bandwidth: a fixed mid-level policy should never
	// rebuffer after startup and keep the buffer at cap.
	cfg := SessionConfig{
		Ladder:    DefaultLadder(),
		NumChunks: 50,
	}
	rng := mathx.NewRNG(2)
	bw := ConstantBandwidth{Kbps: 10000}.Series(50, rng)
	res, err := Simulate(cfg, FixedLevel{Level: 2}, bw, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebufferSec > 0 {
		t.Fatalf("unexpected rebuffering %g", res.TotalRebufferSec)
	}
	last := res.Outcomes[len(res.Outcomes)-1]
	if last.BufferAfterSec != 30 {
		t.Fatalf("buffer should cap at 30, got %g", last.BufferAfterSec)
	}
	if res.MeanChunkQoE() <= 0 {
		t.Fatalf("QoE per chunk %g should be positive", res.MeanChunkQoE())
	}
}

func TestSimulateRebuffersUnderStarvation(t *testing.T) {
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 20}
	rng := mathx.NewRNG(3)
	bw := ConstantBandwidth{Kbps: 300}.Series(20, rng) // below lowest rung
	res, err := Simulate(cfg, FixedLevel{Level: 4}, bw, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRebufferSec == 0 {
		t.Fatal("starved session should rebuffer")
	}
}

func TestSimulateErrors(t *testing.T) {
	rng := mathx.NewRNG(4)
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 10}
	if _, err := Simulate(cfg, FixedLevel{}, make([]float64, 3), rng); err == nil {
		t.Fatal("short bandwidth series should fail")
	}
	bad := SessionConfig{Ladder: Ladder{}, NumChunks: 10}
	if _, err := Simulate(bad, FixedLevel{}, make([]float64, 10), rng); err == nil {
		t.Fatal("bad ladder should fail")
	}
	neg := SessionConfig{Ladder: DefaultLadder()}
	if _, err := Simulate(neg, FixedLevel{}, nil, rng); err == nil {
		t.Fatal("zero chunks should fail")
	}
	badObs := SessionConfig{Ladder: DefaultLadder(), NumChunks: 5,
		Observation: ObservationModel{Ladder: DefaultLadder(), PMin: 2}}
	if _, err := Simulate(badObs, FixedLevel{}, make([]float64, 5), rng); err == nil {
		t.Fatal("bad PMin should fail")
	}
}

type badPolicy struct{}

func (badPolicy) Next(State, Ladder, *mathx.RNG) int { return 99 }

func TestSimulateRejectsBadPolicyChoice(t *testing.T) {
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 5}
	rng := mathx.NewRNG(5)
	if _, err := Simulate(cfg, badPolicy{}, make([]float64, 5), rng); err == nil {
		t.Fatal("out-of-range level should fail")
	}
}

func TestBBAPolicy(t *testing.T) {
	l := DefaultLadder()
	p := BBA{ReservoirSec: 5, CushionSec: 10}
	if got := p.Greedy(State{BufferSec: 2}, l); got != 0 {
		t.Fatalf("low buffer level = %d, want 0", got)
	}
	if got := p.Greedy(State{BufferSec: 20}, l); got != len(l)-1 {
		t.Fatalf("high buffer level = %d, want top", got)
	}
	mid := p.Greedy(State{BufferSec: 10}, l)
	if mid <= 0 || mid >= len(l)-1 {
		t.Fatalf("mid buffer level = %d", mid)
	}
	// Defaults kick in when fields are zero.
	d := BBA{}
	if got := d.Greedy(State{BufferSec: 1}, l); got != 0 {
		t.Fatalf("default reservoir: got %d", got)
	}
	// Probabilities form a distribution matching epsilon exploration.
	e := BBA{ReservoirSec: 5, CushionSec: 10, Epsilon: 0.25}
	probs := e.Probabilities(State{BufferSec: 2}, l)
	sum := 0.0
	for _, q := range probs {
		sum += q
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	if math.Abs(probs[0]-(0.75+0.05)) > 1e-12 {
		t.Fatalf("greedy prob = %g, want 0.8", probs[0])
	}
	// Sampling frequencies match probabilities.
	rng := mathx.NewRNG(6)
	count := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if e.Next(State{BufferSec: 2}, l, rng) == 0 {
			count++
		}
	}
	if f := float64(count) / n; math.Abs(f-0.8) > 0.02 {
		t.Fatalf("sampled greedy frequency %g, want ~0.8", f)
	}
}

func TestRateBasedPolicy(t *testing.T) {
	l := DefaultLadder()
	p := RateBased{Predictor: LastSample{Prior: 2000}, Safety: 1}
	if got := p.Next(State{}, l, nil); got != 3 {
		t.Fatalf("rate-based with est 2000 chose %d, want 3 (1850)", got)
	}
	// Default safety 0.85: 2000*0.85=1700 → level 2 (1200).
	pd := RateBased{Predictor: LastSample{Prior: 2000}}
	if got := pd.Next(State{}, l, nil); got != 2 {
		t.Fatalf("default safety chose %d, want 2", got)
	}
}

func TestMPCPrefersSustainableBitrate(t *testing.T) {
	l := DefaultLadder()
	mpc := MPC{Predictor: LastSample{Prior: 1300}, Horizon: 3, ChunkSec: 4}
	// With est 1300 and a healthy buffer, MPC picks a mid level: the
	// buffer can absorb slightly-slower-than-real-time downloads within
	// the horizon, but the top rung would starve it.
	got := mpc.Next(State{BufferSec: 15, LastLevel: 2}, l, nil)
	if got != 2 && got != 3 {
		t.Fatalf("MPC chose %d, want 2 or 3", got)
	}
	// With a tiny buffer and low estimate it must be conservative.
	low := mpc.Next(State{BufferSec: 1, LastLevel: 0, Observed: []float64{300}}, l, nil)
	if low != 0 {
		t.Fatalf("MPC with starved buffer chose %d, want 0", low)
	}
	// Zero estimate degenerates to lowest.
	z := MPC{Predictor: LastSample{Prior: 0}}
	if got := z.Next(State{}, l, nil); got != 0 {
		t.Fatalf("zero estimate chose %d", got)
	}
}

func TestFixedLevelClamping(t *testing.T) {
	l := DefaultLadder()
	if got := (FixedLevel{Level: -3}).Next(State{}, l, nil); got != 0 {
		t.Fatal("negative level should clamp to 0")
	}
	if got := (FixedLevel{Level: 99}).Next(State{}, l, nil); got != len(l)-1 {
		t.Fatal("huge level should clamp to top")
	}
}

func TestBBAClimbsWithBuffer(t *testing.T) {
	// Integration: BBA over a generous link climbs the ladder as the
	// buffer fills.
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 40}
	rng := mathx.NewRNG(7)
	bw := ConstantBandwidth{Kbps: 8000}.Series(40, rng)
	res, err := Simulate(cfg, BBA{ReservoirSec: 5, CushionSec: 10}, bw, rng)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Outcomes[0].Level
	last := res.Outcomes[len(res.Outcomes)-1].Level
	if first != 0 {
		t.Fatalf("BBA should start at 0, got %d", first)
	}
	if last != len(cfg.Ladder)-1 {
		t.Fatalf("BBA should reach top with a full buffer, got %d", last)
	}
}
