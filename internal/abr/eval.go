package abr

import (
	"errors"
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

// Chunk is the client-context of the Figure 7b evaluation: one chunk
// slot of the logged session, featurized by everything an offline
// evaluator can see in the trace.
type Chunk struct {
	// Index is the chunk's position in the session.
	Index int
	// BufferSec is the playout buffer before this chunk (from the
	// logged trajectory).
	BufferSec float64
	// LastLevel is the previous chunk's ladder level (-1 for first).
	LastLevel int
	// ObservedKbps is the throughput observed while downloading this
	// chunk in the trace: b·p(logged level).
	ObservedKbps float64
	// PredictedKbps is the throughput the evaluator's predictor
	// estimates for this chunk from the logged history — the quantity
	// FastMPC's evaluator (wrongly) treats as bitrate-independent.
	PredictedKbps float64
}

// Scenario is the paper's Figure 7b setup: a session of NumChunks chunks
// over constant available bandwidth, logged under an ε-randomized
// buffer-based policy, with observed throughput b·p(r).
type Scenario struct {
	Config SessionConfig
	// BandwidthKbps is the constant true available bandwidth b.
	BandwidthKbps float64
	// OldPolicy is the logging (buffer-based) policy; its Epsilon must
	// be positive so propensities exist.
	OldPolicy BBA
	// Predictor is the throughput predictor used both by the offline
	// evaluator's reward model and by the new (MPC) policy. Defaults to
	// a harmonic mean over 5 chunks.
	Predictor Predictor
}

// Data is a collected scenario instance ready for off-policy evaluation.
type Data struct {
	// Trace is the logged trace with propensities.
	Trace core.Trace[Chunk, int]
	// Contexts are the logged chunk contexts, in order.
	Contexts []Chunk
	// Ladder is the bitrate ladder used.
	Ladder Ladder
	scn    *Scenario
}

// Collect runs the old policy in the simulator and assembles the
// off-policy evaluation inputs.
func (s *Scenario) Collect(rng *mathx.RNG) (*Data, error) {
	if s.OldPolicy.Epsilon <= 0 {
		return nil, errors.New("abr: old policy must explore (Epsilon > 0) for IPS/DR propensities")
	}
	if s.BandwidthKbps <= 0 {
		return nil, errors.New("abr: BandwidthKbps must be positive")
	}
	cfg := s.Config
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.Observation.PMin >= 1 {
		return nil, errors.New("abr: Observation.PMin must be < 1 for the Figure 7b bias to exist")
	}
	if s.Predictor == nil {
		s.Predictor = HarmonicMean{Window: 5, Prior: s.BandwidthKbps}
	}
	s.Config = cfg

	bw := ConstantBandwidth{Kbps: s.BandwidthKbps}.Series(cfg.NumChunks, rng)
	res, err := Simulate(cfg, s.OldPolicy, bw, rng)
	if err != nil {
		return nil, err
	}
	d := &Data{Ladder: cfg.Ladder, scn: s}
	observed := make([]float64, 0, cfg.NumChunks)
	buffer := cfg.StartBufferSec
	lastLevel := -1
	for k, out := range res.Outcomes {
		c := Chunk{
			Index:         k,
			BufferSec:     buffer,
			LastLevel:     lastLevel,
			ObservedKbps:  out.ObservedKbps,
			PredictedKbps: s.Predictor.Predict(observed),
		}
		state := State{ChunkIndex: k, BufferSec: buffer, LastLevel: lastLevel, Observed: observed}
		props := s.OldPolicy.Probabilities(state, cfg.Ladder)
		d.Contexts = append(d.Contexts, c)
		d.Trace = append(d.Trace, core.Record[Chunk, int]{
			Context:    c,
			Decision:   out.Level,
			Reward:     d.TrueReward(c, out.Level),
			Propensity: props[out.Level],
		})
		buffer = out.BufferAfterSec
		lastLevel = out.Level
		observed = append(observed, out.ObservedKbps)
	}
	return d, nil
}

// CollectMany runs the logging policy over several independent sessions
// and concatenates the traces — the evaluation corpus a video provider
// would actually accumulate (many sessions of the same service).
func (s *Scenario) CollectMany(rng *mathx.RNG, sessions int) (*Data, error) {
	if sessions < 1 {
		return nil, errors.New("abr: need at least one session")
	}
	var all *Data
	for i := 0; i < sessions; i++ {
		d, err := s.Collect(rng)
		if err != nil {
			return nil, err
		}
		if all == nil {
			all = d
		} else {
			all.Trace = append(all.Trace, d.Trace...)
			all.Contexts = append(all.Contexts, d.Contexts...)
		}
	}
	return all, nil
}

// chunkReward computes the per-chunk QoE contribution of streaming level
// d when the chunk downloads at throughput tputKbps, from context c.
func (d *Data) chunkReward(c Chunk, level int, tputKbps float64) float64 {
	cfg := d.scn.Config
	if tputKbps <= 0 {
		tputKbps = 1
	}
	dl := d.Ladder[level] * cfg.ChunkSec / tputKbps
	rebuf := 0.0
	if dl > c.BufferSec {
		rebuf = dl - c.BufferSec
	}
	q := d.Ladder.Quality(level)
	r := q - cfg.Weights.RebufferPenalty*rebuf
	if c.LastLevel >= 0 {
		r -= cfg.Weights.SwitchPenalty * absf(q-d.Ladder.Quality(c.LastLevel))
	}
	return r
}

// TrueReward is the ground-truth per-chunk reward: the chunk actually
// downloads at b·p(level), the real (bitrate-dependent) observation.
func (d *Data) TrueReward(c Chunk, level int) float64 {
	return d.chunkReward(c, level, d.scn.Config.Observation.Observe(d.scn.BandwidthKbps, level))
}

// ModelReward is the FastMPC-style evaluator's reward model: it predicts
// the chunk's throughput from the logged history and assumes that
// prediction holds at every bitrate — the misspecification of Figure 2.
func (d *Data) ModelReward(c Chunk, level int) float64 {
	return d.chunkReward(c, level, c.PredictedKbps)
}

// ReplayReward is the trace-replay evaluator used by FastMPC-era ABR
// comparisons ([31, 37, 42] replay a new ABR algorithm against the
// throughput trace observed by real clients): chunk k is assumed to
// download at exactly the throughput observed for chunk k in the trace,
// whatever bitrate the new policy picks. Because that observation was
// generated at the OLD policy's bitrate (b·p(d_old)), this model carries
// Figure 2's bias on every chunk where the policies diverge.
func (d *Data) ReplayReward(c Chunk, level int) float64 {
	return d.chunkReward(c, level, c.ObservedKbps)
}

// NewPolicy returns the target policy of Figure 7b: a deterministic
// MPC-style controller driven by the predicted throughput in the chunk
// context scaled by an optimism factor. Optimism > 1 models a designer
// who knows that small chunks under-report path capacity (Figure 2) and
// compensates — which makes the new policy use higher bitrates than the
// old one, exactly the regime where the FastMPC evaluator's
// bitrate-independent throughput assumption is most wrong. optimism <= 0
// selects the default of 1.4.
func (d *Data) NewPolicy(optimism float64) core.Policy[Chunk, int] {
	if optimism <= 0 {
		optimism = 1.4
	}
	mpc := MPC{
		Horizon:  3,
		ChunkSec: d.scn.Config.ChunkSec,
		Weights:  d.scn.Config.Weights,
	}
	ladder := d.Ladder
	return core.DeterministicPolicy[Chunk, int]{Choose: func(c Chunk) int {
		m := mpc
		m.Predictor = LastSample{Prior: c.PredictedKbps * optimism}
		s := State{
			ChunkIndex: c.Index,
			BufferSec:  c.BufferSec,
			LastLevel:  c.LastLevel,
		}
		return m.Next(s, ladder, nil)
	}}
}

// GroundTruth returns the true expected per-chunk reward of a policy on
// the logged contexts.
func (d *Data) GroundTruth(p core.Policy[Chunk, int]) float64 {
	return core.TrueValue(d.Contexts, p, d.TrueReward)
}

// String summarizes the scenario.
func (s *Scenario) String() string {
	return fmt.Sprintf("abr scenario: %d chunks, b=%.0f Kbps, PMin=%.2f, eps=%.2f",
		s.Config.NumChunks, s.BandwidthKbps, s.Config.Observation.PMin, s.OldPolicy.Epsilon)
}
