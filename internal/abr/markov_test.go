package abr

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestMarkovPredictorFallbacks(t *testing.T) {
	p := MarkovPredictor{Prior: 1000}
	if got := p.Predict(nil); got != 1000 {
		t.Fatalf("empty history: %g, want prior", got)
	}
	// Short history: harmonic-mean fallback.
	short := []float64{800, 1200}
	want := HarmonicMean{Window: 10, Prior: 1000}.Predict(short)
	if got := p.Predict(short); math.Abs(got-want) > 1e-9 {
		t.Fatalf("short-history fallback %g, want %g", got, want)
	}
	// Constant history.
	constHist := make([]float64, 30)
	for i := range constHist {
		constHist[i] = 700
	}
	if got := p.Predict(constHist); math.Abs(got-700) > 1e-9 {
		t.Fatalf("constant history: %g, want 700", got)
	}
}

// twoStateBandwidth builds a regime-switching history ending in the
// low state.
func twoStateBandwidth(rng *mathx.RNG, n int) []float64 {
	out := make([]float64, n)
	state := 0 // 0 = high (3000), 1 = low (500)
	for i := range out {
		if rng.Bernoulli(0.05) {
			state = 1 - state
		}
		mean := 3000.0
		if state == 1 {
			mean = 500
		}
		out[i] = mean * math.Exp(rng.Normal(0, 0.05))
	}
	return out
}

func TestMarkovPredictorTracksRegime(t *testing.T) {
	rng := mathx.NewRNG(9)
	// Build a history with clear regimes, forced to end LOW for at
	// least 5 samples.
	hist := twoStateBandwidth(rng, 200)
	for i := 0; i < 5; i++ {
		hist = append(hist, 500*math.Exp(rng.Normal(0, 0.05)))
	}
	p := MarkovPredictor{States: 6}
	got := p.Predict(hist)
	// The Markov prediction should stay near the low regime, far below
	// the global mean (~1750 if regimes are balanced).
	if got > 1200 {
		t.Fatalf("Markov prediction %g should track the low regime (~500)", got)
	}
	// A wide-window harmonic mean is dragged toward the mixture.
	hm := HarmonicMean{Window: 100}.Predict(hist)
	if math.Abs(got-500) > math.Abs(hm-500) {
		t.Fatalf("Markov (%g) should be closer to the regime than harmonic over a wide window (%g)", got, hm)
	}
}

func TestMarkovPredictorAccuracyOnSwitchingProcess(t *testing.T) {
	// One-step-ahead prediction error over a regime-switching series:
	// Markov should beat the 20-sample harmonic mean.
	rng := mathx.NewRNG(10)
	series := twoStateBandwidth(rng, 800)
	markov := MarkovPredictor{States: 6}
	harmonic := HarmonicMean{Window: 20}
	var mErr, hErr []float64
	for i := 50; i < len(series); i++ {
		hist := series[:i]
		truth := series[i]
		mErr = append(mErr, math.Abs(markov.Predict(hist)-truth))
		hErr = append(hErr, math.Abs(harmonic.Predict(hist)-truth))
	}
	if mathx.Mean(mErr) >= mathx.Mean(hErr) {
		t.Fatalf("Markov MAE %g should beat harmonic MAE %g on regime-switching bandwidth",
			mathx.Mean(mErr), mathx.Mean(hErr))
	}
}

func TestMarkovPredictorExplicitRange(t *testing.T) {
	p := MarkovPredictor{States: 4, MinKbps: 100, MaxKbps: 1600, MinHistory: 2}
	hist := []float64{200, 200, 200, 50, 99999} // outliers clamp into range
	got := p.Predict(hist)
	if got < 100 || got > 1600 {
		t.Fatalf("prediction %g outside configured range", got)
	}
}

func TestMarkovPredictorInMPC(t *testing.T) {
	// Integration: MPC driven by the Markov predictor streams a
	// regime-switching session without error.
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 120}
	rng := mathx.NewRNG(11)
	bw := twoStateBandwidth(rng, cfg.NumChunks)
	mpc := MPC{Predictor: MarkovPredictor{States: 6, Prior: 1000}}
	res, err := Simulate(cfg, mpc, bw, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != cfg.NumChunks {
		t.Fatal("incomplete session")
	}
}
