package abr

import (
	"testing"

	"drnet/internal/mathx"
)

func TestFESTIVEGradualSwitching(t *testing.T) {
	l := DefaultLadder()
	p := FESTIVE{Window: 3, Safety: 1}
	// Huge estimate but currently at level 0: may climb only one rung.
	got := p.Next(State{LastLevel: 0, Observed: []float64{99999}}, l, nil)
	if got != 1 {
		t.Fatalf("FESTIVE jumped to %d, want 1 (gradual)", got)
	}
	// Tiny estimate from level 4: may drop only one rung.
	got = p.Next(State{LastLevel: 4, Observed: []float64{10}}, l, nil)
	if got != 3 {
		t.Fatalf("FESTIVE dropped to %d, want 3 (gradual)", got)
	}
	// First chunk (LastLevel -1) treated as level 0.
	got = p.Next(State{LastLevel: -1, Observed: nil}, l, nil)
	if got != 0 && got != 1 {
		t.Fatalf("first-chunk choice %d", got)
	}
}

func TestFESTIVEEpsilonNeedsRNG(t *testing.T) {
	l := DefaultLadder()
	p := FESTIVE{Epsilon: 1}
	rng := mathx.NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		seen[p.Next(State{LastLevel: 2, Observed: []float64{1200}}, l, rng)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("epsilon exploration produced no variety: %v", seen)
	}
}

func TestCompareRanksPoliciesSensibly(t *testing.T) {
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 60}
	rng := mathx.NewRNG(2)
	rows, err := Compare(cfg, map[string]ABRPolicy{
		"bba":      BBA{ReservoirSec: 5, CushionSec: 10},
		"mpc":      MPC{Predictor: HarmonicMean{Window: 5, Prior: 1000}},
		"festive":  FESTIVE{},
		"always-0": FixedLevel{Level: 0},
		"always-4": FixedLevel{Level: 4},
	}, LogNormalAR{MeanKbps: 2000, Sigma: 0.3, Rho: 0.8}, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Rows are sorted best-first.
	for i := 1; i < len(rows); i++ {
		if rows[i].MeanQoE > rows[i-1].MeanQoE {
			t.Fatal("rows not sorted by QoE")
		}
	}
	byName := map[string]ComparisonRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The adaptive policies must beat pinning the lowest rung
	// (always-0 has zero quality by construction).
	if byName["mpc"].MeanQoE <= byName["always-0"].MeanQoE {
		t.Fatal("MPC should beat always-lowest")
	}
	// always-4 at 2850 Kbps over a 2000 Kbps link must rebuffer more
	// than BBA.
	if byName["always-4"].MeanRebufferSec <= byName["bba"].MeanRebufferSec {
		t.Fatalf("always-top rebuffer %g should exceed BBA %g",
			byName["always-4"].MeanRebufferSec, byName["bba"].MeanRebufferSec)
	}
	// FESTIVE's gradual switching should switch no more than ~1 per
	// chunk and yield fewer oscillations than always possible.
	if byName["festive"].Switches > float64(cfg.NumChunks) {
		t.Fatal("switch accounting broken")
	}
	// FixedLevel never switches.
	if byName["always-4"].Switches != 0 {
		t.Fatalf("FixedLevel switches = %g", byName["always-4"].Switches)
	}
}

func TestCompareSameConditions(t *testing.T) {
	// Determinism: comparing twice with the same seed gives identical
	// rows.
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 30}
	policies := map[string]ABRPolicy{
		"bba": BBA{ReservoirSec: 5, CushionSec: 10},
		"mpc": MPC{Predictor: HarmonicMean{Window: 5, Prior: 1000}},
	}
	a, err := Compare(cfg, policies, ConstantBandwidth{Kbps: 1500}, 5, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compare(cfg, policies, ConstantBandwidth{Kbps: 1500}, 5, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic comparison: %+v vs %+v", a[i], b[i])
		}
	}
}

func TestCompareErrors(t *testing.T) {
	cfg := SessionConfig{Ladder: DefaultLadder(), NumChunks: 10}
	rng := mathx.NewRNG(4)
	if _, err := Compare(cfg, nil, ConstantBandwidth{Kbps: 1}, 1, rng); err == nil {
		t.Fatal("no policies should fail")
	}
	p := map[string]ABRPolicy{"x": FixedLevel{}}
	if _, err := Compare(cfg, p, ConstantBandwidth{Kbps: 1}, 0, rng); err == nil {
		t.Fatal("zero sessions should fail")
	}
	bad := SessionConfig{Ladder: Ladder{}, NumChunks: 10}
	if _, err := Compare(bad, p, ConstantBandwidth{Kbps: 1}, 1, rng); err == nil {
		t.Fatal("bad config should fail")
	}
	pBad := map[string]ABRPolicy{"bad": badPolicy{}}
	if _, err := Compare(cfg, pBad, ConstantBandwidth{Kbps: 1000}, 1, rng); err == nil {
		t.Fatal("policy error should propagate")
	}
}
