package abr

import (
	"fmt"

	"drnet/internal/mathx"
)

// State is what an ABR policy observes before choosing the next chunk's
// bitrate.
type State struct {
	// ChunkIndex is the index of the chunk about to be requested.
	ChunkIndex int
	// BufferSec is the current playout buffer in seconds.
	BufferSec float64
	// LastLevel is the ladder index of the previous chunk (-1 for the
	// first chunk).
	LastLevel int
	// Observed holds the observed download throughputs (Kbps) of all
	// previous chunks, oldest first.
	Observed []float64
}

// ABRPolicy chooses the next chunk's ladder level from the session
// state. Implementations may be stochastic; they receive an RNG.
type ABRPolicy interface {
	Next(s State, l Ladder, rng *mathx.RNG) int
}

// SessionConfig describes one streaming session.
type SessionConfig struct {
	Ladder Ladder
	// ChunkSec is the media duration of each chunk (default 4s).
	ChunkSec float64
	// NumChunks is the session length in chunks.
	NumChunks int
	// StartBufferSec is the initial buffer (default one chunk).
	StartBufferSec float64
	// MaxBufferSec caps the buffer (default 30s).
	MaxBufferSec float64
	// Observation maps (available bandwidth, level) to observed
	// throughput. A zero PMin means "no bias": p ≡ 1.
	Observation ObservationModel
	// Weights are the QoE weights.
	Weights QoEWeights
}

func (c *SessionConfig) defaults() error {
	if err := c.Ladder.Validate(); err != nil {
		return err
	}
	if c.ChunkSec <= 0 {
		c.ChunkSec = 4
	}
	if c.NumChunks <= 0 {
		return fmt.Errorf("abr: NumChunks must be positive, got %d", c.NumChunks)
	}
	if c.StartBufferSec <= 0 {
		c.StartBufferSec = c.ChunkSec
	}
	if c.MaxBufferSec <= 0 {
		c.MaxBufferSec = 30
	}
	if c.Observation.Ladder == nil {
		c.Observation = ObservationModel{Ladder: c.Ladder, PMin: 1}
	}
	if c.Observation.PMin <= 0 || c.Observation.PMin > 1 {
		return fmt.Errorf("abr: PMin %g out of (0,1]", c.Observation.PMin)
	}
	if c.Weights == (QoEWeights{}) {
		c.Weights = DefaultQoEWeights()
	}
	return nil
}

// Simulate runs a full session: the policy picks each chunk's level, the
// download experiences the observation model against the true bandwidth
// series, and buffer/rebuffering evolve accordingly. It returns the
// per-chunk outcomes and total QoE.
//
// This is the "real deployment" of Figure 1 for the ABR scenario: the
// ground truth that trace-driven evaluators try to predict offline.
func Simulate(cfg SessionConfig, policy ABRPolicy, bandwidthKbps []float64, rng *mathx.RNG) (SessionResult, error) {
	if err := cfg.defaults(); err != nil {
		return SessionResult{}, err
	}
	if len(bandwidthKbps) < cfg.NumChunks {
		return SessionResult{}, errNoBandwidth
	}
	var res SessionResult
	buffer := cfg.StartBufferSec
	lastLevel := -1
	observed := make([]float64, 0, cfg.NumChunks)
	for k := 0; k < cfg.NumChunks; k++ {
		state := State{ChunkIndex: k, BufferSec: buffer, LastLevel: lastLevel, Observed: observed}
		level := policy.Next(state, cfg.Ladder, rng)
		if level < 0 || level >= len(cfg.Ladder) {
			return SessionResult{}, fmt.Errorf("abr: policy chose level %d outside ladder of %d", level, len(cfg.Ladder))
		}
		obs := cfg.Observation.Observe(bandwidthKbps[k], level)
		chunkKbits := cfg.Ladder[level] * cfg.ChunkSec
		dl := chunkKbits / obs
		rebuf := 0.0
		if dl > buffer {
			rebuf = dl - buffer
			buffer = 0
		} else {
			buffer -= dl
		}
		buffer += cfg.ChunkSec
		if buffer > cfg.MaxBufferSec {
			buffer = cfg.MaxBufferSec
		}
		res.Outcomes = append(res.Outcomes, ChunkOutcome{
			Level:          level,
			ObservedKbps:   obs,
			DownloadSec:    dl,
			RebufferSec:    rebuf,
			BufferAfterSec: buffer,
		})
		res.TotalRebufferSec += rebuf
		q := cfg.Ladder.Quality(level)
		res.QoE += q - cfg.Weights.RebufferPenalty*rebuf
		if lastLevel >= 0 {
			res.QoE -= cfg.Weights.SwitchPenalty * absf(q-cfg.Ladder.Quality(lastLevel))
		}
		lastLevel = level
		observed = append(observed, obs)
	}
	return res, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
