// Package biasobs is the bias observatory: windowed estimator-health
// diagnostics over a columnar trace. Where core.Diagnose answers "can
// this trace support that policy" once, for the whole trace, biasobs
// slices the trace along its time axis into W windows and tracks the
// same bias indicators — effective sample size, importance-weight
// concentration, zero support, context coverage, reward moments,
// propensity calibration — window by window, then runs an online
// change detector (internal/changepoint's CUSUM) over the resulting
// series. The paper's central warning is that trace-driven conclusions
// go stale silently; the observatory is the instrument that makes the
// staling visible while the estimate still looks confident.
//
// Determinism contract: a Report is a pure function of (view, policy,
// Config). Per-window statistics are computed with sequential
// in-window scans (window i's floats never mix with window j's), the
// windows are assembled in index order, and the drift detector is fed
// the series in order — so the result is bit-identical at any worker
// count, matching the repository-wide contract locked down by the
// equivalence suites.
//
// Allocation contract: steady-state cost is O(1) per record. The
// compute pass allocates per window (one context-occurrence counter
// slice) and per report (the policy table, the series, the calibration
// counters), never per record.
package biasobs

import (
	"context"
	"errors"
	"fmt"
	"math"

	"drnet/internal/changepoint"
	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// Defaults for Config fields left zero. DefaultClip matches drevald's
// fallback clipped-SNIPS cap so "clipped mass" on /debug/bias measures
// exactly the weight mass the degraded fallback would discard.
const (
	DefaultWindows = 8
	DefaultClip    = 10.0
	DefaultBuckets = 10
)

// Grades order the health verdicts from best to worst. Drift dominates
// overlap trouble: a trace that shifted regimes mid-stream invalidates
// whole-trace estimates even when every window individually overlaps.
const (
	GradeHealthy = "healthy"
	GradeWatch   = "watch"
	GradeDrift   = "drift"
)

// GradeRank maps a grade onto its severity scale (0 healthy, 1 watch,
// 2 drift) — the ordering shared by the drevald_bias_last_grade gauge
// and the SLO engine's drift-free classification. Unknown strings rank
// healthy, matching the gauge's historical behaviour.
func GradeRank(grade string) int {
	switch grade {
	case GradeWatch:
		return 1
	case GradeDrift:
		return 2
	default:
		return 0
	}
}

// Watch thresholds: a window below lowESSRatio or above
// highZeroSupport means the estimate leans on a sliver of the data in
// that stretch of the trace, even if no shift fired.
const (
	lowESSRatio     = 0.1
	highZeroSupport = 0.5
)

// checkEvery is how many records the sequential passes scan between
// context checks (same granularity as core's diagnostic scan).
const checkEvery = 8192

// Config parameterizes a bias-observatory run. The zero value is
// usable: every field defaults as documented.
type Config struct {
	// Windows is the number of equal-width index windows the trace is
	// sliced into (default DefaultWindows, clamped to the trace length
	// so every window holds at least one record).
	Windows int
	// Warmup is how many leading windows calibrate the drift detector's
	// reference regime (default Windows/4, at least 2). Windows inside
	// the warmup are never tested for drift.
	Warmup int
	// Kappa is the CUSUM slack in σ units (default
	// changepoint.DefaultKappa).
	Kappa float64
	// DriftThreshold is the CUSUM decision threshold h in σ units
	// (default changepoint.DefaultThreshold).
	DriftThreshold float64
	// Clip is the importance-weight cap used for the clipped-mass
	// statistic (default DefaultClip).
	Clip float64
	// Buckets is the number of propensity-calibration buckets over
	// (0,1] (default DefaultBuckets).
	Buckets int
	// Workers bounds the worker pool for the per-window pass (0 means
	// the shared pool default). The report is bit-identical at every
	// value.
	Workers int
}

func (c Config) withDefaults(n int) Config {
	if c.Windows <= 0 {
		c.Windows = DefaultWindows
	}
	if c.Windows > n {
		c.Windows = n
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Windows / 4
	}
	if c.Warmup < 2 {
		c.Warmup = 2
	}
	if c.Kappa <= 0 {
		c.Kappa = changepoint.DefaultKappa
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = changepoint.DefaultThreshold
	}
	if c.Clip <= 0 {
		c.Clip = DefaultClip
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	return c
}

// WindowStats is one window's estimator-health snapshot. Windows
// partition the record index range [Start, End).
type WindowStats struct {
	Index int `json:"index"`
	Start int `json:"start"`
	End   int `json:"end"`
	N     int `json:"n"`
	// ESSRatio is the effective sample size of the window's importance
	// weights divided by the window size — 1 means every record pulls
	// equal weight, near 0 means a handful dominate.
	ESSRatio float64 `json:"essRatio"`
	// MeanWeight should hover near 1 under calibrated propensities.
	MeanWeight float64 `json:"meanWeight"`
	// MaxWeight is the window's largest importance weight.
	MaxWeight float64 `json:"maxWeight"`
	// ClipMassFrac is the fraction of total importance-weight mass
	// carried by weights above Config.Clip — the mass a clipped
	// estimator would distort.
	ClipMassFrac float64 `json:"clipMassFrac"`
	// ZeroSupportFrac is the fraction of records the target policy
	// gives zero probability.
	ZeroSupportFrac float64 `json:"zeroSupportFrac"`
	// CoverageEntropy is the window's context-occurrence entropy
	// normalized to [0,1] by log(total unique contexts); 1 means the
	// window visits the context space uniformly, 0 means it collapsed
	// onto a single context. Defined as 1 when the view has fewer than
	// two contexts.
	CoverageEntropy float64 `json:"coverageEntropy"`
	RewardMean      float64 `json:"rewardMean"`
	RewardVar       float64 `json:"rewardVar"`
	MinPropensity   float64 `json:"minPropensity"`
}

// CalibrationBucket compares logged propensities against the empirical
// conditional frequency of the logged decision given its context, for
// records whose propensity falls in [Lo, Hi). Under calibrated logging
// the two means agree; a large |Gap| says the logged propensities
// misstate how often the logger actually picked those decisions —
// which biases every weight computed from them.
type CalibrationBucket struct {
	Lo             float64 `json:"lo"`
	Hi             float64 `json:"hi"`
	N              int     `json:"n"`
	MeanPropensity float64 `json:"meanPropensity"`
	EmpiricalRate  float64 `json:"empiricalRate"`
	Gap            float64 `json:"gap"`
}

// Alarm is one fired drift detection on a per-window series.
type Alarm struct {
	// Series names the monitored series: "reward_mean" or "ess_ratio".
	Series string `json:"series"`
	// Window is the window index at which the detector fired.
	Window int `json:"window"`
	// Direction is "up" or "down" relative to the warmup baseline.
	Direction string `json:"direction"`
	// Statistic is the CUSUM value at firing, in σ units.
	Statistic float64 `json:"statistic"`
	// Observed is the series value that fired; Baseline the warmup
	// reference mean.
	Observed float64 `json:"observed"`
	Baseline float64 `json:"baseline"`
}

// Series names monitored for drift.
const (
	SeriesRewardMean = "reward_mean"
	SeriesESSRatio   = "ess_ratio"
)

// Report is a full bias-observatory run: the per-window series, the
// whole-trace calibration table, every fired alarm, and the overall
// grade.
type Report struct {
	N            int `json:"n"`
	NumContexts  int `json:"numContexts"`
	NumDecisions int `json:"numDecisions"`
	// Applied configuration (after defaulting), echoed so a consumer
	// can interpret the series without knowing the server's flags.
	WindowCount    int     `json:"windowCount"`
	Warmup         int     `json:"warmup"`
	Kappa          float64 `json:"kappa"`
	DriftThreshold float64 `json:"driftThreshold"`
	Clip           float64 `json:"clip"`

	Windows     []WindowStats       `json:"windows"`
	Calibration []CalibrationBucket `json:"calibration"`
	Alarms      []Alarm             `json:"alarms"`
	Grade       string              `json:"grade"`
}

// HealthSummary is the compact form embedded in /evaluate responses
// and experiment manifests.
type HealthSummary struct {
	Grade              string  `json:"grade"`
	Windows            int     `json:"windows"`
	Alarms             int     `json:"alarms"`
	MinESSRatio        float64 `json:"minEssRatio"`
	MaxZeroSupportFrac float64 `json:"maxZeroSupportFrac"`
	LastRewardMean     float64 `json:"lastRewardMean"`
}

// Summary condenses the report for response blocks and manifests.
func (r *Report) Summary() HealthSummary {
	s := HealthSummary{
		Grade:   r.Grade,
		Windows: len(r.Windows),
		Alarms:  len(r.Alarms),
	}
	for i, w := range r.Windows {
		if i == 0 || w.ESSRatio < s.MinESSRatio {
			s.MinESSRatio = w.ESSRatio
		}
		if w.ZeroSupportFrac > s.MaxZeroSupportFrac {
			s.MaxZeroSupportFrac = w.ZeroSupportFrac
		}
		s.LastRewardMean = w.RewardMean
	}
	return s
}

// Compute runs the observatory over v for newPolicy. See ComputeCtx.
func Compute[C any, D comparable](v *core.TraceView[C, D], newPolicy core.Policy[C, D], cfg Config) (*Report, error) {
	return ComputeCtx(context.Background(), v, newPolicy, cfg)
}

// ComputeCtx runs the observatory over v for newPolicy with
// cooperative cancellation: ctx is checked between windows and every
// few thousand records inside the sequential passes. The report is a
// pure function of (v, newPolicy, cfg) — bit-identical at every
// worker count.
//
// Weight semantics mirror core.DiagnoseCtx: when a distribution lists
// the same decision more than once, the last entry wins.
func ComputeCtx[C any, D comparable](ctx context.Context, v *core.TraceView[C, D], newPolicy core.Policy[C, D], cfg Config) (*Report, error) {
	n := v.Len()
	if n == 0 {
		return nil, core.ErrEmptyTrace
	}
	cfg = cfg.withDefaults(n)
	numCtx, k := v.NumContexts(), v.NumDecisions()

	// Flatten the policy over the context dictionary once: probLast[u*k+kc]
	// is π_new(decision kc | context u) with last-match semantics. One
	// Distribution call per unique context; the window pass is then pure
	// array arithmetic.
	probLast := make([]float64, numCtx*k)
	for u := 0; u < numCtx; u++ {
		dist := newPolicy.Distribution(v.ContextValue(u))
		if err := core.ValidateDistribution(dist); err != nil {
			return nil, fmt.Errorf("biasobs: context %d: %w", u, err)
		}
		row := u * k
		for _, w := range dist {
			if kc, ok := v.DecisionIndex(w.Decision); ok {
				probLast[row+kc] = w.Prob
			}
		}
	}

	windows, err := parallel.TimesCtx(ctx, cfg.Windows, cfg.Workers, func(wi int) (WindowStats, error) {
		lo := wi * n / cfg.Windows
		hi := (wi + 1) * n / cfg.Windows
		return windowStats(v, probLast, k, numCtx, wi, lo, hi, cfg.Clip), nil
	})
	if err != nil {
		return nil, err
	}

	calibration, err := calibrate(ctx, v, probLast, k, cfg.Buckets)
	if err != nil {
		return nil, err
	}

	alarms, err := detect(windows, cfg)
	if err != nil {
		return nil, err
	}

	r := &Report{
		N:              n,
		NumContexts:    numCtx,
		NumDecisions:   k,
		WindowCount:    cfg.Windows,
		Warmup:         cfg.Warmup,
		Kappa:          cfg.Kappa,
		DriftThreshold: cfg.DriftThreshold,
		Clip:           cfg.Clip,
		Windows:        windows,
		Calibration:    calibration,
		Alarms:         alarms,
	}
	r.Grade = grade(windows, alarms)
	return r, nil
}

// windowStats scans records [lo, hi) sequentially with O(1)-per-record
// accumulators. The only allocation is the context-occurrence counter
// (one int32 per unique context) — per window, never per record.
//
//lint:hot
func windowStats[C any, D comparable](v *core.TraceView[C, D], probLast []float64, k, numCtx, wi, lo, hi int, clip float64) WindowStats {
	ws := WindowStats{Index: wi, Start: lo, End: hi, N: hi - lo}
	if ws.N == 0 {
		ws.CoverageEntropy = 1
		return ws
	}
	ws.MinPropensity = v.PropensityAt(lo)
	ctxSeen := make([]int32, numCtx)
	var (
		sumW, sumW2, clipMass float64
		zero                  int
		reward                mathx.Welford
	)
	for i := lo; i < hi; i++ {
		p := v.PropensityAt(i)
		w := probLast[v.ContextCode(i)*k+v.DecisionCode(i)] / p
		sumW += w
		sumW2 += w * w
		if w == 0 {
			zero++
		}
		if w > ws.MaxWeight {
			ws.MaxWeight = w
		}
		if w > clip {
			clipMass += w
		}
		if p < ws.MinPropensity {
			ws.MinPropensity = p
		}
		ctxSeen[v.ContextCode(i)]++
		reward.Add(v.RewardAt(i))
	}
	nf := float64(ws.N)
	ws.MeanWeight = sumW / nf
	if sumW2 > 0 {
		ws.ESSRatio = (sumW * sumW) / sumW2 / nf
	}
	if sumW > 0 {
		ws.ClipMassFrac = clipMass / sumW
	}
	ws.ZeroSupportFrac = float64(zero) / nf
	ws.CoverageEntropy = normEntropy(ctxSeen, ws.N, numCtx)
	ws.RewardMean = reward.Mean()
	ws.RewardVar = reward.Variance()
	return ws
}

// normEntropy computes the context-occurrence entropy of one window,
// normalized by log(numCtx) — the entropy of a uniform visit over the
// view's whole context space. Codes are scanned in dictionary order,
// so the float accumulation order is fixed.
func normEntropy(counts []int32, n, numCtx int) float64 {
	if numCtx < 2 {
		return 1
	}
	h := 0.0
	nf := float64(n)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / nf
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(numCtx))
}

// calibrate buckets records by logged propensity and compares the mean
// logged propensity per bucket against the empirical conditional
// frequency of the logged decision given its context
// (count(context, decision)/count(context), from the trace itself).
func calibrate[C any, D comparable](ctx context.Context, v *core.TraceView[C, D], probLast []float64, k, buckets int) ([]CalibrationBucket, error) {
	n := v.Len()
	numCtx := v.NumContexts()
	cellCount := make([]int32, numCtx*k)
	ctxCount := make([]int32, numCtx)
	for i := 0; i < n; i++ {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cellCount[v.ContextCode(i)*k+v.DecisionCode(i)]++
		ctxCount[v.ContextCode(i)]++
	}
	type acc struct {
		n            int
		sumP, sumEmp float64
	}
	bs := make([]acc, buckets)
	for i := 0; i < n; i++ {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p := v.PropensityAt(i)
		b := int(p * float64(buckets))
		if b >= buckets { // p == 1 lands in the top bucket
			b = buckets - 1
		}
		u := v.ContextCode(i)
		bs[b].n++
		bs[b].sumP += p
		bs[b].sumEmp += float64(cellCount[u*k+v.DecisionCode(i)]) / float64(ctxCount[u])
	}
	out := make([]CalibrationBucket, 0, buckets)
	width := 1 / float64(buckets)
	for b, a := range bs {
		cb := CalibrationBucket{Lo: float64(b) * width, Hi: float64(b+1) * width, N: a.n}
		if a.n > 0 {
			cb.MeanPropensity = a.sumP / float64(a.n)
			cb.EmpiricalRate = a.sumEmp / float64(a.n)
			cb.Gap = cb.EmpiricalRate - cb.MeanPropensity
		}
		out = append(out, cb)
	}
	return out, nil
}

// detect runs the CUSUM over the reward-mean and ESS-ratio series and
// merges the firings in (window, series) order.
func detect(windows []WindowStats, cfg Config) ([]Alarm, error) {
	rewardMeans := make([]float64, len(windows))
	essRatios := make([]float64, len(windows))
	for i, w := range windows {
		rewardMeans[i] = w.RewardMean
		essRatios[i] = w.ESSRatio
	}
	var alarms []Alarm
	for _, series := range []struct {
		name string
		xs   []float64
	}{
		{SeriesESSRatio, essRatios},
		{SeriesRewardMean, rewardMeans},
	} {
		if len(series.xs) <= cfg.Warmup {
			continue
		}
		shifts, err := changepoint.DetectShifts(series.xs, cfg.Warmup, cfg.Kappa, cfg.DriftThreshold)
		if err != nil {
			return nil, fmt.Errorf("biasobs: drift detection on %s: %w", series.name, err)
		}
		for _, s := range shifts {
			alarms = append(alarms, Alarm{
				Series:    series.name,
				Window:    s.Index,
				Direction: s.Direction.String(),
				Statistic: s.Statistic,
				Observed:  s.Observed,
				Baseline:  s.Baseline,
			})
		}
	}
	// Merge the two series' firings into window order (stable insertion
	// sort: the lists are tiny and already sorted within a series).
	for i := 1; i < len(alarms); i++ {
		for j := i; j > 0 && less(alarms[j], alarms[j-1]); j-- {
			alarms[j], alarms[j-1] = alarms[j-1], alarms[j]
		}
	}
	return alarms, nil
}

func less(a, b Alarm) bool {
	if a.Window != b.Window {
		return a.Window < b.Window
	}
	return a.Series < b.Series
}

// grade assigns the overall health verdict: drift beats watch beats
// healthy.
func grade(windows []WindowStats, alarms []Alarm) string {
	if len(alarms) > 0 {
		return GradeDrift
	}
	for _, w := range windows {
		if w.ESSRatio < lowESSRatio || w.ZeroSupportFrac > highZeroSupport {
			return GradeWatch
		}
	}
	return GradeHealthy
}

// Render writes the report as an operator-readable text table (the
// dreval -windows output).
func (r *Report) Render() string {
	var b []byte
	b = fmt.Appendf(b, "bias observatory: n=%d contexts=%d decisions=%d windows=%d warmup=%d grade=%s\n",
		r.N, r.NumContexts, r.NumDecisions, r.WindowCount, r.Warmup, r.Grade)
	b = fmt.Appendf(b, "win  range            n      ess%%  w̄      wmax    clip%%  zero%%  cover  reward µ±σ\n")
	for _, w := range r.Windows {
		b = fmt.Appendf(b, "%-4d [%6d,%6d) %-6d %5.1f  %-6.3f %-7.2f %5.1f  %5.1f  %5.3f  %.4f±%.4f\n",
			w.Index, w.Start, w.End, w.N, 100*w.ESSRatio, w.MeanWeight, w.MaxWeight,
			100*w.ClipMassFrac, 100*w.ZeroSupportFrac, w.CoverageEntropy,
			w.RewardMean, math.Sqrt(w.RewardVar))
	}
	if len(r.Alarms) == 0 {
		b = fmt.Appendf(b, "drift: none (κ=%.2f h=%.1f)\n", r.Kappa, r.DriftThreshold)
	}
	for _, a := range r.Alarms {
		b = fmt.Appendf(b, "drift: %s %s at window %d (stat %.1fσ, observed %.4f vs baseline %.4f)\n",
			a.Series, a.Direction, a.Window, a.Statistic, a.Observed, a.Baseline)
	}
	b = fmt.Appendf(b, "propensity calibration (logged vs empirical):\n")
	for _, c := range r.Calibration {
		if c.N == 0 {
			continue
		}
		b = fmt.Appendf(b, "  [%.2f,%.2f) n=%-6d logged=%.3f empirical=%.3f gap=%+.3f\n",
			c.Lo, c.Hi, c.N, c.MeanPropensity, c.EmpiricalRate, c.Gap)
	}
	return string(b)
}

// ErrNoView is returned by serving layers when no trace has been
// observed yet (drevald computes reports per-request).
var ErrNoView = errors.New("biasobs: no trace observed yet")
