package biasobs

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

// stationaryTrace builds a drift-free trace: contexts cycle over numCtx
// values, decisions alternate a/b logged with propensity 0.5 (so a
// uniform target policy gives every record weight 1), and rewards are
// mean + N(0, noise).
func stationaryTrace(n, numCtx int, mean, noise float64, seed int64) core.Trace[int, string] {
	rng := mathx.NewRNG(seed)
	t := make(core.Trace[int, string], n)
	for i := range t {
		d := "a"
		if i%2 == 1 {
			d = "b"
		}
		t[i] = core.Record[int, string]{
			Context:    i % numCtx,
			Decision:   d,
			Reward:     mean + rng.Normal(0, noise),
			Propensity: 0.5,
		}
	}
	return t
}

func uniformAB() core.Policy[int, string] {
	return core.UniformPolicy[int, string]{Decisions: []string{"a", "b"}}
}

func mustView(t *testing.T, tr core.Trace[int, string]) *core.TraceView[int, string] {
	t.Helper()
	v, err := core.NewTraceView(tr)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestComputeStationaryIsHealthyAndSilent(t *testing.T) {
	v := mustView(t, stationaryTrace(2000, 4, 0.5, 0.05, 1))
	r, err := Compute(v, uniformAB(), Config{Windows: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alarms) != 0 {
		t.Fatalf("false drift alarms on stationary trace: %+v", r.Alarms)
	}
	if r.Grade != GradeHealthy {
		t.Fatalf("grade = %q, want %q", r.Grade, GradeHealthy)
	}
	if len(r.Windows) != 20 {
		t.Fatalf("got %d windows, want 20", len(r.Windows))
	}
	for _, w := range r.Windows {
		if w.N != 100 {
			t.Fatalf("window %d has %d records, want 100", w.Index, w.N)
		}
		// Weight 1 everywhere: ESS ratio 1, no zero support, mean weight 1.
		if math.Abs(w.ESSRatio-1) > 1e-12 || w.ZeroSupportFrac != 0 || math.Abs(w.MeanWeight-1) > 1e-12 {
			t.Fatalf("window %d stats off for unit weights: %+v", w.Index, w)
		}
		if w.CoverageEntropy < 0.99 || w.CoverageEntropy > 1+1e-12 {
			t.Fatalf("window %d coverage entropy %g, want ~1 for cycling contexts", w.Index, w.CoverageEntropy)
		}
	}
}

func TestComputeFiresExactlyAtInjectedChangepoint(t *testing.T) {
	// Reward steps from 0.2 to 0.9 at record 1000 of 2000 — window 10 of
	// 20. The alarm must land exactly there, on the reward series only.
	tr := stationaryTrace(2000, 4, 0.2, 0.01, 7)
	rng := mathx.NewRNG(8)
	for i := 1000; i < 2000; i++ {
		tr[i].Reward = 0.9 + rng.Normal(0, 0.01)
	}
	v := mustView(t, tr)
	r, err := Compute(v, uniformAB(), Config{Windows: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alarms) == 0 {
		t.Fatal("no alarm on a huge injected reward step")
	}
	first := r.Alarms[0]
	if first.Series != SeriesRewardMean || first.Window != 10 {
		t.Fatalf("first alarm = %+v, want reward_mean at window 10", first)
	}
	if first.Direction != "up" {
		t.Fatalf("direction = %q, want up", first.Direction)
	}
	for _, a := range r.Alarms {
		if a.Series == SeriesESSRatio {
			t.Fatalf("spurious ESS alarm on constant-weight trace: %+v", a)
		}
	}
	if r.Grade != GradeDrift {
		t.Fatalf("grade = %q, want %q", r.Grade, GradeDrift)
	}
}

func TestComputeDeterministicAcrossWorkers(t *testing.T) {
	tr := stationaryTrace(3000, 5, 0.4, 0.02, 3)
	rng := mathx.NewRNG(4)
	for i := 1500; i < 3000; i++ {
		tr[i].Reward = 1.1 + rng.Normal(0, 0.02)
	}
	v := mustView(t, tr)
	var base *Report
	for _, workers := range []int{1, 2, 8} {
		r, err := Compute(v, uniformAB(), Config{Windows: 24, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = r
			continue
		}
		if !reflect.DeepEqual(base, r) {
			t.Fatalf("report at workers=%d differs from workers=1", workers)
		}
	}
	if len(base.Alarms) == 0 {
		t.Fatal("drift trace produced no alarms")
	}
}

func TestComputeZeroSupportGradesWatch(t *testing.T) {
	// Target policy always plays "a", but three quarters of the log is
	// "b": those records get weight zero, which must push the grade to
	// watch (no drift — the imbalance is stationary).
	rng := mathx.NewRNG(5)
	tr := make(core.Trace[int, string], 900)
	for i := range tr {
		d := "b"
		if i%4 == 0 {
			d = "a"
		}
		tr[i] = core.Record[int, string]{
			Context:    i % 3,
			Decision:   d,
			Reward:     0.5 + rng.Normal(0, 0.01),
			Propensity: 0.25,
		}
	}
	v := mustView(t, tr)
	pol := core.DeterministicPolicy[int, string]{Choose: func(int) string { return "a" }}
	r, err := Compute(v, pol, Config{Windows: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alarms) != 0 {
		t.Fatalf("unexpected alarms: %+v", r.Alarms)
	}
	if r.Grade != GradeWatch {
		t.Fatalf("grade = %q, want %q", r.Grade, GradeWatch)
	}
	for _, w := range r.Windows {
		if math.Abs(w.ZeroSupportFrac-0.75) > 1e-12 {
			t.Fatalf("window %d zero-support %g, want 3/4", w.Index, w.ZeroSupportFrac)
		}
	}
}

func TestSingleWindowMatchesDiagnose(t *testing.T) {
	// With one window the observatory's overlap stats must agree with
	// core.Diagnose bit for bit (same accumulation order).
	tr := stationaryTrace(500, 3, 0.6, 0.1, 9)
	// Make the weights non-trivial: epsilon-greedy target.
	pol := core.EpsilonGreedyPolicy[int, string]{
		Base:      func(c int) string { return "a" },
		Decisions: []string{"a", "b"},
		Epsilon:   0.2,
	}
	v := mustView(t, tr)
	r, err := Compute(v, pol, Config{Windows: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Diagnose(tr, pol)
	if err != nil {
		t.Fatal(err)
	}
	w := r.Windows[0]
	if w.N != d.N {
		t.Fatalf("n = %d, want %d", w.N, d.N)
	}
	if got, want := w.ESSRatio, d.ESS/float64(d.N); got != want {
		t.Fatalf("essRatio = %g, want %g", got, want)
	}
	if w.MeanWeight != d.MeanWeight {
		t.Fatalf("meanWeight = %g, want %g", w.MeanWeight, d.MeanWeight)
	}
	if w.MaxWeight != d.MaxWeight {
		t.Fatalf("maxWeight = %g, want %g", w.MaxWeight, d.MaxWeight)
	}
	if got, want := w.ZeroSupportFrac, float64(d.ZeroSupport)/float64(d.N); got != want {
		t.Fatalf("zeroSupportFrac = %g, want %g", got, want)
	}
	if w.MinPropensity != d.MinPropensity {
		t.Fatalf("minPropensity = %g, want %g", w.MinPropensity, d.MinPropensity)
	}
}

func TestCalibrationDetectsMisstatedPropensities(t *testing.T) {
	// Every record claims propensity 0.8 but decisions are split 50/50
	// within one context: the [0.8, 0.9) bucket must show a -0.3 gap.
	tr := make(core.Trace[int, string], 100)
	for i := range tr {
		d := "a"
		if i%2 == 1 {
			d = "b"
		}
		tr[i] = core.Record[int, string]{Context: 0, Decision: d, Reward: 1, Propensity: 0.8}
	}
	v := mustView(t, tr)
	r, err := Compute(v, uniformAB(), Config{Windows: 4})
	if err != nil {
		t.Fatal(err)
	}
	var hit *CalibrationBucket
	for i := range r.Calibration {
		if r.Calibration[i].N > 0 {
			if hit != nil {
				t.Fatalf("records spread over multiple buckets: %+v", r.Calibration)
			}
			hit = &r.Calibration[i]
		}
	}
	if hit == nil {
		t.Fatal("no populated calibration bucket")
	}
	if hit.Lo != 0.8 || hit.N != 100 {
		t.Fatalf("bucket = %+v, want all 100 records in [0.8, 0.9)", hit)
	}
	if math.Abs(hit.MeanPropensity-0.8) > 1e-12 || math.Abs(hit.EmpiricalRate-0.5) > 1e-12 {
		t.Fatalf("bucket means = %+v, want logged 0.8 / empirical 0.5", hit)
	}
	if math.Abs(hit.Gap+0.3) > 1e-12 {
		t.Fatalf("gap = %g, want -0.3", hit.Gap)
	}
}

func TestComputeEmptyViewFails(t *testing.T) {
	v := mustView(t, core.Trace[int, string]{})
	if _, err := Compute(v, uniformAB(), Config{}); !errors.Is(err, core.ErrEmptyTrace) {
		t.Fatalf("err = %v, want ErrEmptyTrace", err)
	}
}

func TestComputeRejectsInvalidDistribution(t *testing.T) {
	v := mustView(t, stationaryTrace(50, 2, 0.5, 0.01, 2))
	bad := core.FuncPolicy[int, string](func(int) []core.Weighted[string] {
		return []core.Weighted[string]{{Decision: "a", Prob: 0.4}} // sums to 0.4
	})
	if _, err := Compute(v, bad, Config{}); err == nil {
		t.Fatal("invalid distribution accepted")
	}
}

func TestComputeCancellation(t *testing.T) {
	v := mustView(t, stationaryTrace(20000, 4, 0.5, 0.05, 6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeCtx(ctx, v, uniformAB(), Config{Windows: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestComputeAllocationsDoNotScaleWithRecords(t *testing.T) {
	// The per-record loops must be allocation-free: quadrupling the
	// trace (same contexts/decisions/windows) must not grow the report's
	// allocation count beyond incidental slack.
	pol := uniformAB()
	small := mustView(t, stationaryTrace(1000, 4, 0.5, 0.05, 11))
	large := mustView(t, stationaryTrace(4000, 4, 0.5, 0.05, 11))
	cfg := Config{Windows: 10, Workers: 1}
	measure := func(v *core.TraceView[int, string]) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Compute(v, pol, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	a1, a4 := measure(small), measure(large)
	if a4 > a1+64 {
		t.Fatalf("allocations scale with records: %v for n=1000 vs %v for n=4000", a1, a4)
	}
}

func TestSummaryAndRender(t *testing.T) {
	tr := stationaryTrace(2000, 4, 0.2, 0.01, 7)
	rng := mathx.NewRNG(8)
	for i := 1000; i < 2000; i++ {
		tr[i].Reward = 0.9 + rng.Normal(0, 0.01)
	}
	v := mustView(t, tr)
	r, err := Compute(v, uniformAB(), Config{Windows: 20})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary()
	if s.Grade != GradeDrift || s.Windows != 20 || s.Alarms != len(r.Alarms) {
		t.Fatalf("summary = %+v inconsistent with report", s)
	}
	if math.Abs(s.MinESSRatio-1) > 1e-12 {
		t.Fatalf("minEssRatio = %g, want 1 for unit weights", s.MinESSRatio)
	}
	if s.LastRewardMean < 0.8 {
		t.Fatalf("lastRewardMean = %g, want post-shift level", s.LastRewardMean)
	}
	out := r.Render()
	for _, want := range []string{"bias observatory", "grade=drift", "drift: reward_mean up at window 10", "propensity calibration"} {
		if !contains(out, want) {
			t.Fatalf("Render() missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
