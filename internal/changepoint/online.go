package changepoint

import (
	"errors"
	"fmt"
	"math"
)

// This file extends the offline segmentation algorithms (PELT, binary
// segmentation) with an *online* detector, so the bias observatory can
// watch a per-window diagnostic series — reward means, ESS ratios —
// and raise an alarm at the first window that departs from the
// calibrated regime, instead of segmenting after the fact.
//
// The detector is a two-sided tabular CUSUM (Page 1954): against a
// reference mean μ and scale σ it accumulates standardized exceedances
//
//	S⁺ ← max(0, S⁺ + (x−μ)/σ − κ)    upward shifts
//	S⁻ ← max(0, S⁻ − (x−μ)/σ − κ)    downward shifts
//
// and fires when either statistic crosses the decision threshold h.
// Everything is a pure function of the inputs — no randomness, no
// clocks — so alarms are bit-deterministic and reproducible across
// runs and worker counts.

// Direction labels which side of the CUSUM fired.
type Direction int

const (
	// Up means the series shifted above the reference mean.
	Up Direction = +1
	// Down means the series shifted below the reference mean.
	Down Direction = -1
)

// String renders the direction for reports and JSON.
func (d Direction) String() string {
	if d < 0 {
		return "down"
	}
	return "up"
}

// Cusum is a two-sided online CUSUM detector against a fixed reference
// (mean, scale). Feed observations in order with Update; after a
// firing, the statistics reset so the detector can fire again on a
// later shift. The zero value is unusable — construct with NewCusum.
type Cusum struct {
	mean, scale float64
	kappa, h    float64
	sPos, sNeg  float64
}

// DefaultKappa is the CUSUM slack: shifts smaller than κ·σ accumulate
// nothing and are ignored. 0.75 is deliberately above the classic 0.5
// because the reference here is calibrated from a short warmup whose
// mean error is itself a sizable fraction of σ — a drift monitor wants
// regime changes, not warmup sampling noise.
const DefaultKappa = 0.75

// DefaultThreshold is the decision threshold h in σ units. At h = 5 a
// clean 1.75σ shift fires after ~5 observations and a ≥5.75σ jump
// fires on the very observation it lands, while stationary noise stays
// silent for the short series (tens of windows) this repository
// monitors.
const DefaultThreshold = 5.0

// NewCusum returns a detector calibrated to the reference regime
// (mean, scale). kappa <= 0 and h <= 0 take the defaults. scale must
// be > 0: calibrate on a warmup prefix and floor it (see Calibrate).
func NewCusum(mean, scale, kappa, h float64) (*Cusum, error) {
	if !(scale > 0) || math.IsInf(scale, 0) || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("changepoint: cusum reference mean=%g scale=%g invalid (scale must be finite and > 0)", mean, scale)
	}
	if kappa <= 0 {
		kappa = DefaultKappa
	}
	if h <= 0 {
		h = DefaultThreshold
	}
	return &Cusum{mean: mean, scale: scale, kappa: kappa, h: h}, nil
}

// Update feeds one observation. It returns whether the detector fired,
// the direction of the detected shift, and the firing statistic (in σ
// units; 0 when not fired). A firing resets both one-sided statistics,
// so consecutive alarms are separated by fresh accumulation.
func (c *Cusum) Update(x float64) (fired bool, dir Direction, stat float64) {
	z := (x - c.mean) / c.scale
	c.sPos = math.Max(0, c.sPos+z-c.kappa)
	c.sNeg = math.Max(0, c.sNeg-z-c.kappa)
	// On a simultaneous crossing the larger statistic wins; ties go up
	// (deterministic either way).
	if c.sPos >= c.h && c.sPos >= c.sNeg {
		stat = c.sPos
		c.sPos, c.sNeg = 0, 0
		return true, Up, stat
	}
	if c.sNeg >= c.h {
		stat = c.sNeg
		c.sPos, c.sNeg = 0, 0
		return true, Down, stat
	}
	return false, Up, 0
}

// Reset clears the accumulated statistics, keeping the reference.
func (c *Cusum) Reset() { c.sPos, c.sNeg = 0, 0 }

// Reference returns the detector's calibrated (mean, scale).
func (c *Cusum) Reference() (mean, scale float64) { return c.mean, c.scale }

// Shift is one online-detected change in a series.
type Shift struct {
	// Index is the series position at which the detector fired. The
	// underlying change began at or shortly before this index (CUSUM
	// detection delay shrinks as the shift grows).
	Index int
	// Direction is the sign of the shift relative to the warmup mean.
	Direction Direction
	// Statistic is the CUSUM value at firing, in σ units.
	Statistic float64
	// Observed is the series value that fired the alarm.
	Observed float64
	// Baseline is the warmup reference mean.
	Baseline float64
}

// Calibrate computes the (mean, scale) reference from a warmup prefix.
// The scale is the prefix standard deviation, inflated by a 1 + 2/√n
// small-sample factor (a short warmup underestimates σ roughly this
// often-enough to matter, and an underestimated scale turns the
// detector into a hair trigger), then floored at a small fraction of
// |mean| (and an absolute epsilon) so near-constant warmup series —
// common when windows of a deterministic workload agree to many
// digits — stay usable.
func Calibrate(warmup []float64) (mean, scale float64, err error) {
	if len(warmup) < 2 {
		return 0, 0, errors.New("changepoint: cusum calibration needs at least 2 warmup observations")
	}
	n := float64(len(warmup))
	s := 0.0
	for _, x := range warmup {
		s += x
	}
	mean = s / n
	ss := 0.0
	for _, x := range warmup {
		d := x - mean
		ss += d * d
	}
	scale = math.Sqrt(ss/(n-1)) * (1 + 2/math.Sqrt(n))
	// Floors: 1% of the mean magnitude, and an absolute epsilon for
	// all-zero prefixes.
	if floor := 0.01 * math.Abs(mean); scale < floor {
		scale = floor
	}
	if scale < 1e-12 {
		scale = 1e-12
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) {
		return 0, 0, fmt.Errorf("changepoint: cusum calibration produced scale %g", scale)
	}
	return mean, scale, nil
}

// DetectShifts runs the two-sided CUSUM over xs: the first warmup
// observations calibrate the reference (and are never tested), the
// rest are fed in order. kappa/h <= 0 take the defaults. It returns
// every firing, in order; an empty result means the series stayed in
// its calibrated regime. Errors only on invalid arguments.
func DetectShifts(xs []float64, warmup int, kappa, h float64) ([]Shift, error) {
	if warmup < 2 {
		return nil, errors.New("changepoint: warmup must be >= 2")
	}
	if len(xs) <= warmup {
		return nil, nil // nothing beyond the calibration prefix
	}
	mean, scale, err := Calibrate(xs[:warmup])
	if err != nil {
		return nil, err
	}
	det, err := NewCusum(mean, scale, kappa, h)
	if err != nil {
		return nil, err
	}
	var shifts []Shift
	for i := warmup; i < len(xs); i++ {
		if fired, dir, stat := det.Update(xs[i]); fired {
			shifts = append(shifts, Shift{
				Index:     i,
				Direction: dir,
				Statistic: stat,
				Observed:  xs[i],
				Baseline:  mean,
			})
		}
	}
	return shifts, nil
}
