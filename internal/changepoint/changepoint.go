// Package changepoint implements offline change-point detection on
// univariate series: PELT (Killick, Fearnhead, Eckley 2012 — cited as
// [23] in the paper) and binary segmentation, with penalized Gaussian
// cost functions in the spirit of Lavielle's penalized contrasts [26].
//
// The paper's §4.3 proposes change-point detection to discover when a
// policy's own decisions have shifted the network state ("self-inflicted
// state changes"), so that the DR estimator can be applied only within
// matching state segments.
package changepoint

import (
	"errors"
	"math"
)

// CostFunc returns the cost of modelling xs[lo:hi] (hi exclusive) as one
// homogeneous segment. Lower is better. Implementations must be
// non-negative-ish and satisfy cost(a,c) >= cost(a,b)+cost(b,c) up to
// the penalty (subadditivity), which the Gaussian costs do.
type CostFunc func(lo, hi int) float64

// MeanCost returns a CostFunc for a Gaussian mean-shift model with
// (assumed) constant variance: the within-segment sum of squared
// deviations from the segment mean. O(1) per query via prefix sums.
func MeanCost(xs []float64) CostFunc {
	n := len(xs)
	sum := make([]float64, n+1)
	sumSq := make([]float64, n+1)
	for i, x := range xs {
		sum[i+1] = sum[i] + x
		sumSq[i+1] = sumSq[i] + x*x
	}
	return func(lo, hi int) float64 {
		m := float64(hi - lo)
		if m <= 0 {
			return 0
		}
		s := sum[hi] - sum[lo]
		return (sumSq[hi] - sumSq[lo]) - s*s/m
	}
}

// MeanVarCost returns a CostFunc for a Gaussian model where both mean
// and variance may shift: the segment's negative maximized
// log-likelihood, m·log(σ̂²) (up to constants).
func MeanVarCost(xs []float64) CostFunc {
	base := MeanCost(xs)
	return func(lo, hi int) float64 {
		m := float64(hi - lo)
		if m <= 0 {
			return 0
		}
		v := base(lo, hi) / m
		if v < 1e-12 {
			v = 1e-12
		}
		return m * math.Log(v)
	}
}

// BICPenalty returns the standard BIC-style penalty for a series of
// length n: β = c·log n. Use c=2 with MeanCost (one mean parameter plus
// the change point itself is the usual convention); larger c yields
// fewer change points.
func BICPenalty(n int, c float64) float64 {
	if c <= 0 {
		c = 2
	}
	return c * math.Log(float64(n))
}

// PELT finds the optimal segmentation of the series underlying cost,
// minimizing Σ segment costs + β·(#changepoints), via the PELT dynamic
// program with pruning. n is the series length and minSize the minimum
// segment length (≥ 1). It returns the sorted change-point indices: a
// change point at index t means a new segment starts at t.
func PELT(n int, cost CostFunc, beta float64, minSize int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("changepoint: empty series")
	}
	if beta < 0 {
		return nil, errors.New("changepoint: negative penalty")
	}
	if minSize < 1 {
		minSize = 1
	}
	if n < 2*minSize {
		return nil, nil // nothing to split
	}
	const inf = math.MaxFloat64 / 4
	f := make([]float64, n+1) // f[t]: optimal cost of xs[:t]
	prev := make([]int, n+1)  // prev[t]: last change point before t
	f[0] = -beta
	for t := 1; t <= n; t++ {
		f[t] = inf
		prev[t] = 0
	}
	candidates := []int{0}
	for t := minSize; t <= n; t++ {
		bestVal, bestTau := inf, 0
		for _, tau := range candidates {
			if t-tau < minSize {
				continue
			}
			v := f[tau] + cost(tau, t) + beta
			if v < bestVal {
				bestVal, bestTau = v, tau
			}
		}
		f[t] = bestVal
		prev[t] = bestTau
		// Prune candidates that can never win again (PELT inequality
		// with K=0 for subadditive costs).
		kept := candidates[:0]
		for _, tau := range candidates {
			if t-tau < minSize || f[tau]+cost(tau, t) <= f[t] {
				kept = append(kept, tau)
			}
		}
		candidates = append(kept, t-minSize+1)
	}
	// Backtrack.
	var cps []int
	for t := n; t > 0; {
		tau := prev[t]
		if tau > 0 {
			cps = append(cps, tau)
		}
		t = tau
	}
	// Reverse into ascending order.
	for i, j := 0, len(cps)-1; i < j; i, j = i+1, j-1 {
		cps[i], cps[j] = cps[j], cps[i]
	}
	return cps, nil
}

// BinarySegmentation recursively splits the series at the single best
// change point while the cost reduction exceeds beta. It is faster but
// only approximately optimal; provided as a baseline against PELT.
func BinarySegmentation(n int, cost CostFunc, beta float64, minSize int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("changepoint: empty series")
	}
	if beta < 0 {
		return nil, errors.New("changepoint: negative penalty")
	}
	if minSize < 1 {
		minSize = 1
	}
	var cps []int
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2*minSize {
			return
		}
		whole := cost(lo, hi)
		bestGain, bestT := 0.0, -1
		for t := lo + minSize; t <= hi-minSize; t++ {
			gain := whole - cost(lo, t) - cost(t, hi)
			if gain > bestGain {
				bestGain, bestT = gain, t
			}
		}
		if bestT < 0 || bestGain <= beta {
			return
		}
		split(lo, bestT)
		cps = append(cps, bestT)
		split(bestT, hi)
	}
	split(0, n)
	return cps, nil
}

// Segments converts change points into [lo, hi) segment bounds for a
// series of length n.
func Segments(n int, cps []int) [][2]int {
	out := make([][2]int, 0, len(cps)+1)
	lo := 0
	for _, cp := range cps {
		out = append(out, [2]int{lo, cp})
		lo = cp
	}
	out = append(out, [2]int{lo, n})
	return out
}

// Labels assigns each index its segment number given change points.
func Labels(n int, cps []int) []int {
	out := make([]int, n)
	seg := 0
	next := n
	if len(cps) > 0 {
		next = cps[0]
	}
	k := 0
	for i := 0; i < n; i++ {
		for i >= next {
			seg++
			k++
			if k < len(cps) {
				next = cps[k]
			} else {
				next = n
			}
		}
		out[i] = seg
	}
	return out
}
