package changepoint

import (
	"testing"
	"testing/quick"

	"drnet/internal/mathx"
)

// stepSeries builds a series with mean shifts at the given change
// points.
func stepSeries(rng *mathx.RNG, n int, cps []int, means []float64, sigma float64) []float64 {
	xs := make([]float64, n)
	seg := 0
	for i := 0; i < n; i++ {
		if seg < len(cps) && i >= cps[seg] {
			seg++
		}
		xs[i] = rng.Normal(means[seg], sigma)
	}
	return xs
}

func within(t *testing.T, got []int, want []int, tol int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("found %d change points %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		d := got[i] - want[i]
		if d < -tol || d > tol {
			t.Fatalf("change point %d at %d, want %d ± %d", i, got[i], want[i], tol)
		}
	}
}

func TestPELTSingleShift(t *testing.T) {
	rng := mathx.NewRNG(1)
	xs := stepSeries(rng, 400, []int{200}, []float64{0, 4}, 1)
	cps, err := PELT(len(xs), MeanCost(xs), BICPenalty(len(xs), 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	within(t, cps, []int{200}, 4)
}

func TestPELTMultipleShifts(t *testing.T) {
	rng := mathx.NewRNG(2)
	want := []int{150, 300, 450}
	xs := stepSeries(rng, 600, want, []float64{0, 5, -3, 2}, 1)
	cps, err := PELT(len(xs), MeanCost(xs), BICPenalty(len(xs), 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	within(t, cps, want, 4)
}

func TestPELTNoShift(t *testing.T) {
	rng := mathx.NewRNG(3)
	xs := stepSeries(rng, 300, nil, []float64{1}, 1)
	cps, err := PELT(len(xs), MeanCost(xs), BICPenalty(len(xs), 3), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 0 {
		t.Fatalf("spurious change points %v on a homogeneous series", cps)
	}
}

func TestPELTVarianceShift(t *testing.T) {
	rng := mathx.NewRNG(4)
	xs := make([]float64, 600)
	for i := range xs {
		sigma := 0.5
		if i >= 300 {
			sigma = 4
		}
		xs[i] = rng.Normal(0, sigma)
	}
	cps, err := PELT(len(xs), MeanVarCost(xs), BICPenalty(len(xs), 4), 10)
	if err != nil {
		t.Fatal(err)
	}
	within(t, cps, []int{300}, 15)
}

func TestPELTErrorsAndEdgeCases(t *testing.T) {
	xs := []float64{1, 2}
	if _, err := PELT(0, MeanCost(xs), 1, 1); err == nil {
		t.Fatal("empty series should fail")
	}
	if _, err := PELT(2, MeanCost(xs), -1, 1); err == nil {
		t.Fatal("negative penalty should fail")
	}
	cps, err := PELT(2, MeanCost(xs), 1, 5)
	if err != nil || len(cps) != 0 {
		t.Fatalf("too-short series: cps=%v err=%v", cps, err)
	}
}

func TestBinarySegmentationSingleShift(t *testing.T) {
	rng := mathx.NewRNG(5)
	xs := stepSeries(rng, 400, []int{170}, []float64{0, 3}, 1)
	cps, err := BinarySegmentation(len(xs), MeanCost(xs), BICPenalty(len(xs), 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	within(t, cps, []int{170}, 5)
}

func TestBinarySegmentationMatchesPELTOnCleanData(t *testing.T) {
	rng := mathx.NewRNG(6)
	want := []int{100, 200}
	xs := stepSeries(rng, 300, want, []float64{0, 6, 0}, 0.5)
	pelt, err := PELT(len(xs), MeanCost(xs), BICPenalty(len(xs), 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := BinarySegmentation(len(xs), MeanCost(xs), BICPenalty(len(xs), 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	within(t, pelt, want, 3)
	within(t, bs, want, 3)
}

func TestBinarySegmentationErrors(t *testing.T) {
	if _, err := BinarySegmentation(0, MeanCost(nil), 1, 1); err == nil {
		t.Fatal("empty series should fail")
	}
	if _, err := BinarySegmentation(5, MeanCost(make([]float64, 5)), -1, 1); err == nil {
		t.Fatal("negative penalty should fail")
	}
}

func TestSegmentsAndLabels(t *testing.T) {
	segs := Segments(10, []int{3, 7})
	want := [][2]int{{0, 3}, {3, 7}, {7, 10}}
	if len(segs) != len(want) {
		t.Fatalf("segments %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
	labels := Labels(10, []int{3, 7})
	wantLabels := []int{0, 0, 0, 1, 1, 1, 1, 2, 2, 2}
	for i := range wantLabels {
		if labels[i] != wantLabels[i] {
			t.Fatalf("labels = %v", labels)
		}
	}
	// No change points: one segment, all zeros.
	if got := Labels(3, nil); got[0] != 0 || got[2] != 0 {
		t.Fatalf("labels with no cps = %v", got)
	}
	if got := Segments(3, nil); len(got) != 1 || got[0] != [2]int{0, 3} {
		t.Fatalf("segments with no cps = %v", got)
	}
}

func TestMeanCostPrefixSums(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cost := MeanCost(xs)
	// Whole series: mean 2.5, SSE = 2.25+0.25+0.25+2.25 = 5.
	if got := cost(0, 4); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("cost(0,4) = %g, want 5", got)
	}
	if got := cost(1, 3); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("cost(1,3) = %g, want 0.5", got)
	}
	if got := cost(2, 2); got != 0 {
		t.Fatalf("empty segment cost = %g", got)
	}
}

func almostEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// Property: segmentation cost of PELT's result never exceeds the
// unsegmented cost plus penalties, and all change points are valid
// indices respecting minSize.
func TestPELTValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRNG(seed)
		n := 40 + rng.Intn(200)
		xs := make([]float64, n)
		mean := 0.0
		for i := range xs {
			if rng.Float64() < 0.02 {
				mean += rng.Normal(0, 5)
			}
			xs[i] = rng.Normal(mean, 1)
		}
		minSize := 1 + rng.Intn(5)
		cost := MeanCost(xs)
		beta := BICPenalty(n, 2)
		cps, err := PELT(n, cost, beta, minSize)
		if err != nil {
			return false
		}
		last := 0
		for _, cp := range cps {
			if cp <= 0 || cp >= n || cp-last < minSize {
				return false
			}
			last = cp
		}
		if n-last < minSize && len(cps) > 0 {
			return false
		}
		// Total segmented cost + penalties must not exceed the
		// single-segment cost (optimality sanity check).
		total := 0.0
		for _, seg := range Segments(n, cps) {
			total += cost(seg[0], seg[1])
		}
		total += beta * float64(len(cps))
		return total <= cost(0, n)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
