package changepoint

import (
	"math"
	"testing"

	"drnet/internal/mathx"
)

func TestCusumFiresOnLargeJumpImmediately(t *testing.T) {
	det, err := NewCusum(0, 1, 0, 0) // defaults: κ=0.5, h=4
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if fired, _, _ := det.Update(0.1); fired {
			t.Fatalf("fired on stationary value at i=%d", i)
		}
	}
	fired, dir, stat := det.Update(6) // 6σ jump: z−κ = 5.5 ≥ 4
	if !fired || dir != Up {
		t.Fatalf("want immediate up firing, got fired=%v dir=%v", fired, dir)
	}
	if stat < DefaultThreshold {
		t.Fatalf("firing statistic %g below threshold", stat)
	}
}

func TestCusumDetectsDownShift(t *testing.T) {
	det, err := NewCusum(1, 0.5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fired bool
	var dir Direction
	for i := 0; i < 20; i++ {
		if f, d, _ := det.Update(0.2); f { // 1.6σ below reference
			fired, dir = true, d
			break
		}
	}
	if !fired || dir != Down {
		t.Fatalf("want down firing on sustained 1.6σ drop, got fired=%v dir=%v", fired, dir)
	}
}

func TestCusumResetAfterFiring(t *testing.T) {
	det, err := NewCusum(0, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fired, _, _ := det.Update(10); !fired {
		t.Fatal("want firing on 10σ jump")
	}
	// Statistics reset: a single in-regime value must not re-fire.
	if fired, _, _ := det.Update(0); fired {
		t.Fatal("detector did not reset after firing")
	}
}

func TestNewCusumRejectsBadReference(t *testing.T) {
	for _, tc := range []struct{ mean, scale float64 }{
		{0, 0}, {0, -1}, {math.NaN(), 1}, {math.Inf(1), 1}, {0, math.Inf(1)},
	} {
		if _, err := NewCusum(tc.mean, tc.scale, 0, 0); err == nil {
			t.Errorf("NewCusum(%g, %g) accepted invalid reference", tc.mean, tc.scale)
		}
	}
}

func TestCalibrateFloorsNearConstantPrefix(t *testing.T) {
	mean, scale, err := Calibrate([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Fatalf("mean = %g, want 5", mean)
	}
	if scale < 1e-12 || scale > 0.05+1e-12 {
		t.Fatalf("scale = %g, want floored to 1%% of mean", scale)
	}
	// All-zero prefix: absolute epsilon floor keeps the detector valid.
	_, scale, err = Calibrate([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if scale != 1e-12 {
		t.Fatalf("all-zero scale = %g, want 1e-12", scale)
	}
}

func TestDetectShiftsFindsInjectedStep(t *testing.T) {
	// 20-point series: N(0.2, 0.01) noise for 10 points, then a step to
	// 0.9 — the alarm must land exactly on the first shifted index.
	rng := mathx.NewRNG(7)
	xs := make([]float64, 20)
	for i := range xs {
		base := 0.2
		if i >= 10 {
			base = 0.9
		}
		xs[i] = base + rng.Normal(0, 0.01)
	}
	shifts, err := DetectShifts(xs, 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) == 0 {
		t.Fatal("no shift detected on a 70σ step")
	}
	if shifts[0].Index != 10 {
		t.Fatalf("first alarm at index %d, want exactly 10", shifts[0].Index)
	}
	if shifts[0].Direction != Up {
		t.Fatalf("direction %v, want up", shifts[0].Direction)
	}
}

func TestDetectShiftsSilentOnStationarySeries(t *testing.T) {
	rng := mathx.NewRNG(11)
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = 0.5 + rng.Normal(0, 0.05)
	}
	shifts, err := DetectShifts(xs, 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) != 0 {
		t.Fatalf("false alarms on stationary series: %+v", shifts)
	}
}

func TestDetectShiftsDeterministic(t *testing.T) {
	rng := mathx.NewRNG(3)
	xs := make([]float64, 30)
	for i := range xs {
		base := 1.0
		if i >= 15 {
			base = 2.5
		}
		xs[i] = base + rng.Normal(0, 0.1)
	}
	a, err := DetectShifts(xs, 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetectShifts(xs, 6, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic shift count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shift %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDetectShiftsArgErrors(t *testing.T) {
	if _, err := DetectShifts([]float64{1, 2, 3}, 1, 0, 0); err == nil {
		t.Error("warmup=1 accepted")
	}
	if s, err := DetectShifts([]float64{1, 2}, 2, 0, 0); err != nil || s != nil {
		t.Errorf("series no longer than warmup: got %v, %v", s, err)
	}
}
