package slo

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drnet/internal/biasobs"
	"drnet/internal/wideevent"
)

// fakeClock is a hand-advanced clock shared by a journal and an
// engine in the burn-rate tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func ev(route string, status int, durMs float64) *wideevent.Event {
	return &wideevent.Event{Route: route, Status: status, DurationMs: durMs}
}

func TestParseConfig(t *testing.T) {
	cfg, err := Parse([]byte(`{
		"objectives": [
			{"name": "avail", "kind": "availability", "target": 0.99},
			{"name": "lat", "kind": "latency", "routes": ["/evaluate"], "target": 0.95, "latencyMs": 100}
		]
	}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(cfg.Windows) != 2 || cfg.Windows[0].Name != "fast" {
		t.Fatalf("expected default windows, got %+v", cfg.Windows)
	}
	if cfg.BucketSeconds != 10 {
		t.Fatalf("expected default bucketSeconds 10, got %d", cfg.BucketSeconds)
	}

	bad := []struct {
		name, doc, wantErr string
	}{
		{"empty", `{}`, "at least one objective"},
		{"unknownField", `{"objectives":[{"name":"a","kind":"availability","target":0.9}],"bucketSecs":5}`, "invalid config"},
		{"unknownKind", `{"objectives":[{"name":"a","kind":"uptime","target":0.9}]}`, "unknown kind"},
		{"badTarget", `{"objectives":[{"name":"a","kind":"availability","target":1.5}]}`, "must be in (0, 1]"},
		{"latNoBound", `{"objectives":[{"name":"a","kind":"latency","target":0.9}]}`, "latencyMs > 0"},
		{"dupName", `{"objectives":[{"name":"a","kind":"availability","target":0.9},{"name":"a","kind":"availability","target":0.9}]}`, "duplicate objective"},
		{"badSeverity", `{"objectives":[{"name":"a","kind":"availability","target":0.9}],"windows":[{"name":"w","shortSeconds":60,"longSeconds":600,"burn":2,"severity":"critical"}]}`, "unknown severity"},
		{"badWindow", `{"objectives":[{"name":"a","kind":"availability","target":0.9}],"windows":[{"name":"w","shortSeconds":600,"longSeconds":60,"burn":2,"severity":"page"}]}`, "shortSeconds <= longSeconds"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse(%s) err = %v, want containing %q", tc.name, err, tc.wantErr)
			}
		})
	}
}

func TestClassifyTable(t *testing.T) {
	avail := Objective{Name: "a", Kind: KindAvailability, Target: 0.99}
	availEval := Objective{Name: "a2", Kind: KindAvailability, Routes: []string{"/evaluate"}, Target: 0.99}
	lat := Objective{Name: "l", Kind: KindLatency, Target: 0.99, LatencyMs: 100}
	stale := Objective{Name: "s", Kind: KindStaleness, Target: 0.99, StalenessRecords: 50}
	drift := Objective{Name: "d", Kind: KindDriftFree, Target: 0.95}

	streamed := &wideevent.Event{Route: "/evaluate", Status: 200, Streamed: true, StalenessRecords: 10}
	staleEv := &wideevent.Event{Route: "/evaluate", Status: 200, Streamed: true, StalenessRecords: 99}
	graded := &wideevent.Event{Route: "/evaluate", Status: 200, BiasGrade: biasobs.GradeHealthy}
	drifted := &wideevent.Event{Route: "/evaluate", Status: 200, BiasGrade: biasobs.GradeDrift}

	cases := []struct {
		name            string
		obj             Objective
		ev              *wideevent.Event
		inScope, good   bool
	}{
		{"ok", avail, ev("/evaluate", 200, 1), true, true},
		{"client4xxGood", avail, ev("/evaluate", 422, 1), true, true},
		{"shed429Good", avail, ev("/evaluate", 429, 1), true, true},
		{"server5xxBad", avail, ev("/evaluate", 500, 1), true, false},
		{"routeScoped", availEval, ev("/ingest", 500, 1), false, false},
		{"routeScopedIn", availEval, ev("/evaluate", 500, 1), true, false},
		{"fast", lat, ev("/evaluate", 200, 99), true, true},
		{"atBound", lat, ev("/evaluate", 200, 100), true, true},
		{"slow", lat, ev("/evaluate", 200, 101), true, false},
		{"notStreamedOutOfScope", stale, ev("/evaluate", 200, 1), false, false},
		{"fresh", stale, streamed, true, true},
		{"stale", stale, staleEv, true, false},
		{"ungradedOutOfScope", drift, ev("/evaluate", 200, 1), false, false},
		{"healthy", drift, graded, true, true},
		{"watchStillGood", drift, &wideevent.Event{BiasGrade: biasobs.GradeWatch}, true, true},
		{"drifted", drift, drifted, true, false},
		{"nilEvent", avail, nil, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inScope, good := tc.obj.Classify(tc.ev)
			if inScope != tc.inScope || good != tc.good {
				t.Fatalf("Classify = (%v, %v), want (%v, %v)", inScope, good, tc.inScope, tc.good)
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	objs := []Objective{
		{Name: "avail", Kind: KindAvailability, Target: 0.75},
		{Name: "stale", Kind: KindStaleness, Target: 0.99, StalenessRecords: 10},
	}
	events := []*wideevent.Event{
		ev("/evaluate", 200, 1),
		ev("/evaluate", 200, 1),
		ev("/evaluate", 500, 1),
		ev("/evaluate", 200, 1),
	}
	out := Summarize(objs, events)
	if len(out) != 2 {
		t.Fatalf("len = %d, want 2", len(out))
	}
	if out[0].Good != 3 || out[0].Total != 4 || !out[0].Met {
		t.Fatalf("avail = %+v, want 3/4 met", out[0])
	}
	// No streamed events: staleness has an empty scope, which cannot
	// violate the target.
	if out[1].Total != 0 || out[1].Ratio != 1 || !out[1].Met {
		t.Fatalf("stale = %+v, want empty-scope met", out[1])
	}

	// Order independence: reversing the event list changes nothing.
	rev := make([]*wideevent.Event, len(events))
	for i, e := range events {
		rev[len(events)-1-i] = e
	}
	a, _ := json.Marshal(out)
	b, _ := json.Marshal(Summarize(objs, rev))
	if string(a) != string(b) {
		t.Fatalf("Summarize is order-dependent:\n%s\n%s", a, b)
	}
}

// testConfig is a single availability objective with one fast page
// window and one slow warning window over small spans so tests can
// walk the clock through escalation and recovery quickly.
func testConfig() Config {
	return Config{
		Objectives: []Objective{{Name: "avail", Kind: KindAvailability, Target: 0.9}},
		Windows: []Window{
			{Name: "fast", ShortSeconds: 60, LongSeconds: 300, Burn: 5, Severity: "page"},
			{Name: "slow", ShortSeconds: 120, LongSeconds: 600, Burn: 2, Severity: "warning"},
		},
		BucketSeconds: 10,
	}
}

func TestBurnRateEscalationAndRecovery(t *testing.T) {
	clock := newFakeClock()
	eng, err := New(testConfig(), clock.Now)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var transitions []Transition
	eng.SetHook(func(tr Transition) { transitions = append(transitions, tr) })

	// Phase 1: healthy traffic. Burn stays 0, state ok.
	for i := 0; i < 50; i++ {
		eng.Observe(ev("/evaluate", 200, 1))
		clock.Advance(time.Second)
	}
	rep := eng.Eval()
	if rep.State != "ok" || rep.Objectives[0].State != "ok" {
		t.Fatalf("healthy state = %s/%s, want ok", rep.State, rep.Objectives[0].State)
	}
	if len(transitions) != 0 {
		t.Fatalf("unexpected transitions: %+v", transitions)
	}

	// Phase 2: moderate failure — 30% bad burns at 3× (between the
	// slow threshold 2 and the fast threshold 5) in both slow windows
	// → warning, not page.
	for i := 0; i < 100; i++ {
		status := 200
		if i%10 < 3 {
			status = 500
		}
		eng.Observe(ev("/evaluate", status, 1))
		clock.Advance(time.Second)
	}
	rep = eng.Eval()
	if rep.State != "warning" {
		t.Fatalf("moderate-failure state = %s, want warning", rep.State)
	}
	if len(transitions) != 1 || transitions[0].To != StateWarning || transitions[0].From != StateOK {
		t.Fatalf("transitions = %+v, want single ok->warning", transitions)
	}
	if transitions[0].Objective != "avail" || transitions[0].Window != "slow" {
		t.Fatalf("transition detail = %+v, want avail/slow", transitions[0])
	}

	// Phase 3: total outage — 100% bad burns at 10× in the fast pair
	// → page (budget exhausted many times over).
	for i := 0; i < 120; i++ {
		eng.Observe(ev("/evaluate", 500, 1))
		clock.Advance(time.Second)
	}
	rep = eng.Eval()
	if rep.State != "page" {
		t.Fatalf("outage state = %s, want page", rep.State)
	}
	if n := len(transitions); n != 2 || transitions[1].To != StatePage {
		t.Fatalf("transitions = %+v, want warning->page appended", transitions)
	}
	fast := rep.Objectives[0].Windows[0]
	if !fast.Firing || fast.ShortBurn < 5 {
		t.Fatalf("fast window = %+v, want firing with burn >= 5", fast)
	}
	if rep.Objectives[0].BudgetRemaining >= 0 {
		t.Fatalf("budgetRemaining = %g, want negative during outage", rep.Objectives[0].BudgetRemaining)
	}

	// Phase 4: recovery — healthy traffic while the short windows
	// drain. The short window clearing un-fires the alert even while
	// the long window still remembers the outage.
	for i := 0; i < 300; i++ {
		eng.Observe(ev("/evaluate", 200, 1))
		clock.Advance(time.Second)
	}
	rep = eng.Eval()
	if rep.State != "ok" {
		t.Fatalf("post-recovery state = %s, want ok", rep.State)
	}
	last := transitions[len(transitions)-1]
	if last.To != StateOK || last.From != StatePage {
		t.Fatalf("last transition = %+v, want page->ok", last)
	}

	// Phase 5: the ring forgets — after the longest window passes with
	// no traffic at all, burns read 0.
	clock.Advance(700 * time.Second)
	rep = eng.Eval()
	for _, w := range rep.Objectives[0].Windows {
		if w.ShortBurn != 0 || w.LongBurn != 0 {
			t.Fatalf("window %s burns = %g/%g after idle, want 0", w.Window, w.ShortBurn, w.LongBurn)
		}
	}
}

func TestShortWindowGuardsAgainstOldBurn(t *testing.T) {
	// A burst of errors inside the long window but outside the short
	// one must NOT fire: the multi-window AND is the whole point.
	clock := newFakeClock()
	eng, err := New(testConfig(), clock.Now)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 150; i++ {
		eng.Observe(ev("/evaluate", 500, 1))
		clock.Advance(time.Second)
	}
	// Walk past both short windows (60s and 120s) with healthy traffic;
	// the 150 errors still dominate the fast 300s long window.
	for i := 0; i < 150; i++ {
		eng.Observe(ev("/evaluate", 200, 1))
		clock.Advance(time.Second)
	}
	rep := eng.Eval()
	fast := rep.Objectives[0].Windows[0]
	if fast.LongBurn < 4 {
		t.Fatalf("long burn = %g, want >= 4 (errors still in long window)", fast.LongBurn)
	}
	if fast.ShortBurn >= 1 || fast.Firing {
		t.Fatalf("fast window = %+v, want short window clean and not firing", fast)
	}
	if rep.State != "ok" {
		t.Fatalf("state = %s, want ok", rep.State)
	}
}

func TestReportByteDeterminism(t *testing.T) {
	// Two engines fed the same multiset of events in different orders
	// under identical clocks produce byte-identical reports.
	build := func(reverse bool) []byte {
		clock := newFakeClock()
		eng, err := New(DefaultConfig(), clock.Now)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		events := []*wideevent.Event{
			ev("/evaluate", 200, 10),
			ev("/evaluate", 500, 400),
			ev("/ingest", 200, 5),
			{Route: "/evaluate", Status: 200, DurationMs: 20, Streamed: true, StalenessRecords: 3},
			{Route: "/evaluate", Status: 200, DurationMs: 30, BiasGrade: biasobs.GradeDrift},
		}
		if reverse {
			for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
				events[i], events[j] = events[j], events[i]
			}
		}
		for _, e := range events {
			eng.Observe(e)
		}
		b, err := json.Marshal(eng.Eval())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := build(false), build(true)
	if string(a) != string(b) {
		t.Fatalf("report is order-dependent:\n%s\n%s", a, b)
	}
}

func TestEngineHandler(t *testing.T) {
	clock := newFakeClock()
	eng, err := New(DefaultConfig(), clock.Now)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.Observe(ev("/evaluate", 200, 10))
	rec := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rep.State != "ok" || len(rep.Objectives) != 4 {
		t.Fatalf("report = %+v, want ok with 4 objectives", rep)
	}
}

func TestJournalObserverFeedsEngine(t *testing.T) {
	// End-to-end inside the libraries: a journal at SampleRate 0 still
	// delivers every event to the engine via Observe.
	clock := newFakeClock()
	j := wideevent.NewJournal(wideevent.Options{Capacity: 4, SampleRate: 0, Seed: 1, Now: clock.Now})
	eng, err := New(testConfig(), clock.Now)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j.Observe(eng.Observe)
	for i := 0; i < 10; i++ {
		b := j.Begin("r", "/evaluate")
		b.Finish(200)
	}
	rep := eng.Eval()
	if rep.Objectives[0].Total != 10 {
		t.Fatalf("engine saw %d events, want 10 (sampling must not hide events)", rep.Objectives[0].Total)
	}
	if st := j.Stats(); st.Recorded != 0 {
		t.Fatalf("journal retained %d, want 0 at SampleRate 0", st.Recorded)
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.Observe(ev("/evaluate", 200, 1))
	rep := e.Eval()
	if rep.State != "ok" {
		t.Fatalf("nil engine state = %s, want ok", rep.State)
	}
}
