package slo

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"drnet/internal/wideevent"
)

// State is the alert state machine's position for one objective.
type State int

const (
	StateOK State = iota
	StateWarning
	StatePage
)

func (s State) String() string {
	switch s {
	case StateWarning:
		return "warning"
	case StatePage:
		return "page"
	default:
		return "ok"
	}
}

// ParseStateName maps a state's String() form back to the State — the
// inverse used by gauges that encode alert states numerically.
func ParseStateName(s string) (State, error) {
	if s == "ok" {
		return StateOK, nil
	}
	return parseState(s)
}

func parseState(s string) (State, error) {
	switch s {
	case "warning":
		return StateWarning, nil
	case "page":
		return StatePage, nil
	default:
		return StateOK, fmt.Errorf("unknown severity %q (want warning or page)", s)
	}
}

// Transition is one state change, delivered to the hook — the
// escalation surface drevald's -degrade-on-slo-page wires into the
// degradation machinery.
type Transition struct {
	Objective string
	From, To  State
	// Window, Burn and Threshold identify the rule that fired (the
	// worst firing window), zero-valued on recovery to ok.
	Window    string
	Burn      float64
	Threshold float64
}

// bucket is one time slot of commutative counts. idx is the absolute
// bucket index (unix seconds / bucketSeconds); a slot whose idx is
// stale belongs to a previous lap of the ring and reads as zero.
type bucket struct {
	idx         int64
	good, total uint64
}

// objectiveState is one objective's counters: a bucket ring covering
// the longest configured window, plus lifetime totals and the alert
// state.
type objectiveState struct {
	obj         Objective
	buckets     []bucket
	good, total uint64
	state       State
	since       time.Time
}

// Engine evaluates a Config over the wide-event stream. Observe is
// called synchronously from the journal for every emitted event
// (retained or sampled out — the SLO must see the unsampled stream);
// Eval computes burn rates and advances the state machine. All time
// flows through the injectable clock, and all aggregation is
// order-independent counting, so reports are byte-deterministic under
// a fixed clock at any worker count.
type Engine struct {
	cfg Config
	now func() time.Time

	mu   sync.Mutex
	objs []*objectiveState // guarded by mu
	hook func(Transition)  // guarded by mu
}

// New builds an engine for cfg (validated and defaulted). now is the
// clock; nil means time.Now.
func New(cfg Config, now func() time.Time) (*Engine, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if now == nil {
		now = time.Now
	}
	var longest float64
	for _, w := range cfg.Windows {
		if w.LongSeconds > longest {
			longest = w.LongSeconds
		}
	}
	// One spare bucket so the partially-filled current bucket never
	// evicts the oldest one still inside the longest window.
	n := int(math.Ceil(longest/float64(cfg.BucketSeconds))) + 1
	e := &Engine{cfg: cfg, now: now}
	for _, o := range cfg.Objectives {
		e.objs = append(e.objs, &objectiveState{obj: o, buckets: make([]bucket, n)})
	}
	return e, nil
}

// Config returns the engine's validated configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetHook registers the transition callback, invoked from Eval after
// the lock is released (so hooks may call back into the engine).
func (e *Engine) SetHook(fn func(Transition)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = fn
}

// Observe folds one wide event into every in-scope objective's
// current bucket. Nil-safe so a disabled engine costs one check.
func (e *Engine) Observe(ev *wideevent.Event) {
	if e == nil || ev == nil {
		return
	}
	idx := e.now().Unix() / int64(e.cfg.BucketSeconds)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range e.objs {
		inScope, good := st.obj.Classify(ev)
		if !inScope {
			continue
		}
		b := &st.buckets[int(idx%int64(len(st.buckets)))]
		if b.idx != idx {
			*b = bucket{idx: idx}
		}
		b.total++
		st.total++
		if good {
			b.good++
			st.good++
		}
	}
}

// windowCounts sums the buckets inside the trailing window of the
// given length ending at nowIdx.
func (st *objectiveState) windowCounts(nowIdx int64, seconds float64, bucketSeconds int) (good, total uint64) {
	span := int64(math.Ceil(seconds / float64(bucketSeconds)))
	lo := nowIdx - span + 1
	for i := range st.buckets {
		b := st.buckets[i]
		if b.idx >= lo && b.idx <= nowIdx && b.total > 0 {
			good += b.good
			total += b.total
		}
	}
	return good, total
}

// burnRate is badFraction / (1 − target): 1 spends the budget exactly
// at the sustainable pace. An empty window burns 0 (no evidence is
// not bad evidence); a target of 1 has no budget, so any bad event
// burns at the clamp.
func burnRate(good, total uint64, target float64) float64 {
	if total == 0 {
		return 0
	}
	badFrac := float64(total-good) / float64(total)
	budget := 1 - target
	if budget < 1e-9 {
		budget = 1e-9 // keep the rate finite (and JSON-encodable)
	}
	return badFrac / budget
}

// WindowStatus is one burn-rate rule's current reading.
type WindowStatus struct {
	Window        string  `json:"window"`
	Severity      string  `json:"severity"`
	BurnThreshold float64 `json:"burnThreshold"`
	ShortBurn     float64 `json:"shortBurn"`
	LongBurn      float64 `json:"longBurn"`
	Firing        bool    `json:"firing"`
}

// ObjectiveStatus is one objective's /debug/slo block.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Kind   Kind    `json:"kind"`
	Target float64 `json:"target"`
	State  string  `json:"state"`
	// Good and Total are lifetime counts of in-scope events.
	Good  uint64 `json:"good"`
	Total uint64 `json:"total"`
	// BudgetRemaining is the unspent error-budget fraction over the
	// longest window: 1 − longestWindowBurn. Negative means the
	// window has overspent its budget.
	BudgetRemaining float64        `json:"budgetRemaining"`
	Windows         []WindowStatus `json:"windows"`
}

// Report is the GET /debug/slo body. State is the rollup — the worst
// objective state — which /healthz surfaces as the slo grade.
type Report struct {
	State      string            `json:"state"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// Eval computes every objective's burn rates at the current clock
// reading, advances the alert state machine, fires the hook for each
// transition, and returns the report. The state an objective lands in
// is the worst severity among its firing windows — a pure function of
// the window counts, so recovery is as deterministic as escalation.
func (e *Engine) Eval() Report {
	if e == nil {
		return Report{State: StateOK.String(), Objectives: []ObjectiveStatus{}}
	}
	now := e.now()
	nowIdx := now.Unix() / int64(e.cfg.BucketSeconds)

	e.mu.Lock()
	var transitions []Transition
	hook := e.hook
	rollup := StateOK
	rep := Report{Objectives: make([]ObjectiveStatus, 0, len(e.objs))}
	var longest float64
	for _, w := range e.cfg.Windows {
		if w.LongSeconds > longest {
			longest = w.LongSeconds
		}
	}
	for _, st := range e.objs {
		os := ObjectiveStatus{
			Name:    st.obj.Name,
			Kind:    st.obj.Kind,
			Target:  st.obj.Target,
			Good:    st.good,
			Total:   st.total,
			Windows: make([]WindowStatus, 0, len(e.cfg.Windows)),
		}
		next := StateOK
		var firedWindow string
		var firedBurn, firedThreshold float64
		for _, w := range e.cfg.Windows {
			sg, stot := st.windowCounts(nowIdx, w.ShortSeconds, e.cfg.BucketSeconds)
			lg, ltot := st.windowCounts(nowIdx, w.LongSeconds, e.cfg.BucketSeconds)
			ws := WindowStatus{
				Window:        w.Name,
				Severity:      w.Severity,
				BurnThreshold: w.Burn,
				ShortBurn:     burnRate(sg, stot, st.obj.Target),
				LongBurn:      burnRate(lg, ltot, st.obj.Target),
			}
			ws.Firing = ws.ShortBurn >= w.Burn && ws.LongBurn >= w.Burn
			if ws.Firing {
				sev, _ := parseState(w.Severity)
				if sev > next {
					next, firedWindow = sev, w.Name
					firedBurn, firedThreshold = ws.ShortBurn, w.Burn
				}
			}
			os.Windows = append(os.Windows, ws)
		}
		lgood, ltotal := st.windowCounts(nowIdx, longest, e.cfg.BucketSeconds)
		os.BudgetRemaining = 1 - burnRate(lgood, ltotal, st.obj.Target)
		if next != st.state {
			transitions = append(transitions, Transition{
				Objective: st.obj.Name, From: st.state, To: next,
				Window: firedWindow, Burn: firedBurn, Threshold: firedThreshold,
			})
			st.state = next
			st.since = now
		}
		os.State = st.state.String()
		if st.state > rollup {
			rollup = st.state
		}
		rep.Objectives = append(rep.Objectives, os)
	}
	rep.State = rollup.String()
	e.mu.Unlock()

	if hook != nil {
		for _, tr := range transitions {
			hook(tr)
		}
	}
	return rep
}

// Handler serves GET /debug/slo: one Eval per request.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(e.Eval())
	})
}
