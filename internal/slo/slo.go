// Package slo turns the wide-event stream into service-level health:
// declarative objectives (availability, latency-within-bound,
// staleness-within-bound, drift-free fraction) evaluated with
// multi-window burn rates on an injectable clock, and an alert state
// machine (ok → warning → page) whose transitions can escalate into
// the serving stack's degradation machinery.
//
// The framing follows the multi-window, multi-burn-rate alerting
// pattern: an objective with target T has an error budget of 1−T; the
// burn rate of a window is (bad fraction in the window) / (1−T), so a
// burn rate of 1 spends the budget exactly at the sustainable pace
// and 14.4 spends a 30-day budget in 2 days. An alert fires only when
// BOTH a short and a long window burn above the threshold — the short
// window makes alerts reset quickly once the problem stops, the long
// one keeps one bad minute from paging. Everything is computed from
// commutative good/total counts in fixed time buckets, so results are
// independent of request interleaving — the property that makes the
// /debug/slo surface byte-deterministic at any worker count under a
// fixed clock.
package slo

import (
	"bytes"
	"encoding/json"
	"fmt"

	"drnet/internal/biasobs"
	"drnet/internal/wideevent"
)

// Kind names an objective's classification rule.
type Kind string

const (
	// KindAvailability counts a request good when it did not fail
	// server-side (status < 500; shed 429s and client errors spend no
	// budget — the server answered as designed).
	KindAvailability Kind = "availability"
	// KindLatency counts a request good when its total duration is
	// within LatencyMs. A target of 0.99 therefore reads "p99 latency
	// within the bound".
	KindLatency Kind = "latency"
	// KindStaleness counts a streamed answer good when its reward
	// model was at most StalenessRecords behind the live epoch;
	// non-streamed requests are out of scope.
	KindStaleness Kind = "staleness"
	// KindDriftFree counts a request good when the bias observatory
	// graded its trace below drift; requests without a grade are out
	// of scope.
	KindDriftFree Kind = "driftFree"
)

// Objective is one declarative SLO.
type Objective struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Routes scopes the objective; empty means every journalled route.
	Routes []string `json:"routes,omitempty"`
	// Target is the good fraction the budget is sized from (0,1];
	// e.g. 0.999 availability, 0.99 latency-within-bound.
	Target float64 `json:"target"`
	// LatencyMs is the KindLatency bound.
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// StalenessRecords is the KindStaleness bound.
	StalenessRecords int `json:"stalenessRecords,omitempty"`
}

// Validate rejects objectives the engine cannot evaluate.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective needs a name")
	}
	switch o.Kind {
	case KindAvailability, KindDriftFree:
	case KindLatency:
		if o.LatencyMs <= 0 {
			return fmt.Errorf("slo: %s: latency objective needs latencyMs > 0", o.Name)
		}
	case KindStaleness:
		if o.StalenessRecords < 0 {
			return fmt.Errorf("slo: %s: stalenessRecords must be >= 0", o.Name)
		}
	default:
		return fmt.Errorf("slo: %s: unknown kind %q (want availability, latency, staleness or driftFree)", o.Name, o.Kind)
	}
	if o.Target <= 0 || o.Target > 1 {
		return fmt.Errorf("slo: %s: target %g must be in (0, 1]", o.Name, o.Target)
	}
	return nil
}

// Classify maps one wide event onto the objective: whether the event
// is in scope, and if so whether it was good. Pure, so the benchkit
// and experiments compliance summaries reuse exactly the serving
// classification.
func (o Objective) Classify(ev *wideevent.Event) (inScope, good bool) {
	if ev == nil {
		return false, false
	}
	if len(o.Routes) > 0 {
		found := false
		for _, r := range o.Routes {
			if r == ev.Route {
				found = true
				break
			}
		}
		if !found {
			return false, false
		}
	}
	switch o.Kind {
	case KindAvailability:
		return true, ev.Status < 500
	case KindLatency:
		return true, ev.DurationMs <= o.LatencyMs
	case KindStaleness:
		if !ev.Streamed {
			return false, false
		}
		return true, ev.StalenessRecords <= o.StalenessRecords
	case KindDriftFree:
		if ev.BiasGrade == "" {
			return false, false
		}
		return true, biasobs.GradeRank(ev.BiasGrade) < biasobs.GradeRank(biasobs.GradeDrift)
	default:
		return false, false
	}
}

// Window is one multi-window burn-rate alerting rule: fire at
// Severity when both the short and long window burn above Burn.
type Window struct {
	Name string `json:"name"`
	// ShortSeconds and LongSeconds are the paired window lengths.
	ShortSeconds float64 `json:"shortSeconds"`
	LongSeconds  float64 `json:"longSeconds"`
	// Burn is the threshold both windows must exceed.
	Burn float64 `json:"burn"`
	// Severity is "warning" or "page".
	Severity string `json:"severity"`
}

// Validate rejects windows the engine cannot evaluate.
func (w Window) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("slo: window needs a name")
	}
	if w.ShortSeconds <= 0 || w.LongSeconds <= 0 || w.ShortSeconds > w.LongSeconds {
		return fmt.Errorf("slo: window %s: need 0 < shortSeconds <= longSeconds", w.Name)
	}
	if w.Burn <= 0 {
		return fmt.Errorf("slo: window %s: burn threshold must be > 0", w.Name)
	}
	if _, err := parseState(w.Severity); err != nil {
		return fmt.Errorf("slo: window %s: %v", w.Name, err)
	}
	return nil
}

// Config is the engine's declarative input (-slo-config).
type Config struct {
	Objectives []Objective `json:"objectives"`
	// Windows default to DefaultWindows when empty.
	Windows []Window `json:"windows,omitempty"`
	// BucketSeconds is the count-bucket granularity (default 10).
	BucketSeconds int `json:"bucketSeconds,omitempty"`
}

// DefaultWindows are the classic fast/slow burn-rate pairs: page when
// a 5m/1h pair burns 14.4× (a 3-day budget at that pace is gone in
// five hours), warn when a 30m/6h pair burns 6×.
func DefaultWindows() []Window {
	return []Window{
		{Name: "fast", ShortSeconds: 300, LongSeconds: 3600, Burn: 14.4, Severity: "page"},
		{Name: "slow", ShortSeconds: 1800, LongSeconds: 21600, Burn: 6, Severity: "warning"},
	}
}

// DefaultConfig is the serving default: availability, /evaluate
// latency-within-250ms at p99, staleness within 10k records, and a
// drift-free fraction — the four health axes the tentpole names.
func DefaultConfig() Config {
	return Config{
		Objectives: []Objective{
			{Name: "availability", Kind: KindAvailability, Target: 0.999},
			{Name: "evaluate-latency", Kind: KindLatency, Routes: []string{"/evaluate"}, Target: 0.99, LatencyMs: 250},
			{Name: "staleness", Kind: KindStaleness, Target: 0.99, StalenessRecords: 10000},
			{Name: "drift-free", Kind: KindDriftFree, Target: 0.95},
		},
		Windows:       DefaultWindows(),
		BucketSeconds: 10,
	}
}

// Parse decodes a -slo-config JSON document, fills window/bucket
// defaults, and validates. Unknown fields are errors so typos in an
// ops-owned file surface at startup, not as silently-ignored intent.
func Parse(b []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("slo: invalid config: %v", err)
	}
	return cfg.withDefaults()
}

// withDefaults fills the optional parts and validates everything.
func (c Config) withDefaults() (Config, error) {
	if len(c.Objectives) == 0 {
		return Config{}, fmt.Errorf("slo: config needs at least one objective")
	}
	if len(c.Windows) == 0 {
		c.Windows = DefaultWindows()
	}
	if c.BucketSeconds == 0 {
		c.BucketSeconds = 10
	}
	if c.BucketSeconds < 1 {
		return Config{}, fmt.Errorf("slo: bucketSeconds must be >= 1, got %d", c.BucketSeconds)
	}
	seen := map[string]bool{}
	for _, o := range c.Objectives {
		if err := o.Validate(); err != nil {
			return Config{}, err
		}
		if seen[o.Name] {
			return Config{}, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
	}
	for _, w := range c.Windows {
		if err := w.Validate(); err != nil {
			return Config{}, err
		}
	}
	return c, nil
}

// Compliance is one objective's lifetime scorecard over a finite
// event set — the per-run SLO summary benchkit's loadgen leg and the
// experiments manifest report.
type Compliance struct {
	Name   string  `json:"name"`
	Kind   Kind    `json:"kind"`
	Target float64 `json:"target"`
	Good   uint64  `json:"good"`
	Total  uint64  `json:"total"`
	// Ratio is good/total; 1 when no event was in scope (an empty
	// window cannot violate a target).
	Ratio float64 `json:"ratio"`
	Met   bool    `json:"met"`
}

// Summarize classifies events against each objective and reports the
// lifetime compliance. Pure and order-independent.
func Summarize(objectives []Objective, events []*wideevent.Event) []Compliance {
	out := make([]Compliance, 0, len(objectives))
	for _, o := range objectives {
		c := Compliance{Name: o.Name, Kind: o.Kind, Target: o.Target, Ratio: 1, Met: true}
		for _, ev := range events {
			inScope, good := o.Classify(ev)
			if !inScope {
				continue
			}
			c.Total++
			if good {
				c.Good++
			}
		}
		if c.Total > 0 {
			c.Ratio = float64(c.Good) / float64(c.Total)
			c.Met = c.Ratio >= o.Target
		}
		out = append(out, c)
	}
	return out
}
