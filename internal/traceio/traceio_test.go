package traceio

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func sampleFlat() FlatTrace {
	return FlatTrace{
		FeatureNames: []string{"asn", "rtt"},
		Records: []FlatRecord{
			{Features: []float64{1, 23.5}, Decision: "cdnA", Reward: 0.9, Propensity: 0.5},
			{Features: []float64{2, 17.25}, Decision: "cdnB", Reward: 0.4, Propensity: 0.25},
			{Features: []float64{3, -4}, Decision: "cdnA", Reward: -1.5, Propensity: 1},
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ft := sampleFlat()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ft); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(ft.Records) {
		t.Fatalf("got %d records", len(got.Records))
	}
	if got.FeatureNames[0] != "asn" || got.FeatureNames[1] != "rtt" {
		t.Fatalf("feature names %v", got.FeatureNames)
	}
	for i := range ft.Records {
		a, b := ft.Records[i], got.Records[i]
		if a.Decision != b.Decision || a.Reward != b.Reward || a.Propensity != b.Propensity {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Features {
			if a.Features[j] != b.Features[j] {
				t.Fatalf("record %d feature %d mismatch", i, j)
			}
		}
	}
}

func TestCSVDefaultHeaderNames(t *testing.T) {
	ft := sampleFlat()
	ft.FeatureNames = nil
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ft); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "f0,f1,decision") {
		t.Fatalf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, FlatTrace{}); err == nil {
		t.Fatal("empty trace should fail")
	}
	ragged := sampleFlat()
	ragged.Records[1].Features = []float64{1}
	if err := WriteCSV(&buf, ragged); err == nil {
		t.Fatal("ragged features should fail")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("short header should fail")
	}
	if _, err := ReadCSV(strings.NewReader("f0,decision,reward,propensity\n")); err == nil {
		t.Fatal("header-only should fail (no records)")
	}
	if _, err := ReadCSV(strings.NewReader("f0,decision,reward,propensity\nxx,d,1,1\n")); err == nil {
		t.Fatal("bad feature should fail")
	}
	if _, err := ReadCSV(strings.NewReader("f0,decision,reward,propensity\n1,d,xx,1\n")); err == nil {
		t.Fatal("bad reward should fail")
	}
	if _, err := ReadCSV(strings.NewReader("f0,decision,reward,propensity\n1,d,1,xx\n")); err == nil {
		t.Fatal("bad propensity should fail")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	ft := sampleFlat()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ft); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 3 || got.Records[2].Reward != -1.5 {
		t.Fatalf("round trip lost data: %+v", got.Records)
	}
}

func TestJSONLErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, FlatTrace{}); err == nil {
		t.Fatal("empty trace should fail")
	}
	if _, err := ReadJSONL(strings.NewReader("{bad json")); err == nil {
		t.Fatal("bad json should fail")
	}
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestFlattenUnflatten(t *testing.T) {
	tr := core.Trace[int, int]{
		{Context: 7, Decision: 2, Reward: 1.5, Propensity: 0.5},
	}
	ft := Flatten(tr, func(c int) []float64 { return []float64{float64(c)} },
		func(d int) string { return strconv.Itoa(d) })
	if ft.Records[0].Decision != "2" || ft.Records[0].Features[0] != 7 {
		t.Fatalf("flatten produced %+v", ft.Records[0])
	}
	back, err := Unflatten(ft,
		func(f []float64) (int, error) { return int(f[0]), nil },
		strconv.Atoi)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != tr[0] {
		t.Fatalf("round trip mismatch: %+v", back[0])
	}
	// Parser errors propagate.
	ft.Records[0].Decision = "zzz"
	if _, err := Unflatten(ft,
		func(f []float64) (int, error) { return int(f[0]), nil },
		strconv.Atoi); err == nil {
		t.Fatal("bad decision should fail")
	}
}

func TestToCoreAndKey(t *testing.T) {
	ft := sampleFlat()
	tr := ToCore(ft)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr[0].Decision != "cdnA" {
		t.Fatalf("decision %q", tr[0].Decision)
	}
	k1 := tr[0].Context.Key()
	k2 := FlatContext{Features: []float64{1, 23.5}}.Key()
	if k1 != k2 {
		t.Fatalf("keys differ: %q vs %q", k1, k2)
	}
	if tr[1].Context.Key() == k1 {
		t.Fatal("distinct contexts share a key")
	}
}

// Property: CSV and JSONL round trips preserve arbitrary traces exactly
// (float64 values are written with full precision).
func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(50)
		nf := 1 + rng.Intn(6)
		ft := FlatTrace{}
		for i := 0; i < n; i++ {
			rec := FlatRecord{
				Decision:   string(rune('a' + rng.Intn(26))),
				Reward:     rng.Normal(0, 100),
				Propensity: rng.Float64(),
			}
			for j := 0; j < nf; j++ {
				rec.Features = append(rec.Features, rng.Normal(0, 1e6))
			}
			ft.Records = append(ft.Records, rec)
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, ft); err != nil {
			return false
		}
		if err := WriteJSONL(&jsonBuf, ft); err != nil {
			return false
		}
		fromCSV, err := ReadCSV(&csvBuf)
		if err != nil {
			return false
		}
		fromJSON, err := ReadJSONL(&jsonBuf)
		if err != nil {
			return false
		}
		for _, got := range []FlatTrace{fromCSV, fromJSON} {
			if len(got.Records) != n {
				return false
			}
			for i := range ft.Records {
				a, b := ft.Records[i], got.Records[i]
				if a.Decision != b.Decision || a.Reward != b.Reward || a.Propensity != b.Propensity {
					return false
				}
				for j := range a.Features {
					if a.Features[j] != b.Features[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicyConstant(t *testing.T) {
	tr := core.Trace[FlatContext, string]{
		{Context: FlatContext{Features: []float64{1}}, Decision: "x", Reward: 1, Propensity: 1},
	}
	p, err := ParsePolicy("constant:x", tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Distribution(FlatContext{})[0].Decision; got != "x" {
		t.Fatalf("got %q", got)
	}
	if _, err := ParsePolicy("constant:", tr); err == nil {
		t.Fatal("empty decision should fail")
	}
	if _, err := ParsePolicy("nope", tr); err == nil {
		t.Fatal("unknown spec should fail")
	}
}
