package traceio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"drnet/internal/resilience"
)

func faultTestTrace() FlatTrace {
	return FlatTrace{Records: []FlatRecord{
		{Features: []float64{1, 2}, Decision: "a", Reward: 0.5, Propensity: 0.4},
		{Features: []float64{3, 4}, Decision: "b", Reward: 1.5, Propensity: 0.6},
	}}
}

// TestReadersInjectFaults: with an always-error plan active at the
// trace-read point, both readers fail with the injected sentinel; after
// Deactivate they parse the same bytes successfully. This is the
// contract the chaos suite relies on to simulate flaky trace storage.
func TestReadersInjectFaults(t *testing.T) {
	var csvBuf, jsonlBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, faultTestTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonlBuf, faultTestTrace()); err != nil {
		t.Fatal(err)
	}

	plan := resilience.NewFaultPlan(7).
		Add(resilience.PointTraceRead, resilience.FaultSpec{ErrProb: 1})
	resilience.Activate(plan)
	if _, err := ReadCSV(strings.NewReader(csvBuf.String())); !errors.Is(err, resilience.ErrInjected) {
		resilience.Deactivate()
		t.Fatalf("ReadCSV under fault plan: %v, want ErrInjected", err)
	}
	if _, err := ReadJSONL(strings.NewReader(jsonlBuf.String())); !errors.Is(err, resilience.ErrInjected) {
		resilience.Deactivate()
		t.Fatalf("ReadJSONL under fault plan: %v, want ErrInjected", err)
	}
	if got := plan.Hits(resilience.PointTraceRead); got != 2 {
		resilience.Deactivate()
		t.Fatalf("trace-read point hits = %d, want 2", got)
	}
	resilience.Deactivate()

	ft, err := ReadCSV(strings.NewReader(csvBuf.String()))
	if err != nil || len(ft.Records) != 2 {
		t.Fatalf("ReadCSV after Deactivate: %v (records=%d)", err, len(ft.Records))
	}
	ft, err = ReadJSONL(strings.NewReader(jsonlBuf.String()))
	if err != nil || len(ft.Records) != 2 {
		t.Fatalf("ReadJSONL after Deactivate: %v (records=%d)", err, len(ft.Records))
	}
}
