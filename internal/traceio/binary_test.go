package traceio

import (
	"math"
	"reflect"
	"testing"
)

func sampleBatch() []FlatRecord {
	return []FlatRecord{
		{Features: []float64{1, 2.5}, Decision: "a", Reward: 0.5, Propensity: 0.6},
		{Decision: "", Reward: -1.25, Propensity: 1},
		{Features: []float64{math.Pi, math.Copysign(0, -1), 1e-300}, Decision: "décision-ütf8", Reward: 0, Propensity: 0.001},
	}
}

func TestBatchRoundtrip(t *testing.T) {
	in := sampleBatch()
	enc := EncodeBatch(nil, in)
	out, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		// Bit-level float comparison: -0.0 and exact denormals must
		// survive the trip (the WAL replay path depends on it).
		if in[i].Decision != out[i].Decision ||
			math.Float64bits(in[i].Reward) != math.Float64bits(out[i].Reward) ||
			math.Float64bits(in[i].Propensity) != math.Float64bits(out[i].Propensity) {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
		if len(in[i].Features) != len(out[i].Features) {
			t.Fatalf("record %d: feature count %d, want %d", i, len(out[i].Features), len(in[i].Features))
		}
		for j := range in[i].Features {
			if math.Float64bits(in[i].Features[j]) != math.Float64bits(out[i].Features[j]) {
				t.Fatalf("record %d feature %d differs", i, j)
			}
		}
	}
}

func TestBatchRoundtripEmpty(t *testing.T) {
	enc := EncodeBatch(nil, nil)
	out, err := DecodeBatch(enc)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d records from an empty batch", len(out))
	}
}

func TestBatchAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	enc := EncodeBatch(prefix, sampleBatch())
	if string(enc[:6]) != "prefix" {
		t.Fatal("EncodeBatch did not append to dst")
	}
	if _, err := DecodeBatch(enc[6:]); err != nil {
		t.Fatalf("DecodeBatch after prefix: %v", err)
	}
}

func TestBatchNaNSurvivesEncoding(t *testing.T) {
	// The codec is transport, not validation: NaN must round-trip so
	// the view-append layer is the single place that rejects it.
	in := []FlatRecord{{Decision: "a", Reward: math.NaN(), Propensity: 0.5}}
	out, err := DecodeBatch(EncodeBatch(nil, in))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !math.IsNaN(out[0].Reward) {
		t.Fatal("NaN reward did not survive the codec")
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	good := EncodeBatch(nil, sampleBatch())
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad version", []byte{0x7F}},
		{"truncated count", []byte{0x01}},
		{"huge count", []byte{0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}},
		{"count without bytes", []byte{0x01, 0x40}},
		{"truncated mid-record", good[:len(good)-5]},
		{"truncated mid-features", good[:4]},
		{"trailing garbage", append(append([]byte{}, good...), 0xAB)},
		{"oversize decision length", []byte{0x01, 0x01, 0x00, 0xFF, 0x7F}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeBatch(tc.data); err == nil {
				t.Fatalf("DecodeBatch accepted %q", tc.data)
			}
		})
	}
}

// TestDecodeMatchesToCore ties the codec to the existing pipeline: a
// decoded batch fed through ToCore must equal the original records fed
// through ToCore.
func TestDecodeMatchesToCore(t *testing.T) {
	in := sampleBatch()
	out, err := DecodeBatch(EncodeBatch(nil, in))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	want := ToCore(FlatTrace{Records: in})
	got := ToCore(FlatTrace{Records: out})
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ToCore differs across the codec round-trip")
	}
}

func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch(nil, sampleBatch()))
	f.Add(EncodeBatch(nil, nil))
	f.Add([]byte{0x01, 0x02, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeBatch(data)
		if err != nil {
			return
		}
		// Accepted input must survive an encode/decode round trip with
		// every bit intact (byte equality is too strong: Uvarint accepts
		// non-minimal varints that re-encode shorter).
		again, err := DecodeBatch(EncodeBatch(nil, records))
		if err != nil {
			t.Fatalf("re-decoding a decoded batch errored: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range records {
			a, b := records[i], again[i]
			if a.Decision != b.Decision ||
				math.Float64bits(a.Reward) != math.Float64bits(b.Reward) ||
				math.Float64bits(a.Propensity) != math.Float64bits(b.Propensity) ||
				len(a.Features) != len(b.Features) {
				t.Fatalf("round trip changed record %d", i)
			}
			for j := range a.Features {
				if math.Float64bits(a.Features[j]) != math.Float64bits(b.Features[j]) {
					t.Fatalf("round trip changed record %d feature %d", i, j)
				}
			}
		}
	})
}
