package traceio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV asserts the CSV reader never panics and that anything it
// accepts round-trips through the writer.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteCSV(&seed, sampleFlat())
	f.Add(seed.String())
	f.Add("f0,decision,reward,propensity\n1,d,2,0.5\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("f0,decision,reward,propensity\nnot-a-number,d,2,0.5\n")
	f.Add("f0,decision,reward,propensity\n1,d,2\n") // short row
	f.Fuzz(func(t *testing.T, input string) {
		ft, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ft); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(back.Records) != len(ft.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(ft.Records), len(back.Records))
		}
	})
}

// FuzzReadJSONL asserts the JSONL reader never panics and accepted
// inputs round-trip.
func FuzzReadJSONL(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteJSONL(&seed, sampleFlat())
	f.Add(seed.String())
	f.Add(`{"features":[1],"decision":"d","reward":2,"propensity":0.5}` + "\n")
	f.Add("{bad json")
	f.Add("")
	f.Add(`{"features":null,"decision":"","reward":1e999}`)
	f.Fuzz(func(t *testing.T, input string) {
		ft, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, ft); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if len(back.Records) != len(ft.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(ft.Records), len(back.Records))
		}
	})
}
