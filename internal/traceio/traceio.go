// Package traceio serializes off-policy evaluation traces to CSV and
// JSON-lines so they can move between the trace-collection tools
// (cmd/tracegen), the evaluator CLI (cmd/dreval) and external systems.
//
// The on-disk schema is deliberately flat: numeric client features, a
// string decision label, the observed reward and the logging propensity.
// Generic traces are converted with Flatten / Unflatten.
package traceio

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"drnet/internal/core"
	"drnet/internal/resilience"
)

// FlatRecord is the serialized form of one trace record.
type FlatRecord struct {
	// Features are the numeric client-context features.
	Features []float64 `json:"features"`
	// Decision is the decision label.
	Decision string `json:"decision"`
	// Reward is the observed reward.
	Reward float64 `json:"reward"`
	// Propensity is µ_old(decision | context).
	Propensity float64 `json:"propensity"`
}

// FlatTrace is a serializable trace.
type FlatTrace struct {
	// FeatureNames optionally names the feature columns.
	FeatureNames []string
	Records      []FlatRecord
}

// Flatten converts a generic trace using the provided featurizer and
// decision labeler.
func Flatten[C any, D comparable](t core.Trace[C, D], featurize func(C) []float64, label func(D) string) FlatTrace {
	out := FlatTrace{Records: make([]FlatRecord, len(t))}
	for i, rec := range t {
		out.Records[i] = FlatRecord{
			Features:   featurize(rec.Context),
			Decision:   label(rec.Decision),
			Reward:     rec.Reward,
			Propensity: rec.Propensity,
		}
	}
	return out
}

// Unflatten converts a flat trace back to a generic one using the
// provided parsers.
func Unflatten[C any, D comparable](ft FlatTrace, parseCtx func([]float64) (C, error), parseDec func(string) (D, error)) (core.Trace[C, D], error) {
	out := make(core.Trace[C, D], len(ft.Records))
	for i, rec := range ft.Records {
		c, err := parseCtx(rec.Features)
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d context: %w", i, err)
		}
		d, err := parseDec(rec.Decision)
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d decision: %w", i, err)
		}
		out[i] = core.Record[C, D]{Context: c, Decision: d, Reward: rec.Reward, Propensity: rec.Propensity}
	}
	return out, nil
}

// WriteCSV writes the trace with a header row: f0..fk, decision, reward,
// propensity. All records must have the same feature count.
func WriteCSV(w io.Writer, ft FlatTrace) error {
	if len(ft.Records) == 0 {
		return errors.New("traceio: empty trace")
	}
	nf := len(ft.Records[0].Features)
	cw := csv.NewWriter(w)
	header := make([]string, 0, nf+3)
	for i := 0; i < nf; i++ {
		if i < len(ft.FeatureNames) {
			header = append(header, ft.FeatureNames[i])
		} else {
			header = append(header, fmt.Sprintf("f%d", i))
		}
	}
	header = append(header, "decision", "reward", "propensity")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, nf+3)
	for i, rec := range ft.Records {
		if len(rec.Features) != nf {
			return fmt.Errorf("traceio: record %d has %d features, want %d", i, len(rec.Features), nf)
		}
		row = row[:0]
		for _, f := range rec.Features {
			row = append(row, strconv.FormatFloat(f, 'g', -1, 64))
		}
		row = append(row,
			rec.Decision,
			strconv.FormatFloat(rec.Reward, 'g', -1, 64),
			strconv.FormatFloat(rec.Propensity, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (FlatTrace, error) {
	if err := resilience.Inject(resilience.PointTraceRead); err != nil {
		return FlatTrace{}, fmt.Errorf("traceio: read: %w", err)
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return FlatTrace{}, fmt.Errorf("traceio: header: %w", err)
	}
	if len(header) < 3 {
		return FlatTrace{}, errors.New("traceio: header too short")
	}
	nf := len(header) - 3
	ft := FlatTrace{FeatureNames: append([]string(nil), header[:nf]...)}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return FlatTrace{}, fmt.Errorf("traceio: line %d: %w", line, err)
		}
		rec := FlatRecord{Features: make([]float64, nf)}
		for i := 0; i < nf; i++ {
			v, err := strconv.ParseFloat(row[i], 64)
			if err != nil {
				return FlatTrace{}, fmt.Errorf("traceio: line %d feature %d: %w", line, i, err)
			}
			rec.Features[i] = v
		}
		rec.Decision = row[nf]
		if rec.Reward, err = strconv.ParseFloat(row[nf+1], 64); err != nil {
			return FlatTrace{}, fmt.Errorf("traceio: line %d reward: %w", line, err)
		}
		if rec.Propensity, err = strconv.ParseFloat(row[nf+2], 64); err != nil {
			return FlatTrace{}, fmt.Errorf("traceio: line %d propensity: %w", line, err)
		}
		ft.Records = append(ft.Records, rec)
	}
	if len(ft.Records) == 0 {
		return FlatTrace{}, errors.New("traceio: no records")
	}
	return ft, nil
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, ft FlatTrace) error {
	if len(ft.Records) == 0 {
		return errors.New("traceio: empty trace")
	}
	enc := json.NewEncoder(w)
	for _, rec := range ft.Records {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines trace.
func ReadJSONL(r io.Reader) (FlatTrace, error) {
	if err := resilience.Inject(resilience.PointTraceRead); err != nil {
		return FlatTrace{}, fmt.Errorf("traceio: read: %w", err)
	}
	dec := json.NewDecoder(r)
	var ft FlatTrace
	for {
		var rec FlatRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return FlatTrace{}, fmt.Errorf("traceio: record %d: %w", len(ft.Records)+1, err)
		}
		ft.Records = append(ft.Records, rec)
	}
	if len(ft.Records) == 0 {
		return FlatTrace{}, errors.New("traceio: no records")
	}
	return ft, nil
}

// ToCore converts a FlatTrace directly into a core trace over the flat
// types ([]float64 contexts are not comparable, so contexts are kept as
// FlatContext values and decisions as strings). This is the form
// cmd/dreval evaluates.
func ToCore(ft FlatTrace) core.Trace[FlatContext, string] {
	out := make(core.Trace[FlatContext, string], len(ft.Records))
	for i, rec := range ft.Records {
		out[i] = core.Record[FlatContext, string]{
			Context:    FlatContext{Features: rec.Features},
			Decision:   rec.Decision,
			Reward:     rec.Reward,
			Propensity: rec.Propensity,
		}
	}
	return out
}

// ParsePolicy builds a target policy over flat traces from a CLI/API
// specification string:
//
//	constant:<decision>  always choose <decision>
//	best-observed        per-context-group argmax of mean observed
//	                     reward, falling back to the global argmax for
//	                     unseen contexts
func ParsePolicy(spec string, trace core.Trace[FlatContext, string]) (core.Policy[FlatContext, string], error) {
	switch {
	case strings.HasPrefix(spec, "constant:"):
		d := strings.TrimPrefix(spec, "constant:")
		if d == "" {
			return nil, errors.New("traceio: constant policy needs a decision label")
		}
		return core.DeterministicPolicy[FlatContext, string]{
			Choose: func(FlatContext) string { return d },
		}, nil
	case spec == "best-observed":
		type cell struct {
			sum   float64
			count int
		}
		stats := make(map[string]map[string]*cell)
		global := make(map[string]*cell)
		for _, rec := range trace {
			k := rec.Context.Key()
			if stats[k] == nil {
				stats[k] = make(map[string]*cell)
			}
			for _, m := range []map[string]*cell{stats[k], global} {
				c := m[rec.Decision]
				if c == nil {
					c = &cell{}
					m[rec.Decision] = c
				}
				c.sum += rec.Reward
				c.count++
			}
		}
		best := func(m map[string]*cell) string {
			bestD, bestV := "", -1e300
			for d, c := range m {
				if v := c.sum / float64(c.count); v > bestV {
					bestV, bestD = v, d
				}
			}
			return bestD
		}
		globalBest := best(global)
		return core.DeterministicPolicy[FlatContext, string]{
			Choose: func(c FlatContext) string {
				if m, ok := stats[c.Key()]; ok {
					return best(m)
				}
				return globalBest
			},
		}, nil
	default:
		return nil, fmt.Errorf("traceio: unknown policy %q (want constant:<decision> or best-observed)", spec)
	}
}

// FlatContext is a generic numeric feature-vector context.
type FlatContext struct {
	Features []float64
}

// Key returns a string key for grouping identical feature vectors (used
// for empirical propensity estimation and table models).
func (c FlatContext) Key() string {
	b, _ := json.Marshal(c.Features)
	return string(b)
}
