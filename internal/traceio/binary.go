package traceio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary batch codec: the WAL payload format for streaming ingestion.
// One walog frame carries one ingest batch encoded by EncodeBatch, so
// a batch is durable (and acked) atomically — recovery either replays
// all of a batch's records or none of them.
//
// Layout (all integers unsigned LEB128 varints, all floats IEEE-754
// bits little-endian):
//
//	uvarint batchVersion (currently 1)
//	uvarint record count
//	per record:
//	  uvarint feature count, then that many float64s
//	  uvarint decision byte length, then the UTF-8 bytes
//	  float64 reward
//	  float64 propensity
//
// The decoder is hardened the same way the CSV/JSONL readers are: it
// never panics on arbitrary input, bounds every declared length by the
// bytes actually remaining, and rejects trailing garbage. It does NOT
// validate reward/propensity ranges — that is core's job at view-append
// time, so the validation error text stays byte-identical across the
// file and streaming paths.

// batchVersion guards future codec changes.
const batchVersion = 1

// maxBatchRecords bounds a declared record count far above any real
// batch while keeping a hostile varint from driving a huge allocation.
const maxBatchRecords = 1 << 24

// EncodeBatch appends the binary encoding of records to dst and
// returns the extended slice (pass nil to allocate fresh).
func EncodeBatch(dst []byte, records []FlatRecord) []byte {
	dst = binary.AppendUvarint(dst, batchVersion)
	dst = binary.AppendUvarint(dst, uint64(len(records)))
	for i := range records {
		r := &records[i]
		dst = binary.AppendUvarint(dst, uint64(len(r.Features)))
		for _, f := range r.Features {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.Decision)))
		dst = append(dst, r.Decision...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Reward))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Propensity))
	}
	return dst
}

// DecodeBatch parses one EncodeBatch payload. Any structural problem —
// truncation, a length field larger than the remaining bytes, trailing
// garbage, an unknown version — is an error; the records themselves are
// returned unvalidated.
func DecodeBatch(data []byte) ([]FlatRecord, error) {
	d := batchDecoder{buf: data}
	ver, err := d.uvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != batchVersion {
		return nil, fmt.Errorf("traceio: batch version %d, want %d", ver, batchVersion)
	}
	count, err := d.uvarint("record count")
	if err != nil {
		return nil, err
	}
	if count > maxBatchRecords {
		return nil, fmt.Errorf("traceio: batch declares %d records, above the %d cap", count, maxBatchRecords)
	}
	// Each record needs at least 2 varint bytes + 16 float bytes, so a
	// count that cannot fit in the remaining input is rejected before
	// allocating for it.
	if count > uint64(len(d.buf)-d.off)/18+1 {
		return nil, fmt.Errorf("traceio: batch declares %d records but only %d bytes remain", count, len(d.buf)-d.off)
	}
	records := make([]FlatRecord, 0, count)
	for i := uint64(0); i < count; i++ {
		nf, err := d.uvarint("feature count")
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d: %w", i, err)
		}
		if nf*8 > uint64(len(d.buf)-d.off) {
			return nil, fmt.Errorf("traceio: record %d declares %d features but only %d bytes remain", i, nf, len(d.buf)-d.off)
		}
		var feats []float64
		if nf > 0 {
			feats = make([]float64, nf)
		}
		for j := range feats {
			bits, err := d.u64("feature")
			if err != nil {
				return nil, fmt.Errorf("traceio: record %d: %w", i, err)
			}
			feats[j] = math.Float64frombits(bits)
		}
		dl, err := d.uvarint("decision length")
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d: %w", i, err)
		}
		if dl > uint64(len(d.buf)-d.off) {
			return nil, fmt.Errorf("traceio: record %d declares a %d-byte decision but only %d bytes remain", i, dl, len(d.buf)-d.off)
		}
		dec := string(d.buf[d.off : d.off+int(dl)])
		d.off += int(dl)
		rw, err := d.u64("reward")
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d: %w", i, err)
		}
		pr, err := d.u64("propensity")
		if err != nil {
			return nil, fmt.Errorf("traceio: record %d: %w", i, err)
		}
		records = append(records, FlatRecord{
			Features:   feats,
			Decision:   dec,
			Reward:     math.Float64frombits(rw),
			Propensity: math.Float64frombits(pr),
		})
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("traceio: %d trailing bytes after batch", len(d.buf)-d.off)
	}
	return records, nil
}

// batchDecoder is a bounds-checked cursor over one payload.
type batchDecoder struct {
	buf []byte
	off int
}

func (d *batchDecoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("traceio: truncated or malformed %s varint", what)
	}
	d.off += n
	return v, nil
}

func (d *batchDecoder) u64(what string) (uint64, error) {
	if len(d.buf)-d.off < 8 {
		return 0, fmt.Errorf("traceio: truncated %s", what)
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}
