package worldstate

import (
	"errors"
	"fmt"

	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/netsim"
)

// Hours used by the canonical experiment: the paper's "trace collected
// during early morning hours" evaluated for "peak hours".
const (
	MorningHour = 6.0
	PeakHour    = 20.0
)

// Scenario is the E4 world: clients of several classes choose among
// servers whose latency depends on diurnal background load. A trace
// logged in the morning state is used to evaluate a policy for the peak
// state.
type Scenario struct {
	// Servers are the candidate servers.
	Servers []netsim.Server
	// LoadWeights scales the shared diurnal background load per server
	// (len must equal len(Servers)); heterogeneous sensitivity makes
	// the state shift server-dependent.
	LoadWeights []float64
	// Profile is the shared diurnal background-load profile.
	Profile netsim.DiurnalProfile
	// NumClasses is the number of client classes.
	NumClasses int
	// AffinityStd scales the per-(class, server) quality offsets
	// (proximity, peering); state-independent.
	AffinityStd float64
	// NoiseStd is the per-session reward noise.
	NoiseStd float64
	// Epsilon is the logging policy's exploration rate.
	Epsilon float64
	// HalfLifeMs converts latency to QoE (netsim.QoE).
	HalfLifeMs float64

	affinity [][]float64
}

// DefaultScenario returns a three-server, four-class world.
func DefaultScenario() *Scenario {
	return &Scenario{
		Servers: []netsim.Server{
			{Name: "s0", Capacity: 100, BaseLatency: 20},
			{Name: "s1", Capacity: 60, BaseLatency: 12},
			{Name: "s2", Capacity: 150, BaseLatency: 35},
		},
		LoadWeights: []float64{1.0, 1.4, 0.7},
		Profile:     netsim.DiurnalProfile{Low: 20, High: 85, PeakHour: PeakHour},
		NumClasses:  4,
		AffinityStd: 0.08,
		NoiseStd:    0.03,
		Epsilon:     0.15,
		HalfLifeMs:  80,
	}
}

// Init draws the class-server affinities.
func (s *Scenario) Init(rng *mathx.RNG) error {
	if len(s.Servers) < 2 {
		return errors.New("worldstate: need at least two servers")
	}
	if len(s.LoadWeights) != len(s.Servers) {
		return fmt.Errorf("worldstate: %d load weights for %d servers", len(s.LoadWeights), len(s.Servers))
	}
	if s.NumClasses < 1 {
		return errors.New("worldstate: need at least one class")
	}
	if s.Epsilon <= 0 || s.Epsilon >= 1 {
		return errors.New("worldstate: Epsilon must be in (0,1)")
	}
	s.affinity = make([][]float64, s.NumClasses)
	for c := range s.affinity {
		s.affinity[c] = make([]float64, len(s.Servers))
		for v := range s.affinity[c] {
			s.affinity[c][v] = rng.Normal(0, s.AffinityStd)
		}
	}
	return nil
}

// TrueReward is the exact expected QoE of class c on server v at the
// given hour.
func (s *Scenario) TrueReward(c, v int, hour float64) float64 {
	if s.affinity == nil {
		panic("worldstate: scenario not initialized")
	}
	load := s.Profile.Load(hour) * s.LoadWeights[v]
	lat := s.Servers[v].Latency(load)
	return netsim.QoE(lat, s.HalfLifeMs) + s.affinity[c][v]
}

// OldPolicy explores ε-greedily around each class's best morning-state
// server — the policy an operator tuned on morning traffic.
func (s *Scenario) OldPolicy() core.Policy[int, int] {
	decisions := make([]int, len(s.Servers))
	for i := range decisions {
		decisions[i] = i
	}
	return core.EpsilonGreedyPolicy[int, int]{
		Base: func(c int) int {
			best, bestV := 0, -1e300
			for v := range s.Servers {
				if r := s.TrueReward(c, v, MorningHour); r > bestV {
					bestV, best = r, v
				}
			}
			return best
		},
		Decisions: decisions,
		Epsilon:   s.Epsilon,
	}
}

// NewPolicy is the candidate policy under evaluation: it selects each
// class's best server for the PEAK state (as an oracle would); the
// question the evaluator must answer is what QoE this policy achieves at
// peak, given mostly morning data.
func (s *Scenario) NewPolicy() core.Policy[int, int] {
	return core.DeterministicPolicy[int, int]{Choose: func(c int) int {
		best, bestV := 0, -1e300
		for v := range s.Servers {
			if r := s.TrueReward(c, v, PeakHour); r > bestV {
				bestV, best = r, v
			}
		}
		return best
	}}
}

// Data is a state-tagged collected trace.
type Data struct {
	Trace    core.Trace[int, int]
	Contexts []int
	Hour     float64
	Scenario *Scenario
}

// Collect logs n sessions under the old policy with the background load
// of the given hour.
func (s *Scenario) Collect(n int, hour float64, rng *mathx.RNG) (*Data, error) {
	if s.affinity == nil {
		return nil, errors.New("worldstate: scenario not initialized (call Init)")
	}
	if n <= 0 {
		return nil, errors.New("worldstate: need at least one session")
	}
	classes := make([]int, n)
	for i := range classes {
		classes[i] = rng.Intn(s.NumClasses)
	}
	trace := core.CollectTrace(classes, s.OldPolicy(), func(c, v int) float64 {
		return s.TrueReward(c, v, hour) + rng.Normal(0, s.NoiseStd)
	}, rng)
	return &Data{Trace: trace, Contexts: classes, Hour: hour, Scenario: s}, nil
}

// GroundTruth is the exact expected reward of a policy at this data's
// hour, over the logged class mix.
func (d *Data) GroundTruth(p core.Policy[int, int]) float64 {
	return core.TrueValue(d.Contexts, p, func(c, v int) float64 {
		return d.Scenario.TrueReward(c, v, d.Hour)
	})
}

// ServerGroup keys calibration samples by server, the natural grouping
// for fitting the morning→peak transition.
func ServerGroup(_ int, v int) string { return fmt.Sprintf("s%d", v) }
