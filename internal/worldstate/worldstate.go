// Package worldstate addresses the paper's "system state of the world"
// challenge (§4.1, §4.3): a trace collected under one network state
// (e.g. early-morning load) is used to evaluate a policy intended for a
// different state (e.g. peak hours). The package provides transition
// functions between states — fixed degradation factors ("degrade the
// performance in the trace by 20%", as the paper sketches) and affine
// maps fitted from a few calibration samples per state — plus trace
// transformation so the DR estimator can run on state-corrected rewards.
package worldstate

import (
	"errors"
	"fmt"
	"sort"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

// Transition is an affine reward map between two network states:
// targetReward ≈ Slope·sourceReward + Intercept.
type Transition struct {
	Slope, Intercept float64
}

// Apply maps a source-state reward to the target state.
func (t Transition) Apply(r float64) float64 {
	return t.Slope*r + t.Intercept
}

// Degrade returns the paper's simple rule of thumb as a Transition:
// "degrade the performance in the trace by X%" (frac = 0.2 for 20%).
func Degrade(frac float64) Transition {
	return Transition{Slope: 1 - frac}
}

// Sample is one calibration observation: a reward measured in some
// state, labeled with the group it belongs to (typically the decision,
// e.g. the server used). Group means are the regression points for
// FitAffine.
type Sample struct {
	Group  string
	Reward float64
}

// FitAffine estimates the affine transition between a source state and a
// target state from calibration samples in both. Rewards are averaged
// within groups appearing in both states, and target group means are
// regressed on source group means by least squares. At least two common
// groups are required; with exactly two the fit is exact.
//
// This implements the paper's conjecture that the state transition
// function "can be automated by collecting a few samples from various
// network states" (§4.3).
func FitAffine(source, target []Sample) (Transition, error) {
	srcMeans, err := groupMeans(source)
	if err != nil {
		return Transition{}, fmt.Errorf("worldstate: source: %w", err)
	}
	tgtMeans, err := groupMeans(target)
	if err != nil {
		return Transition{}, fmt.Errorf("worldstate: target: %w", err)
	}
	// Iterate groups in sorted order: map order is randomized per run,
	// and the float accumulations inside Ridge are order-sensitive, so
	// an unsorted walk would make the fitted transition differ at the
	// bit level between runs.
	groups := make([]string, 0, len(srcMeans))
	for g := range srcMeans {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	var xs, ys []float64
	for _, g := range groups {
		if tm, ok := tgtMeans[g]; ok {
			xs = append(xs, srcMeans[g])
			ys = append(ys, tm)
		}
	}
	if len(xs) < 2 {
		return Transition{}, errors.New("worldstate: need at least two groups common to both states")
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = []float64{x}
	}
	model, err := mathx.Ridge(rows, ys, mathx.RidgeOptions{FitIntercept: true})
	if err != nil {
		return Transition{}, err
	}
	return Transition{Slope: model.Weights[0], Intercept: model.Intercept}, nil
}

func groupMeans(samples []Sample) (map[string]float64, error) {
	if len(samples) == 0 {
		return nil, errors.New("no samples")
	}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, s := range samples {
		sums[s.Group] += s.Reward
		counts[s.Group]++
	}
	out := make(map[string]float64, len(sums))
	for g, s := range sums {
		out[g] = s / float64(counts[g])
	}
	return out, nil
}

// GroupTransitions maps group keys to their own transitions. A single
// global affine map assumes the state shift is a function of the reward
// level alone; when the shift is group-specific (e.g. one server
// saturates at peak while another barely degrades), per-group
// transitions are required.
type GroupTransitions map[string]Transition

// FitPerGroup estimates one offset transition per group common to the
// source and target calibration sets: target_g ≈ source_g + δ_g, where
// δ_g is the difference of group means. Groups present in only one
// state are skipped. At least one common group is required.
func FitPerGroup(source, target []Sample) (GroupTransitions, error) {
	srcMeans, err := groupMeans(source)
	if err != nil {
		return nil, fmt.Errorf("worldstate: source: %w", err)
	}
	tgtMeans, err := groupMeans(target)
	if err != nil {
		return nil, fmt.Errorf("worldstate: target: %w", err)
	}
	out := make(GroupTransitions)
	for g, sm := range srcMeans {
		if tm, ok := tgtMeans[g]; ok {
			out[g] = Transition{Slope: 1, Intercept: tm - sm}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("worldstate: no groups common to both states")
	}
	return out, nil
}

// TransformTraceGrouped maps each record's reward through its group's
// transition. Records whose group has no fitted transition keep their
// reward and are counted in skipped.
func TransformTraceGrouped[C any, D comparable](t core.Trace[C, D], trs GroupTransitions, key func(c C, d D) string) (out core.Trace[C, D], skipped int) {
	out = make(core.Trace[C, D], len(t))
	copy(out, t)
	for i := range out {
		tr, ok := trs[key(out[i].Context, out[i].Decision)]
		if !ok {
			skipped++
			continue
		}
		out[i].Reward = tr.Apply(out[i].Reward)
	}
	return out, skipped
}

// TransformTrace returns a copy of the trace with every reward mapped
// through the transition — the state-corrected trace the paper proposes
// feeding to the DR estimator ("create a new trace by degrading the
// performance in the trace ... and use the DR estimator on the new
// trace").
func TransformTrace[C any, D comparable](t core.Trace[C, D], tr Transition) core.Trace[C, D] {
	out := make(core.Trace[C, D], len(t))
	copy(out, t)
	for i := range out {
		out[i].Reward = tr.Apply(out[i].Reward)
	}
	return out
}

// CalibrationFromTrace converts trace records into calibration samples,
// grouped by a key of (context, decision). The common choice is the
// decision alone (e.g. server identity).
func CalibrationFromTrace[C any, D comparable](t core.Trace[C, D], key func(c C, d D) string) []Sample {
	out := make([]Sample, len(t))
	for i, rec := range t {
		out[i] = Sample{Group: key(rec.Context, rec.Decision), Reward: rec.Reward}
	}
	return out
}
