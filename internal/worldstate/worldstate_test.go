package worldstate

import (
	"math"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func TestTransitionApplyAndDegrade(t *testing.T) {
	tr := Transition{Slope: 2, Intercept: 1}
	if got := tr.Apply(3); got != 7 {
		t.Fatalf("Apply = %g, want 7", got)
	}
	d := Degrade(0.2)
	if got := d.Apply(10); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Degrade(0.2).Apply(10) = %g, want 8", got)
	}
}

func TestFitAffineExactRecovery(t *testing.T) {
	// Target = 0.5*source + 2 exactly, over several groups.
	var src, tgt []Sample
	for g, v := range map[string]float64{"a": 1, "b": 3, "c": 5, "d": 9} {
		src = append(src, Sample{Group: g, Reward: v})
		tgt = append(tgt, Sample{Group: g, Reward: 0.5*v + 2})
	}
	tr, err := FitAffine(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Slope-0.5) > 1e-6 || math.Abs(tr.Intercept-2) > 1e-6 {
		t.Fatalf("fit = %+v, want slope 0.5 intercept 2", tr)
	}
}

func TestFitAffineAveragesWithinGroups(t *testing.T) {
	src := []Sample{{"a", 1}, {"a", 3}, {"b", 4}, {"b", 6}} // means 2, 5
	tgt := []Sample{{"a", 4}, {"b", 10}}                    // 2x
	tr, err := FitAffine(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Slope-2) > 1e-6 || math.Abs(tr.Intercept) > 1e-6 {
		t.Fatalf("fit = %+v, want slope 2 intercept 0", tr)
	}
}

func TestFitAffineErrors(t *testing.T) {
	if _, err := FitAffine(nil, []Sample{{"a", 1}}); err == nil {
		t.Fatal("empty source should fail")
	}
	if _, err := FitAffine([]Sample{{"a", 1}}, nil); err == nil {
		t.Fatal("empty target should fail")
	}
	// Only one common group.
	if _, err := FitAffine([]Sample{{"a", 1}, {"b", 2}}, []Sample{{"a", 1}, {"c", 2}}); err == nil {
		t.Fatal("one common group should fail")
	}
}

func TestTransformTrace(t *testing.T) {
	tr := core.Trace[int, int]{
		{Context: 1, Decision: 0, Reward: 10, Propensity: 0.5},
		{Context: 2, Decision: 1, Reward: 20, Propensity: 0.5},
	}
	out := TransformTrace(tr, Degrade(0.5))
	if out[0].Reward != 5 || out[1].Reward != 10 {
		t.Fatalf("transformed rewards %g, %g", out[0].Reward, out[1].Reward)
	}
	// Original untouched; other fields preserved.
	if tr[0].Reward != 10 || out[0].Propensity != 0.5 || out[1].Context != 2 {
		t.Fatal("TransformTrace mutated input or dropped fields")
	}
}

func TestFitPerGroup(t *testing.T) {
	src := []Sample{{"a", 2}, {"a", 4}, {"b", 10}} // means a=3, b=10
	tgt := []Sample{{"a", 1}, {"b", 8}, {"c", 99}} // c only in target
	trs, err := FitPerGroup(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 {
		t.Fatalf("fitted %d groups, want 2", len(trs))
	}
	if got := trs["a"].Apply(3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("group a transform of 3 = %g, want 1", got)
	}
	if got := trs["b"].Apply(10); math.Abs(got-8) > 1e-12 {
		t.Fatalf("group b transform of 10 = %g, want 8", got)
	}
	if _, err := FitPerGroup(src, []Sample{{"zzz", 1}}); err == nil {
		t.Fatal("no common groups should fail")
	}
	if _, err := FitPerGroup(nil, tgt); err == nil {
		t.Fatal("empty source should fail")
	}
}

func TestTransformTraceGroupedSkips(t *testing.T) {
	tr := core.Trace[int, int]{
		{Context: 0, Decision: 0, Reward: 5, Propensity: 1},
		{Context: 0, Decision: 1, Reward: 5, Propensity: 1},
	}
	trs := GroupTransitions{"s0": {Slope: 1, Intercept: 2}}
	out, skipped := TransformTraceGrouped(tr, trs, ServerGroup)
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if out[0].Reward != 7 || out[1].Reward != 5 {
		t.Fatalf("rewards %g, %g", out[0].Reward, out[1].Reward)
	}
}

func TestCalibrationFromTrace(t *testing.T) {
	tr := core.Trace[int, int]{{Context: 3, Decision: 1, Reward: 7, Propensity: 1}}
	samples := CalibrationFromTrace(tr, ServerGroup)
	if len(samples) != 1 || samples[0].Group != "s1" || samples[0].Reward != 7 {
		t.Fatalf("samples = %+v", samples)
	}
}

func initScenario(t *testing.T, seed int64) (*Scenario, *mathx.RNG) {
	t.Helper()
	s := DefaultScenario()
	rng := mathx.NewRNG(seed)
	if err := s.Init(rng); err != nil {
		t.Fatal(err)
	}
	return s, rng
}

func TestScenarioInitValidation(t *testing.T) {
	rng := mathx.NewRNG(1)
	bad := DefaultScenario()
	bad.Servers = bad.Servers[:1]
	bad.LoadWeights = bad.LoadWeights[:1]
	if err := bad.Init(rng); err == nil {
		t.Fatal("one server should fail")
	}
	bad = DefaultScenario()
	bad.LoadWeights = bad.LoadWeights[:2]
	if err := bad.Init(rng); err == nil {
		t.Fatal("weight/server mismatch should fail")
	}
	bad = DefaultScenario()
	bad.Epsilon = 1
	if err := bad.Init(rng); err == nil {
		t.Fatal("epsilon 1 should fail")
	}
	bad = DefaultScenario()
	bad.NumClasses = 0
	if err := bad.Init(rng); err == nil {
		t.Fatal("zero classes should fail")
	}
}

func TestPeakWorseThanMorning(t *testing.T) {
	s, _ := initScenario(t, 2)
	for v := range s.Servers {
		for c := 0; c < s.NumClasses; c++ {
			if s.TrueReward(c, v, PeakHour) >= s.TrueReward(c, v, MorningHour) {
				t.Fatalf("peak should be worse: class %d server %d", c, v)
			}
		}
	}
}

func TestUninitializedScenarioPanics(t *testing.T) {
	s := DefaultScenario()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.TrueReward(0, 0, MorningHour)
}

func TestCollectAndGroundTruth(t *testing.T) {
	s, rng := initScenario(t, 3)
	if _, err := s.Collect(0, MorningHour, rng); err == nil {
		t.Fatal("zero sessions should fail")
	}
	un := DefaultScenario()
	if _, err := un.Collect(5, MorningHour, rng); err == nil {
		t.Fatal("uninitialized should fail")
	}
	d, err := s.Collect(1000, MorningHour, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	// Logged mean reward should be near the old policy's morning truth.
	if diff := math.Abs(d.Trace.MeanReward() - d.GroundTruth(s.OldPolicy())); diff > 0.02 {
		t.Fatalf("logged mean vs truth differ by %g", diff)
	}
}

func TestStateCorrectionReducesError(t *testing.T) {
	// E4: evaluating the new policy's PEAK value from a MORNING trace is
	// biased; transforming the trace through a transition fitted on a
	// small peak calibration set removes most of the bias.
	var rawErrs, corrErrs []float64
	for run := 0; run < 15; run++ {
		s, rng := initScenario(t, int64(100+run))
		morning, err := s.Collect(2000, MorningHour, rng)
		if err != nil {
			t.Fatal(err)
		}
		peakCal, err := s.Collect(200, PeakHour, rng)
		if err != nil {
			t.Fatal(err)
		}
		np := s.NewPolicy()
		truth := core.TrueValue(morning.Contexts, np, func(c, v int) float64 {
			return s.TrueReward(c, v, PeakHour)
		})
		model := core.FitTable(morning.Trace, func(c, v int) string {
			return ServerGroup(c, v)
		})
		raw, err := core.DoublyRobust(morning.Trace, np, model, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		trans, err := FitPerGroup(
			CalibrationFromTrace(morning.Trace, ServerGroup),
			CalibrationFromTrace(peakCal.Trace, ServerGroup),
		)
		if err != nil {
			t.Fatal(err)
		}
		corrected, skipped := TransformTraceGrouped(morning.Trace, trans, ServerGroup)
		if skipped > 0 {
			t.Fatalf("%d records missing transitions", skipped)
		}
		cmodel := core.FitTable(corrected, func(c, v int) string { return ServerGroup(c, v) })
		corr, err := core.DoublyRobust(corrected, np, cmodel, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		rawErrs = append(rawErrs, mathx.RelativeError(truth, raw.Value))
		corrErrs = append(corrErrs, mathx.RelativeError(truth, corr.Value))
	}
	rawMean, corrMean := mathx.Mean(rawErrs), mathx.Mean(corrErrs)
	t.Logf("raw DR error %.4f, state-corrected DR error %.4f", rawMean, corrMean)
	if corrMean >= rawMean {
		t.Fatalf("state correction should reduce error: %g vs %g", corrMean, rawMean)
	}
}
