package experiments

import (
	"fmt"

	"drnet/internal/abr"
	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

// Ablations regenerates the design-choice tables DESIGN.md calls out,
// as one Result (id "ABL"): weight clipping thresholds, SWITCH vs clip,
// self-normalization, and the k of the CFA k-NN model. The same
// quantities are exposed as benchmarks in bench_test.go; this function
// gives them the table form used by cmd/experiments.
func Ablations(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	res := Result{
		ID:    "ABL",
		Title: "Ablations: clipping, SWITCH, self-normalization, k-NN k",
		Runs:  runs,
	}

	// --- Clipping / SWITCH / self-normalization on the Figure 7b corpus.
	// The trace is interned into one columnar view per run, shared by all
	// seven variants, so the per-record policy/model work happens once.
	type variant struct {
		name string
		eval func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], model core.RewardModel[abr.Chunk, int]) (float64, error)
	}
	variants := []variant{
		{"DR unclipped", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.DoublyRobustView(v, np, m, core.DROptions{})
			return e.Value, err
		}},
		{"DR clip 2", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.DoublyRobustView(v, np, m, core.DROptions{Clip: 2})
			return e.Value, err
		}},
		{"DR clip 8", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.DoublyRobustView(v, np, m, core.DROptions{Clip: 8})
			return e.Value, err
		}},
		{"DR clip 20", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.DoublyRobustView(v, np, m, core.DROptions{Clip: 20})
			return e.Value, err
		}},
		{"SNDR clip 8", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.DoublyRobustView(v, np, m, core.DROptions{Clip: 8, SelfNormalize: true})
			return e.Value, err
		}},
		{"SWITCH tau 8", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.SwitchDRView(v, np, m, core.SwitchOptions{Tau: 8})
			return e.Value, err
		}},
		{"SWITCH auto", func(v *core.TraceView[abr.Chunk, int], np core.Policy[abr.Chunk, int], m core.RewardModel[abr.Chunk, int]) (float64, error) {
			e, err := core.SwitchDRView(v, np, m, core.SwitchOptions{})
			return e.Value, err
		}},
	}
	errsByVariant := make([][]float64, len(variants))
	for run := 0; run < runs; run++ {
		rng := mathx.NewRNG(seed + int64(run))
		s := Figure7bScenario()
		d, err := s.CollectMany(rng, 5)
		if err != nil {
			return Result{}, err
		}
		np := d.NewPolicy(0)
		truth := d.GroundTruth(np)
		view, err := core.NewTraceView(d.Trace)
		if err != nil {
			return Result{}, err
		}
		model := core.RewardFunc[abr.Chunk, int](d.ModelReward)
		for i, v := range variants {
			val, err := v.eval(view, np, model)
			if err != nil {
				return Result{}, fmt.Errorf("%s: %w", v.name, err)
			}
			errsByVariant[i] = append(errsByVariant[i], mathx.RelativeError(truth, val))
		}
	}
	for i, v := range variants {
		res.Rows = append(res.Rows, row("F7b "+v.name, "", errsByVariant[i]))
	}

	// --- k-NN k on the Figure 7c corpus (cross-fit throughout).
	for _, k := range []int{1, 3, 5, 10} {
		var errs []float64
		for run := 0; run < runs; run++ {
			rng := mathx.NewRNG(seed + int64(run))
			w := cfa.DefaultWorld()
			if err := w.Init(rng); err != nil {
				return Result{}, err
			}
			d, err := w.Collect(1000, rng)
			if err != nil {
				return Result{}, err
			}
			np := w.NewPolicy(0.4, rng)
			truth := d.GroundTruth(np)
			v, err := core.NewTraceViewKeyed(d.Trace, clientKey)
			if err != nil {
				return Result{}, err
			}
			kk := k
			fit := func(tr core.Trace[cfa.Client, cfa.Decision]) (core.RewardModel[cfa.Client, cfa.Decision], error) {
				return (&cfa.Data{Trace: tr, World: d.World}).PerDecisionKNNModel(kk)
			}
			dr, err := core.CrossFitDRView(v, np, fit, 2, core.DROptions{})
			if err != nil {
				return Result{}, err
			}
			errs = append(errs, mathx.RelativeError(truth, dr.Value))
		}
		res.Rows = append(res.Rows, row(fmt.Sprintf("F7c DR k=%d", k), "", errs))
	}
	res.Notes = append(res.Notes,
		"clipping trades correction bias for variance; SWITCH drops (rather than truncates) exploded corrections",
		"k-NN k trades model bias (large k oversmooths across feature profiles) against prediction noise (k=1)")
	return res, nil
}
