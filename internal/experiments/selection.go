package experiments

import (
	"fmt"

	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

// PolicySelection is experiment E8: the paper's Figure 1 workflow end
// to end. Several candidate CDN/bitrate assignment policies are
// compared offline on one logged trace, and we measure how often each
// evaluator picks the truly best candidate and how much value its pick
// forfeits (regret). This is the decision-quality view of the same
// bias/variance story Figure 7 tells in estimation error.
func PolicySelection(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	const clients = 1000
	var dmRegret, cfaRegret, drRegret []float64
	var dmTop, cfaTop, drTop []float64
	for run := 0; run < runs; run++ {
		rng := mathx.NewRNG(seed + int64(run))
		w := cfa.DefaultWorld()
		if err := w.Init(rng); err != nil {
			return Result{}, err
		}
		d, err := w.Collect(clients, rng)
		if err != nil {
			return Result{}, err
		}
		// Candidates: increasingly noisy approximations of the optimal
		// assignment, plus uniform random.
		cands := []core.Candidate[cfa.Client, cfa.Decision]{
			{Name: "sharp", Policy: w.NewPolicy(0.2, rng)},
			{Name: "medium", Policy: w.NewPolicy(0.8, rng)},
			{Name: "blurry", Policy: w.NewPolicy(2.0, rng)},
			{Name: "uniform", Policy: w.OldPolicy()},
		}
		truths := make([]float64, len(cands))
		best := 0
		for i, c := range cands {
			truths[i] = d.GroundTruth(c.Policy)
			if truths[i] > truths[best] {
				best = i
			}
		}
		// Sample splitting: fit the model on half the trace, evaluate
		// on the other half, so the DM cannot memorize what it scores.
		fitHalf, evalHalf, err := d.Trace.Split(0.5)
		if err != nil {
			return Result{}, err
		}
		model, err := (&cfa.Data{Trace: fitHalf, World: d.World}).PerDecisionKNNModel(3)
		if err != nil {
			return Result{}, err
		}

		pick := func(score func(core.Candidate[cfa.Client, cfa.Decision]) (float64, bool)) int {
			bestIdx, bestVal, any := -1, 0.0, false
			for i, c := range cands {
				v, ok := score(c)
				if !ok {
					continue
				}
				if !any || v > bestVal {
					bestIdx, bestVal, any = i, v, true
				}
			}
			if bestIdx < 0 {
				bestIdx = 0
			}
			return bestIdx
		}
		dmPick := pick(func(c core.Candidate[cfa.Client, cfa.Decision]) (float64, bool) {
			est, err := core.DirectMethod(evalHalf, c.Policy, model)
			return est.Value, err == nil
		})
		cfaPick := pick(func(c core.Candidate[cfa.Client, cfa.Decision]) (float64, bool) {
			est, err := core.MatchedRewards(evalHalf, c.Policy)
			return est.Value, err == nil
		})
		drPick := pick(func(c core.Candidate[cfa.Client, cfa.Decision]) (float64, bool) {
			est, err := core.DoublyRobust(evalHalf, c.Policy, model, core.DROptions{})
			return est.Value, err == nil
		})

		score := func(pickIdx int) (regret, top float64) {
			regret = truths[best] - truths[pickIdx]
			if pickIdx == best {
				top = 1
			}
			return
		}
		r, t := score(dmPick)
		dmRegret, dmTop = append(dmRegret, r), append(dmTop, t)
		r, t = score(cfaPick)
		cfaRegret, cfaTop = append(cfaRegret, r), append(cfaTop, t)
		r, t = score(drPick)
		drRegret, drTop = append(drRegret, r), append(drTop, t)
	}
	res := Result{
		ID:    "E8",
		Title: "Policy selection: which evaluator picks the truly best candidate?",
		Runs:  runs,
		Rows: []Row{
			row("DM  regret", "value lost", dmRegret),
			row("CFA regret", "value lost", cfaRegret),
			row("DR  regret", "value lost", drRegret),
			row("DM  top-1", "accuracy", dmTop),
			row("CFA top-1", "accuracy", cfaTop),
			row("DR  top-1", "accuracy", drTop),
		},
	}
	res.Notes = append(res.Notes,
		"regret = true value of the best candidate minus true value of the evaluator's pick",
		"candidates: sharp/medium/blurry approximations of the optimal assignment, plus uniform")
	return res, nil
}

// PropensityEstimation is experiment E9: how much is lost when the
// logging propensities are estimated from the trace rather than known?
// The logging policy depends smoothly on the context; rows compare DR
// with exact propensities, with grouped empirical estimates, and with
// the one-vs-rest logistic model.
func PropensityEstimation(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	const n = 3000
	newPolicy := banditPolicy(2, 0.2)
	var exactErrs, groupErrs, logitErrs []float64
	for run := 0; run < runs; run++ {
		b := &banditWorld{rng: mathx.NewRNG(seed + int64(run)), noise: 0.2}
		old := core.FuncPolicy[float64, int](func(x float64) []core.Weighted[int] {
			p := mathx.Sigmoid(3 * (x - 0.5)) // heavier clients steered to 2
			q := (1 - p) / 2
			return []core.Weighted[int]{{Decision: 0, Prob: q}, {Decision: 1, Prob: q}, {Decision: 2, Prob: p}}
		})
		ctxs := b.contexts(n)
		tr := core.CollectTrace(ctxs, old, b.drawReward, b.rng)
		truth := core.TrueValue(ctxs, newPolicy, b.trueReward)
		model := core.RewardFunc[float64, int](func(x float64, d int) float64 {
			return b.trueReward(x, d) + 0.3 // mildly biased
		})

		evalDR := func(t core.Trace[float64, int]) (float64, error) {
			est, err := core.DoublyRobust(t, newPolicy, model, core.DROptions{})
			return est.Value, err
		}
		exact, err := evalDR(tr)
		if err != nil {
			return Result{}, err
		}
		// Grouped empirical estimate on a coarse discretization of x.
		grouped := append(core.Trace[float64, int](nil), tr...)
		if err := core.EstimatePropensities(grouped, func(x float64) string {
			return fmt.Sprintf("%d", int(x*10))
		}, 20, 1e-3); err != nil {
			return Result{}, err
		}
		gv, err := evalDR(grouped)
		if err != nil {
			return Result{}, err
		}
		// Logistic propensity model.
		logit := append(core.Trace[float64, int](nil), tr...)
		if _, err := core.FitPropensityModel(logit, func(x float64) []float64 {
			return []float64{x}
		}, 1e-4, 1e-3); err != nil {
			return Result{}, err
		}
		lv, err := evalDR(logit)
		if err != nil {
			return Result{}, err
		}
		exactErrs = append(exactErrs, mathx.RelativeError(truth, exact))
		groupErrs = append(groupErrs, mathx.RelativeError(truth, gv))
		logitErrs = append(logitErrs, mathx.RelativeError(truth, lv))
	}
	res := Result{
		ID:    "E9",
		Title: "Estimated propensities: DR with exact vs empirical vs logistic µ_old",
		Runs:  runs,
		Rows: []Row{
			row("DR, exact propensities", "", exactErrs),
			row("DR, grouped empirical", "", groupErrs),
			row("DR, logistic model", "", logitErrs),
		},
	}
	return res, nil
}
