package experiments

import (
	"strings"
	"testing"

	"drnet/internal/mathx"
)

// The experiment tests use small run counts: they verify the qualitative
// claims (who wins), not the exact magnitudes, which the benches and
// cmd/experiments reproduce at full scale.

func meanOf(t *testing.T, res Result, label string) float64 {
	t.Helper()
	for _, r := range res.Rows {
		if r.Label == label {
			return r.Summary.Mean
		}
	}
	t.Fatalf("row %q not found in %s; rows: %+v", label, res.ID, res.Rows)
	return 0
}

func TestRenderAndReduction(t *testing.T) {
	res := Result{
		ID: "X", Title: "test", Runs: 1,
		Rows:  []Row{row("a", "", []float64{1, 2, 3})},
		Notes: []string{"a note"},
	}
	out := res.Render()
	for _, want := range []string{"X — test", "a note", "2.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if got := Reduction(10, 4); got != 0.6 {
		t.Fatalf("Reduction = %g", got)
	}
	if got := Reduction(0, 4); got != 0 {
		t.Fatalf("Reduction with zero base = %g", got)
	}
}

func TestFigure7a(t *testing.T) {
	res, err := Figure7a(6, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wise := meanOf(t, res, "WISE (CBN DM)")
	dr := meanOf(t, res, "DR")
	t.Logf("WISE %.4f DR %.4f", wise, dr)
	if dr >= wise {
		t.Fatalf("DR %g should beat WISE %g", dr, wise)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
	if res.Health == nil || res.Health.Grade == "" {
		t.Fatalf("run-0 trace health missing: %+v", res.Health)
	}
}

func TestFigure7b(t *testing.T) {
	res, err := Figure7b(10, 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	dm := meanOf(t, res, "FastMPC (DM)")
	dr := meanOf(t, res, "DR (clip 8)")
	t.Logf("FastMPC %.4f DR %.4f", dm, dr)
	if dr >= dm {
		t.Fatalf("DR %g should beat FastMPC %g", dr, dm)
	}
	if res.Health == nil || res.Health.Grade == "" || res.Health.Windows == 0 {
		t.Fatalf("run-0 trace health missing: %+v", res.Health)
	}
	if !strings.Contains(res.Render(), "trace health (run 0): grade=") {
		t.Fatal("render missing trace-health line")
	}
}

func TestFigure7c(t *testing.T) {
	res, err := Figure7c(30, 1000, 3000)
	if err != nil {
		t.Fatal(err)
	}
	cfaErr := meanOf(t, res, "CFA (matching)")
	dr := meanOf(t, res, "DR (cross-fit)")
	t.Logf("CFA %.4f DR %.4f", cfaErr, dr)
	if dr >= cfaErr {
		t.Fatalf("DR %g should beat CFA %g", dr, cfaErr)
	}
	if res.Health == nil || res.Health.Grade == "" {
		t.Fatalf("run-0 trace health missing: %+v", res.Health)
	}
}

func TestSecondOrderBias(t *testing.T) {
	res, err := SecondOrderBias(20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Double robustness: DR clean when either ingredient is clean.
	drClean := meanOf(t, res, "DR   δm=0.0 δp=0.0")
	drModelOnly := meanOf(t, res, "DR   δm=0.5 δp=0.0")
	drPropOnly := meanOf(t, res, "DR   δm=0.0 δp=0.5")
	drBoth := meanOf(t, res, "DR   δm=1.0 δp=1.0")
	dmBoth := meanOf(t, res, "DM   δm=1.0 δp=1.0")
	if drModelOnly > drClean+0.05 {
		t.Fatalf("DR with only model bias should stay clean: %g vs %g", drModelOnly, drClean)
	}
	if drPropOnly > drClean+0.05 {
		t.Fatalf("DR with only propensity bias should stay clean: %g vs %g", drPropOnly, drClean)
	}
	// When both are corrupted DR finally degrades, but less than the
	// fully-biased DM.
	if drBoth >= dmBoth {
		t.Fatalf("DR %g should still beat DM %g at δm=δp=1", drBoth, dmBoth)
	}
}

func TestRandomnessSweep(t *testing.T) {
	res, err := RandomnessSweep(20, 5000)
	if err != nil {
		t.Fatal(err)
	}
	ipsLow := meanOf(t, res, "IPS ε=0.02")
	ipsHigh := meanOf(t, res, "IPS ε=1.00")
	if ipsLow <= ipsHigh {
		t.Fatalf("IPS error should grow as ε shrinks: %g vs %g", ipsLow, ipsHigh)
	}
	essLow := meanOf(t, res, "ESS ε=0.02")
	essHigh := meanOf(t, res, "ESS ε=1.00")
	if essLow >= essHigh {
		t.Fatalf("ESS should shrink with ε: %g vs %g", essLow, essHigh)
	}
}

func TestNonStationaryReplay(t *testing.T) {
	res, err := NonStationaryReplay(8, 6000)
	if err != nil {
		t.Fatal(err)
	}
	naive := meanOf(t, res, "frozen-history DR")
	rep := meanOf(t, res, "replay DR")
	t.Logf("frozen %.4f replay %.4f", naive, rep)
	if rep >= naive {
		t.Fatalf("replay %g should beat frozen-history %g", rep, naive)
	}
}

func TestWorldStateCorrection(t *testing.T) {
	res, err := WorldStateCorrection(8, 7000)
	if err != nil {
		t.Fatal(err)
	}
	raw := meanOf(t, res, "DR, raw morning trace")
	grp := meanOf(t, res, "DR + per-server transition")
	t.Logf("raw %.4f per-server %.4f", raw, grp)
	if grp >= raw {
		t.Fatalf("per-server correction %g should beat raw %g", grp, raw)
	}
}

func TestCouplingCorrection(t *testing.T) {
	res, err := CouplingCorrection(8, 8000)
	if err != nil {
		t.Fatal(err)
	}
	naive := meanOf(t, res, "DR, whole trace")
	det := meanOf(t, res, "DR, PELT-matched state")
	t.Logf("naive %.4f matched %.4f", naive, det)
	if det >= naive {
		t.Fatalf("state matching %g should beat naive %g", det, naive)
	}
}

func TestDimensionalitySweep(t *testing.T) {
	res, err := DimensionalitySweep(8, 9000)
	if err != nil {
		t.Fatal(err)
	}
	// Match rate must fall as the decision grid grows.
	mrSmall := meanOf(t, res, "mr  decision space 2x2 f=4")
	mrLarge := meanOf(t, res, "mr  decision space 6x8 f=4")
	if mrLarge >= mrSmall {
		t.Fatalf("match rate should fall with decision-space size: %g vs %g", mrLarge, mrSmall)
	}
	// On the mid-size grid (where the direct model still has data per
	// decision) DR should beat matching; on the largest grid both
	// degrade — see the E6 notes.
	cfaMid := meanOf(t, res, "CFA decision space 3x4 f=4")
	drMid := meanOf(t, res, "DR  decision space 3x4 f=4")
	t.Logf("3x4 grid: CFA %.4f DR %.4f", cfaMid, drMid)
	if drMid >= cfaMid {
		t.Fatalf("DR %g should beat matching %g on the mid grid", drMid, cfaMid)
	}
}

func TestRelayBias(t *testing.T) {
	res, err := RelayBias(8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	via := meanOf(t, res, "VIA (NAT-blind DM)")
	dr := meanOf(t, res, "DR, NAT-blind model")
	t.Logf("VIA %.4f DR %.4f", via, dr)
	if dr >= via {
		t.Fatalf("DR %g should beat VIA %g", dr, via)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Figure7a(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure7a(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].Summary != b.Rows[i].Summary {
			t.Fatalf("same seed produced different results: %+v vs %+v", a.Rows[i], b.Rows[i])
		}
	}
}

func TestDefaultRunCounts(t *testing.T) {
	// runs <= 0 must select sensible defaults (smoke test via E2 with
	// tiny work is too slow at default 50; just check the field).
	if res, err := SecondOrderBias(1, 1); err != nil || res.Runs != 1 {
		t.Fatalf("runs=1 should be respected: %+v %v", res.Runs, err)
	}
}

var _ = mathx.Mean // keep the import if row helpers change

func TestPolicySelection(t *testing.T) {
	res, err := PolicySelection(12, 11000)
	if err != nil {
		t.Fatal(err)
	}
	drTop := meanOf(t, res, "DR  top-1")
	drRegret := meanOf(t, res, "DR  regret")
	cfaRegret := meanOf(t, res, "CFA regret")
	t.Logf("DR top-1 %.2f regret %.4f; CFA regret %.4f", drTop, drRegret, cfaRegret)
	if drTop < 0.5 {
		t.Fatalf("DR should usually pick the best candidate, top-1 = %g", drTop)
	}
	if drRegret > cfaRegret+1e-9 && drRegret > 0.05 {
		t.Fatalf("DR regret %g should not be clearly worse than CFA %g", drRegret, cfaRegret)
	}
}

func TestPropensityEstimation(t *testing.T) {
	res, err := PropensityEstimation(10, 12000)
	if err != nil {
		t.Fatal(err)
	}
	exact := meanOf(t, res, "DR, exact propensities")
	logit := meanOf(t, res, "DR, logistic model")
	grouped := meanOf(t, res, "DR, grouped empirical")
	t.Logf("exact %.4f grouped %.4f logistic %.4f", exact, grouped, logit)
	// Estimated propensities should be competitive: within a few x of
	// exact, and all should be small on this well-behaved world.
	if logit > 0.2 || grouped > 0.2 {
		t.Fatalf("estimated-propensity DR errors too high: grouped %g logistic %g", grouped, logit)
	}
}

func TestExplorationDesign(t *testing.T) {
	res, err := ExplorationDesign(12, 13000)
	if err != nil {
		t.Fatal(err)
	}
	uniVal := meanOf(t, res, "uniform ε-greedy value")
	safeVal := meanOf(t, res, "safe exploration value")
	noExp := meanOf(t, res, "no exploration value")
	uniESS := meanOf(t, res, "uniform ε-greedy ESS")
	safeESS := meanOf(t, res, "safe exploration ESS")
	t.Logf("live value: none %.4f safe %.4f uniform %.4f; ESS: safe %.1f uniform %.1f",
		noExp, safeVal, uniVal, safeESS, uniESS)
	// Safe exploration costs less live reward than uniform at equal ε.
	if safeVal <= uniVal {
		t.Fatalf("safe exploration value %g should exceed uniform %g", safeVal, uniVal)
	}
	if safeVal >= noExp {
		t.Fatalf("exploration must cost something: %g vs %g", safeVal, noExp)
	}
	// And buys more effective samples for the near-greedy candidate.
	if safeESS <= uniESS {
		t.Fatalf("safe exploration ESS %g should exceed uniform %g", safeESS, uniESS)
	}
}

func TestOnlineVsOffline(t *testing.T) {
	res, err := OnlineVsOffline(8, 14000)
	if err != nil {
		t.Fatal(err)
	}
	oracle := meanOf(t, res, "oracle value")
	live := meanOf(t, res, "online: value while learning")
	onDeploy := meanOf(t, res, "online: deployed policy")
	offDeploy := meanOf(t, res, "offline: DR-selected policy")
	uniform := meanOf(t, res, "uniform (status quo)")
	t.Logf("oracle %.3f | online live %.3f deployed %.3f | offline deployed %.3f | uniform %.3f",
		oracle, live, onDeploy, offDeploy, uniform)
	// Exploration costs live value relative to what gets deployed.
	if live >= onDeploy {
		t.Fatalf("learning-phase value %g should trail the deployed policy %g", live, onDeploy)
	}
	// Both deployments should beat the status quo and trail the oracle.
	if onDeploy <= uniform || offDeploy <= uniform {
		t.Fatalf("deployed policies should beat uniform: on %g off %g uniform %g", onDeploy, offDeploy, uniform)
	}
	if onDeploy > oracle+1e-9 || offDeploy > oracle+1e-9 {
		t.Fatal("nothing beats the oracle")
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(6, 15000)
	if err != nil {
		t.Fatal(err)
	}
	// All rows present and finite.
	if len(res.Rows) != 7+4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	unclipped := meanOf(t, res, "F7b DR unclipped")
	clip8 := meanOf(t, res, "F7b DR clip 8")
	t.Logf("unclipped %.3f clip8 %.3f", unclipped, clip8)
	if clip8 >= unclipped {
		t.Logf("note: clipping did not help on this seed set (%g vs %g)", clip8, unclipped)
	}
	for _, r := range res.Rows {
		if r.Summary.Mean < 0 {
			t.Fatalf("negative error in %q", r.Label)
		}
	}
}

func TestCCReplayBias(t *testing.T) {
	res, err := CCReplayBias(8, 16000)
	if err != nil {
		t.Fatal(err)
	}
	selfReno := meanOf(t, res, "replay reno→reno")
	crossUp := meanOf(t, res, "replay reno→aggressive")
	crossDown := meanOf(t, res, "replay aggressive→reno")
	t.Logf("self %.4f, reno→aggressive %.4f, aggressive→reno %.4f", selfReno, crossUp, crossDown)
	if selfReno > 1e-9 {
		t.Fatalf("self-replay should be exact, got %g", selfReno)
	}
	// The bias is asymmetric: an aggressive protocol's extra losses
	// devastate a gentle protocol in replay (large error), while the
	// reverse direction is masked when the link capacity is binding.
	if crossDown < 0.1 {
		t.Fatalf("aggressive→reno replay should be badly biased, got %g", crossDown)
	}
	if crossUp >= crossDown {
		t.Fatalf("bias asymmetry expected: %g vs %g", crossUp, crossDown)
	}
}
