package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"drnet/internal/abr"
	"drnet/internal/biasobs"
	"drnet/internal/cdnsim"
	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

// Figure7a reproduces the paper's Figure 7a ("Trace bias"): the WISE
// CBN evaluator versus DR on the Figure 4 CDN-configuration world, with
// 500 clients per observed measurement arrow and 5 per remaining
// frontend/backend choice. The new policy moves 50% of ISP-1 clients to
// (FE-1, BE-2). The paper reports DR's error ≈32% below WISE's.
func Figure7a(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	type runOut struct{ wise, ips, dr, full float64 }
	var health *biasobs.HealthSummary
	outs, err := forEachRun(runs, seed, func(run int, rng *mathx.RNG) (runOut, error) {
		w := cdnsim.DefaultWorld()
		d, err := cdnsim.Collect(w, rng)
		if err != nil {
			return runOut{}, err
		}
		np := w.NewPolicy()
		truth := d.GroundTruth(np)
		v, err := core.NewTraceView(d.Trace)
		if err != nil {
			return runOut{}, err
		}
		if run == 0 {
			// Only run 0 writes; forEachRun's join orders it before the read.
			health = traceHealth(v, np)
		}
		model, err := d.WISEModel(2)
		if err != nil {
			return runOut{}, err
		}
		wise, err := core.DirectMethodView(v, np, model)
		if err != nil {
			return runOut{}, err
		}
		ips, err := core.IPSView(v, np, core.IPSOptions{})
		if err != nil {
			return runOut{}, err
		}
		dr, err := core.DoublyRobustView(v, np, model, core.DROptions{})
		if err != nil {
			return runOut{}, err
		}
		// A full-interaction CBN (maxParents=3) as an upper baseline.
		fullModel, err := d.WISEModel(3)
		if err != nil {
			return runOut{}, err
		}
		full, err := core.DirectMethodView(v, np, fullModel)
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			wise: mathx.RelativeError(truth, wise.Value),
			ips:  mathx.RelativeError(truth, ips.Value),
			dr:   mathx.RelativeError(truth, dr.Value),
			full: mathx.RelativeError(truth, full.Value),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	wiseErrs := column(outs, func(o runOut) float64 { return o.wise })
	ipsErrs := column(outs, func(o runOut) float64 { return o.ips })
	drErrs := column(outs, func(o runOut) float64 { return o.dr })
	dmKnownErrs := column(outs, func(o runOut) float64 { return o.full })
	res := Result{
		ID:    "F7a",
		Title: "Trace bias: WISE (CBN direct method) vs DR on the Figure 4 world",
		Runs:  runs,
		Rows: []Row{
			row("WISE (CBN DM)", "", wiseErrs),
			row("IPS", "", ipsErrs),
			row("DR", "", drErrs),
			row("CBN 3-parent DM", "", dmKnownErrs),
		},
	}
	res.Health = health
	res.Notes = append(res.Notes, fmt.Sprintf(
		"DR mean error is %.0f%% lower than WISE (paper reports ≈32%%; our propensities are exact, so DR does even better)",
		100*Reduction(mathx.Mean(wiseErrs), mathx.Mean(drErrs))))
	return res, nil
}

// Figure7bScenario returns the canonical Figure 7b configuration: a
// 100-chunk session, five bitrate levels, constant available bandwidth,
// observed throughput b·p(r) with p increasing in the bitrate, logged
// by an ε-randomized buffer-based policy.
func Figure7bScenario() *abr.Scenario {
	ladder := abr.DefaultLadder()
	return &abr.Scenario{
		Config: abr.SessionConfig{
			Ladder:      ladder,
			NumChunks:   100,
			Observation: abr.ObservationModel{Ladder: ladder, PMin: 0.55},
		},
		BandwidthKbps: 1200,
		OldPolicy:     abr.BBA{ReservoirSec: 5, CushionSec: 10, Epsilon: 0.2},
	}
}

// Figure7b reproduces the paper's Figure 7b ("Model bias"): the
// FastMPC-style evaluator (a Direct Method whose throughput model
// assumes observed throughput is independent of the chunk bitrate)
// versus DR, on sessions logged by a buffer-based policy. The paper
// reports DR's error ≈74% below the FastMPC evaluator's.
//
// sessionsPerRun controls how many independent 100-chunk sessions each
// run aggregates (the evaluation corpus); 5 is the default.
func Figure7b(runs, sessionsPerRun int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	if sessionsPerRun <= 0 {
		sessionsPerRun = 5
	}
	type runOut struct{ dm, ips, dr float64 }
	var health *biasobs.HealthSummary
	outs, err := forEachRun(runs, seed, func(run int, rng *mathx.RNG) (runOut, error) {
		s := Figure7bScenario()
		d, err := s.CollectMany(rng, sessionsPerRun)
		if err != nil {
			return runOut{}, err
		}
		np := d.NewPolicy(0)
		truth := d.GroundTruth(np)
		v, err := core.NewTraceView(d.Trace)
		if err != nil {
			return runOut{}, err
		}
		if run == 0 {
			health = traceHealth(v, np)
		}
		model := core.RewardFunc[abr.Chunk, int](d.ModelReward)
		dm, err := core.DirectMethodView(v, np, model)
		if err != nil {
			return runOut{}, err
		}
		ips, err := core.IPSView(v, np, core.IPSOptions{Clip: 8})
		if err != nil {
			return runOut{}, err
		}
		dr, err := core.DoublyRobustView(v, np, model, core.DROptions{Clip: 8})
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			dm:  mathx.RelativeError(truth, dm.Value),
			ips: mathx.RelativeError(truth, ips.Value),
			dr:  mathx.RelativeError(truth, dr.Value),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	dmErrs := column(outs, func(o runOut) float64 { return o.dm })
	ipsErrs := column(outs, func(o runOut) float64 { return o.ips })
	drErrs := column(outs, func(o runOut) float64 { return o.dr })
	res := Result{
		ID:    "F7b",
		Title: "Model bias: FastMPC-style evaluator vs DR on the ABR world",
		Runs:  runs,
		Rows: []Row{
			row("FastMPC (DM)", "", dmErrs),
			row("IPS (clip 8)", "", ipsErrs),
			row("DR (clip 8)", "", drErrs),
		},
	}
	res.Health = health
	res.Notes = append(res.Notes,
		fmt.Sprintf("DR mean error is %.0f%% lower than the FastMPC evaluator (paper reports ≈74%%; exact sim parameters were never published)",
			100*Reduction(mathx.Mean(dmErrs), mathx.Mean(drErrs))),
		"a pure trace-replay reward model memorizes logged rewards, zeroing DR's residuals; the predictor-based model is the corrigible baseline")
	return res, nil
}

// clientKey interns CFA clients by their full feature vector — the only
// field Client has, so no policy or model can distinguish two clients
// that share a key and the keyed TraceView stays faithful.
func clientKey(c cfa.Client) string {
	var b strings.Builder
	for _, f := range c.Features {
		b.WriteString(strconv.Itoa(f))
		b.WriteByte(',')
	}
	return b.String()
}

// Figure7c reproduces the paper's Figure 7c ("Variance"): the CFA
// exact-matching evaluator versus DR with a k-NN direct model on the
// randomized-logging video-QoE world. The paper reports DR's error ≈36%
// below CFA's.
func Figure7c(runs, clients int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	if clients <= 0 {
		clients = 1000
	}
	type runOut struct{ cfa, dm, dr float64 }
	var health *biasobs.HealthSummary
	outs, err := forEachRun(runs, seed, func(run int, rng *mathx.RNG) (runOut, error) {
		w := cfa.DefaultWorld()
		if err := w.Init(rng); err != nil {
			return runOut{}, err
		}
		d, err := w.Collect(clients, rng)
		if err != nil {
			return runOut{}, err
		}
		np := w.NewPolicy(0.4, rng)
		truth := d.GroundTruth(np)
		v, err := core.NewTraceViewKeyed(d.Trace, clientKey)
		if err != nil {
			return runOut{}, err
		}
		if run == 0 {
			health = traceHealth(v, np)
		}
		matched, err := core.MatchedRewardsView(v, np)
		if err != nil {
			return runOut{}, err
		}
		model, err := d.PerDecisionKNNModel(3)
		if err != nil {
			return runOut{}, err
		}
		dm, err := core.DirectMethodView(v, np, model)
		if err != nil {
			return runOut{}, err
		}
		fit := func(tr core.Trace[cfa.Client, cfa.Decision]) (core.RewardModel[cfa.Client, cfa.Decision], error) {
			return (&cfa.Data{Trace: tr, World: d.World}).PerDecisionKNNModel(3)
		}
		dr, err := core.CrossFitDRView(v, np, fit, 2, core.DROptions{})
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			cfa: mathx.RelativeError(truth, matched.Value),
			dm:  mathx.RelativeError(truth, dm.Value),
			dr:  mathx.RelativeError(truth, dr.Value),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	cfaErrs := column(outs, func(o runOut) float64 { return o.cfa })
	dmErrs := column(outs, func(o runOut) float64 { return o.dm })
	drErrs := column(outs, func(o runOut) float64 { return o.dr })
	res := Result{
		ID:    "F7c",
		Title: "Variance: CFA exact matching vs DR (cross-fit k-NN DM) on the video-QoE world",
		Runs:  runs,
		Rows: []Row{
			row("CFA (matching)", "", cfaErrs),
			row("k-NN DM", "", dmErrs),
			row("DR (cross-fit)", "", drErrs),
		},
	}
	res.Health = health
	res.Notes = append(res.Notes, fmt.Sprintf(
		"DR mean error is %.0f%% lower than CFA matching (paper reports ≈36%%)",
		100*Reduction(mathx.Mean(cfaErrs), mathx.Mean(drErrs))))
	return res, nil
}
