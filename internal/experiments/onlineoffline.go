package experiments

import (
	"fmt"

	"drnet/internal/bandit"
	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

// OnlineVsOffline is experiment E11: the trade the paper's introduction
// frames — learn live with group-based exploration–exploitation
// (Pytheas-style [18]) versus evaluate offline on logs you already have
// (the trace-driven workflow of Figure 1).
//
// Both approaches must produce a deployment policy for the CFA world.
// Online, a per-group UCB1 bandit learns from scratch over a horizon of
// fresh clients, paying exploration regret while serving them; its
// deployed policy is the per-group empirical argmax. Offline, DR picks
// the best of a set of candidate policies using an existing uniformly
// randomized trace of the same size — at zero additional live cost.
//
// Rows report the value achieved while learning (online only), the
// value of each deployed policy, and reference points (oracle and
// uniform).
func OnlineVsOffline(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	const horizon = 1500
	var liveOnline, deployedOnline, deployedOffline, oracleVals, uniformVals []float64
	for run := 0; run < runs; run++ {
		rng := mathx.NewRNG(seed + int64(run))
		w := cfa.DefaultWorld()
		if err := w.Init(rng); err != nil {
			return Result{}, err
		}
		group := func(c cfa.Client) string {
			key := ""
			for j := 0; j < w.InteractingFeatures; j++ {
				key += fmt.Sprintf("%d,", c.Features[j])
			}
			return key
		}
		evalClients := w.SampleClients(3000, rng)
		valueOf := func(choose func(cfa.Client) cfa.Decision) float64 {
			total := 0.0
			for _, c := range evalClients {
				total += w.TrueQuality(c, choose(c))
			}
			return total / float64(len(evalClients))
		}
		oracle := func(c cfa.Client) cfa.Decision {
			best, bestV := cfa.Decision{}, -1e300
			for _, d := range w.Decisions() {
				if v := w.TrueQuality(c, d); v > bestV {
					bestV, best = v, d
				}
			}
			return best
		}
		oracleVals = append(oracleVals, valueOf(oracle))

		// --- Online: per-group UCB1 over the decision grid.
		gb, err := bandit.New(w.Decisions(), bandit.UCB1{})
		if err != nil {
			return Result{}, err
		}
		liveClients := w.SampleClients(horizon, rng)
		liveSum := 0.0
		for _, c := range liveClients {
			g := group(c)
			d := gb.Choose(g, rng)
			r := w.DrawQuality(c, d, rng)
			liveSum += w.TrueQuality(c, d)
			if err := gb.Observe(g, d, r); err != nil {
				return Result{}, err
			}
		}
		liveOnline = append(liveOnline, liveSum/float64(horizon))
		fallback := w.Decisions()[0]
		deployedOnline = append(deployedOnline, valueOf(func(c cfa.Client) cfa.Decision {
			if d, ok := gb.Best(group(c)); ok {
				return d
			}
			return fallback
		}))

		// --- Offline: DR-select among candidate policies using an
		// existing randomized trace of the same size.
		d, err := w.Collect(horizon, rng)
		if err != nil {
			return Result{}, err
		}
		cands := []core.Candidate[cfa.Client, cfa.Decision]{
			{Name: "sharp", Policy: w.NewPolicy(0.2, rng)},
			{Name: "medium", Policy: w.NewPolicy(0.8, rng)},
			{Name: "blurry", Policy: w.NewPolicy(2.0, rng)},
			{Name: "uniform", Policy: w.OldPolicy()},
		}
		fitHalf, evalHalf, err := d.Trace.Split(0.5)
		if err != nil {
			return Result{}, err
		}
		model, err := (&cfa.Data{Trace: fitHalf, World: d.World}).PerDecisionKNNModel(3)
		if err != nil {
			return Result{}, err
		}
		bestIdx, bestVal := 0, -1e300
		for i, cand := range cands {
			est, err := core.DoublyRobust(evalHalf, cand.Policy, model, core.DROptions{})
			if err != nil {
				return Result{}, err
			}
			if est.Value > bestVal {
				bestVal, bestIdx = est.Value, i
			}
		}
		picked := cands[bestIdx].Policy
		deployedOffline = append(deployedOffline, core.TrueValue(evalClients, picked, w.TrueQuality))
		uniformVals = append(uniformVals, core.TrueValue(evalClients, w.OldPolicy(), w.TrueQuality))
	}
	res := Result{
		ID:    "E11",
		Title: "Online bandit learning vs offline DR selection (same data budget)",
		Runs:  runs,
		Rows: []Row{
			row("oracle value", "true value", oracleVals),
			row("online: value while learning", "true value", liveOnline),
			row("online: deployed policy", "true value", deployedOnline),
			row("offline: DR-selected policy", "true value", deployedOffline),
			row("uniform (status quo)", "true value", uniformVals),
		},
	}
	res.Notes = append(res.Notes,
		"online learning pays its exploration as live regret and fragments data across groups; offline DR reuses existing randomized logs at zero live cost",
		"the offline candidates come from a prediction system (perturbed-argmax policies), which is the realistic operating point the paper targets")
	return res, nil
}
