package experiments

import (
	"drnet/internal/mathx"
	"drnet/internal/tcp"
)

// CCReplayBias is experiment E12: the §2 congestion-control use case
// ("traces of packet-level events ... to benchmark TCP congestion
// control performance under same network conditions") meets the §4.1
// coupling critique. Loss events are partly self-inflicted — an
// aggressive protocol creates losses a gentle protocol's trace does not
// contain — so trace replay systematically misestimates cross-protocol
// performance.
//
// Rows report, for each (recorded-under, evaluated) protocol pair, the
// relative error of the replay estimate against the closed-loop ground
// truth, plus the self-replay sanity rows (which are exact by
// construction).
func CCReplayBias(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	const rounds = 4000
	link := tcp.Link{CapacityPkts: 100, QueuePkts: 30, CrossMean: 20, CrossStd: 5}
	protocols := []struct {
		name string
		make func() tcp.Protocol
	}{
		{"reno", func() tcp.Protocol { return &tcp.Reno{} }},
		{"aggressive", func() tcp.Protocol { return &tcp.Aggressive{} }},
	}

	res := Result{
		ID:    "E12",
		Title: "Congestion-control trace replay: endogenous loss makes cross-protocol replay biased",
		Runs:  runs,
	}
	for _, rec := range protocols {
		for _, eval := range protocols {
			var errs, lossGap []float64
			for run := 0; run < runs; run++ {
				rng := mathx.NewRNG(seed + int64(run))
				trace, _, err := tcp.RunClosedLoop(rec.make(), link, rounds, rng)
				if err != nil {
					return Result{}, err
				}
				replayEst, err := tcp.ReplayTrace(eval.make(), trace)
				if err != nil {
					return Result{}, err
				}
				// Ground truth: the evaluated protocol closed-loop on
				// the same cross-traffic realization.
				truthRng := mathx.NewRNG(seed + int64(run))
				truthTrace, truth, err := tcp.RunClosedLoop(eval.make(), link, rounds, truthRng)
				if err != nil {
					return Result{}, err
				}
				errs = append(errs, mathx.RelativeError(truth, replayEst))
				lossGap = append(lossGap, tcp.LossRate(truthTrace)-tcp.LossRate(trace))
			}
			res.Rows = append(res.Rows,
				row("replay "+rec.name+"→"+eval.name, "", errs),
				row("loss gap "+rec.name+"→"+eval.name, "Δ loss rate", lossGap),
			)
		}
	}
	res.Notes = append(res.Notes,
		"self-replay (reno→reno, aggressive→aggressive) is exact: the window process regenerates from its own loss sequence",
		"cross-protocol replay errs with the loss-rate gap, and asymmetrically: the extra losses in an aggressive trace devastate a gentle protocol in replay, while the reverse direction is partially masked whenever the link capacity, not the window, binds the goodput")
	return res, nil
}
