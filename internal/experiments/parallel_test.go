package experiments

import (
	"reflect"
	"testing"

	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// TestExperimentsDeterministicAcrossWorkers runs a cheap configuration
// of each parallelized experiment at worker counts 1, 2 and 8 and
// requires reflect.DeepEqual on the full Result — every mean, min, max,
// std and note string bit-identical. This is the guarantee EXPERIMENTS.md
// documents: `cmd/experiments -workers N` reproduces `-workers 1`.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	cases := []struct {
		name string
		run  func() (Result, error)
	}{
		{"Figure7b", func() (Result, error) { return Figure7b(3, 2, 5) }},
		{"SecondOrderBias", func() (Result, error) { return SecondOrderBias(3, 5) }},
		{"RandomnessSweep", func() (Result, error) { return RandomnessSweep(2, 5) }},
	}
	for _, c := range cases {
		parallel.SetDefaultWorkers(1)
		want, err := c.run()
		if err != nil {
			t.Fatalf("%s workers=1: %v", c.name, err)
		}
		for _, w := range []int{2, 8} {
			parallel.SetDefaultWorkers(w)
			got, err := c.run()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", c.name, w, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: workers=%d result differs from workers=1:\n%s\nvs\n%s",
					c.name, w, got.Render(), want.Render())
			}
		}
	}
}

// TestForEachRunMatchesSequentialLoop pins the helper's seeding
// contract: run i must see exactly the stream NewRNG(seed+i), the same
// streams the pre-parallel sequential loops consumed.
func TestForEachRunMatchesSequentialLoop(t *testing.T) {
	got, err := forEachRun(16, 3, func(run int, rng *mathx.RNG) (float64, error) {
		return rng.Float64() + float64(run), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := mathx.NewRNG(3+int64(i)).Float64() + float64(i)
		if v != want {
			t.Fatalf("run %d: %g != %g", i, v, want)
		}
	}
}
