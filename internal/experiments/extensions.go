package experiments

import (
	"fmt"
	"math"

	"drnet/internal/cfa"
	"drnet/internal/core"
	"drnet/internal/coupling"
	"drnet/internal/mathx"
	"drnet/internal/relay"
	"drnet/internal/worldstate"
)

// banditWorld is the minimal synthetic contextual bandit used by E1–E3:
// scalar contexts in [0,1], three decisions, true reward x·(d+1).
type banditWorld struct {
	rng   *mathx.RNG
	noise float64
}

func (b *banditWorld) trueReward(x float64, d int) float64 { return x * float64(d+1) }

func (b *banditWorld) drawReward(x float64, d int) float64 {
	return b.trueReward(x, d) + b.rng.Normal(0, b.noise)
}

func (b *banditWorld) contexts(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = b.rng.Float64()
	}
	return out
}

var banditDecisions = []int{0, 1, 2}

func banditPolicy(greedy int, eps float64) core.Policy[float64, int] {
	return core.EpsilonGreedyPolicy[float64, int]{
		Base:      func(float64) int { return greedy },
		Decisions: banditDecisions,
		Epsilon:   eps,
	}
}

// SecondOrderBias is experiment E1: it dials the reward-model bias and
// the propensity corruption independently and measures the absolute
// bias of DM, IPS and DR. The DR rows demonstrate the paper's
// "second-order bias" claim: DR's bias is small whenever EITHER
// ingredient is clean, and grows roughly with the product of the two
// corruption levels.
func SecondOrderBias(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	const n = 2000
	newPolicy := banditPolicy(2, 0.1)
	oldPolicy := banditPolicy(0, 0.5)

	type cell struct{ dm, dp float64 }
	cells := []cell{{0, 0}, {0.5, 0}, {0, 0.5}, {0.5, 0.5}, {1, 1}}
	res := Result{
		ID:    "E1",
		Title: "Second-order bias: DR bias vs model bias (δm) × propensity corruption (δp)",
		Runs:  runs,
	}
	for _, c := range cells {
		type runOut struct{ dm, ips, dr, truth float64 }
		outs, err := forEachRun(runs, seed, func(_ int, rng *mathx.RNG) (runOut, error) {
			b := &banditWorld{rng: rng, noise: 0.1}
			ctxs := b.contexts(n)
			tr := core.CollectTrace(ctxs, oldPolicy, b.drawReward, b.rng)
			truth := core.TrueValue(ctxs, newPolicy, b.trueReward)
			// Corrupt the model by an additive offset δm.
			model := core.RewardFunc[float64, int](func(x float64, d int) float64 {
				return b.trueReward(x, d) + c.dm
			})
			// Corrupt propensities multiplicatively by (1+δp).
			for i := range tr {
				tr[i].Propensity = mathx.Clamp(tr[i].Propensity*(1+c.dp), 0.01, 1)
			}
			dm, err := core.DirectMethod(tr, newPolicy, model)
			if err != nil {
				return runOut{}, err
			}
			ips, err := core.IPS(tr, newPolicy, core.IPSOptions{})
			if err != nil {
				return runOut{}, err
			}
			dr, err := core.DoublyRobust(tr, newPolicy, model, core.DROptions{})
			if err != nil {
				return runOut{}, err
			}
			return runOut{dm: dm.Value, ips: ips.Value, dr: dr.Value, truth: truth}, nil
		})
		if err != nil {
			return Result{}, err
		}
		dmEst := column(outs, func(o runOut) float64 { return o.dm })
		ipsEst := column(outs, func(o runOut) float64 { return o.ips })
		drEst := column(outs, func(o runOut) float64 { return o.dr })
		truth := mathx.Mean(column(outs, func(o runOut) float64 { return o.truth }))
		bias := func(ests []float64) []float64 {
			return []float64{math.Abs(mathx.Mean(ests) - truth)}
		}
		label := fmt.Sprintf("δm=%.1f δp=%.1f", c.dm, c.dp)
		res.Rows = append(res.Rows,
			row("DM   "+label, "abs bias", bias(dmEst)),
			row("IPS  "+label, "abs bias", bias(ipsEst)),
			row("DR   "+label, "abs bias", bias(drEst)),
		)
	}
	res.Notes = append(res.Notes, "DR bias stays near zero when either δm=0 or δp=0 (double robustness); it grows only when both are corrupted")
	return res, nil
}

// RandomnessSweep is experiment E2 (§4.1 "coverage and randomness"): as
// the logging policy's exploration ε shrinks toward the deterministic
// policies common in networking, IPS/DR importance weights explode. The
// table reports relative error and mean effective sample size per ε.
func RandomnessSweep(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	const n = 1000
	newPolicy := banditPolicy(2, 0.05)
	res := Result{
		ID:    "E2",
		Title: "Coverage/randomness: IPS and DR vs logging-policy exploration ε",
		Runs:  runs,
	}
	for _, eps := range []float64{0.02, 0.05, 0.1, 0.3, 1.0} {
		oldPolicy := banditPolicy(0, eps)
		type runOut struct{ ips, dr, ess float64 }
		outs, err := forEachRun(runs, seed, func(_ int, rng *mathx.RNG) (runOut, error) {
			b := &banditWorld{rng: rng, noise: 0.3}
			ctxs := b.contexts(n)
			tr := core.CollectTrace(ctxs, oldPolicy, b.drawReward, b.rng)
			truth := core.TrueValue(ctxs, newPolicy, b.trueReward)
			// A mildly biased model so DR has real work to do.
			model := core.RewardFunc[float64, int](func(x float64, d int) float64 {
				return b.trueReward(x, d) + 0.3
			})
			ips, err := core.IPS(tr, newPolicy, core.IPSOptions{})
			if err != nil {
				return runOut{}, err
			}
			dr, err := core.DoublyRobust(tr, newPolicy, model, core.DROptions{})
			if err != nil {
				return runOut{}, err
			}
			return runOut{
				ips: mathx.RelativeError(truth, ips.Value),
				dr:  mathx.RelativeError(truth, dr.Value),
				ess: ips.ESS,
			}, nil
		})
		if err != nil {
			return Result{}, err
		}
		ipsErrs := column(outs, func(o runOut) float64 { return o.ips })
		drErrs := column(outs, func(o runOut) float64 { return o.dr })
		esss := column(outs, func(o runOut) float64 { return o.ess })
		res.Rows = append(res.Rows,
			row(fmt.Sprintf("IPS ε=%.2f", eps), "", ipsErrs),
			row(fmt.Sprintf("DR  ε=%.2f", eps), "", drErrs),
			row(fmt.Sprintf("ESS ε=%.2f", eps), "ESS", esss),
		)
	}
	res.Notes = append(res.Notes, "ε=1.00 is fully randomized logging; ε→0 approaches the deterministic policies the paper warns about")
	return res, nil
}

// adaptivePolicy is the history-based target policy of E3: it tracks
// per-decision mean rewards over its accepted history and plays
// ε-greedy on them.
type adaptivePolicy struct {
	eps float64
}

func (p adaptivePolicy) DistributionWithHistory(h core.Trace[float64, int], _ float64) []core.Weighted[int] {
	sums := make([]float64, len(banditDecisions))
	counts := make([]float64, len(banditDecisions))
	for _, rec := range h {
		sums[rec.Decision] += rec.Reward
		counts[rec.Decision]++
	}
	best, bestV := 0, math.Inf(-1)
	for d := range banditDecisions {
		mean := 1.0 // optimistic prior
		if counts[d] > 0 {
			mean = sums[d] / counts[d]
		}
		if mean > bestV {
			bestV, best = mean, d
		}
	}
	out := make([]core.Weighted[int], len(banditDecisions))
	share := p.eps / float64(len(banditDecisions))
	for d := range banditDecisions {
		pr := share
		if d == best {
			pr += 1 - p.eps
		}
		out[d] = core.Weighted[int]{Decision: d, Prob: pr}
	}
	return out
}

// NonStationaryReplay is experiment E3 (§4.2): evaluating a
// history-based (adaptive) policy. The replay-DR estimator subsamples
// the trace to the policy's own trajectory; the naive baseline applies
// basic DR with the policy's empty-history distribution, which ignores
// that the policy would have adapted. Ground truth comes from directly
// simulating the adaptive policy many times.
func NonStationaryReplay(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	const n = 3000
	const truthReps = 60
	target := adaptivePolicy{eps: 0.2}
	logging := core.UniformPolicy[float64, int]{Decisions: banditDecisions}
	type runOut struct{ replay, naive, accepted float64 }
	outs, err := forEachRun(runs, seed, func(run int, rng *mathx.RNG) (runOut, error) {
		b := &banditWorld{rng: rng, noise: 0.3}
		ctxs := b.contexts(n)
		tr := core.CollectTrace(ctxs, logging, b.drawReward, b.rng)

		// Ground truth: run the adaptive policy on the same context
		// distribution with fresh draws.
		truthRng := mathx.NewRNG(seed + 7919 + int64(run))
		var totals []float64
		for rep := 0; rep < truthReps; rep++ {
			var hist core.Trace[float64, int]
			sum := 0.0
			for _, x := range ctxs[:600] {
				dist := target.DistributionWithHistory(hist, x)
				probs := make([]float64, len(dist))
				for i, w := range dist {
					probs[i] = w.Prob
				}
				pick := dist[truthRng.Categorical(probs)]
				r := b.trueReward(x, pick.Decision) + truthRng.Normal(0, 0.3)
				sum += r
				hist = append(hist, core.Record[float64, int]{Context: x, Decision: pick.Decision, Reward: r, Propensity: pick.Prob})
			}
			totals = append(totals, sum/600)
		}
		truth := mathx.Mean(totals)

		model := core.RewardFunc[float64, int](b.trueReward)
		replayRng := mathx.NewRNG(seed + 104729 + int64(run))
		rep, err := core.ReplayDR[float64, int](tr, target, model, replayRng)
		if err != nil {
			return runOut{}, err
		}
		// Naive: treat the policy as stationary with empty history.
		frozen := core.FuncPolicy[float64, int](func(x float64) []core.Weighted[int] {
			return target.DistributionWithHistory(nil, x)
		})
		naive, err := core.DoublyRobust(tr, frozen, model, core.DROptions{})
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			replay:   mathx.RelativeError(truth, rep.Estimate.Value),
			naive:    mathx.RelativeError(truth, naive.Value),
			accepted: float64(rep.Accepted),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	replayErrs := column(outs, func(o runOut) float64 { return o.replay })
	naiveErrs := column(outs, func(o runOut) float64 { return o.naive })
	accepted := column(outs, func(o runOut) float64 { return o.accepted })
	res := Result{
		ID:    "E3",
		Title: "Non-stationary policies: replay-DR vs frozen-history DR on an adaptive target",
		Runs:  runs,
		Rows: []Row{
			row("frozen-history DR", "", naiveErrs),
			row("replay DR", "", replayErrs),
			row("replay accepted", "records", accepted),
		},
	}
	res.Notes = append(res.Notes, "the frozen-history baseline evaluates the policy's day-one behaviour; replay-DR follows its adaptation")
	return res, nil
}

// WorldStateCorrection is experiment E4 (§4.1/§4.3 "system state of the
// world"): a morning-state trace evaluates a peak-hours policy. Rows
// compare raw DR, the paper's fixed-degradation rule, and per-server
// transition functions fitted from a small peak calibration set.
func WorldStateCorrection(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	type runOut struct{ raw, degrade, group float64 }
	outs, err := forEachRun(runs, seed, func(_ int, rng *mathx.RNG) (runOut, error) {
		s := worldstate.DefaultScenario()
		if err := s.Init(rng); err != nil {
			return runOut{}, err
		}
		morning, err := s.Collect(2000, worldstate.MorningHour, rng)
		if err != nil {
			return runOut{}, err
		}
		peakCal, err := s.Collect(200, worldstate.PeakHour, rng)
		if err != nil {
			return runOut{}, err
		}
		np := s.NewPolicy()
		truth := core.TrueValue(morning.Contexts, np, func(c, v int) float64 {
			return s.TrueReward(c, v, worldstate.PeakHour)
		})
		tableKey := func(c, v int) string { return worldstate.ServerGroup(c, v) }

		estimate := func(tr core.Trace[int, int]) (float64, error) {
			model := core.FitTable(tr, tableKey)
			est, err := core.DoublyRobust(tr, np, model, core.DROptions{})
			return est.Value, err
		}
		raw, err := estimate(morning.Trace)
		if err != nil {
			return runOut{}, err
		}
		// Paper's rule of thumb with the globally calibrated mean drop.
		ratio := peakCal.Trace.MeanReward() / morning.Trace.MeanReward()
		deg, err := estimate(worldstate.TransformTrace(morning.Trace, worldstate.Transition{Slope: ratio}))
		if err != nil {
			return runOut{}, err
		}
		trans, err := worldstate.FitPerGroup(
			worldstate.CalibrationFromTrace(morning.Trace, worldstate.ServerGroup),
			worldstate.CalibrationFromTrace(peakCal.Trace, worldstate.ServerGroup),
		)
		if err != nil {
			return runOut{}, err
		}
		corrected, _ := worldstate.TransformTraceGrouped(morning.Trace, trans, worldstate.ServerGroup)
		grp, err := estimate(corrected)
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			raw:     mathx.RelativeError(truth, raw),
			degrade: mathx.RelativeError(truth, deg),
			group:   mathx.RelativeError(truth, grp),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	rawErrs := column(outs, func(o runOut) float64 { return o.raw })
	degradeErrs := column(outs, func(o runOut) float64 { return o.degrade })
	groupErrs := column(outs, func(o runOut) float64 { return o.group })
	res := Result{
		ID:    "E4",
		Title: "World state: evaluating a peak-hours policy from a morning trace",
		Runs:  runs,
		Rows: []Row{
			row("DR, raw morning trace", "", rawErrs),
			row("DR + global degrade rule", "", degradeErrs),
			row("DR + per-server transition", "", groupErrs),
		},
	}
	res.Notes = append(res.Notes, "the global rule helps only as far as the state shift is uniform; per-server transitions capture saturation")
	return res, nil
}

// CouplingCorrection is experiment E5 (§4.1/§4.3 "hidden decision-reward
// coupling"): the logging policy's own traffic shift degrades one server
// mid-trace. Rows compare naive DR over the whole trace against
// change-point state matching (detected and oracle segment boundaries).
func CouplingCorrection(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	type runOut struct{ naive, detected, oracle float64 }
	outs, err := forEachRun(runs, seed, func(_ int, rng *mathx.RNG) (runOut, error) {
		s := coupling.DefaultScenario()
		if err := s.Init(rng); err != nil {
			return runOut{}, err
		}
		const n = 3000
		steps, err := s.Run(n, rng)
		if err != nil {
			return runOut{}, err
		}
		np := s.NewPolicy()
		truth := s.GroundTruth(steps, np, s.Phase1Loads())
		key := func(c, v int) string { return fmt.Sprintf("%d/%d", c, v) }

		estimate := func(tr core.Trace[int, int]) (float64, error) {
			model := core.FitTable(tr, key)
			est, err := core.DoublyRobust(tr, np, model, core.DROptions{})
			return est.Value, err
		}
		naive, err := estimate(coupling.Trace(steps))
		if err != nil {
			return runOut{}, err
		}
		labels, err := coupling.DetectStates(steps, s.ShiftTarget, 0)
		if err != nil {
			return runOut{}, err
		}
		target := s.Phase1Loads()[s.ShiftTarget]
		matchedTrace, err := coupling.MatchState(steps, labels, s.ShiftTarget, target, 0)
		if err != nil {
			return runOut{}, err
		}
		detected, err := estimate(matchedTrace)
		if err != nil {
			return runOut{}, err
		}
		// Oracle: use the true phase boundary.
		oracleLabels := make([]int, n)
		for i := int(s.PhaseSwitch * float64(n)); i < n; i++ {
			oracleLabels[i] = 1
		}
		oracleTrace, err := coupling.MatchState(steps, oracleLabels, s.ShiftTarget, target, 0)
		if err != nil {
			return runOut{}, err
		}
		oracle, err := estimate(oracleTrace)
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			naive:    mathx.RelativeError(truth, naive),
			detected: mathx.RelativeError(truth, detected),
			oracle:   mathx.RelativeError(truth, oracle),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	naiveErrs := column(outs, func(o runOut) float64 { return o.naive })
	detectedErrs := column(outs, func(o runOut) float64 { return o.detected })
	oracleErrs := column(outs, func(o runOut) float64 { return o.oracle })
	res := Result{
		ID:    "E5",
		Title: "Decision-reward coupling: naive DR vs change-point state-matched DR",
		Runs:  runs,
		Rows: []Row{
			row("DR, whole trace", "", naiveErrs),
			row("DR, PELT-matched state", "", detectedErrs),
			row("DR, oracle-matched state", "", oracleErrs),
		},
	}
	return res, nil
}

// DimensionalitySweep is experiment E6 (§2.2.2 / Figure 5): as the
// decision space grows, the matching evaluator's coverage collapses and
// its error grows, while DR (which uses every record via its direct
// model) degrades far more slowly. A second block grows the feature
// space with irrelevant features, degrading the k-NN model and with it
// both DM and (gracefully) DR.
func DimensionalitySweep(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	const clients = 600
	res := Result{
		ID:    "E6",
		Title: "Curse of dimensionality: matching vs DR as decision and feature spaces grow",
		Runs:  runs,
	}
	type gridPoint struct {
		cdns, bitrates, features int
	}
	blocks := []struct {
		name   string
		points []gridPoint
	}{
		{"decision space", []gridPoint{{2, 2, 4}, {3, 4, 4}, {4, 6, 4}, {6, 8, 4}}},
		{"feature space", []gridPoint{{3, 4, 4}, {3, 4, 8}, {3, 4, 12}}},
	}
	for _, blk := range blocks {
		for _, gp := range blk.points {
			type runOut struct{ cfa, dr, matchRate float64 }
			outs, err := forEachRun(runs, seed, func(_ int, rng *mathx.RNG) (runOut, error) {
				w := cfa.DefaultWorld()
				w.NumCDNs, w.NumBitrates, w.NumFeatures = gp.cdns, gp.bitrates, gp.features
				if err := w.Init(rng); err != nil {
					return runOut{}, err
				}
				d, err := w.Collect(clients, rng)
				if err != nil {
					return runOut{}, err
				}
				np := w.NewPolicy(0.4, rng)
				truth := d.GroundTruth(np)
				diag, err := core.Diagnose(d.Trace, np)
				if err != nil {
					return runOut{}, err
				}
				out := runOut{matchRate: diag.MatchRate}
				matched, err := core.MatchedRewards(d.Trace, np)
				if err != nil {
					// No matches at all: score the worst case.
					out.cfa = 1
				} else {
					out.cfa = mathx.RelativeError(truth, matched.Value)
				}
				fit := func(tr core.Trace[cfa.Client, cfa.Decision]) (core.RewardModel[cfa.Client, cfa.Decision], error) {
					return (&cfa.Data{Trace: tr, World: d.World}).PerDecisionKNNModel(3)
				}
				dr, err := core.CrossFitDR(d.Trace, np, fit, 2, core.DROptions{})
				if err != nil {
					return runOut{}, err
				}
				out.dr = mathx.RelativeError(truth, dr.Value)
				return out, nil
			})
			if err != nil {
				return Result{}, err
			}
			cfaErrs := column(outs, func(o runOut) float64 { return o.cfa })
			drErrs := column(outs, func(o runOut) float64 { return o.dr })
			matchRates := column(outs, func(o runOut) float64 { return o.matchRate })
			label := fmt.Sprintf("%s %dx%d f=%d", blk.name, gp.cdns, gp.bitrates, gp.features)
			res.Rows = append(res.Rows,
				row("CFA "+label, "", cfaErrs),
				row("DR  "+label, "", drErrs),
				row("mr  "+label, "match rate", matchRates),
			)
		}
	}
	res.Notes = append(res.Notes,
		"match rate collapses ~1/|D| as the decision grid grows (Figure 5's coverage problem)",
		"DR beats matching while its direct model has data per decision; on the largest grid (~12 records/decision) both estimators degrade — DR is only as good as its better ingredient")
	return res, nil
}

// RelayBias is experiment E7 (Figure 3): the logging policy relays only
// NAT-ed calls, so the NAT-blind VIA evaluator misjudges relaying for
// public-IP callers. Rows compare the VIA direct method, DR on the same
// NAT-blind model, and both with the NAT feature added.
func RelayBias(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 30
	}
	const calls = 4000
	type runOut struct{ via, dr, fullDM, fullDR float64 }
	outs, err := forEachRun(runs, seed, func(_ int, rng *mathx.RNG) (runOut, error) {
		w := relay.DefaultWorld()
		if err := w.Init(rng); err != nil {
			return runOut{}, err
		}
		d, err := w.Collect(calls, rng)
		if err != nil {
			return runOut{}, err
		}
		np := w.NewPolicy()
		truth := d.GroundTruth(np)
		via := d.VIAModel()
		full := d.FullModel()
		dm, err := core.DirectMethod(d.Trace, np, via)
		if err != nil {
			return runOut{}, err
		}
		dr, err := core.DoublyRobust(d.Trace, np, via, core.DROptions{})
		if err != nil {
			return runOut{}, err
		}
		fdm, err := core.DirectMethod(d.Trace, np, full)
		if err != nil {
			return runOut{}, err
		}
		fdr, err := core.DoublyRobust(d.Trace, np, full, core.DROptions{})
		if err != nil {
			return runOut{}, err
		}
		return runOut{
			via:    mathx.RelativeError(truth, dm.Value),
			dr:     mathx.RelativeError(truth, dr.Value),
			fullDM: mathx.RelativeError(truth, fdm.Value),
			fullDR: mathx.RelativeError(truth, fdr.Value),
		}, nil
	})
	if err != nil {
		return Result{}, err
	}
	viaErrs := column(outs, func(o runOut) float64 { return o.via })
	drErrs := column(outs, func(o runOut) float64 { return o.dr })
	fullDMErrs := column(outs, func(o runOut) float64 { return o.fullDM })
	fullDRErrs := column(outs, func(o runOut) float64 { return o.fullDR })
	res := Result{
		ID:    "E7",
		Title: "Relay NAT bias (Figure 3): VIA matching vs DR, with and without the NAT feature",
		Runs:  runs,
		Rows: []Row{
			row("VIA (NAT-blind DM)", "", viaErrs),
			row("DR, NAT-blind model", "", drErrs),
			row("DM + NAT feature", "", fullDMErrs),
			row("DR + NAT feature", "", fullDRErrs),
		},
	}
	res.Notes = append(res.Notes, "adding the NAT feature fixes the model directly; DR fixes the evaluation even without it")
	return res, nil
}
