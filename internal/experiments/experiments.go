// Package experiments regenerates every quantitative result of the
// paper — the three panels of Figure 7 — plus the extension experiments
// the design document (DESIGN.md) derives from §3–§4: second-order bias,
// the randomness/coverage sweep, non-stationary replay, world-state
// correction, coupling correction, the dimensionality sweep, and the
// relay NAT-bias study.
//
// Every experiment is a pure function of (runs, seed) returning a typed
// Result, so the same code backs the unit tests, the root benchmarks
// (bench_test.go) and the cmd/experiments CLI.
package experiments

import (
	"fmt"
	"strings"

	"drnet/internal/biasobs"
	"drnet/internal/core"
	"drnet/internal/mathx"
	"drnet/internal/parallel"
)

// Row is one line of an experiment's result table: a labeled summary of
// relative evaluation errors (or another metric) over repeated runs.
type Row struct {
	// Label identifies the estimator or sweep point.
	Label string
	// Metric names what the summary aggregates (default: "rel. error").
	Metric string
	// Summary is the mean/min/max/std over runs.
	Summary mathx.Summary
}

// Result is a complete experiment output.
type Result struct {
	// ID is the experiment identifier (e.g. "F7a", "E2").
	ID string
	// Title is the human-readable headline.
	Title string
	// Runs is the number of independent repetitions aggregated.
	Runs int
	// Rows are the table rows.
	Rows []Row
	// Notes carries any caveats worth printing with the table.
	Notes []string
	// Health, when set, is the bias-observatory summary of the run-0
	// logged trace under the run-0 evaluated policy: a windowed
	// estimator-health check (ESS, zero-support, reward drift) on the
	// exact data the headline numbers were computed from. Advisory —
	// an unhealthy grade flags the trace, it never fails the run.
	Health *biasobs.HealthSummary
}

// Render formats the result as an aligned text table, in the style of
// the paper's "mean, minimum and maximum of evaluation errors over 50
// runs".
func (r Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s (%d runs)\n", r.ID, r.Title, r.Runs)
	width := 10
	for _, row := range r.Rows {
		if len(row.Label) > width {
			width = len(row.Label)
		}
	}
	fmt.Fprintf(&sb, "  %-*s  %-12s %10s %10s %10s %10s\n", width, "label", "metric", "mean", "min", "max", "std")
	for _, row := range r.Rows {
		metric := row.Metric
		if metric == "" {
			metric = "rel. error"
		}
		fmt.Fprintf(&sb, "  %-*s  %-12s %10.4f %10.4f %10.4f %10.4f\n",
			width, row.Label, metric, row.Summary.Mean, row.Summary.Min, row.Summary.Max, row.Summary.Std)
	}
	if r.Health != nil {
		fmt.Fprintf(&sb, "  trace health (run 0): grade=%s windows=%d alarms=%d minESS/N=%.3f maxZeroSupport=%.3f\n",
			r.Health.Grade, r.Health.Windows, r.Health.Alarms, r.Health.MinESSRatio, r.Health.MaxZeroSupportFrac)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// row builds a Row from raw per-run values.
func row(label, metric string, values []float64) Row {
	return Row{Label: label, Metric: metric, Summary: mathx.Summarize(values)}
}

// forEachRun executes runs independent Monte Carlo replications of fn
// on the shared worker pool (parallel.DefaultWorkers wide) and returns
// the per-run outputs in run order. Run i receives run index i and an
// RNG seeded seed+i — exactly the stream the sequential loops used —
// so every experiment's numbers are bit-identical to the
// single-threaded implementation at any worker count.
func forEachRun[R any](runs int, seed int64, fn func(run int, rng *mathx.RNG) (R, error)) ([]R, error) {
	return parallel.Times(runs, 0, func(i int) (R, error) {
		return fn(i, mathx.NewRNG(seed+int64(i)))
	})
}

// column extracts one per-run metric from collected run outputs, in run
// order.
func column[R any](outs []R, get func(R) float64) []float64 {
	vals := make([]float64, len(outs))
	for i, o := range outs {
		vals[i] = get(o)
	}
	return vals
}

// traceHealth runs the windowed bias observatory over one run's logged
// trace and returns the compact summary recorded in Result.Health.
// Errors degrade to nil: the health check is advisory and must never
// fail an experiment that would otherwise produce numbers.
func traceHealth[C any, D comparable](v *core.TraceView[C, D], p core.Policy[C, D]) *biasobs.HealthSummary {
	rep, err := biasobs.Compute(v, p, biasobs.Config{})
	if err != nil {
		return nil
	}
	s := rep.Summary()
	return &s
}

// Reduction returns the relative reduction of b versus a (1 - b/a), the
// headline statistic the paper quotes ("DR's evaluation error is about
// 32% lower than WISE").
func Reduction(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 1 - b/a
}
