package experiments

import (
	"math"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

// ExplorationDesign is experiment E10: where should an operator spend a
// fixed exploration budget? The paper's §4.1 asks operators to
// "introduce randomness where impact on overall performance is small";
// this experiment quantifies the trade against uniform ε-greedy at the
// same budget ε.
//
// World: contexts x ∈ [0,1]; five decisions at positions 0, ¼, …, 1;
// true reward 2 − 2·|x − pos(d)| (adjacent decisions are cheap
// deviations, distant ones are costly). The candidate policy to be
// evaluated later picks the decision adjacent to the greedy one — the
// kind of near-miss policy an operator actually considers.
//
// Rows report, per logging scheme: the logging policy's own value (the
// live cost of exploration) and the DR evaluation error for the
// candidate policy on traces logged under that scheme.
func ExplorationDesign(runs int, seed int64) (Result, error) {
	if runs <= 0 {
		runs = 50
	}
	const (
		n       = 2000
		eps     = 0.1
		numDecs = 5
	)
	decisions := make([]int, numDecs)
	for i := range decisions {
		decisions[i] = i
	}
	pos := func(d int) float64 { return float64(d) / float64(numDecs-1) }
	trueReward := func(x float64, d int) float64 { return 2 - 2*math.Abs(x-pos(d)) }
	greedy := func(x float64) int {
		best, bestV := 0, math.Inf(-1)
		for _, d := range decisions {
			if v := trueReward(x, d); v > bestV {
				bestV, best = v, d
			}
		}
		return best
	}
	// Candidate policy: one rung to the right of greedy (clamped).
	candidate := core.DeterministicPolicy[float64, int]{Choose: func(x float64) int {
		d := greedy(x) + 1
		if d >= numDecs {
			d = numDecs - 2
		}
		return d
	}}
	model := core.RewardFunc[float64, int](trueReward)

	schemes := []struct {
		name   string
		policy core.Policy[float64, int]
	}{
		{"uniform ε-greedy", core.EpsilonGreedyPolicy[float64, int]{
			Base: greedy, Decisions: decisions, Epsilon: eps,
		}},
		{"safe exploration", core.SafeExplorationPolicy[float64, int]{
			Base: greedy, Decisions: decisions, Model: model,
			Epsilon: eps, MaxRegret: 0.6,
		}},
	}

	res := Result{
		ID:    "E10",
		Title: "Exploration design (§4.1): uniform vs regret-bounded randomness at the same budget",
		Runs:  runs,
	}
	for _, scheme := range schemes {
		var loggingValue, drErrs, esss []float64
		for run := 0; run < runs; run++ {
			rng := mathx.NewRNG(seed + int64(run))
			b := &banditWorld{rng: rng, noise: 0.1}
			ctxs := b.contexts(n)
			tr := core.CollectTrace(ctxs, scheme.policy, func(x float64, d int) float64 {
				return trueReward(x, d) + rng.Normal(0, 0.1)
			}, rng)
			loggingValue = append(loggingValue, core.TrueValue(ctxs, scheme.policy, trueReward))
			truth := core.TrueValue(ctxs, candidate, trueReward)
			// Evaluate the candidate with DR and a mildly biased model
			// (so the correction matters).
			biased := core.RewardFunc[float64, int](func(x float64, d int) float64 {
				return trueReward(x, d) + 0.25
			})
			v, err := core.NewTraceView(tr)
			if err != nil {
				return Result{}, err
			}
			dr, err := core.DoublyRobustView(v, candidate, biased, core.DROptions{})
			if err != nil {
				return Result{}, err
			}
			diag, err := core.DiagnoseView(v, candidate)
			if err != nil {
				return Result{}, err
			}
			drErrs = append(drErrs, mathx.RelativeError(truth, dr.Value))
			esss = append(esss, diag.ESS)
		}
		res.Rows = append(res.Rows,
			row(scheme.name+" value", "live reward", loggingValue),
			row(scheme.name+" DR err", "", drErrs),
			row(scheme.name+" ESS", "ESS", esss),
		)
	}
	// Deterministic reference: live value with no exploration at all.
	var detValue []float64
	for run := 0; run < runs; run++ {
		rng := mathx.NewRNG(seed + int64(run))
		b := &banditWorld{rng: rng, noise: 0.1}
		ctxs := b.contexts(n)
		det := core.DeterministicPolicy[float64, int]{Choose: greedy}
		detValue = append(detValue, core.TrueValue(ctxs, det, trueReward))
	}
	res.Rows = append(res.Rows, row("no exploration value", "live reward", detValue))
	res.Notes = append(res.Notes,
		"same ε=0.10 budget: safe exploration loses less live reward than uniform AND yields more effective samples for evaluating near-greedy candidates")
	return res, nil
}
