// Package cdnsim reproduces the paper's Figure 4 world: requests from
// two ISPs choose one of two frontend clusters (FE-1, FE-2) and one of
// two backend clusters (BE-1, BE-2). The ground truth is that a request
// from ISP-1 sees a long response time only when it uses both FE-1 and
// BE-1; every other combination is short.
//
// A WISE-style evaluator [38] learns a Causal Bayesian Network from the
// logged trace and answers what-if configuration questions from it — a
// Direct Method whose structural bias (an incomplete CBN learned from a
// skewed trace) the paper's Figure 7a quantifies against DR.
package cdnsim

import (
	"errors"
	"fmt"

	"drnet/internal/cbn"
	"drnet/internal/core"
	"drnet/internal/mathx"
)

// ISP identifies the client's ISP.
type ISP int

// The two ISPs of Figure 4.
const (
	ISP1 ISP = 0
	ISP2 ISP = 1
)

// Config is a CDN configuration decision: which frontend and backend a
// request is mapped to.
type Config struct {
	FE int // 0 = FE-1, 1 = FE-2
	BE int // 0 = BE-1, 1 = BE-2
}

// AllConfigs enumerates the four (FE, BE) decisions.
func AllConfigs() []Config {
	return []Config{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
}

// Request is the client-context: the requesting ISP.
type Request struct {
	ISP ISP
}

// World holds the scenario's ground-truth response-time parameters.
type World struct {
	// ShortMs and LongMs are the two response-time regimes.
	ShortMs, LongMs float64
	// NoiseMs is the response-time measurement noise (std dev).
	NoiseMs float64
	// ArrowClients is the number of clients logged per "measurement
	// arrow" of Figure 4 (paper: 500).
	ArrowClients int
	// RareClients is the number logged per remaining (FE, BE) choice
	// (paper: 5).
	RareClients int
}

// DefaultWorld returns the paper's Figure 7a parameters.
func DefaultWorld() World {
	return World{ShortMs: 100, LongMs: 300, NoiseMs: 10, ArrowClients: 500, RareClients: 5}
}

// MeanResponse returns the noise-free ground-truth response time of a
// request: long only for ISP-1 via FE-1 and BE-1.
func (w World) MeanResponse(r Request, c Config) float64 {
	if r.ISP == ISP1 && c.FE == 0 && c.BE == 0 {
		return w.LongMs
	}
	return w.ShortMs
}

// DrawResponse samples a noisy response time.
func (w World) DrawResponse(r Request, c Config, rng *mathx.RNG) float64 {
	v := w.MeanResponse(r, c) + rng.Normal(0, w.NoiseMs)
	if v < 1 {
		v = 1
	}
	return v
}

// oldDistribution returns the logging policy's per-ISP decision
// distribution implied by the paper's client counts: ArrowClients on
// each of the two "arrow" configurations and RareClients on the two
// remaining ones.
func (w World) oldDistribution(isp ISP) []core.Weighted[Config] {
	// Arrows for both ISPs: the correlated paths (FE-1,BE-1) and
	// (FE-2,BE-2). The skew — frontends and backends almost perfectly
	// correlated in the trace — is what starves the structure learner
	// of the data needed to separate their effects.
	total := float64(2*w.ArrowClients + 2*w.RareClients)
	arrow := float64(w.ArrowClients) / total
	rare := float64(w.RareClients) / total
	return []core.Weighted[Config]{
		{Decision: Config{0, 0}, Prob: arrow},
		{Decision: Config{1, 1}, Prob: arrow},
		{Decision: Config{0, 1}, Prob: rare},
		{Decision: Config{1, 0}, Prob: rare},
	}
}

// OldPolicy returns the logging policy.
func (w World) OldPolicy() core.Policy[Request, Config] {
	return core.FuncPolicy[Request, Config](func(r Request) []core.Weighted[Config] {
		return w.oldDistribution(r.ISP)
	})
}

// NewPolicy returns the paper's target policy: "the same traffic
// pattern, except that 50% of ISP-1 clients use FE-1 and BE-2".
func (w World) NewPolicy() core.Policy[Request, Config] {
	moved := core.DeterministicPolicy[Request, Config]{Choose: func(Request) Config {
		return Config{FE: 0, BE: 1}
	}}
	return core.FuncPolicy[Request, Config](func(r Request) []core.Weighted[Config] {
		if r.ISP != ISP1 {
			return w.oldDistribution(r.ISP)
		}
		mix := core.MixturePolicy[Request, Config]{A: moved, B: w.OldPolicy(), Alpha: 0.5}
		return mix.Distribution(r)
	})
}

// Data is one collected scenario instance.
type Data struct {
	Trace    core.Trace[Request, Config]
	Contexts []Request
	World    World
}

// Collect builds the logged trace with the paper's deterministic client
// counts: for each ISP, ArrowClients requests on each arrow
// configuration and RareClients on each remaining configuration, with
// propensities given by the implied logging distribution.
func Collect(w World, rng *mathx.RNG) (*Data, error) {
	if w.ArrowClients <= 0 || w.RareClients <= 0 {
		return nil, errors.New("cdnsim: client counts must be positive")
	}
	if w.LongMs <= w.ShortMs {
		return nil, errors.New("cdnsim: LongMs must exceed ShortMs")
	}
	d := &Data{World: w}
	for _, isp := range []ISP{ISP1, ISP2} {
		req := Request{ISP: isp}
		for _, wc := range w.oldDistribution(isp) {
			count := w.RareClients
			if wc.Prob > 0.1 { // arrow configurations
				count = w.ArrowClients
			}
			for i := 0; i < count; i++ {
				d.Contexts = append(d.Contexts, req)
				d.Trace = append(d.Trace, core.Record[Request, Config]{
					Context:    req,
					Decision:   wc.Decision,
					Reward:     w.DrawResponse(req, wc.Decision, rng),
					Propensity: wc.Prob,
				})
			}
		}
	}
	return d, nil
}

// GroundTruth returns the exact expected response time of a policy over
// the logged request mix.
func (d *Data) GroundTruth(p core.Policy[Request, Config]) float64 {
	return core.TrueValue(d.Contexts, p, func(r Request, c Config) float64 {
		return d.World.MeanResponse(r, c)
	})
}

// WISEModel learns a WISE-style CBN from the trace and wraps it as a
// reward model predicting expected response time for any (request,
// config) pair.
//
// The network has four discrete nodes — ISP, FE, BE and a binarized
// response time — and is learned by BIC hill climbing with response time
// constrained to be a sink. maxParents caps the in-degree (the paper's
// "incomplete CBN" arises from such complexity control plus the skewed
// trace); 2 reproduces Figure 4's failure, 3 allows the full
// interaction.
func (d *Data) WISEModel(maxParents int) (core.RewardModel[Request, Config], error) {
	if maxParents <= 0 {
		maxParents = 2
	}
	vars := []cbn.Variable{
		{Name: "ISP", Card: 2},
		{Name: "FE", Card: 2},
		{Name: "BE", Card: 2},
		{Name: "RT", Card: 2},
	}
	net, err := cbn.New(vars)
	if err != nil {
		return nil, err
	}
	threshold := (d.World.ShortMs + d.World.LongMs) / 2
	samples := make([][]int, len(d.Trace))
	for i, rec := range d.Trace {
		rt := 0
		if rec.Reward > threshold {
			rt = 1
		}
		samples[i] = []int{int(rec.Context.ISP), rec.Decision.FE, rec.Decision.BE, rt}
	}
	// Response time is an effect, never a cause.
	forbidden := [][2]int{{3, 0}, {3, 1}, {3, 2}}
	if err := net.LearnStructure(samples, cbn.LearnOptions{
		MaxParents: maxParents,
		Forbidden:  forbidden,
	}); err != nil {
		return nil, err
	}
	stateValues := []float64{d.World.ShortMs, d.World.LongMs}
	rtIdx := net.Index("RT")
	return core.RewardFunc[Request, Config](func(r Request, c Config) float64 {
		ev := map[int]int{0: int(r.ISP), 1: c.FE, 2: c.BE}
		v, err := net.Expectation(rtIdx, ev, stateValues)
		if err != nil {
			// Zero-probability evidence under the learned structure:
			// fall back to the marginal expectation.
			if v2, err2 := net.Expectation(rtIdx, nil, stateValues); err2 == nil {
				return v2
			}
			return (d.World.ShortMs + d.World.LongMs) / 2
		}
		return v
	}), nil
}

// String describes the world.
func (w World) String() string {
	return fmt.Sprintf("cdnsim world: short=%.0fms long=%.0fms arrows=%d rare=%d",
		w.ShortMs, w.LongMs, w.ArrowClients, w.RareClients)
}
