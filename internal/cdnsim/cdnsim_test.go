package cdnsim

import (
	"math"
	"testing"

	"drnet/internal/core"
	"drnet/internal/mathx"
)

func TestWorldGroundTruth(t *testing.T) {
	w := DefaultWorld()
	if got := w.MeanResponse(Request{ISP: ISP1}, Config{0, 0}); got != 300 {
		t.Fatalf("ISP1/FE1/BE1 = %g, want long (300)", got)
	}
	// The paper's request X: ISP-1 via FE-1 and BE-2 should be short.
	if got := w.MeanResponse(Request{ISP: ISP1}, Config{0, 1}); got != 100 {
		t.Fatalf("ISP1/FE1/BE2 = %g, want short (100)", got)
	}
	if got := w.MeanResponse(Request{ISP: ISP2}, Config{0, 0}); got != 100 {
		t.Fatalf("ISP2 should always be short, got %g", got)
	}
	if w.String() == "" {
		t.Fatal("empty string")
	}
}

func TestDrawResponsePositive(t *testing.T) {
	w := DefaultWorld()
	w.NoiseMs = 500 // absurd noise to exercise the clamp
	rng := mathx.NewRNG(1)
	for i := 0; i < 200; i++ {
		if v := w.DrawResponse(Request{}, Config{}, rng); v < 1 {
			t.Fatalf("response %g below clamp", v)
		}
	}
}

func TestOldPolicyDistribution(t *testing.T) {
	w := DefaultWorld()
	dist := w.OldPolicy().Distribution(Request{ISP: ISP1})
	if err := core.ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	// 500/1010 on arrows, 5/1010 on the rare pairs.
	for _, wc := range dist {
		if wc.Decision == (Config{0, 0}) || wc.Decision == (Config{1, 1}) {
			if math.Abs(wc.Prob-500.0/1010) > 1e-12 {
				t.Fatalf("arrow prob = %g", wc.Prob)
			}
		} else if math.Abs(wc.Prob-5.0/1010) > 1e-12 {
			t.Fatalf("rare prob = %g", wc.Prob)
		}
	}
}

func TestNewPolicyMoves50PercentOfISP1(t *testing.T) {
	w := DefaultWorld()
	np := w.NewPolicy()
	dist := np.Distribution(Request{ISP: ISP1})
	if err := core.ValidateDistribution(dist); err != nil {
		t.Fatal(err)
	}
	if got := core.Prob(np, Request{ISP: ISP1}, Config{0, 1}); got < 0.5 {
		t.Fatalf("P(FE1,BE2 | ISP1) = %g, want >= 0.5", got)
	}
	// ISP-2 unchanged.
	d2 := np.Distribution(Request{ISP: ISP2})
	o2 := w.OldPolicy().Distribution(Request{ISP: ISP2})
	for i := range d2 {
		if d2[i] != o2[i] {
			t.Fatal("ISP-2 distribution should match the old policy")
		}
	}
}

func TestCollectCountsAndPropensities(t *testing.T) {
	w := DefaultWorld()
	rng := mathx.NewRNG(2)
	d, err := Collect(w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trace) != 2*(2*500+2*5) {
		t.Fatalf("trace length %d, want 2020", len(d.Trace))
	}
	if err := d.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.Trace.DecisionCounts()
	if counts[Config{0, 1}] != 10 { // 5 per ISP
		t.Fatalf("rare config count %d, want 10", counts[Config{0, 1}])
	}
	if counts[Config{0, 0}] != 1000 {
		t.Fatalf("arrow config count %d, want 1000", counts[Config{0, 0}])
	}
}

func TestCollectValidation(t *testing.T) {
	rng := mathx.NewRNG(3)
	bad := DefaultWorld()
	bad.ArrowClients = 0
	if _, err := Collect(bad, rng); err == nil {
		t.Fatal("zero arrow clients should fail")
	}
	bad = DefaultWorld()
	bad.LongMs = 50
	if _, err := Collect(bad, rng); err == nil {
		t.Fatal("LongMs < ShortMs should fail")
	}
}

func TestWISEModelMispredictsRequestX(t *testing.T) {
	// The Figure 4 claim: with maxParents=2 (incomplete CBN) the WISE
	// model predicts a LONG response for ISP-1 via FE-1/BE-2, though the
	// truth is short.
	w := DefaultWorld()
	rng := mathx.NewRNG(4)
	d, err := Collect(w, rng)
	if err != nil {
		t.Fatal(err)
	}
	model, err := d.WISEModel(2)
	if err != nil {
		t.Fatal(err)
	}
	x := Request{ISP: ISP1}
	pred := model.Predict(x, Config{0, 1})
	truth := w.MeanResponse(x, Config{0, 1})
	if pred < truth+50 {
		t.Fatalf("incomplete CBN should over-predict request X: pred %g vs truth %g", pred, truth)
	}
	// And it should get the dominant arrows roughly right.
	if p := model.Predict(x, Config{0, 0}); p < 250 {
		t.Fatalf("arrow (FE1,BE1) prediction %g, want near 300", p)
	}
	if p := model.Predict(x, Config{1, 1}); p > 150 {
		t.Fatalf("arrow (FE2,BE2) prediction %g, want near 100", p)
	}
}

func TestDRBeatsWISE(t *testing.T) {
	// Figure 7a in miniature: DR's relative evaluation error is below
	// the WISE (CBN Direct Method) evaluator's, averaged over runs.
	var dmErrs, drErrs []float64
	for run := 0; run < 15; run++ {
		rng := mathx.NewRNG(int64(50 + run))
		w := DefaultWorld()
		d, err := Collect(w, rng)
		if err != nil {
			t.Fatal(err)
		}
		np := w.NewPolicy()
		truth := d.GroundTruth(np)
		model, err := d.WISEModel(2)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := core.DirectMethod(d.Trace, np, model)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := core.DoublyRobust(d.Trace, np, model, core.DROptions{})
		if err != nil {
			t.Fatal(err)
		}
		dmErrs = append(dmErrs, mathx.RelativeError(truth, dm.Value))
		drErrs = append(drErrs, mathx.RelativeError(truth, dr.Value))
	}
	dmMean, drMean := mathx.Mean(dmErrs), mathx.Mean(drErrs)
	t.Logf("WISE error %.4f, DR error %.4f", dmMean, drMean)
	if drMean >= dmMean {
		t.Fatalf("DR error %g should beat WISE error %g", drMean, dmMean)
	}
}

func TestAllConfigs(t *testing.T) {
	if len(AllConfigs()) != 4 {
		t.Fatal("expected 4 configurations")
	}
}

func TestWISEModelValidationAndFallbacks(t *testing.T) {
	w := DefaultWorld()
	rng := mathx.NewRNG(9)
	d, err := Collect(w, rng)
	if err != nil {
		t.Fatal(err)
	}
	// maxParents <= 0 defaults to 2 and still mispredicts request X.
	model, err := d.WISEModel(0)
	if err != nil {
		t.Fatal(err)
	}
	if pred := model.Predict(Request{ISP: ISP1}, Config{0, 1}); pred < 200 {
		t.Fatalf("default maxParents should reproduce the bias, got %g", pred)
	}
	// Predictions are finite and within the response-time range for all
	// (request, config) combinations, including never-logged ones.
	for _, isp := range []ISP{ISP1, ISP2} {
		for _, cfg := range AllConfigs() {
			p := model.Predict(Request{ISP: isp}, cfg)
			if p < w.ShortMs-1 || p > w.LongMs+1 {
				t.Fatalf("prediction %g outside [%g, %g]", p, w.ShortMs, w.LongMs)
			}
		}
	}
}

func TestWISEModelPermissiveStructureFixesRequestX(t *testing.T) {
	// With enough parents allowed, the learner recovers the full
	// three-way interaction and request X is predicted short.
	w := DefaultWorld()
	rng := mathx.NewRNG(10)
	d, err := Collect(w, rng)
	if err != nil {
		t.Fatal(err)
	}
	model, err := d.WISEModel(3)
	if err != nil {
		t.Fatal(err)
	}
	if pred := model.Predict(Request{ISP: ISP1}, Config{0, 1}); pred > 200 {
		t.Fatalf("3-parent CBN should predict request X short, got %g", pred)
	}
}
