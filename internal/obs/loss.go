package obs

import "sync/atomic"

// RegisterLossCounter exports a monotonic loss count (sink-queue
// overflow drops, eviction counts, anything "we lost N of these") as
// an eagerly-created counter synced by a scrape-time sampler — the
// shared shape behind obs_trace_sink_dropped_total and the wide-event
// journal's drop counters. Eager creation matters: a zero reading is
// the healthy signal operators alert on disappearing.
//
// read returns the source's current cumulative count and whether a
// source exists right now. When it reports false the sampler leaves
// both the counter and its memory of the last reading untouched, so a
// source that disappears and later returns does not double-count. A
// source replaced by a fresh one (lower cumulative count) simply
// pauses the counter until the new count catches up — counters must
// never go backwards.
func RegisterLossCounter(reg *Registry, name, help string, read func() (uint64, bool)) {
	reg.Help(name, help)
	lost := reg.Counter(name)
	var last atomic.Uint64
	reg.RegisterSampler(func() {
		cur, ok := read()
		if !ok {
			return
		}
		prev := last.Swap(cur)
		if cur > prev {
			lost.Add(cur - prev)
		}
	})
}
