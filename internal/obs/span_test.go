package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestSpanRecordsDuration(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("phase")
	if sp.ID() == "" || sp.Name() != "phase" {
		t.Fatalf("span metadata: id=%q name=%q", sp.ID(), sp.Name())
	}
	if d := sp.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	h := r.Histogram(spanSeconds, TimeBuckets, L("span", "phase"))
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d, want 1", h.Count())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `obs_span_seconds_count{span="phase"} 1`) {
		t.Fatalf("span series missing from exposition:\n%s", sb.String())
	}
}

func TestChildSpanInheritsID(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("request")
	child := root.StartChild("bootstrap")
	if child.ID() != root.ID() {
		t.Fatalf("child id %q != root id %q", child.ID(), root.ID())
	}
	child.End()
	root.End()
	if got := r.Histogram(spanSeconds, TimeBuckets, L("span", "bootstrap")).Count(); got != 1 {
		t.Fatalf("child histogram count = %d", got)
	}
}

func TestNilSpanEnd(t *testing.T) {
	var sp *Span
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
}

func TestNewIDUnique(t *testing.T) {
	const n = 2000
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				ids <- NewID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[string]bool{}
	for id := range ids {
		if len(id) != 16 {
			t.Fatalf("id %q not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned empty string")
	}
	if Version() != Version() {
		t.Fatal("Version() not stable")
	}
}
