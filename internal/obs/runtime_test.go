package obs

import (
	"strings"
	"testing"
)

func TestRuntimeMetricsSampledAtScrape(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"go_goroutines",
		"go_gomaxprocs",
		"go_memstats_heap_alloc_bytes",
		"go_memstats_heap_inuse_bytes",
		"go_memstats_gc_cycles_total",
		"go_memstats_gc_pause_total_seconds",
	} {
		if !strings.Contains(out, name+" ") {
			t.Fatalf("exposition missing %s:\n%s", name, out)
		}
	}
	if r.Gauge("go_goroutines").Value() < 1 {
		t.Fatalf("go_goroutines = %g, want >= 1", r.Gauge("go_goroutines").Value())
	}
	if r.Gauge("go_gomaxprocs").Value() < 1 {
		t.Fatalf("go_gomaxprocs = %g, want >= 1", r.Gauge("go_gomaxprocs").Value())
	}
	if r.Gauge("go_memstats_heap_alloc_bytes").Value() <= 0 {
		t.Fatal("heap alloc gauge not sampled")
	}

	// Snapshot runs the same samplers.
	snap := NewRegistry()
	RegisterRuntimeMetrics(snap)
	m := snap.Snapshot()
	v, ok := m["go_goroutines"].(float64)
	if !ok || v < 1 {
		t.Fatalf("snapshot go_goroutines = %v", m["go_goroutines"])
	}
}
