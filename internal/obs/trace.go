package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is the immutable, completed form of a Span: what the trace
// recorder keeps after End. Records are grouped by Trace (the
// correlation ID shared by a request's root span and all its children)
// and linked parent→child via Span / Parent, so a request can be
// reassembled into a timeline after the fact.
type SpanRecord struct {
	// Trace is the correlation ID shared by every span of one request.
	Trace string `json:"trace"`
	// Span uniquely identifies this span within the process.
	Span string `json:"span"`
	// Parent is the Span ID of the parent, empty at the root.
	Parent string `json:"parent,omitempty"`
	// Name is the span name, e.g. "drevald_bootstrap".
	Name string `json:"name"`
	// Start is when the span was opened.
	Start time.Time `json:"start"`
	// DurationSeconds is the span's wall time.
	DurationSeconds float64 `json:"durationSeconds"`
	// Attrs are the key=value attributes attached with Span.Attr.
	Attrs map[string]string `json:"attrs,omitempty"`
	// Error is the message set with Span.SetError, empty on success.
	Error string `json:"error,omitempty"`

	// seq is the commit sequence number, used to order exports and to
	// detect which ring generation a slot belongs to.
	seq uint64
}

// TraceRecorder keeps the most recent completed spans in a fixed-size
// ring buffer. Writes are lock-free — a single atomic sequence bump
// plus an atomic pointer store — so recording a span costs about as
// much as a histogram observation and can sit on every request path.
// Old spans are overwritten once the ring wraps, which bounds memory
// regardless of traffic. An optional sink receives every record as one
// JSON line (JSONL) at completion time: lines are marshalled by the
// recording goroutine but written by a single background drainer, so
// a slow sink (e.g. the -trace-out file) never blocks request paths —
// lines that would block are dropped and counted instead.
type TraceRecorder struct {
	slots []atomic.Pointer[SpanRecord]
	next  atomic.Uint64

	sinkMu      sync.Mutex                // serializes SetSink swaps, not line writes
	sink        atomic.Pointer[sinkState] // guarded by sinkMu (writes)
	sinkDropped atomic.Uint64
}

// writerFunc is the sink contract: receives one marshalled JSONL line
// (newline included). Kept as a func so the recorder does not own any
// file lifecycle. Calls are made from a single drainer goroutine, so
// the func never runs concurrently with itself.
type writerFunc func(line []byte)

// sinkBufferLines bounds how many marshalled lines may be queued for
// the drainer before record starts dropping.
const sinkBufferLines = 1024

// sinkState is one installed sink: its line queue, a quit signal for
// SetSink, and done closed once the drainer has flushed and exited.
type sinkState struct {
	ch   chan []byte
	quit chan struct{}
	done chan struct{}
}

// drain feeds queued lines to w until quit, then flushes whatever is
// still buffered and exits.
func (st *sinkState) drain(w writerFunc) {
	defer close(st.done)
	for {
		select {
		case line := <-st.ch:
			w(line)
		case <-st.quit:
			for {
				select {
				case line := <-st.ch:
					w(line)
				default:
					return
				}
			}
		}
	}
}

// NewTraceRecorder returns a recorder holding up to capacity completed
// spans (minimum 1).
func NewTraceRecorder(capacity int) *TraceRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRecorder{slots: make([]atomic.Pointer[SpanRecord], capacity)}
}

// Capacity returns the ring size.
func (tr *TraceRecorder) Capacity() int { return len(tr.slots) }

// Recorded returns how many spans have been committed over the
// recorder's lifetime (not how many are still buffered).
func (tr *TraceRecorder) Recorded() uint64 { return tr.next.Load() }

// SetSink installs (or, with nil, removes) a JSONL sink. Each completed
// span is marshalled to one newline-terminated line and handed to a
// background drainer goroutine that calls w serially, so lines never
// interleave and a slow w never blocks span End. The queue holds
// sinkBufferLines lines; overflow is dropped and counted (SinkDropped).
// Replacing or removing a sink flushes the old sink's queue and waits
// for its drainer to exit, so after SetSink(nil) returns every
// delivered line has been written — spans ending concurrently with the
// swap may be lost, not half-written.
func (tr *TraceRecorder) SetSink(w func(line []byte)) {
	tr.sinkMu.Lock()
	defer tr.sinkMu.Unlock()
	var st *sinkState
	if w != nil {
		st = &sinkState{
			ch:   make(chan []byte, sinkBufferLines),
			quit: make(chan struct{}),
			done: make(chan struct{}),
		}
		go st.drain(w)
	}
	if old := tr.sink.Swap(st); old != nil {
		close(old.quit)
		<-old.done
	}
}

// SinkDropped reports how many JSONL lines were discarded because the
// sink queue was full (the sink writer could not keep up).
func (tr *TraceRecorder) SinkDropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.sinkDropped.Load()
}

// record commits one completed span. Called from Span.End; nil-safe so
// spans on registries without a recorder cost nothing extra. The sink
// hand-off is non-blocking: marshalling happens here, on an immutable
// record, and the line is queued for the drainer or dropped.
func (tr *TraceRecorder) record(rec *SpanRecord) {
	if tr == nil || rec == nil {
		return
	}
	seq := tr.next.Add(1) - 1
	rec.seq = seq
	tr.slots[seq%uint64(len(tr.slots))].Store(rec)
	if st := tr.sink.Load(); st != nil {
		if b, err := json.Marshal(rec); err == nil {
			select {
			case st.ch <- append(b, '\n'):
			default:
				tr.sinkDropped.Add(1)
			}
		}
	}
}

// Records returns a snapshot of the buffered spans in commit order
// (oldest first). Concurrent writers may overwrite slots while the
// snapshot is taken; each returned record is nevertheless internally
// consistent because slots hold immutable pointers.
func (tr *TraceRecorder) Records() []SpanRecord {
	if tr == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(tr.slots))
	for i := range tr.slots {
		if p := tr.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// TimelineSpan is one node of a reassembled request timeline: the
// span's place relative to the root plus its subtree.
type TimelineSpan struct {
	Name string `json:"name"`
	Span string `json:"span"`
	// StartOffsetMs is the span's start relative to the root span.
	StartOffsetMs float64           `json:"startOffsetMs"`
	DurationMs    float64           `json:"durationMs"`
	Attrs         map[string]string `json:"attrs,omitempty"`
	Error         string            `json:"error,omitempty"`
	Children      []TimelineSpan    `json:"children,omitempty"`
}

// Timeline is one request reassembled from its recorded spans: the root
// span with every surviving descendant nested under it.
type Timeline struct {
	Trace      string       `json:"trace"`
	Root       string       `json:"root"`
	Start      time.Time    `json:"start"`
	DurationMs float64      `json:"durationMs"`
	Error      string       `json:"error,omitempty"`
	Spans      TimelineSpan `json:"spans"`
}

// Slowest reassembles the buffered spans into per-request timelines and
// returns the n slowest by root-span duration, slowest first. Child
// spans whose root was already evicted from the ring are dropped —
// a timeline always starts at its root.
func (tr *TraceRecorder) Slowest(n int) []Timeline {
	if tr == nil || n < 1 {
		return nil
	}
	recs := tr.Records()
	// Group by trace ID; find roots (no parent). A trace ID can in
	// principle carry several roots (e.g. a client reusing a request
	// ID); each root becomes its own timeline.
	byTrace := make(map[string][]SpanRecord)
	for _, r := range recs {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	var out []Timeline
	for _, group := range byTrace {
		for _, r := range group {
			if r.Parent != "" {
				continue
			}
			out = append(out, Timeline{
				Trace:      r.Trace,
				Root:       r.Name,
				Start:      r.Start,
				DurationMs: r.DurationSeconds * 1000,
				Error:      r.Error,
				Spans:      buildSubtree(r, group),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:allow floathygiene sort tie-break wants exact inequality; an epsilon would destabilize the order
		if out[i].DurationMs != out[j].DurationMs {
			return out[i].DurationMs > out[j].DurationMs
		}
		return out[i].Trace < out[j].Trace
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// buildSubtree nests every descendant of root found in group under it,
// children ordered by start time then span ID for determinism.
func buildSubtree(root SpanRecord, group []SpanRecord) TimelineSpan {
	node := TimelineSpan{
		Name:          root.Name,
		Span:          root.Span,
		StartOffsetMs: 0,
		DurationMs:    root.DurationSeconds * 1000,
		Attrs:         root.Attrs,
		Error:         root.Error,
	}
	// The recursion anchors offsets at the original root, carried via
	// closure over rootStart.
	rootStart := root.Start
	var attach func(parent *TimelineSpan, parentID string)
	attach = func(parent *TimelineSpan, parentID string) {
		var kids []SpanRecord
		for _, r := range group {
			if r.Parent == parentID && r.Span != parentID {
				kids = append(kids, r)
			}
		}
		sort.Slice(kids, func(i, j int) bool {
			if !kids[i].Start.Equal(kids[j].Start) {
				return kids[i].Start.Before(kids[j].Start)
			}
			return kids[i].Span < kids[j].Span
		})
		for _, k := range kids {
			child := TimelineSpan{
				Name:          k.Name,
				Span:          k.Span,
				StartOffsetMs: k.Start.Sub(rootStart).Seconds() * 1000,
				DurationMs:    k.DurationSeconds * 1000,
				Attrs:         k.Attrs,
				Error:         k.Error,
			}
			attach(&child, k.Span)
			parent.Children = append(parent.Children, child)
		}
	}
	attach(&node, root.Span)
	return node
}

// tracesResponse is the JSON body served by Handler.
type tracesResponse struct {
	// Buffered is how many spans the ring currently retains; Recorded
	// how many were committed over the process lifetime.
	Buffered int        `json:"buffered"`
	Recorded uint64     `json:"recorded"`
	Traces   []Timeline `json:"traces"`
}

// Handler serves the slowest-N request timelines as JSON
// (GET …?n=10, default 10, capped at 100).
func (tr *TraceRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "n must be a positive integer"})
				return
			}
			n = v
		}
		if n > 100 {
			n = 100
		}
		timelines := tr.Slowest(n)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(tracesResponse{
			Buffered: len(tr.Records()),
			Recorded: tr.Recorded(),
			Traces:   timelines,
		})
	})
}

// SetTraceRecorder installs the recorder completed spans commit to
// (nil to disable). Spans capture the recorder at StartSpan time.
func (r *Registry) SetTraceRecorder(tr *TraceRecorder) {
	r.traceRec.Store(tr)
}

// TraceRecorder returns the registry's recorder, or nil when tracing is
// disabled.
func (r *Registry) TraceRecorder() *TraceRecorder {
	return r.traceRec.Load()
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx with sp attached, so layers below an
// instrumented boundary can open child spans without plumbing *Span
// through every signature.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span attached with ContextWithSpan, or
// nil. Combined with the nil-safe StartChild, callers can write
// obs.SpanFromContext(ctx).StartChild("phase") unconditionally.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// RegisterTraceSinkMetrics exports JSONL-sink overflow as a counter:
//
//	obs_trace_sink_dropped_total    trace lines discarded on sink-queue overflow
//
// so export loss is visible on /metrics instead of only via
// SinkDropped. The counter is created eagerly (a zero reading is the
// healthy signal operators alert on disappearing) and synced by a
// scrape-time sampler that reads the registry's *current* recorder —
// recorder replacement after registration is handled, and a fresh
// recorder's lower cumulative count simply pauses the counter until
// the new recorder's drops catch up.
func RegisterTraceSinkMetrics(reg *Registry) {
	RegisterLossCounter(reg, "obs_trace_sink_dropped_total",
		"Trace JSONL sink lines dropped because the export queue was full.",
		func() (uint64, bool) {
			tr := reg.TraceRecorder()
			if tr == nil {
				return 0, false
			}
			return tr.SinkDropped(), true
		})
}
