package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock pins timestamps so log lines are fully deterministic.
func fixedClock() time.Time {
	return time.Date(2017, 11, 15, 10, 0, 0, 0, time.UTC)
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.SetClock(fixedClock)
	l.Info("request served", "route", "/evaluate", "status", 200, "durMs", 12.5, "note", "two words")
	want := `ts=2017-11-15T10:00:00.000Z level=info msg="request served" route=/evaluate status=200 durMs=12.5 note="two words"` + "\n"
	if buf.String() != want {
		t.Fatalf("line:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := buf.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Fatalf("below-level lines written:\n%s", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Fatalf("missing warn/error lines:\n%s", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("SetLevel did not take effect")
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.SetClock(fixedClock)
	child := l.With("reqId", "abc123")
	child.Info("step", "phase", "bootstrap")
	if !strings.Contains(buf.String(), "reqId=abc123 phase=bootstrap") {
		t.Fatalf("With fields missing: %q", buf.String())
	}
	// Child shares the sink: SetOutput on the parent redirects both.
	var buf2 bytes.Buffer
	l.SetOutput(&buf2)
	child.Info("after redirect")
	if !strings.Contains(buf2.String(), "after redirect") {
		t.Fatal("child did not follow parent's SetOutput")
	}
}

func TestLoggerOddKV(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Info("m", "dangling")
	if !strings.Contains(buf.String(), "!badkey=dangling") {
		t.Fatalf("odd trailing kv mishandled: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "Error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

// TestLoggerConcurrent checks lines never interleave: every line in
// the output must be exactly one complete record.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.SetClock(fixedClock)
	const workers, lines = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				l.Info("tick", "worker", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != workers*lines {
		t.Fatalf("%d lines, want %d", len(got), workers*lines)
	}
	for _, line := range got {
		if !strings.HasPrefix(line, "ts=2017-11-15T10:00:00.000Z level=info msg=tick worker=") {
			t.Fatalf("garbled line %q", line)
		}
	}
}
