package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the logger's level are
// dropped before formatting.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps "debug", "info", "warn", "error" to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// sink serializes writes so concurrent loggers never interleave lines.
// It is shared between a Logger and every child created by With.
type sink struct {
	mu sync.Mutex
	w  io.Writer
}

// Logger writes leveled key=value lines:
//
//	ts=2017-11-15T10:00:00.000Z level=info msg="request served" route=/evaluate status=200
//
// It is safe for concurrent use; lines are written atomically. The
// sink and clock are injectable so tests can capture deterministic
// output.
type Logger struct {
	s     *sink
	level *atomic.Int32
	base  string           // preformatted fields from With
	now   func() time.Time // nil means time.Now
}

// NewLogger returns a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, level Level) *Logger {
	lv := &atomic.Int32{}
	lv.Store(int32(level))
	return &Logger{s: &sink{w: w}, level: lv}
}

// SetOutput redirects the logger (and every With-derived child sharing
// its sink) to w.
func (l *Logger) SetOutput(w io.Writer) {
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	l.s.w = w
}

// SetLevel changes the minimum level; shared with With-derived children.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// Enabled reports whether a message at level would be written.
func (l *Logger) Enabled(level Level) bool { return level >= Level(l.level.Load()) }

// SetClock overrides the timestamp source (tests).
func (l *Logger) SetClock(now func() time.Time) { l.now = now }

// With returns a child logger whose lines always carry the given
// key=value fields. The child shares the parent's sink and level.
func (l *Logger) With(kv ...any) *Logger {
	var sb strings.Builder
	sb.WriteString(l.base)
	appendKV(&sb, kv)
	return &Logger{s: l.s, level: l.level, base: sb.String(), now: l.now}
}

func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	nowFn := l.now
	if nowFn == nil {
		nowFn = time.Now
	}
	var sb strings.Builder
	sb.WriteString("ts=")
	sb.WriteString(nowFn().UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" level=")
	sb.WriteString(level.String())
	sb.WriteString(" msg=")
	sb.WriteString(formatValue(msg))
	sb.WriteString(l.base)
	appendKV(&sb, kv)
	sb.WriteByte('\n')
	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	_, _ = io.WriteString(l.s.w, sb.String())
}

// appendKV writes " k=v" pairs; an odd trailing element is logged
// under the key "!badkey" rather than dropped.
func appendKV(sb *strings.Builder, kv []any) {
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "!badkey"
		if i+1 < len(kv) {
			val = kv[i+1]
		} else {
			val, key = key, "!badkey"
		}
		sb.WriteByte(' ')
		sb.WriteString(key)
		sb.WriteByte('=')
		sb.WriteString(formatValue(val))
	}
}

// formatValue renders a field value, quoting strings that would break
// the key=value grammar.
func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		if x == "" || strings.ContainsAny(x, " \t\n\"=") {
			return strconv.Quote(x)
		}
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case error:
		return formatValue(x.Error())
	case fmt.Stringer:
		return formatValue(x.String())
	default:
		return formatValue(fmt.Sprint(v))
	}
}
