package obs

import (
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("route", "/x"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same (name, labels) returns the same instance.
	if r.Counter("requests_total", L("route", "/x")) != c {
		t.Fatal("lookup did not return the existing counter")
	}
	// Different labels are a different series.
	if r.Counter("requests_total", L("route", "/y")) == c {
		t.Fatal("distinct labels returned the same series")
	}

	g := r.Gauge("in_flight")
	g.Set(3)
	g.Add(2)
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %g, want 4", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

// TestHelpBeforeRegistration: Help may run before the first metric of
// a family is created (package init order is arbitrary across files);
// the first registration adopts the pre-created family.
func TestHelpBeforeRegistration(t *testing.T) {
	r := NewRegistry()
	r.Help("lat_seconds", "Latency.")
	h := r.Histogram("lat_seconds", []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# HELP lat_seconds Latency.") ||
		!strings.Contains(out, "# TYPE lat_seconds histogram") {
		t.Fatalf("help/type mismatch:\n%s", out)
	}
	// A help-only family with no series is omitted entirely.
	r.Help("ghost", "Never registered.")
	sb.Reset()
	_ = r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "ghost") {
		t.Fatalf("series-less family exposed:\n%s", sb.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering counter name as gauge")
		}
	}()
	r.Gauge("m")
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for factor <= 1")
		}
	}()
	ExpBuckets(1, 1, 3)
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Bucket upper bounds are inclusive: 0.1 lands in le="0.1".
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("hits_total", "Total hits.")
	r.Counter("hits_total", L("route", "/a")).Add(3)
	r.Counter("hits_total", L("route", "/b")).Add(1)
	r.Gauge("temp").Set(1.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP hits_total Total hits.\n" +
		"# TYPE hits_total counter\n" +
		"hits_total{route=\"/a\"} 3\n" +
		"hits_total{route=\"/b\"} 1\n" +
		"# TYPE temp gauge\n" +
		"temp 1.5\n"
	if sb.String() != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("k", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("unescaped label value:\n%s", sb.String())
	}
}

// TestPrometheusOutputParses asserts every sample line is
// "name{labels} value" with a numeric value — the property the drevald
// /metrics test also checks end to end.
func TestPrometheusOutputParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("x", "1")).Inc()
	r.Gauge("g").Set(-2.5)
	r.Histogram("h", ExpBuckets(0.001, 2, 5)).Observe(0.01)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g", L("x", "y")).Set(2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != uint64(7) {
		t.Fatalf("snapshot c = %v", snap["c"])
	}
	if snap[`g{x="y"}`] != 2.0 {
		t.Fatalf("snapshot g = %v", snap[`g{x="y"}`])
	}
	// The whole snapshot must be JSON-encodable for /debug/vars.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	h, ok := snap["h"].(map[string]any)
	if !ok || h["count"] != uint64(1) {
		t.Fatalf("snapshot h = %#v", snap["h"])
	}
}

// TestConcurrentUse hammers one counter, gauge and histogram from many
// goroutines while a reader scrapes — the package's race-detector
// canary, and a check that no increment is lost.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", ExpBuckets(0.001, 2, 8))
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / perWorker)
				// Exercise get-or-create concurrently too.
				r.Counter("c").Value()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*perWorker {
		t.Fatalf("lost counter increments: %d", c.Value())
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("lost gauge adds: %g", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("lost observations: %d", h.Count())
	}
}
