package obs

import "runtime"

// RegisterRuntimeMetrics exports Go runtime telemetry from reg as
// gauges, refreshed by a scrape-time sampler (RegisterSampler) so
// /metrics and /debug/vars always show current values without a
// background poller:
//
//	go_goroutines                          live goroutines
//	go_gomaxprocs                          scheduler width
//	go_memstats_heap_alloc_bytes           bytes of allocated heap objects
//	go_memstats_heap_inuse_bytes           bytes in in-use heap spans
//	go_memstats_heap_sys_bytes             heap bytes obtained from the OS
//	go_memstats_gc_cycles_total            completed GC cycles
//	go_memstats_gc_pause_total_seconds     cumulative stop-the-world pause
//	go_memstats_next_gc_bytes              heap size that triggers the next GC
//
// Call once per registry; calling again just adds a redundant sampler.
// The names follow the conventional Prometheus Go-collector scheme so
// existing dashboards apply unchanged.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.Help("go_goroutines", "Number of goroutines that currently exist.")
	reg.Help("go_gomaxprocs", "Value of GOMAXPROCS: OS threads executing Go code simultaneously.")
	reg.Help("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	reg.Help("go_memstats_heap_inuse_bytes", "Bytes in in-use heap spans.")
	reg.Help("go_memstats_heap_sys_bytes", "Heap bytes obtained from the OS.")
	reg.Help("go_memstats_gc_cycles_total", "Completed GC cycles.")
	reg.Help("go_memstats_gc_pause_total_seconds", "Cumulative stop-the-world GC pause.")
	reg.Help("go_memstats_next_gc_bytes", "Heap size at which the next GC cycle triggers.")

	goroutines := reg.Gauge("go_goroutines")
	gomaxprocs := reg.Gauge("go_gomaxprocs")
	heapAlloc := reg.Gauge("go_memstats_heap_alloc_bytes")
	heapInuse := reg.Gauge("go_memstats_heap_inuse_bytes")
	heapSys := reg.Gauge("go_memstats_heap_sys_bytes")
	gcCycles := reg.Gauge("go_memstats_gc_cycles_total")
	gcPause := reg.Gauge("go_memstats_gc_pause_total_seconds")
	nextGC := reg.Gauge("go_memstats_next_gc_bytes")

	reg.RegisterSampler(func() {
		// ReadMemStats briefly stops the world; acceptable at scrape
		// rates, which is why this runs per exposition, not per request.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		gomaxprocs.Set(float64(runtime.GOMAXPROCS(0)))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapInuse.Set(float64(ms.HeapInuse))
		heapSys.Set(float64(ms.HeapSys))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		nextGC.Set(float64(ms.NextGC))
	})
}
