package obs

import (
	"runtime/debug"
	"sync"
)

var versionOnce = sync.OnceValue(buildVersion)

// Version returns a git-describe-style version string for the running
// binary, stamped from runtime/debug.ReadBuildInfo: the module version
// when the build has one, otherwise the short VCS revision with a
// "-dirty" suffix when the working tree was modified, otherwise
// "devel".
func Version() string { return versionOnce() }

func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty && rev != "" {
		rev += "-dirty"
	}
	// A real module version (including pseudo-versions, which already
	// embed the short revision) is authoritative; fall back to the VCS
	// revision only for (devel) builds.
	v := bi.Main.Version
	if v == "" || v == "(devel)" {
		if rev != "" {
			return rev
		}
		return "devel"
	}
	return v
}
