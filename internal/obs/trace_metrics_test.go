package obs

import (
	"strings"
	"testing"
)

func TestRegisterTraceSinkMetricsSyncsDrops(t *testing.T) {
	r := NewRegistry()
	tr := NewTraceRecorder(8)
	r.SetTraceRecorder(tr)
	RegisterTraceSinkMetrics(r)

	// Eager creation: the family must appear at zero before any drop.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_trace_sink_dropped_total 0") {
		t.Fatalf("counter not exposed at zero:\n%s", b.String())
	}

	// The sampler mirrors the recorder's cumulative drop count.
	tr.sinkDropped.Store(5)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_trace_sink_dropped_total 5") {
		t.Fatalf("counter did not sync to 5:\n%s", b.String())
	}

	// Replacing the recorder with a fresh one (lower cumulative count)
	// must not decrease or double-count: the counter holds until the new
	// recorder's drops pass the old high-water mark.
	fresh := NewTraceRecorder(8)
	r.SetTraceRecorder(fresh)
	fresh.sinkDropped.Store(2)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_trace_sink_dropped_total 5") {
		t.Fatalf("counter moved on recorder swap:\n%s", b.String())
	}

	fresh.sinkDropped.Store(9)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_trace_sink_dropped_total 12") {
		t.Fatalf("counter did not advance by the new recorder's delta:\n%s", b.String())
	}
}

func TestRegisterTraceSinkMetricsNilRecorder(t *testing.T) {
	r := NewRegistry()
	RegisterTraceSinkMetrics(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_trace_sink_dropped_total 0") {
		t.Fatalf("counter missing with no recorder installed:\n%s", b.String())
	}
}
