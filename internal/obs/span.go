package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// spanSeconds is the family every span duration lands in, one series
// per span name: obs_span_seconds{span="drevald_bootstrap"}.
const spanSeconds = "obs_span_seconds"

// Span measures one timed operation. End records the elapsed time into
// the registry's span-duration histogram. Spans carry an ID — generated
// at the root, inherited by children — so request-scoped work (HTTP
// handler → bootstrap → resample batch) can be correlated in logs.
type Span struct {
	reg   *Registry
	name  string
	id    string
	start time.Time
	hist  *Histogram
}

// StartSpan opens a span on the registry with a fresh ID.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{
		reg:   r,
		name:  name,
		id:    NewID(),
		start: time.Now(),
		hist:  r.Histogram(spanSeconds, TimeBuckets, L("span", name)),
	}
}

// StartSpan opens a span on the Default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// StartChild opens a sub-span that inherits this span's ID, so all
// phases of one request share a correlation key.
func (s *Span) StartChild(name string) *Span {
	return &Span{
		reg:   s.reg,
		name:  name,
		id:    s.id,
		start: time.Now(),
		hist:  s.reg.Histogram(spanSeconds, TimeBuckets, L("span", name)),
	}
}

// ID returns the span's correlation ID.
func (s *Span) ID() string { return s.id }

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// End records the elapsed duration and returns it. Safe on a nil span
// (records nothing), so callers can End unconditionally.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.hist.Observe(d.Seconds())
	return d
}

// idCounter and idBase drive NewID. IDs come from a counter mixed
// through SplitMix64 — deliberately not from any evaluation RNG, so ID
// generation can never perturb the deterministic PCG streams.
var (
	idCounter atomic.Uint64
	idBase    = uint64(time.Now().UnixNano())
)

// NewID returns a 16-hex-digit identifier, unique within the process
// and varying across processes. Used for request and span IDs.
func NewID() string {
	x := idBase + idCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}
