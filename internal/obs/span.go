package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// spanSeconds is the family every span duration lands in, one series
// per span name: obs_span_seconds{span="drevald_bootstrap"}.
const spanSeconds = "obs_span_seconds"

// spanErrors counts spans that ended with SetError set, one series per
// span name: obs_span_errors_total{span="..."}.
const spanErrors = "obs_span_errors_total"

// Span measures one timed operation. End records the elapsed time into
// the registry's span-duration histogram (with the trace ID as the
// bucket exemplar) and, when the registry has a TraceRecorder, commits
// a SpanRecord so the operation shows up in /debug/traces timelines.
//
// Spans carry two identifiers: a trace ID — generated at the root,
// inherited by children — correlating all phases of one request, and a
// per-span ID linking children to parents. A span's mutating methods
// (Attr, SetError, End) are meant for the goroutine that owns the
// operation; they are not synchronized against each other.
type Span struct {
	reg    *Registry
	name   string
	id     string // trace/correlation ID, shared down the tree
	spanID string // this span's own ID
	parent string // parent's spanID, "" at the root
	start  time.Time
	hist   *Histogram
	rec    *TraceRecorder
	attrs  map[string]string
	errMsg string
	ended  bool
}

// StartSpan opens a root span on the registry with a fresh trace ID.
func (r *Registry) StartSpan(name string) *Span {
	return r.StartSpanWithID(name, NewID())
}

// StartSpanWithID opens a root span whose trace ID is supplied by the
// caller — drevald uses the request's X-Request-Id, so exported
// exemplars and timelines match the access logs. An empty id gets a
// fresh one.
func (r *Registry) StartSpanWithID(name, id string) *Span {
	if id == "" {
		id = NewID()
	}
	return &Span{
		reg:    r,
		name:   name,
		id:     id,
		spanID: NewID(),
		start:  time.Now(),
		hist:   r.Histogram(spanSeconds, TimeBuckets, L("span", name)),
		rec:    r.TraceRecorder(),
	}
}

// StartSpan opens a span on the Default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// StartChild opens a sub-span that inherits this span's trace ID and
// records this span as its parent, so all phases of one request share a
// correlation key and reassemble into one timeline. On a nil receiver
// it falls back to a fresh root span on the Default registry, so
// instrumented code works unchanged outside an instrumented request.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return Default.StartSpan(name)
	}
	return &Span{
		reg:    s.reg,
		name:   name,
		id:     s.id,
		spanID: NewID(),
		parent: s.spanID,
		start:  time.Now(),
		hist:   s.reg.Histogram(spanSeconds, TimeBuckets, L("span", name)),
		rec:    s.rec,
	}
}

// ID returns the span's trace/correlation ID.
func (s *Span) ID() string { return s.id }

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Attr attaches a key=value attribute, carried into the recorded
// timeline. Later values for the same key win. Returns the span for
// chaining; safe on a nil span.
func (s *Span) Attr(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	return s
}

// SetError marks the span failed. End then increments
// obs_span_errors_total{span=name} and the message lands in the
// recorded timeline. The last message wins; safe on a nil span.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	if msg == "" {
		msg = "error"
	}
	s.errMsg = msg
}

// Failed reports whether SetError was called.
func (s *Span) Failed() bool { return s != nil && s.errMsg != "" }

// End records the elapsed duration and returns it. Safe on a nil span
// (records nothing), so callers can End unconditionally; a second End
// is a no-op returning the elapsed time since start.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.hist.ObserveExemplar(d.Seconds(), s.id)
	if s.errMsg != "" {
		s.reg.Counter(spanErrors, L("span", s.name)).Inc()
	}
	if s.rec != nil {
		s.rec.record(&SpanRecord{
			Trace:           s.id,
			Span:            s.spanID,
			Parent:          s.parent,
			Name:            s.name,
			Start:           s.start,
			DurationSeconds: d.Seconds(),
			Attrs:           s.attrs,
			Error:           s.errMsg,
		})
	}
	return d
}

// idCounter and idBase drive NewID. IDs come from a counter mixed
// through SplitMix64 — deliberately not from any evaluation RNG, so ID
// generation can never perturb the deterministic PCG streams.
var (
	idCounter atomic.Uint64
	idBase    = uint64(time.Now().UnixNano())
)

// NewID returns a 16-hex-digit identifier, unique within the process
// and varying across processes. Used for request and span IDs.
func NewID() string {
	x := idBase + idCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return fmt.Sprintf("%016x", x)
}
