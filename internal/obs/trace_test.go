package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTracedRegistry returns a registry with a recorder of the given
// capacity installed.
func newTracedRegistry(capacity int) (*Registry, *TraceRecorder) {
	r := NewRegistry()
	tr := NewTraceRecorder(capacity)
	r.SetTraceRecorder(tr)
	return r, tr
}

func TestTraceRecorderKeepsParentChildStructure(t *testing.T) {
	r, tr := newTracedRegistry(16)
	root := r.StartSpan("request")
	root.Attr("route", "/evaluate")
	child := root.StartChild("bootstrap")
	grand := child.StartChild("resample")
	grand.End()
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(recs))
	}
	// Commit order is End order: grand, child, root.
	if recs[0].Name != "resample" || recs[1].Name != "bootstrap" || recs[2].Name != "request" {
		t.Fatalf("unexpected commit order: %v %v %v", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	for _, rec := range recs {
		if rec.Trace != root.ID() {
			t.Fatalf("span %s has trace %q, want %q", rec.Name, rec.Trace, root.ID())
		}
	}
	if recs[2].Parent != "" {
		t.Fatalf("root has parent %q", recs[2].Parent)
	}
	if recs[1].Parent != recs[2].Span {
		t.Fatalf("bootstrap parent %q != request span %q", recs[1].Parent, recs[2].Span)
	}
	if recs[0].Parent != recs[1].Span {
		t.Fatalf("resample parent %q != bootstrap span %q", recs[0].Parent, recs[1].Span)
	}
	if recs[2].Attrs["route"] != "/evaluate" {
		t.Fatalf("root attrs = %v", recs[2].Attrs)
	}

	tl := tr.Slowest(10)
	if len(tl) != 1 {
		t.Fatalf("Slowest returned %d timelines, want 1", len(tl))
	}
	got := tl[0]
	if got.Root != "request" || got.Trace != root.ID() {
		t.Fatalf("timeline root=%q trace=%q", got.Root, got.Trace)
	}
	if len(got.Spans.Children) != 1 || got.Spans.Children[0].Name != "bootstrap" {
		t.Fatalf("timeline children = %+v", got.Spans.Children)
	}
	if kids := got.Spans.Children[0].Children; len(kids) != 1 || kids[0].Name != "resample" {
		t.Fatalf("nested children = %+v", got.Spans.Children[0].Children)
	}
}

func TestTraceRecorderBoundedMemoryEviction(t *testing.T) {
	r, tr := newTracedRegistry(8)
	for i := 0; i < 100; i++ {
		r.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	recs := tr.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want capacity 8", len(recs))
	}
	// Only the newest 8 survive, in commit order.
	for i, rec := range recs {
		want := fmt.Sprintf("s%d", 92+i)
		if rec.Name != want {
			t.Fatalf("slot %d = %q, want %q (old spans must be evicted)", i, rec.Name, want)
		}
	}
	if tr.Recorded() != 100 {
		t.Fatalf("Recorded() = %d, want 100", tr.Recorded())
	}
}

func TestTraceRecorderConcurrentWriters(t *testing.T) {
	r, tr := newTracedRegistry(64)
	const writers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := r.StartSpan("work")
				sp.Attr("writer", fmt.Sprint(w))
				if i%3 == 0 {
					sp.SetError("synthetic")
				}
				sp.StartChild("inner").End()
				sp.End()
			}
		}(w)
	}
	// Concurrent readers must see consistent records while the ring is
	// being overwritten.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, rec := range tr.Records() {
				if rec.Name != "work" && rec.Name != "inner" {
					t.Errorf("torn record name %q", rec.Name)
					return
				}
			}
			tr.Slowest(5)
		}
	}()
	wg.Wait()
	<-done
	if got, want := tr.Recorded(), uint64(writers*each*2); got != want {
		t.Fatalf("Recorded() = %d, want %d", got, want)
	}
	if len(tr.Records()) != 64 {
		t.Fatalf("ring holds %d, want 64", len(tr.Records()))
	}
}

func TestTraceRecorderJSONLExportDeterministicOrder(t *testing.T) {
	runOnce := func() []string {
		r, tr := newTracedRegistry(32)
		var mu sync.Mutex
		var lines []string
		tr.SetSink(func(line []byte) {
			mu.Lock()
			lines = append(lines, string(line))
			mu.Unlock()
		})
		for i := 0; i < 5; i++ {
			root := r.StartSpan(fmt.Sprintf("req%d", i))
			root.StartChild("phase").End()
			root.End()
		}
		// Removing the sink flushes the drainer, so every queued line
		// has been delivered before we look.
		tr.SetSink(nil)
		mu.Lock()
		defer mu.Unlock()
		names := make([]string, len(lines))
		for i, l := range lines {
			if !strings.HasSuffix(l, "\n") {
				t.Fatalf("line %d missing trailing newline: %q", i, l)
			}
			var rec SpanRecord
			if err := json.Unmarshal([]byte(l), &rec); err != nil {
				t.Fatalf("line %d not valid JSON: %v", i, err)
			}
			names[i] = rec.Name
		}
		return names
	}
	a, b := runOnce(), runOnce()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("JSONL order differs across identical runs:\n%v\n%v", a, b)
	}
	want := []string{"phase", "req0", "phase", "req1", "phase", "req2", "phase", "req3", "phase", "req4"}
	if fmt.Sprint(a) != fmt.Sprint(want) {
		t.Fatalf("JSONL order = %v, want completion order %v", a, want)
	}
}

func TestTraceHandlerServesSlowestTimelines(t *testing.T) {
	r, tr := newTracedRegistry(32)
	// Two requests with distinguishable durations.
	slow := r.StartSpanWithID("request", "trace-slow")
	time.Sleep(5 * time.Millisecond)
	slow.End()
	fast := r.StartSpanWithID("request", "trace-fast")
	fast.End()

	req := httptest.NewRequest("GET", "/debug/traces?n=1", nil)
	rw := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("status %d", rw.Code)
	}
	var resp struct {
		Buffered int        `json:"buffered"`
		Recorded uint64     `json:"recorded"`
		Traces   []Timeline `json:"traces"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if resp.Buffered != 2 || resp.Recorded != 2 {
		t.Fatalf("buffered=%d recorded=%d, want 2/2", resp.Buffered, resp.Recorded)
	}
	if len(resp.Traces) != 1 {
		t.Fatalf("got %d timelines, want n=1", len(resp.Traces))
	}
	if resp.Traces[0].Trace != "trace-slow" {
		t.Fatalf("slowest trace = %q, want trace-slow", resp.Traces[0].Trace)
	}

	// Bad n is a 400, not a panic.
	rw = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces?n=bogus", nil))
	if rw.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", rw.Code)
	}
}

func TestSpanErrorCounterAndExemplar(t *testing.T) {
	r, _ := newTracedRegistry(8)
	sp := r.StartSpanWithID("op", "trace-err")
	sp.SetError("boom")
	sp.End()
	if got := r.Counter(spanErrors, L("span", "op")).Value(); got != 1 {
		t.Fatalf("obs_span_errors_total = %d, want 1", got)
	}
	// A clean span of a different name neither bumps the error counter
	// nor overwrites op's exemplar.
	ok := r.StartSpan("op2")
	ok.End()
	if got := r.Counter(spanErrors, L("span", "op")).Value(); got != 1 {
		t.Fatalf("clean span bumped the error counter: %d", got)
	}

	// The duration histogram carries the trace ID as a bucket exemplar
	// in the OpenMetrics exposition only: the classic 0.0.4 text format
	// cannot represent exemplars (Prometheus would reject the scrape),
	// so WritePrometheus must omit them.
	var sb strings.Builder
	if err := r.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# {trace_id="trace-err"}`) {
		t.Fatalf("openmetrics exposition missing exemplar:\n%s", out)
	}
	if !strings.Contains(out, `obs_span_errors_total{span="op"} 1`) {
		t.Fatalf("exposition missing error counter:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE obs_span_errors counter\n") {
		t.Fatalf("openmetrics counter metadata must drop _total:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("openmetrics exposition missing # EOF terminator:\n%s", out)
	}
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	classic := sb.String()
	if strings.Contains(classic, " # {") {
		t.Fatalf("classic 0.0.4 exposition must not carry exemplars:\n%s", classic)
	}
	if !strings.Contains(classic, `obs_span_errors_total{span="op"} 1`) {
		t.Fatalf("classic exposition missing error counter:\n%s", classic)
	}

	// Snapshot exposes the same exemplar for /debug/vars.
	snap := r.Snapshot()
	hist, ok2 := snap[`obs_span_seconds{span="op"}`].(map[string]any)
	if !ok2 {
		t.Fatalf("snapshot missing span histogram: %v", snap)
	}
	exemplars, ok2 := hist["exemplars"].(map[string]*Exemplar)
	if !ok2 || len(exemplars) == 0 {
		t.Fatalf("snapshot missing exemplars: %v", hist)
	}
	found := false
	for _, e := range exemplars {
		if e.TraceID == "trace-err" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplars lack trace-err: %v", exemplars)
	}
}

func TestSpanNilSafetyAndDoubleEnd(t *testing.T) {
	var sp *Span
	sp.SetError("ignored")
	if sp.Attr("k", "v") != nil {
		t.Fatal("nil span Attr must return nil")
	}
	if sp.Failed() {
		t.Fatal("nil span cannot have failed")
	}
	child := sp.StartChild("orphan")
	if child == nil || child.parent != "" {
		t.Fatalf("nil-parent StartChild must open a root span, got %+v", child)
	}
	child.End()

	r, tr := newTracedRegistry(8)
	s := r.StartSpan("once")
	s.End()
	s.End()
	if tr.Recorded() != 1 {
		t.Fatalf("double End recorded %d spans, want 1", tr.Recorded())
	}
	if h := r.Histogram(spanSeconds, TimeBuckets, L("span", "once")); h.Count() != 1 {
		t.Fatalf("double End observed %d durations, want 1", h.Count())
	}
}

func TestSpanWithoutRecorderStillObserves(t *testing.T) {
	r := NewRegistry() // no recorder installed
	sp := r.StartSpan("bare")
	sp.Attr("k", "v")
	sp.End()
	if got := r.Histogram(spanSeconds, TimeBuckets, L("span", "bare")).Count(); got != 1 {
		t.Fatalf("histogram count = %d, want 1", got)
	}
	if r.TraceRecorder() != nil {
		t.Fatal("registry unexpectedly has a recorder")
	}
}

// TestTraceSinkOverflowDropsAndCounts: a sink writer that cannot keep
// up must never block span End — excess lines are dropped and counted,
// and every line that was queued is still flushed by SetSink(nil).
func TestTraceSinkOverflowDropsAndCounts(t *testing.T) {
	r, tr := newTracedRegistry(4)
	release := make(chan struct{})
	var delivered atomic.Uint64
	tr.SetSink(func(line []byte) {
		<-release
		delivered.Add(1)
	})
	const n = sinkBufferLines + 64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			r.StartSpan("s").End()
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("span End blocked on a stalled sink")
	}
	close(release)
	tr.SetSink(nil) // flushes the queue and stops the drainer
	if tr.SinkDropped() == 0 {
		t.Fatal("expected overflow lines to be dropped and counted")
	}
	if got := delivered.Load() + tr.SinkDropped(); got != n {
		t.Fatalf("delivered %d + dropped %d = %d, want %d",
			delivered.Load(), tr.SinkDropped(), got, n)
	}
}

// TestMetricsHandlerFormatNegotiation: exemplars are only legal in
// OpenMetrics, so /metrics must emit them solely when the scraper asks
// for application/openmetrics-text; a default (Prometheus 0.0.4)
// scrape must stay exemplar-free and parseable.
func TestMetricsHandlerFormatNegotiation(t *testing.T) {
	r, _ := newTracedRegistry(8)
	r.StartSpanWithID("op", "trace-neg").End()
	handler := r.MetricsHandler()

	rw := httptest.NewRecorder()
	handler.ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("default Content-Type = %q", ct)
	}
	body := rw.Body.String()
	if strings.Contains(body, " # {") || strings.Contains(body, "# EOF") {
		t.Fatalf("0.0.4 response carries OpenMetrics constructs:\n%s", body)
	}
	if !strings.Contains(body, `obs_span_seconds_count{span="op"} 1`) {
		t.Fatalf("0.0.4 response missing span histogram:\n%s", body)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rw = httptest.NewRecorder()
	handler.ServeHTTP(rw, req)
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	body = rw.Body.String()
	if !strings.Contains(body, `# {trace_id="trace-neg"}`) {
		t.Fatalf("openmetrics response missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("openmetrics response missing # EOF:\n%s", body)
	}
}

func TestContextSpanRoundTrip(t *testing.T) {
	r, _ := newTracedRegistry(8)
	sp := r.StartSpan("request")
	ctx := ContextWithSpan(context.Background(), sp)
	got := SpanFromContext(ctx)
	if got != sp {
		t.Fatalf("SpanFromContext = %p, want %p", got, sp)
	}
	child := got.StartChild("phase")
	if child.ID() != sp.ID() {
		t.Fatalf("child trace %q != root trace %q", child.ID(), sp.ID())
	}
	child.End()
	sp.End()
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil span")
	}
}
